#!/usr/bin/env bash
# Promotes a freshly written bench record ($tmp) to its checked-in path
# ($record) -- or refuses.
#
#   promote_bench_record.sh <bench_exit_status> <tmp> <record>
#
# Refusal rules, in order:
#   1. The bench exited nonzero: the record is untrustworthy no matter
#      what it says (a crash after the file was written, a failed
#      verification the JSON predates). Kept as <record>.rejected.json.
#      This check runs FIRST -- promoting before looking at the exit
#      status once let a crashing bench overwrite a good record.
#   2. The record reports "identical":false: the accelerated path
#      diverged from the reference; never overwrite a good record.
#   3. The record reports "speedup_target_met":false while the existing
#      record met the target: a perf regression never replaces a
#      passing record.
#
# Exit status: 0 promoted, 1 refused (rejected copy kept), 2 usage.
set -euo pipefail

if [ "$#" -ne 3 ]; then
  echo "usage: promote_bench_record.sh <bench_exit_status> <tmp> <record>" >&2
  exit 2
fi

bench_status=$1
tmp=$2
record=$3

if [ ! -f "$tmp" ]; then
  echo "REFUSING to promote $record: the bench wrote no record" \
       "(exit status $bench_status)" >&2
  exit 1
fi

if [ "$bench_status" -ne 0 ]; then
  mv "$tmp" "$record.rejected.json"
  echo "REFUSING to promote $record: the bench exited with status" \
       "$bench_status (record kept as $record.rejected.json)" >&2
  exit 1
fi

if grep -q '"identical":false' "$tmp"; then
  mv "$tmp" "$record.rejected.json"
  echo "REFUSING to overwrite $record: the new record reports" \
       "identical:false (kept as $record.rejected.json)" >&2
  exit 1
fi

if grep -q '"speedup_target_met":false' "$tmp" \
    && [ -f "$record" ] \
    && grep -q '"speedup_target_met":true' "$record"; then
  mv "$tmp" "$record.rejected.json"
  echo "REFUSING to overwrite $record: the new record reports" \
       "speedup_target_met:false but the existing record met the target" \
       "(kept as $record.rejected.json)" >&2
  exit 1
fi

mv "$tmp" "$record"
echo "record written to $record"
