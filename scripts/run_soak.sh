#!/usr/bin/env bash
# Out-of-process soak of the warm annotation service.
#
# Phase 1 (bit-identity): with no faults armed, every fixture annotated
# through gana-serve must produce byte-identical JSON to the one-shot
# annotate_netlist CLI.
#
# Phase 2 (fault soak): gana-serve restarts with deterministic fault
# injection armed (alloc failures, internal errors, stage delays) and a
# small admission window, then GANA_SOAK_CLIENTS parallel gana_client
# processes hammer it with GANA_SOAK_REQUESTS total annotate requests
# plus ping/metrics probes. Pass criteria:
#   - no client sees a transport failure (exit 2) -- injected faults must
#     surface as structured per-request diagnostics, never as broken
#     connections ([FAIL]/[TIMEOUT] lines and exit 4/5 are expected);
#   - the server survives the whole barrage and, on SIGTERM, drains and
#     exits 0.
#
# Usage: scripts/run_soak.sh  (from anywhere inside the repo)
#   GANA_SOAK_REQUESTS=5000 GANA_SOAK_CLIENTS=4 scripts/run_soak.sh
set -euo pipefail

cd "$(dirname "$0")/.."

REQUESTS="${GANA_SOAK_REQUESTS:-5000}"
CLIENTS="${GANA_SOAK_CLIENTS:-4}"
SOCKET="/tmp/gana_soak_$$.sock"
WORKDIR="$(mktemp -d /tmp/gana_soak_$$.XXXX)"
SERVE_PID=""

cleanup() {
  if [[ -n "${SERVE_PID}" ]] && kill -0 "${SERVE_PID}" 2>/dev/null; then
    kill -9 "${SERVE_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORKDIR}" "${SOCKET}"
}
trap cleanup EXIT

cmake --preset release
cmake --build --preset release -j"$(nproc)" \
  --target gana_serve gana_client annotate_netlist

BIN=build-release/examples
FIXTURES=(tests/fixtures/rc_filter.sp tests/fixtures/two_stage_ota.sp
          tests/fixtures/nested_buffer.sp tests/fixtures/lna_portlabels.sp)

wait_for_socket() {
  for _ in $(seq 1 100); do
    if "${BIN}/gana_client" --socket "${SOCKET}" --ping >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.05
  done
  echo "FATAL: server did not come up on ${SOCKET}" >&2
  return 1
}

stop_server() {
  kill -TERM "${SERVE_PID}"
  local rc=0
  wait "${SERVE_PID}" || rc=$?
  SERVE_PID=""
  if [[ ${rc} -ne 0 ]]; then
    echo "FATAL: gana_serve exited ${rc} instead of draining cleanly" >&2
    exit 1
  fi
}

echo "=== phase 1: bit-identity against the one-shot CLI ==="
"${BIN}/gana_serve" --socket "${SOCKET}" &
SERVE_PID=$!
wait_for_socket
for f in "${FIXTURES[@]}"; do
  ref="${WORKDIR}/ref_$(basename "${f}" .sp).json"
  srv="${WORKDIR}/srv_$(basename "${f}" .sp).json"
  "${BIN}/annotate_netlist" "${f}" --json "${ref}" >/dev/null
  "${BIN}/gana_client" --socket "${SOCKET}" "${f}" --json "${srv}" >/dev/null
  if ! cmp -s "${ref}" "${srv}"; then
    echo "FATAL: ${f}: served annotation differs from the CLI" >&2
    exit 1
  fi
  echo "  identical: ${f}"
done
stop_server

echo "=== phase 2: ${REQUESTS} requests from ${CLIENTS} clients, faults armed ==="
"${BIN}/gana_serve" --socket "${SOCKET}" \
  --max-inflight 4 --timeout-seconds 10 --cache-capacity 256 \
  --fault-seed 20260808 --fault-alloc 0.05 --fault-error 0.05 \
  --fault-delay 0.10 --fault-delay-seconds 0.002 &
SERVE_PID=$!
wait_for_socket

per_client=$(( REQUESTS / CLIENTS ))
client_pids=()
for c in $(seq 1 "${CLIENTS}"); do
  (
    files=()
    for (( i = 0; i < per_client; ++i )); do
      files+=("${FIXTURES[$(( i % ${#FIXTURES[@]} ))]}")
    done
    rc=0
    "${BIN}/gana_client" --socket "${SOCKET}" --timeout-seconds 30 \
      --retries 8 "${files[@]}" > "${WORKDIR}/client_${c}.log" 2>&1 || rc=$?
    # 0 = all ok, 4 = some injected failures, 5 = some injected
    # timeouts: all expected under an armed injector. Anything else
    # (especially 2: transport breakage) fails the soak.
    case ${rc} in
      0|4|5) exit 0 ;;
      *) echo "client ${c}: unexpected exit ${rc}" \
           >> "${WORKDIR}/client_errors"; exit 1 ;;
    esac
  ) &
  client_pids+=($!)
  # Liveness probes alongside the barrage.
  "${BIN}/gana_client" --socket "${SOCKET}" --ping >/dev/null &
  client_pids+=($!)
done

soak_failed=0
for pid in "${client_pids[@]}"; do
  wait "${pid}" || soak_failed=1
done
if [[ ${soak_failed} -ne 0 ]]; then
  cat "${WORKDIR}/client_errors" 2>/dev/null >&2 || true
  echo "FATAL: a soak client saw a transport-level failure" >&2
  exit 1
fi

echo "--- server metrics after the barrage ---"
"${BIN}/gana_client" --socket "${SOCKET}" --metrics
grep -h -c '^\[ OK \]' "${WORKDIR}"/client_*.log \
  | awk '{ok += $1} END {print "--- total [ OK ] responses: " ok}'
grep -h -c '^\[FAIL\]\|^\[TIMEOUT\]' "${WORKDIR}"/client_*.log \
  | awk '{f += $1} END {print "--- total structured failures: " f}'

stop_server
echo "soak passed: ${REQUESTS} fault-injected requests, clean drain"
