#!/usr/bin/env bash
# Builds the concurrency tests with ThreadSanitizer and runs them.
# Usage: scripts/run_tsan.sh  (from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" \
  --target thread_pool_test batch_determinism_test batch_failure_test \
  primitive_matching_test frontend_test kernel_equivalence_test \
  batch_scaling_test serve_test soak_test fault_injection_test \
  shard_test incremental_test gana_shard
ctest --preset tsan
