#!/usr/bin/env bash
# Builds the full tier-1 test suite under the explicit release preset
# (-O3 -DNDEBUG: asserts compiled out) and runs it. Guards the
# release-mode correctness contract: input validation must be thrown
# diagnostics (DiagError), never assert-only, so a bad triplet or
# malformed netlist fails loudly in production builds too.
# Usage: scripts/run_release_tests.sh  (from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j"$(nproc)"
ctest --preset release -j"$(nproc)"
