#!/usr/bin/env bash
# Builds the error-path tests with AddressSanitizer + UBSan and runs
# them, including the full malformed-netlist mutation corpus.
# Usage: scripts/run_asan.sh  (from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j"$(nproc)" \
  --target corpus_harness_test robustness_test diag_test \
  batch_failure_test spice_parser_test spice_flatten_test vf2_test \
  primitive_matching_test frontend_test kernel_equivalence_test \
  batch_scaling_test serve_test soak_test deadline_test \
  fault_injection_test diag_json_test util_test shard_test \
  incremental_test artifact_test gana_shard
ctest --preset asan
