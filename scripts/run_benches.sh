#!/usr/bin/env bash
# Builds the release preset and runs every bench target, collecting the
# perf-record benches' BENCH_*.json files at the repo root.
#
# Perf-record benches (gcn_inference, primitive_matching, frontend)
# verify that
# their accelerated path is bit-identical to the reference path and say
# so in the record's "identical" field. Each record is written to a
# temporary path first; a run whose "identical" field is false never
# overwrites a checked-in good record -- the stale record is kept, the
# bad one is preserved next to it as *.rejected.json, and the script
# exits nonzero. The same refusal applies to a perf regression: a new
# record reporting "speedup_target_met":false never replaces an existing
# record that met the target. Records that carry a
# "jobs_scaling_efficiency" field (summed thread-CPU at 1 job / at 8
# jobs; 1.0 = no parallel CPU inflation) get it echoed per bench.
#
# Usage: scripts/run_benches.sh  (from anywhere inside the repo;
#        GANA_BENCH_QUICK=1 for a fast smoke pass)
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j"$(nproc)"

bin=build-release/bench

# Report-style benches: tables and figures on stdout, no JSON record.
for b in table1_datasets table2_test_accuracy fig5_filter_size \
         ablation_layers fig6_layout fig7_phased_array runtime_table \
         ablation_features ablation_preprocess ablation_conv; do
  echo "=== $b ==="
  "$bin/$b"
done

# Perf-record benches: write BENCH_<name>.json, guarded on exit status,
# "identical", and "speedup_target_met" (see promote_bench_record.sh --
# the exit-status check runs before promotion, so a bench that crashed
# or failed verification after writing its record never overwrites a
# good one).
status=0
for b in gcn_inference primitive_matching frontend sharding incremental; do
  echo "=== $b ==="
  record="BENCH_$b.json"
  tmp="$record.tmp"
  bench_status=0
  "$bin/$b" "$tmp" || bench_status=$?
  if ! scripts/promote_bench_record.sh "$bench_status" "$tmp" "$record"; then
    status=1
  fi
  if [ -f "$record" ] && grep -q '"jobs_scaling_efficiency"' "$record"; then
    eff=$(sed -n 's/.*"jobs_scaling_efficiency":\([-0-9.eE+]*\).*/\1/p' \
          "$record")
    echo "$b jobs-scaling efficiency (cpu@1 / cpu@8): $eff"
  fi
  if [ -f "$record" ] && grep -q '"startup_reduction_8"' "$record"; then
    red=$(sed -n 's/.*"startup_reduction_8":\([-0-9.eE+]*\).*/\1/p' \
          "$record")
    echo "$b 8-worker startup reduction (text parse / mmap): ${red}x"
  fi
  if [ "$bench_status" -ne 0 ]; then
    echo "$b exited with status $bench_status" >&2
  fi
done

exit $status
