#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace gana::json {

const Value* Value::get(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const Member& m : obj_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void Value::set(std::string key, Value v) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) return;
  for (Member& m : obj_) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

namespace {

/// Recursive-descent parser over a bounded cursor. Depth is decremented
/// on every container entry so adversarial nesting fails fast instead of
/// exhausting the call stack.
class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  std::optional<Value> run(std::string* error) {
    std::optional<Value> v = parse_value(max_depth_);
    if (v.has_value()) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing bytes after the document");
        v.reset();
      }
    }
    if (!v.has_value() && error != nullptr) {
      *error = "offset " + std::to_string(error_pos_) + ": " + error_;
    }
    return v;
  }

 private:
  void fail(const char* why) {
    if (error_.empty()) {
      error_ = why;
      error_pos_ = pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected, const char* why) {
    if (at_end() || peek() != expected) {
      fail(why);
      return false;
    }
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("unrecognized literal");
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  std::optional<Value> parse_value(std::size_t depth) {
    skip_ws();
    if (at_end()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        std::optional<std::string> s = parse_string();
        if (!s.has_value()) return std::nullopt;
        return Value(std::move(*s));
      }
      case 't':
        if (!consume_literal("true")) return std::nullopt;
        return Value(true);
      case 'f':
        if (!consume_literal("false")) return std::nullopt;
        return Value(false);
      case 'n':
        if (!consume_literal("null")) return std::nullopt;
        return Value(nullptr);
      default:
        return parse_number();
    }
  }

  std::optional<Value> parse_object(std::size_t depth) {
    if (depth == 0) {
      fail("nesting depth limit exceeded");
      return std::nullopt;
    }
    ++pos_;  // '{'
    std::vector<Member> members;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') {
        fail("expected object key");
        return std::nullopt;
      }
      std::optional<std::string> key = parse_string();
      if (!key.has_value()) return std::nullopt;
      for (const Member& m : members) {
        if (m.first == *key) {
          fail("duplicate object key");
          return std::nullopt;
        }
      }
      skip_ws();
      if (!consume(':', "expected ':' after object key")) return std::nullopt;
      std::optional<Value> v = parse_value(depth - 1);
      if (!v.has_value()) return std::nullopt;
      members.emplace_back(std::move(*key), std::move(*v));
      skip_ws();
      if (at_end()) {
        fail("unterminated object");
        return std::nullopt;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return Value(std::move(members));
      }
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<Value> parse_array(std::size_t depth) {
    if (depth == 0) {
      fail("nesting depth limit exceeded");
      return std::nullopt;
    }
    ++pos_;  // '['
    std::vector<Value> items;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    while (true) {
      std::optional<Value> v = parse_value(depth - 1);
      if (!v.has_value()) return std::nullopt;
      items.push_back(std::move(*v));
      skip_ws();
      if (at_end()) {
        fail("unterminated array");
        return std::nullopt;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return Value(std::move(items));
      }
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  /// Appends the UTF-8 encoding of `cp` (already range-checked).
  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::optional<std::uint32_t> parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return std::nullopt;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
        return std::nullopt;
      }
    }
    pos_ += 4;
    return v;
  }

  std::optional<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (at_end()) {
        fail("unterminated string");
        return std::nullopt;
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (at_end()) {
        fail("truncated escape");
        return std::nullopt;
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::optional<std::uint32_t> hi = parse_hex4();
          if (!hi.has_value()) return std::nullopt;
          std::uint32_t cp = *hi;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired high surrogate");
              return std::nullopt;
            }
            pos_ += 2;
            std::optional<std::uint32_t> lo = parse_hex4();
            if (!lo.has_value()) return std::nullopt;
            if (*lo < 0xDC00 || *lo > 0xDFFF) {
              fail("invalid low surrogate");
              return std::nullopt;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (*lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
            return std::nullopt;
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("unrecognized escape");
          return std::nullopt;
      }
    }
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || peek() < '0' || peek() > '9') {
      fail("expected a value");
      return std::nullopt;
    }
    if (peek() == '0') {
      ++pos_;  // leading zero admits no more integer digits
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("digit required after decimal point");
        return std::nullopt;
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("digit required in exponent");
        return std::nullopt;
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    // The slice is a valid JSON number by construction; strtod cannot
    // reject it, but an overflow yields +-inf which JSON cannot carry.
    const std::string slice(text_.substr(start, pos_ - start));
    const double v = std::strtod(slice.c_str(), nullptr);
    if (!std::isfinite(v)) {
      fail("number out of range");
      return std::nullopt;
    }
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t max_depth_;
  std::string error_;
  std::size_t error_pos_ = 0;
};

void dump_into(const Value& v, std::string& out);

void dump_number(double d, std::string& out) {
  // Integers up to 2^53 print without an exponent or trailing ".0" so
  // ids and counters round-trip textually; everything else uses %.17g
  // (shortest always-round-trip width for IEEE doubles). The magnitude
  // guard must run first: casting a double >= 2^63 to int64_t is UB.
  if (std::fabs(d) < 9.007199254740992e15 &&
      d == static_cast<double>(static_cast<std::int64_t>(d))) {
    out += std::to_string(static_cast<std::int64_t>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void dump_into(const Value& v, std::string& out) {
  switch (v.kind()) {
    case Kind::Null:
      out += "null";
      return;
    case Kind::Bool:
      out += v.as_bool() ? "true" : "false";
      return;
    case Kind::Number:
      dump_number(v.as_double(), out);
      return;
    case Kind::String:
      out += quote(v.as_string());
      return;
    case Kind::Raw:
      out += v.raw_fragment();
      return;
    case Kind::Array: {
      out.push_back('[');
      bool first = true;
      for (const Value& item : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        dump_into(item, out);
      }
      out.push_back(']');
      return;
    }
    case Kind::Object: {
      out.push_back('{');
      bool first = true;
      for (const Member& m : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        out += quote(m.first);
        out.push_back(':');
        dump_into(m.second, out);
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error,
                           std::size_t max_depth) {
  return Parser(text, max_depth).run(error);
}

std::string dump(const Value& v) {
  std::string out;
  dump_into(v, out);
  return out;
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace gana::json
