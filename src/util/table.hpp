// ASCII table rendering for benchmark harnesses.
//
// The benchmark binaries reproduce the paper's tables; this helper prints
// them in an aligned, pipe-delimited form that is easy to diff.
#pragma once

#include <string>
#include <vector>

namespace gana {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; it may have fewer cells than the header (padded empty).
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule, e.g.
  ///   Datasets  | # Circuits | # Nodes
  ///   ----------+------------+--------
  ///   OTA bias  | 624        | 32152
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string fmt(double v, int precision = 2);

/// Formats a percentage, e.g. fmt_pct(0.905) == "90.50%".
std::string fmt_pct(double fraction, int precision = 2);

}  // namespace gana
