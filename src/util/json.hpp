// Minimal self-contained JSON value model, parser, and writer.
//
// The annotation service (src/serve) frames every request and response
// as one JSON document, and requests arrive from untrusted client
// processes -- so the parser here is written for robustness first:
// strict (no trailing garbage, no unescaped control characters, no
// invalid \u escapes), depth-limited (malicious nesting cannot blow the
// stack), and allocation-proportional to the input size. It accepts
// exactly the RFC 8259 grammar, nothing more.
//
// The writer is deterministic: objects preserve insertion order (Object
// is an order-preserving vector of pairs, not a map), numbers print via
// a fixed shortest-round-trip format, and strings escape the minimal
// set. Writing the same Value twice yields the same bytes -- the serve
// soak test's bit-identity check depends on that.
//
// `Value::raw()` is a writer-only escape hatch: a pre-serialized JSON
// fragment (e.g. core::annotation_to_json output) embedded verbatim, so
// the service reuses the existing exporters without reparsing them and
// without risking uint64 counters losing precision through a double.
// The parser never produces a Raw value.
//
// Deliberately NOT a general-purpose JSON library: no comments, no
// NaN/Inf, no 64-bit-exact integer type (parse stores numbers as
// double; wire ids are bounded well below 2^53), no streaming.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gana::json {

class Value;

/// Order-preserving object representation: members are written in
/// insertion order and duplicate keys are rejected by the parser.
using Member = std::pair<std::string, Value>;

enum class Kind {
  Null,
  Bool,
  Number,
  String,
  Array,
  Object,
  Raw,  ///< writer-only pre-serialized fragment; never produced by parse()
};

class Value {
 public:
  Value() : kind_(Kind::Null) {}
  Value(std::nullptr_t) : kind_(Kind::Null) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  Value(double d) : kind_(Kind::Number), num_(d) {}  // NOLINT(google-explicit-constructor)
  Value(int i) : kind_(Kind::Number), num_(i) {}  // NOLINT(google-explicit-constructor)
  Value(std::int64_t i)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::Number), num_(static_cast<double>(i)) {}
  Value(std::uint64_t u)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::Number), num_(static_cast<double>(u)) {}
  Value(std::string s)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::String), str_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::String), str_(s) {}  // NOLINT(google-explicit-constructor)
  Value(std::vector<Value> a)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::Array), arr_(std::move(a)) {}
  Value(std::vector<Member> o)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::Object), obj_(std::move(o)) {}

  /// Pre-serialized JSON embedded verbatim by dump(). The caller owns
  /// the guarantee that `fragment` is itself valid JSON.
  [[nodiscard]] static Value raw(std::string fragment) {
    Value v;
    v.kind_ = Kind::Raw;
    v.str_ = std::move(fragment);
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  /// Checked accessors: the fallback comes back whenever the kind does
  /// not match, so protocol code reads optional fields in one line.
  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  [[nodiscard]] const std::string& as_string() const {
    static const std::string kEmpty;
    return is_string() ? str_ : kEmpty;
  }
  [[nodiscard]] const std::vector<Value>& as_array() const {
    static const std::vector<Value> kEmpty;
    return is_array() ? arr_ : kEmpty;
  }
  [[nodiscard]] const std::vector<Member>& as_object() const {
    static const std::vector<Member> kEmpty;
    return is_object() ? obj_ : kEmpty;
  }
  /// The raw fragment of a Raw value ("" otherwise).
  [[nodiscard]] const std::string& raw_fragment() const {
    static const std::string kEmpty;
    return kind_ == Kind::Raw ? str_ : kEmpty;
  }

  /// Object member by key, or nullptr (also nullptr on non-objects).
  [[nodiscard]] const Value* get(std::string_view key) const;

  /// Appends a member; object building for the protocol encoders.
  void set(std::string key, Value v);

 private:
  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;          ///< String and Raw payloads
  std::vector<Value> arr_;
  std::vector<Member> obj_;
};

/// Strict RFC 8259 parse of a complete document. Returns nullopt and
/// fills `error` (when non-null) with "offset N: reason" on the first
/// violation: trailing bytes, nesting beyond `max_depth`, duplicate
/// object keys, bad escapes, unescaped control characters, non-finite
/// numbers, or a bare truncation.
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         std::string* error = nullptr,
                                         std::size_t max_depth = 64);

/// Compact single-line serialization (no spaces, insertion-order
/// members). Deterministic: equal Values produce equal bytes.
[[nodiscard]] std::string dump(const Value& v);

/// Escapes `s` into a quoted JSON string literal.
[[nodiscard]] std::string quote(std::string_view s);

}  // namespace gana::json
