// Per-request wall-clock deadlines and cooperative cancellation.
//
// The warm annotation service (serve/server.hpp) promises that one
// runaway request -- an adversarial netlist that explodes in VF2, a
// pathological hierarchy, a fault-injected stall -- degrades *that
// request only*, never the process and never its neighbors. The
// mechanism is a `Deadline`: a wall-clock budget plus an atomic
// cancellation token, installed for the duration of one request via
// `ScopedRequestContext` and consulted at cheap checkpoints inside every
// long-running pipeline stage (parse loop, flatten/preprocess/graph
// boundaries, between GCN layers, every 1024 VF2 states).
//
// A tripped checkpoint throws DiagError(DeadlineExceeded, stage), which
// the existing fault-isolation guards (Annotator::try_annotate,
// BatchRunner::run_isolated, the server worker) convert into a
// per-request Diag. Checkpoints are pure control flow: they never mutate
// pipeline state, so a request that does NOT hit its deadline is
// bit-identical to one annotated with no deadline at all -- the
// invariant the serve soak test pins against the one-shot CLI.
//
// The context travels through a thread_local pointer rather than through
// every stage signature: the worker running a request installs it once,
// and helpers that fan work out to sibling pool threads (the pattern-
// parallel VF2 sweep) re-install the captured context inside each
// subtask. Code running with no context installed -- all existing tests
// and CLIs -- sees every checkpoint as a no-op.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/diag.hpp"

namespace gana {

/// A wall-clock budget plus a cancellation token. Copyable only while
/// unarmed; in practice one Deadline lives per request and is shared by
/// pointer. Thread-safe: expired()/cancel() may race freely.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited: never expires, only cancel() can trip it.
  Deadline() = default;

  /// Expires `seconds` from now; <= 0 means already expired (the
  /// deterministic way to make every checkpoint trip).
  [[nodiscard]] static Deadline after_seconds(double seconds) {
    Deadline d;
    d.limited_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  /// True when a wall-clock budget is armed (cancel() works either way).
  [[nodiscard]] bool limited() const { return limited_; }

  /// True once the budget has elapsed or cancel() was called.
  [[nodiscard]] bool expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return limited_ && Clock::now() >= at_;
  }

  /// Seconds until expiry (0 when expired; +inf when unlimited and not
  /// cancelled). Used by the client/server transport poll loops.
  [[nodiscard]] double remaining_seconds() const;

  /// Trips the deadline immediately from any thread (SIGTERM drain, a
  /// client disconnect). Cooperative: the request stops at its next
  /// checkpoint.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  Deadline(const Deadline& other)
      : limited_(other.limited_),
        at_(other.at_),
        cancelled_(other.cancelled_.load(std::memory_order_relaxed)) {}
  Deadline& operator=(const Deadline& other) {
    limited_ = other.limited_;
    at_ = other.at_;
    cancelled_.store(other.cancelled_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

 private:
  bool limited_ = false;
  Clock::time_point at_{};
  std::atomic<bool> cancelled_{false};
};

/// Everything checkpoint() needs to know about the request the calling
/// thread is working on: its deadline and the key that makes fault-
/// injection decisions deterministic per request (serve uses the request
/// id; the batch CLI uses the slot index).
struct RequestContext {
  const Deadline* deadline = nullptr;  ///< not owned; may be null
  std::uint64_t fault_key = 0;
};

/// The context installed on the calling thread, or nullptr.
[[nodiscard]] const RequestContext* current_request_context();

/// RAII installer of the thread-local request context. Nesting restores
/// the previous context on destruction; passing nullptr (re)installs
/// "no context" (used by pool workers between requests).
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(const RequestContext* context);
  ~ScopedRequestContext();

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  const RequestContext* previous_;
};

/// Throws DiagError(DeadlineExceeded, stage) when the installed
/// deadline has expired; no-op without a context. Cheap enough for
/// per-1024-states / per-256-lines loops (a thread_local read, and a
/// clock read only when a limited deadline is armed).
void check_deadline(Stage stage);

/// Stage-entry checkpoint: check_deadline + one fault-injection site
/// (util/fault_injection.hpp) keyed by (stage, request fault key). Call
/// once per stage entry, not inside hot loops -- an injected delay or
/// error fires every time the site is evaluated.
void checkpoint(Stage stage);

}  // namespace gana
