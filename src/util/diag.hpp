// Structured diagnostics for the annotation pipeline.
//
// Every rejection anywhere between ingest and hierarchy extraction is
// described by a `Diag`: a machine-readable error code, the pipeline
// stage that rejected the input, a human-readable message, the netlist
// source location when one is known, and optional notes (e.g. the
// instantiation chain of a recursive subcircuit). `Result<T>` carries
// either a value or a Diag across stage boundaries, so batch callers can
// isolate per-circuit failures without exceptions crossing threads.
//
// The exception-based API (`spice::NetlistError` and friends) remains:
// exceptions thrown by the pipeline carry a Diag payload, and the
// Result-returning entry points (`parse_netlist_result`,
// `flatten_result`, `Annotator::try_annotate`, `BatchRunner::run_isolated`)
// catch them at the stage boundary.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gana {

/// Pipeline stage that produced a diagnostic (paper §II-B order).
enum class Stage {
  Io,           ///< reading the netlist from disk
  Parse,        ///< SPICE text -> object model
  Validate,     ///< object-model invariants (pin counts, name uniqueness)
  Flatten,      ///< hierarchy expansion
  Preprocess,   ///< parallel/series merge, dummy/decap removal
  GraphBuild,   ///< bipartite graph abstraction
  Features,     ///< 18-dim vertex features
  Gcn,          ///< GCN inference
  Primitives,   ///< VF2 primitive annotation
  Postprocess,  ///< Postprocessing I/II
  Hierarchy,    ///< hierarchy tree + constraints
  Batch,        ///< batch runtime (scheduling, cancellation)
  Serve,        ///< annotation service (framing, admission, transport)
};

/// What went wrong, independent of the free-form message.
enum class DiagCode {
  // Parse-time rejections.
  SyntaxError,       ///< malformed card or directive
  BadValue,          ///< unparsable or non-numeric value token
  UnknownDirective,  ///< unsupported dot-directive
  LimitExceeded,     ///< input-size / line-length / line-count guard hit
  // Object-model rejections (parser or validate).
  DuplicateName,    ///< device/instance/subckt name collision in a scope
  UndefinedSubckt,  ///< instance references a subckt with no definition
  PortMismatch,     ///< instance net count != definition port count
  BadPinCount,      ///< device has the wrong number of pins
  EmptyName,        ///< unnamed device or empty net name
  // Structural hazards.
  RecursiveSubckt,  ///< cyclic .subckt instantiation
  DepthExceeded,    ///< hierarchy nesting beyond the flatten budget
  NotFlat,          ///< a stage requiring a flat netlist saw instances
  // Numeric / resource guards.
  NonFinite,        ///< Inf/NaN device value, parameter, or feature
  BudgetExhausted,  ///< a deterministic resource budget was exhausted
  Truncated,        ///< partial result after a budget hit (warning-level)
  DeadlineExceeded, ///< per-request wall-clock budget expired (or cancelled)
  Overloaded,       ///< admission control shed the request (retryable)
  // Everything else.
  IoError,       ///< file missing/unreadable/unwritable
  FormatError,   ///< binary artifact malformed (magic/version/checksum)
  Skipped,       ///< batch task cancelled by fail-fast before it ran
  WorkerFailed,  ///< shard worker process crashed or exited nonzero
  Internal,      ///< unexpected exception escaping a pipeline stage
};

[[nodiscard]] const char* to_string(Stage s);
[[nodiscard]] const char* to_string(DiagCode c);

/// Inverse of to_string; nullopt for unknown names. The wire protocol
/// (serve/protocol) ships Diags as JSON, so both enums must parse back
/// losslessly -- pinned by the diag_json round-trip test.
[[nodiscard]] std::optional<Stage> stage_from_string(std::string_view name);
[[nodiscard]] std::optional<DiagCode> diag_code_from_string(
    std::string_view name);

/// Every enumerator, in declaration order. Lets the round-trip tests (and
/// the wire protocol's exhaustiveness checks) enumerate without hardcoding
/// the last member.
[[nodiscard]] const std::vector<Stage>& all_stages();
[[nodiscard]] const std::vector<DiagCode>& all_diag_codes();

/// Position in the netlist source text. `line` is 1-based; 0 means the
/// diagnostic is not tied to a specific line (e.g. whole-file limits).
struct SourceLoc {
  std::string file;      ///< source name ("<input>" for in-memory text)
  std::size_t line = 0;  ///< 1-based physical line, 0 = unknown

  [[nodiscard]] bool known() const { return !file.empty() || line != 0; }
  [[nodiscard]] std::string to_string() const;
};

/// One structured diagnostic.
struct Diag {
  DiagCode code = DiagCode::Internal;
  Stage stage = Stage::Parse;
  std::string message;             ///< human-readable, no location prefix
  SourceLoc loc;                   ///< where in the netlist source
  std::vector<std::string> notes;  ///< extra context, one line each

  /// "file:line: [stage/code] message" plus one indented line per note.
  [[nodiscard]] std::string render() const;
};

/// Builds a Diag in one expression.
[[nodiscard]] Diag make_diag(DiagCode code, Stage stage, std::string message,
                             SourceLoc loc = {},
                             std::vector<std::string> notes = {});

/// Exception carrying a structured Diag. The layer-neutral base of
/// `spice::NetlistError`: low-level modules (linalg, graph) that must
/// reject bad input throw this directly, and every pipeline guard that
/// catches `DiagError` therefore recovers the full diagnostic no matter
/// which layer rejected the input.
class DiagError : public std::runtime_error {
 public:
  explicit DiagError(Diag diag)
      : std::runtime_error(diag.render()), diag_(std::move(diag)) {}

  [[nodiscard]] const Diag& diag() const { return diag_; }

 private:
  Diag diag_;
};

/// Either a value or a Diag. Intentionally minimal: no monadic chaining,
/// just checked access, so call sites stay explicit about failure paths.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Diag diag) : diag_(std::move(diag)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T take() {
    assert(ok());
    return std::move(*value_);
  }

  [[nodiscard]] const Diag& diag() const {
    assert(!ok());
    return *diag_;
  }

 private:
  std::optional<T> value_;
  std::optional<Diag> diag_;
};

}  // namespace gana
