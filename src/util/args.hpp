// Minimal command-line flag parsing for the example binaries.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gana {

/// Parses `--key value`, `--key=value`, and bare `--flag` arguments.
/// Positional (non-flag) arguments are collected in order.
///
/// A bare `--key` normally consumes the next non-`--` token as its
/// value. Flags named in `boolean_flags` never do: `--session a.sp`
/// keeps `a.sp` positional when "session" is declared boolean, so
/// value-less switches can precede positional arguments.
class Args {
 public:
  Args(int argc, const char* const* argv,
       std::set<std::string> boolean_flags = {});

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace gana
