#include "util/args.hpp"

#include <cstdlib>

#include "util/strings.hpp"

namespace gana {

Args::Args(int argc, const char* const* argv,
           std::set<std::string> boolean_flags) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (starts_with(a, "--")) {
      std::string body = a.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (boolean_flags.count(body) == 0 && i + 1 < argc &&
                 !starts_with(argv[i + 1], "--")) {
        flags_[body] = argv[++i];
      } else {
        flags_[body] = "true";
      }
    } else {
      positional_.push_back(std::move(a));
    }
  }
}

bool Args::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

int Args::get_int(const std::string& key, int fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::atoi(it->second.c_str());
}

double Args::get_double(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::atof(it->second.c_str());
}

}  // namespace gana
