#include "util/deadline.hpp"

#include <limits>

#include "util/fault_injection.hpp"

namespace gana {

namespace {
thread_local const RequestContext* t_context = nullptr;
}  // namespace

double Deadline::remaining_seconds() const {
  if (cancelled_.load(std::memory_order_relaxed)) return 0.0;
  if (!limited_) return std::numeric_limits<double>::infinity();
  const auto left = at_ - Clock::now();
  if (left <= Clock::duration::zero()) return 0.0;
  return std::chrono::duration<double>(left).count();
}

const RequestContext* current_request_context() { return t_context; }

ScopedRequestContext::ScopedRequestContext(const RequestContext* context)
    : previous_(t_context) {
  t_context = context;
}

ScopedRequestContext::~ScopedRequestContext() { t_context = previous_; }

void check_deadline(Stage stage) {
  const RequestContext* ctx = t_context;
  if (ctx == nullptr || ctx->deadline == nullptr) return;
  if (!ctx->deadline->expired()) return;
  throw DiagError(make_diag(
      DiagCode::DeadlineExceeded, stage,
      std::string("request deadline expired during ") + to_string(stage)));
}

void checkpoint(Stage stage) {
  check_deadline(stage);
  FaultInjector& injector = FaultInjector::instance();
  if (injector.armed()) {
    const RequestContext* ctx = t_context;
    // Sites only fire inside a request context: library startup parses,
    // tests, and benches are never perturbed by an armed injector.
    if (ctx != nullptr) {
      injector.inject(stage, ctx->fault_key);
      // An injected delay may have carried the request past its budget;
      // detect that here instead of waiting for the next stage.
      check_deadline(stage);
    }
  }
}

}  // namespace gana
