// Read-only memory-mapped file with structured error reporting.
//
// The artifact loaders (gcn/serialize, primitives/library_io) map model
// and library files so N shard workers share one page-cache copy of the
// weights instead of each parsing a text checkpoint. The wrapper owns
// the mapping RAII-style; every failure (missing file, permission,
// mmap refusal) comes back as an `IoError` Diag, never UB or errno
// guesswork at the call site.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/diag.hpp"

namespace gana::util {

/// An immutable byte view of a whole file, backed by mmap(PROT_READ).
///
/// Move-only; the mapping is released on destruction. Zero-length files
/// map to an empty view (mmap rejects length 0, so no mapping is made).
/// Loaders that hand out pointers into the mapping must keep the
/// MmapFile alive for as long as those pointers are used -- see
/// `GcnModel::retain_storage`.
class MmapFile {
 public:
  MmapFile() = default;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  /// Maps `path` read-only. IoError Diag on open/stat/map failure.
  [[nodiscard]] static Result<MmapFile> open(const std::string& path);

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

}  // namespace gana::util
