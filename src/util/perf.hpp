// Lightweight performance counters for the inference fast path.
//
// Process-wide relaxed atomics, incremented once per kernel call (never
// per element), so they are cheap enough to stay on in production. The
// batch runtime snapshots them around a run and reports the deltas in
// BatchTimings; bench/gcn_inference uses them to prove the workspace
// path performs zero steady-state heap allocations.
//
// Counters are global, not per-thread: concurrent *independent* batch
// runs in one process would mix their deltas. Within one BatchRunner run
// (the supported concurrency model) sums across workers are exactly what
// the observability layer wants.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace gana {

/// Point-in-time copy of every counter; subtract two snapshots to get
/// the activity of a region.
struct PerfSnapshot {
  std::uint64_t matrix_allocs = 0;       ///< dense buffers that hit the heap
  std::uint64_t matrix_alloc_bytes = 0;  ///< bytes requested by those allocs
  std::uint64_t spmm_calls = 0;          ///< sparse*dense products
  std::uint64_t spmm_flops = 0;          ///< 2*nnz*cols per product
  std::uint64_t matmul_calls = 0;        ///< dense*dense products
  std::uint64_t matmul_flops = 0;        ///< 2*m*n*k per product
  std::uint64_t sample_cache_hits = 0;   ///< SamplePrepCache lookups served
  std::uint64_t sample_cache_misses = 0; ///< lookups that had to compute
  std::uint64_t inference_cache_hits = 0;   ///< InferenceCache lookups served
  std::uint64_t inference_cache_misses = 0; ///< lookups that ran the GCN
  std::uint64_t vf2_states = 0;          ///< VF2 search states explored
  std::uint64_t vf2_sig_rejections = 0;  ///< candidates cut by the signature lookahead
  std::uint64_t vf2_pattern_skips = 0;   ///< patterns cut by the counting filter
  std::uint64_t annotation_cache_hits = 0;    ///< AnnotationCache lookups served
  std::uint64_t annotation_cache_misses = 0;  ///< lookups that ran the matcher
  std::uint64_t cache_evictions = 0;  ///< entries dropped by capacity-bounded
                                      ///< sharded caches (any cache)
  std::uint64_t parse_bytes = 0;       ///< netlist text bytes fed to a parser
  std::uint64_t intern_hits = 0;       ///< SymbolTable lookups of known names
  std::uint64_t intern_misses = 0;     ///< SymbolTable first-time interns
  std::uint64_t frontend_allocs = 0;   ///< interned front-end heap allocations
                                       ///< (arena chunks, table rehashes,
                                       ///< whole-file buffers)
  std::uint64_t incr_regions = 0;      ///< regions seen by session runs
  std::uint64_t incr_region_reuses = 0;     ///< regions fully served by the
                                            ///< session's per-structure caches
  std::uint64_t incr_region_recomputes = 0; ///< regions that ran GCN/VF2 fresh
  std::uint64_t incr_canon_fallbacks = 0;   ///< regions whose canonical-order
                                            ///< search hit the branch budget

  /// Counterwise difference (this - since).
  [[nodiscard]] PerfSnapshot operator-(const PerfSnapshot& since) const;
};

/// Reads every counter (relaxed; exact when no kernel is concurrently
/// running, a consistent-enough view otherwise).
[[nodiscard]] PerfSnapshot perf_snapshot();

namespace perf {

namespace detail {
extern std::atomic<std::uint64_t> matrix_allocs;
extern std::atomic<std::uint64_t> matrix_alloc_bytes;
extern std::atomic<std::uint64_t> spmm_calls;
extern std::atomic<std::uint64_t> spmm_flops;
extern std::atomic<std::uint64_t> matmul_calls;
extern std::atomic<std::uint64_t> matmul_flops;
extern std::atomic<std::uint64_t> sample_cache_hits;
extern std::atomic<std::uint64_t> sample_cache_misses;
extern std::atomic<std::uint64_t> inference_cache_hits;
extern std::atomic<std::uint64_t> inference_cache_misses;
extern std::atomic<std::uint64_t> vf2_states;
extern std::atomic<std::uint64_t> vf2_sig_rejections;
extern std::atomic<std::uint64_t> vf2_pattern_skips;
extern std::atomic<std::uint64_t> annotation_cache_hits;
extern std::atomic<std::uint64_t> annotation_cache_misses;
extern std::atomic<std::uint64_t> cache_evictions;
extern std::atomic<std::uint64_t> parse_bytes;
extern std::atomic<std::uint64_t> intern_hits;
extern std::atomic<std::uint64_t> intern_misses;
extern std::atomic<std::uint64_t> frontend_allocs;
extern std::atomic<std::uint64_t> incr_regions;
extern std::atomic<std::uint64_t> incr_region_reuses;
extern std::atomic<std::uint64_t> incr_region_recomputes;
extern std::atomic<std::uint64_t> incr_canon_fallbacks;
}  // namespace detail

inline void count_matrix_alloc(std::size_t bytes) {
  detail::matrix_allocs.fetch_add(1, std::memory_order_relaxed);
  detail::matrix_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

inline void count_spmm(std::uint64_t flops) {
  detail::spmm_calls.fetch_add(1, std::memory_order_relaxed);
  detail::spmm_flops.fetch_add(flops, std::memory_order_relaxed);
}

inline void count_matmul(std::uint64_t flops) {
  detail::matmul_calls.fetch_add(1, std::memory_order_relaxed);
  detail::matmul_flops.fetch_add(flops, std::memory_order_relaxed);
}

inline void count_sample_cache_hit() {
  detail::sample_cache_hits.fetch_add(1, std::memory_order_relaxed);
}

inline void count_sample_cache_miss() {
  detail::sample_cache_misses.fetch_add(1, std::memory_order_relaxed);
}

inline void count_inference_cache_hit() {
  detail::inference_cache_hits.fetch_add(1, std::memory_order_relaxed);
}

inline void count_inference_cache_miss() {
  detail::inference_cache_misses.fetch_add(1, std::memory_order_relaxed);
}

/// Flushed once per find_subgraph_matches call with locally accumulated
/// totals (never per search state).
inline void count_vf2(std::uint64_t states, std::uint64_t sig_rejections) {
  detail::vf2_states.fetch_add(states, std::memory_order_relaxed);
  detail::vf2_sig_rejections.fetch_add(sig_rejections,
                                       std::memory_order_relaxed);
}

inline void count_vf2_pattern_skips(std::uint64_t n) {
  detail::vf2_pattern_skips.fetch_add(n, std::memory_order_relaxed);
}

inline void count_annotation_cache_hit() {
  detail::annotation_cache_hits.fetch_add(1, std::memory_order_relaxed);
}

inline void count_annotation_cache_miss() {
  detail::annotation_cache_misses.fetch_add(1, std::memory_order_relaxed);
}

inline void count_cache_eviction() {
  detail::cache_evictions.fetch_add(1, std::memory_order_relaxed);
}

inline void count_parse_bytes(std::uint64_t bytes) {
  detail::parse_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

/// Flushed once per intern-heavy region (a parse, a flatten) with locally
/// accumulated totals -- never per lookup.
inline void count_intern(std::uint64_t hits, std::uint64_t misses) {
  detail::intern_hits.fetch_add(hits, std::memory_order_relaxed);
  detail::intern_misses.fetch_add(misses, std::memory_order_relaxed);
}

inline void count_frontend_alloc(std::uint64_t n = 1) {
  detail::frontend_allocs.fetch_add(n, std::memory_order_relaxed);
}

/// Flushed once per session run with the run's region totals (never per
/// region): how many regions the partition produced, how many were fully
/// served from the session's per-structure caches, and how many re-ran
/// GCN + VF2.
inline void count_incremental_regions(std::uint64_t regions,
                                      std::uint64_t reuses,
                                      std::uint64_t recomputes) {
  detail::incr_regions.fetch_add(regions, std::memory_order_relaxed);
  detail::incr_region_reuses.fetch_add(reuses, std::memory_order_relaxed);
  detail::incr_region_recomputes.fetch_add(recomputes,
                                           std::memory_order_relaxed);
}

inline void count_incremental_canon_fallback() {
  detail::incr_canon_fallbacks.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace perf
}  // namespace gana
