// Work-stealing thread pool for the parallel batch runtime.
//
// Design goals, in order: determinism of the *callers* (the pool never
// reorders a computation's arithmetic -- parallel users partition their
// output into disjoint ranges so results are bit-identical to the
// sequential path), nested submission (a task may submit subtasks and
// wait on them without deadlocking, because waiting threads help drain
// the queues), and exception propagation through std::future.
//
// Each worker owns a deque: it pushes/pops its own tasks LIFO (cache
// locality for nested fan-out) and steals FIFO from siblings when idle.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gana {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a callable; the future carries its result or exception.
  /// Safe to call from worker threads (nested submission).
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    push([task]() { (*task)(); });
    return future;
  }

  /// Runs one queued task on the calling thread if any is available.
  bool run_pending_task();

  /// Blocks until `future` is ready, helping to execute queued tasks in
  /// the meantime (prevents deadlock when a worker waits on subtasks).
  /// Rethrows the task's exception, like future::get().
  template <typename T>
  T wait(std::future<T>& future) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!run_pending_task()) std::this_thread::yield();
    }
    return future.get();
  }

  /// True when the calling thread is a worker of *any* ThreadPool. Used
  /// to keep nested data parallelism (e.g. spmm inside a batch task)
  /// from oversubscribing the machine.
  [[nodiscard]] static bool inside_worker();

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void push(std::function<void()> task);
  bool try_pop(std::size_t queue_index, bool steal,
               std::function<void()>& out);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> next_queue_{0};
};

/// Splits [0, n) into contiguous chunks of at most `grain` items and runs
/// `body(begin, end)` for each, using the pool's workers plus the calling
/// thread. Blocks until every chunk finished; rethrows the first chunk
/// exception. Falls back to a single sequential call when `pool` is null,
/// has no parallelism, or the range is one chunk. Chunk boundaries depend
/// only on (n, grain) -- never on the thread count -- so callers that
/// write disjoint ranges get bit-identical results at any parallelism.
template <typename F>
void parallel_for(ThreadPool* pool, std::size_t n, std::size_t grain,
                  F&& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (pool == nullptr || pool->size() <= 1 || n <= grain) {
    body(std::size_t{0}, n);
    return;
  }
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    futures.push_back(pool->submit([&body, begin, end]() { body(begin, end); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      pool->wait(f);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Process-wide pool for data parallelism inside a single pipeline run
/// (row-partitioned spmm, ...). Null until set_compute_threads(n > 1) is
/// called, so the library stays sequential -- and trivially deterministic
/// -- by default.
[[nodiscard]] ThreadPool* compute_pool();

/// (Re)configures the shared compute pool: n <= 1 disables it, 0 is not
/// special-cased here (use explicit hardware_concurrency if desired).
/// Not thread-safe against concurrent compute_pool() users; call during
/// startup or between runs.
void set_compute_threads(std::size_t n);

/// Current compute-pool width (1 when disabled).
[[nodiscard]] std::size_t compute_threads();

}  // namespace gana
