#include "util/diag.hpp"

namespace gana {

const char* to_string(Stage s) {
  switch (s) {
    case Stage::Io: return "io";
    case Stage::Parse: return "parse";
    case Stage::Validate: return "validate";
    case Stage::Flatten: return "flatten";
    case Stage::Preprocess: return "preprocess";
    case Stage::GraphBuild: return "graph";
    case Stage::Features: return "features";
    case Stage::Gcn: return "gcn";
    case Stage::Primitives: return "primitives";
    case Stage::Postprocess: return "postprocess";
    case Stage::Hierarchy: return "hierarchy";
    case Stage::Batch: return "batch";
    case Stage::Serve: return "serve";
  }
  return "?";
}

const char* to_string(DiagCode c) {
  switch (c) {
    case DiagCode::SyntaxError: return "syntax-error";
    case DiagCode::BadValue: return "bad-value";
    case DiagCode::UnknownDirective: return "unknown-directive";
    case DiagCode::LimitExceeded: return "limit-exceeded";
    case DiagCode::DuplicateName: return "duplicate-name";
    case DiagCode::UndefinedSubckt: return "undefined-subckt";
    case DiagCode::PortMismatch: return "port-mismatch";
    case DiagCode::BadPinCount: return "bad-pin-count";
    case DiagCode::EmptyName: return "empty-name";
    case DiagCode::RecursiveSubckt: return "recursive-subckt";
    case DiagCode::DepthExceeded: return "depth-exceeded";
    case DiagCode::NotFlat: return "not-flat";
    case DiagCode::NonFinite: return "non-finite";
    case DiagCode::BudgetExhausted: return "budget-exhausted";
    case DiagCode::Truncated: return "truncated";
    case DiagCode::DeadlineExceeded: return "deadline-exceeded";
    case DiagCode::Overloaded: return "overloaded";
    case DiagCode::IoError: return "io-error";
    case DiagCode::FormatError: return "format-error";
    case DiagCode::Skipped: return "skipped";
    case DiagCode::WorkerFailed: return "worker-failed";
    case DiagCode::Internal: return "internal";
  }
  return "?";
}

const std::vector<Stage>& all_stages() {
  static const std::vector<Stage> stages = {
      Stage::Io,         Stage::Parse,    Stage::Validate,
      Stage::Flatten,    Stage::Preprocess, Stage::GraphBuild,
      Stage::Features,   Stage::Gcn,      Stage::Primitives,
      Stage::Postprocess, Stage::Hierarchy, Stage::Batch,
      Stage::Serve,
  };
  return stages;
}

const std::vector<DiagCode>& all_diag_codes() {
  static const std::vector<DiagCode> codes = {
      DiagCode::SyntaxError,     DiagCode::BadValue,
      DiagCode::UnknownDirective, DiagCode::LimitExceeded,
      DiagCode::DuplicateName,   DiagCode::UndefinedSubckt,
      DiagCode::PortMismatch,    DiagCode::BadPinCount,
      DiagCode::EmptyName,       DiagCode::RecursiveSubckt,
      DiagCode::DepthExceeded,   DiagCode::NotFlat,
      DiagCode::NonFinite,       DiagCode::BudgetExhausted,
      DiagCode::Truncated,       DiagCode::DeadlineExceeded,
      DiagCode::Overloaded,      DiagCode::IoError,
      DiagCode::FormatError,     DiagCode::Skipped,
      DiagCode::WorkerFailed,    DiagCode::Internal,
  };
  return codes;
}

std::optional<Stage> stage_from_string(std::string_view name) {
  for (Stage s : all_stages()) {
    if (name == to_string(s)) return s;
  }
  return std::nullopt;
}

std::optional<DiagCode> diag_code_from_string(std::string_view name) {
  for (DiagCode c : all_diag_codes()) {
    if (name == to_string(c)) return c;
  }
  return std::nullopt;
}

std::string SourceLoc::to_string() const {
  if (!known()) return {};
  std::string out = file.empty() ? std::string("<input>") : file;
  if (line != 0) {
    out += ":";
    out += std::to_string(line);
  }
  return out;
}

std::string Diag::render() const {
  std::string out;
  if (loc.known()) {
    out += loc.to_string();
    out += ": ";
  }
  out += "[";
  out += to_string(stage);
  out += "/";
  out += to_string(code);
  out += "] ";
  out += message;
  for (const auto& note : notes) {
    out += "\n  note: ";
    out += note;
  }
  return out;
}

Diag make_diag(DiagCode code, Stage stage, std::string message, SourceLoc loc,
               std::vector<std::string> notes) {
  Diag d;
  d.code = code;
  d.stage = stage;
  d.message = std::move(message);
  d.loc = std::move(loc);
  d.notes = std::move(notes);
  return d;
}

}  // namespace gana
