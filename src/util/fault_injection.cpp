#include "util/fault_injection.hpp"

#include <chrono>
#include <new>
#include <thread>

namespace gana {

namespace {

/// splitmix64 finalizer: full-avalanche mix of one 64-bit word.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

static_assert(static_cast<std::size_t>(Stage::Serve) < 16,
              "grow FaultInjector::stage_plans_ with the Stage enum");

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(std::uint64_t seed, const FaultPlan& plan) {
  seed_ = seed;
  default_plan_ = plan;
  for (bool& set : stage_plan_set_) set = false;
  injected_allocs_.store(0, std::memory_order_relaxed);
  injected_errors_.store(0, std::memory_order_relaxed);
  injected_delays_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::set_stage_plan(Stage stage, const FaultPlan& plan) {
  const auto i = static_cast<std::size_t>(stage);
  stage_plans_[i] = plan;
  stage_plan_set_[i] = true;
}

void FaultInjector::disarm() {
  armed_.store(false, std::memory_order_relaxed);
  default_plan_ = {};
  for (bool& set : stage_plan_set_) set = false;
}

const FaultPlan& FaultInjector::plan_for(Stage stage) const {
  const auto i = static_cast<std::size_t>(stage);
  return stage_plan_set_[i] ? stage_plans_[i] : default_plan_;
}

double FaultInjector::draw(Stage stage, std::uint64_t key,
                           std::uint64_t salt) const {
  std::uint64_t h = mix64(seed_ ^ mix64(static_cast<std::uint64_t>(stage)));
  h = mix64(h ^ key);
  h = mix64(h ^ salt);
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void FaultInjector::inject(Stage stage, std::uint64_t key) {
  if (!armed()) return;
  const FaultPlan& plan = plan_for(stage);
  if (plan.empty()) return;
  // Delay first: a slow-then-failing site exercises both the deadline
  // path and the error path in one request.
  if (plan.stage_delay > 0.0 && draw(stage, key, 3) < plan.stage_delay) {
    injected_delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(plan.delay_seconds));
  }
  if (plan.alloc_failure > 0.0 && draw(stage, key, 1) < plan.alloc_failure) {
    injected_allocs_.fetch_add(1, std::memory_order_relaxed);
    throw std::bad_alloc();
  }
  if (plan.stage_error > 0.0 && draw(stage, key, 2) < plan.stage_error) {
    injected_errors_.fetch_add(1, std::memory_order_relaxed);
    throw DiagError(make_diag(
        DiagCode::Internal, stage,
        std::string("injected fault at stage ") + to_string(stage)));
  }
}

bool FaultInjector::would_fail(Stage stage, std::uint64_t key) const {
  if (!armed()) return false;
  const FaultPlan& plan = plan_for(stage);
  if (plan.alloc_failure > 0.0 && draw(stage, key, 1) < plan.alloc_failure) {
    return true;
  }
  return plan.stage_error > 0.0 && draw(stage, key, 2) < plan.stage_error;
}

FaultStats FaultInjector::stats() const {
  FaultStats out;
  out.injected_allocs = injected_allocs_.load(std::memory_order_relaxed);
  out.injected_errors = injected_errors_.load(std::memory_order_relaxed);
  out.injected_delays = injected_delays_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace gana
