#include "util/artifact.hpp"

#include <cstdio>
#include <set>

namespace gana::util {

namespace {

Diag format_diag(const std::string& file, std::string message) {
  Diag d = make_diag(DiagCode::FormatError, Stage::Io, std::move(message));
  d.loc.file = file;
  return d;
}

Diag io_diag(const std::string& file, std::string message) {
  Diag d = make_diag(DiagCode::IoError, Stage::Io, std::move(message));
  d.loc.file = file;
  return d;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

}  // namespace

std::uint64_t artifact_checksum(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool looks_like_artifact(const std::uint8_t* data, std::size_t size) {
  return size >= sizeof kArtifactMagic &&
         std::memcmp(data, kArtifactMagic, sizeof kArtifactMagic) == 0;
}

bool file_looks_like_artifact(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::uint8_t head[sizeof kArtifactMagic] = {};
  const std::size_t got = std::fread(head, 1, sizeof head, f);
  std::fclose(f);
  return looks_like_artifact(head, got);
}

void ArtifactWriter::add_section(std::string name,
                                 std::vector<std::uint8_t> bytes) {
  sections_.emplace_back(std::move(name), std::move(bytes));
}

Result<bool> ArtifactWriter::write(const std::string& path, ArtifactKind kind,
                                   std::uint64_t fingerprint) const {
  std::set<std::string> seen;
  for (const auto& [name, bytes] : sections_) {
    (void)bytes;
    if (name.empty() || name.size() >= kArtifactSectionNameBytes) {
      return format_diag(path, "bad artifact section name '" + name + "'");
    }
    if (!seen.insert(name).second) {
      return format_diag(path, "duplicate artifact section '" + name + "'");
    }
  }

  // Layout: header, table, then payloads each on a 64-byte boundary.
  const std::size_t table_bytes =
      sections_.size() * kArtifactSectionEntryBytes;
  std::size_t cursor = kArtifactHeaderBytes + table_bytes;
  std::vector<std::size_t> offsets;
  offsets.reserve(sections_.size());
  for (const auto& [name, bytes] : sections_) {
    (void)name;
    cursor = align_up(cursor, kArtifactAlign);
    offsets.push_back(cursor);
    cursor += bytes.size();
  }
  const std::size_t file_bytes = cursor;

  std::vector<std::uint8_t> body;  // everything after the header
  body.reserve(file_bytes - kArtifactHeaderBytes);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    std::uint8_t name_field[kArtifactSectionNameBytes] = {};
    std::memcpy(name_field, sections_[i].first.data(),
                sections_[i].first.size());
    body.insert(body.end(), name_field, name_field + sizeof name_field);
    put_u64(body, offsets[i]);
    put_u64(body, sections_[i].second.size());
  }
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    body.resize(offsets[i] - kArtifactHeaderBytes, 0);
    body.insert(body.end(), sections_[i].second.begin(),
                sections_[i].second.end());
  }

  std::vector<std::uint8_t> header;
  header.reserve(kArtifactHeaderBytes);
  header.insert(header.end(), kArtifactMagic,
                kArtifactMagic + sizeof kArtifactMagic);
  put_u32(header, kArtifactVersion);
  put_u32(header, static_cast<std::uint32_t>(kind));
  put_u64(header, fingerprint);
  put_u64(header, file_bytes);
  put_u64(header, artifact_checksum(body.data(), body.size()));
  put_u32(header, static_cast<std::uint32_t>(sections_.size()));
  put_u32(header, 0);  // reserved

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return io_diag(path, "cannot open artifact for write");
  bool ok = std::fwrite(header.data(), 1, header.size(), f) == header.size();
  ok = ok && (body.empty() ||
              std::fwrite(body.data(), 1, body.size(), f) == body.size());
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return io_diag(path, "short write while writing artifact");
  return true;
}

Result<ArtifactReader> ArtifactReader::open(const std::string& path,
                                            ArtifactKind kind) {
  auto mapped = MmapFile::open(path);
  if (!mapped.ok()) return mapped.diag();
  auto map = std::make_shared<const MmapFile>(mapped.take());
  return validate(map->data(), map->size(), kind, path, map);
}

Result<ArtifactReader> ArtifactReader::from_bytes(const std::uint8_t* data,
                                                  std::size_t size,
                                                  ArtifactKind kind,
                                                  std::string name) {
  return validate(data, size, kind, std::move(name), nullptr);
}

Result<ArtifactReader> ArtifactReader::validate(
    const std::uint8_t* data, std::size_t size, ArtifactKind kind,
    std::string name, std::shared_ptr<const MmapFile> map) {
  if (size < kArtifactHeaderBytes) {
    return format_diag(name, "truncated artifact header (" +
                                 std::to_string(size) + " of " +
                                 std::to_string(kArtifactHeaderBytes) +
                                 " bytes)");
  }
  if (std::memcmp(data, kArtifactMagic, sizeof kArtifactMagic) != 0) {
    return format_diag(name, "not a gana artifact (bad magic)");
  }
  const std::uint32_t version = get_u32(data + 8);
  if (version != kArtifactVersion) {
    return format_diag(name, "unsupported artifact format version " +
                                 std::to_string(version) + " (expected " +
                                 std::to_string(kArtifactVersion) + ")");
  }
  const std::uint32_t file_kind = get_u32(data + 12);
  if (file_kind != static_cast<std::uint32_t>(kind)) {
    return format_diag(
        name, "artifact kind mismatch (file has " +
                  std::to_string(file_kind) + ", loader expected " +
                  std::to_string(static_cast<std::uint32_t>(kind)) + ")");
  }
  const std::uint64_t fingerprint = get_u64(data + 16);
  const std::uint64_t file_bytes = get_u64(data + 24);
  const std::uint64_t checksum = get_u64(data + 32);
  const std::uint32_t section_count = get_u32(data + 40);
  if (file_bytes != size) {
    return format_diag(name, "artifact size mismatch (header claims " +
                                 std::to_string(file_bytes) + " bytes, file has " +
                                 std::to_string(size) + ")");
  }
  if (section_count > kArtifactMaxSections) {
    return format_diag(name, "oversized artifact section table (" +
                                 std::to_string(section_count) + " sections, max " +
                                 std::to_string(kArtifactMaxSections) + ")");
  }
  const std::uint64_t table_end =
      kArtifactHeaderBytes +
      std::uint64_t{section_count} * kArtifactSectionEntryBytes;
  if (table_end > size) {
    return format_diag(name, "artifact section table exceeds file size");
  }
  const std::uint64_t computed = artifact_checksum(
      data + kArtifactHeaderBytes, size - kArtifactHeaderBytes);
  if (computed != checksum) {
    return format_diag(name, "artifact checksum mismatch (corrupt file)");
  }

  ArtifactReader reader;
  reader.map_ = std::move(map);
  reader.name_ = std::move(name);
  reader.fingerprint_ = fingerprint;
  std::set<std::string> seen;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint8_t* entry =
        data + kArtifactHeaderBytes + i * kArtifactSectionEntryBytes;
    const char* raw_name = reinterpret_cast<const char*>(entry);
    std::size_t name_len = 0;
    while (name_len < kArtifactSectionNameBytes && raw_name[name_len] != 0) {
      ++name_len;
    }
    ArtifactSection section;
    section.name.assign(raw_name, name_len);
    const std::uint64_t offset = get_u64(entry + 16);
    section.size = get_u64(entry + 24);
    if (section.name.empty() || name_len >= kArtifactSectionNameBytes) {
      return format_diag(reader.name_,
                         "bad artifact section name in table entry " +
                             std::to_string(i));
    }
    if (!seen.insert(section.name).second) {
      return format_diag(reader.name_, "duplicate artifact section '" +
                                           section.name + "'");
    }
    if (offset < table_end || offset % kArtifactAlign != 0 ||
        offset > size || section.size > size - offset) {
      return format_diag(reader.name_, "artifact section '" + section.name +
                                           "' out of range");
    }
    section.data = data + offset;
    reader.sections_.push_back(std::move(section));
  }
  return reader;
}

const ArtifactSection* ArtifactReader::section(std::string_view name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Result<ArtifactSection> ArtifactReader::require(std::string_view name) const {
  const ArtifactSection* s = section(name);
  if (s == nullptr) {
    return format_diag(name_, "artifact missing required section '" +
                                  std::string(name) + "'");
  }
  return *s;
}

}  // namespace gana::util
