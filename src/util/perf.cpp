#include "util/perf.hpp"

namespace gana {

namespace perf::detail {
std::atomic<std::uint64_t> matrix_allocs{0};
std::atomic<std::uint64_t> matrix_alloc_bytes{0};
std::atomic<std::uint64_t> spmm_calls{0};
std::atomic<std::uint64_t> spmm_flops{0};
std::atomic<std::uint64_t> matmul_calls{0};
std::atomic<std::uint64_t> matmul_flops{0};
std::atomic<std::uint64_t> sample_cache_hits{0};
std::atomic<std::uint64_t> sample_cache_misses{0};
std::atomic<std::uint64_t> inference_cache_hits{0};
std::atomic<std::uint64_t> inference_cache_misses{0};
std::atomic<std::uint64_t> vf2_states{0};
std::atomic<std::uint64_t> vf2_sig_rejections{0};
std::atomic<std::uint64_t> vf2_pattern_skips{0};
std::atomic<std::uint64_t> annotation_cache_hits{0};
std::atomic<std::uint64_t> annotation_cache_misses{0};
std::atomic<std::uint64_t> cache_evictions{0};
std::atomic<std::uint64_t> parse_bytes{0};
std::atomic<std::uint64_t> intern_hits{0};
std::atomic<std::uint64_t> intern_misses{0};
std::atomic<std::uint64_t> frontend_allocs{0};
std::atomic<std::uint64_t> incr_regions{0};
std::atomic<std::uint64_t> incr_region_reuses{0};
std::atomic<std::uint64_t> incr_region_recomputes{0};
std::atomic<std::uint64_t> incr_canon_fallbacks{0};
}  // namespace perf::detail

PerfSnapshot PerfSnapshot::operator-(const PerfSnapshot& since) const {
  PerfSnapshot d;
  d.matrix_allocs = matrix_allocs - since.matrix_allocs;
  d.matrix_alloc_bytes = matrix_alloc_bytes - since.matrix_alloc_bytes;
  d.spmm_calls = spmm_calls - since.spmm_calls;
  d.spmm_flops = spmm_flops - since.spmm_flops;
  d.matmul_calls = matmul_calls - since.matmul_calls;
  d.matmul_flops = matmul_flops - since.matmul_flops;
  d.sample_cache_hits = sample_cache_hits - since.sample_cache_hits;
  d.sample_cache_misses = sample_cache_misses - since.sample_cache_misses;
  d.inference_cache_hits = inference_cache_hits - since.inference_cache_hits;
  d.inference_cache_misses =
      inference_cache_misses - since.inference_cache_misses;
  d.vf2_states = vf2_states - since.vf2_states;
  d.vf2_sig_rejections = vf2_sig_rejections - since.vf2_sig_rejections;
  d.vf2_pattern_skips = vf2_pattern_skips - since.vf2_pattern_skips;
  d.annotation_cache_hits = annotation_cache_hits - since.annotation_cache_hits;
  d.annotation_cache_misses =
      annotation_cache_misses - since.annotation_cache_misses;
  d.cache_evictions = cache_evictions - since.cache_evictions;
  d.parse_bytes = parse_bytes - since.parse_bytes;
  d.intern_hits = intern_hits - since.intern_hits;
  d.intern_misses = intern_misses - since.intern_misses;
  d.frontend_allocs = frontend_allocs - since.frontend_allocs;
  d.incr_regions = incr_regions - since.incr_regions;
  d.incr_region_reuses = incr_region_reuses - since.incr_region_reuses;
  d.incr_region_recomputes =
      incr_region_recomputes - since.incr_region_recomputes;
  d.incr_canon_fallbacks = incr_canon_fallbacks - since.incr_canon_fallbacks;
  return d;
}

PerfSnapshot perf_snapshot() {
  namespace d = perf::detail;
  PerfSnapshot s;
  s.matrix_allocs = d::matrix_allocs.load(std::memory_order_relaxed);
  s.matrix_alloc_bytes = d::matrix_alloc_bytes.load(std::memory_order_relaxed);
  s.spmm_calls = d::spmm_calls.load(std::memory_order_relaxed);
  s.spmm_flops = d::spmm_flops.load(std::memory_order_relaxed);
  s.matmul_calls = d::matmul_calls.load(std::memory_order_relaxed);
  s.matmul_flops = d::matmul_flops.load(std::memory_order_relaxed);
  s.sample_cache_hits = d::sample_cache_hits.load(std::memory_order_relaxed);
  s.sample_cache_misses =
      d::sample_cache_misses.load(std::memory_order_relaxed);
  s.inference_cache_hits =
      d::inference_cache_hits.load(std::memory_order_relaxed);
  s.inference_cache_misses =
      d::inference_cache_misses.load(std::memory_order_relaxed);
  s.vf2_states = d::vf2_states.load(std::memory_order_relaxed);
  s.vf2_sig_rejections =
      d::vf2_sig_rejections.load(std::memory_order_relaxed);
  s.vf2_pattern_skips = d::vf2_pattern_skips.load(std::memory_order_relaxed);
  s.annotation_cache_hits =
      d::annotation_cache_hits.load(std::memory_order_relaxed);
  s.annotation_cache_misses =
      d::annotation_cache_misses.load(std::memory_order_relaxed);
  s.cache_evictions = d::cache_evictions.load(std::memory_order_relaxed);
  s.parse_bytes = d::parse_bytes.load(std::memory_order_relaxed);
  s.intern_hits = d::intern_hits.load(std::memory_order_relaxed);
  s.intern_misses = d::intern_misses.load(std::memory_order_relaxed);
  s.frontend_allocs = d::frontend_allocs.load(std::memory_order_relaxed);
  s.incr_regions = d::incr_regions.load(std::memory_order_relaxed);
  s.incr_region_reuses =
      d::incr_region_reuses.load(std::memory_order_relaxed);
  s.incr_region_recomputes =
      d::incr_region_recomputes.load(std::memory_order_relaxed);
  s.incr_canon_fallbacks =
      d::incr_canon_fallbacks.load(std::memory_order_relaxed);
  return s;
}

}  // namespace gana
