// Small string utilities used throughout the SPICE front end.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gana {

/// Lower-cases ASCII characters; SPICE is case-insensitive.
std::string to_lower(std::string_view s);

/// Upper-cases ASCII characters.
std::string to_upper(std::string_view s);

/// Strips leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Splits on runs of whitespace; no empty tokens are produced.
std::vector<std::string> split_ws(std::string_view s);

/// Splits on a single-character delimiter; empty fields are kept.
std::vector<std::string> split(std::string_view s, char delim);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace gana
