#include "util/thread_pool.hpp"

namespace gana {
namespace {

/// Worker identity of the calling thread: index into its pool's queues,
/// or -1 on non-pool threads. Thread-local so nested pools compose.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i]() { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Fence against workers that checked stop_ but not yet gone to sleep.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::inside_worker() { return tl_pool != nullptr; }

void ThreadPool::push(std::function<void()> task) {
  std::size_t target;
  if (tl_pool == this) {
    target = tl_worker_index;  // local push: LIFO for the owning worker
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t queue_index, bool steal,
                         std::function<void()>& out) {
  Queue& q = *queues_[queue_index];
  std::lock_guard<std::mutex> lock(q.mutex);
  if (q.tasks.empty()) return false;
  if (steal) {
    out = std::move(q.tasks.front());
    q.tasks.pop_front();
  } else {
    out = std::move(q.tasks.back());
    q.tasks.pop_back();
  }
  return true;
}

bool ThreadPool::run_pending_task() {
  std::function<void()> task;
  const std::size_t k = queues_.size();
  const std::size_t home = (tl_pool == this) ? tl_worker_index : 0;
  // Own queue first (LIFO), then steal round-robin (FIFO).
  if (try_pop(home, /*steal=*/tl_pool != this, task)) {
    task();
    return true;
  }
  for (std::size_t d = 1; d < k; ++d) {
    if (try_pop((home + d) % k, /*steal=*/true, task)) {
      task();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_worker_index = index;
  while (true) {
    if (run_pending_task()) continue;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stop_.load(std::memory_order_acquire)) break;
    // Re-check for work racing with the notify, then sleep with a timeout
    // as a safety net against lost wakeups.
    sleep_cv_.wait_for(lock, std::chrono::milliseconds(10));
  }
  tl_pool = nullptr;
}

namespace {

std::unique_ptr<ThreadPool>& compute_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool* compute_pool() { return compute_pool_slot().get(); }

void set_compute_threads(std::size_t n) {
  auto& slot = compute_pool_slot();
  if (n <= 1) {
    slot.reset();
    return;
  }
  if (slot && slot->size() == n) return;
  slot.reset();  // join the old pool before spawning the new one
  slot = std::make_unique<ThreadPool>(n);
}

std::size_t compute_threads() {
  const ThreadPool* pool = compute_pool();
  return pool == nullptr ? 1 : pool->size();
}

}  // namespace gana
