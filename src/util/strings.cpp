#include "util/strings.hpp"

#include <cctype>

namespace gana {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace gana
