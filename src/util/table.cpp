#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace gana {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += " | ";
      out += row[c];
      out.append(width[c] - row[c].size(), ' ');
    }
    out += '\n';
  };
  std::string out;
  emit_row(header_, out);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) out += "-+-";
    out.append(width[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace gana
