// Deterministic, seeded, site-keyed fault injection for robustness tests.
//
// The serve soak test has to *prove* the daemon survives a hostile mix:
// N% of requests failing mid-stage, stalling, or exhausting allocations,
// while the healthy remainder stays bit-identical to the one-shot CLI.
// Random fault injection cannot prove that -- a flaky run is
// indistinguishable from a flaky server. This injector is a pure
// function instead: whether a fault fires at a site is decided by
// hash(seed, site stage, request fault key, fault kind), so the same
// soak configuration always injects the same faults into the same
// requests, and a reproduction run replays the exact failure pattern.
//
// Sites are the checkpoint() calls at pipeline stage entries
// (util/deadline.hpp): parse, flatten, preprocess, graph build,
// features, GCN, primitives, postprocess, hierarchy. Three fault kinds:
//  * alloc  -- throws std::bad_alloc (the guards map it to
//              DiagCode::BudgetExhausted, like a real OOM);
//  * error  -- throws DiagError(Internal, stage, "injected fault"), the
//              shape of an unexpected stage bug;
//  * delay  -- sleeps `delay_seconds` (drives deadline expiry and
//              admission-control backpressure without burning CPU).
// The injector is process-global and disarmed by default; arming it is
// a test-harness action (the soak test, fault_injection_test), never
// part of production configuration. When disarmed, the only cost at a
// site is one relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/diag.hpp"

namespace gana {

/// Per-site fault rates in [0, 1]; 0 disables a kind. Rates are
/// evaluated independently (a request may draw both a delay and an
/// error; the delay fires first, see inject()).
struct FaultPlan {
  double alloc_failure = 0.0;  ///< P(throw std::bad_alloc)
  double stage_error = 0.0;    ///< P(throw DiagError(Internal))
  double stage_delay = 0.0;    ///< P(sleep delay_seconds)
  double delay_seconds = 0.0;  ///< stall length for stage_delay draws

  [[nodiscard]] bool empty() const {
    return alloc_failure <= 0.0 && stage_error <= 0.0 && stage_delay <= 0.0;
  }
};

/// What the injector has done so far (relaxed totals; exact when read
/// quiescently, which is how the soak test reads them).
struct FaultStats {
  std::uint64_t injected_allocs = 0;
  std::uint64_t injected_errors = 0;
  std::uint64_t injected_delays = 0;
};

class FaultInjector {
 public:
  /// The process-wide injector consulted by checkpoint().
  [[nodiscard]] static FaultInjector& instance();

  /// Arms the injector: `plan` applies at every site unless a per-stage
  /// plan overrides it. Not thread-safe against concurrent inject()
  /// calls -- (re)configure before traffic, like the kernel toggles.
  void arm(std::uint64_t seed, const FaultPlan& plan = {});

  /// Overrides the plan at one stage's sites (e.g. delays only in GCN).
  void set_stage_plan(Stage stage, const FaultPlan& plan);

  /// Disarms and clears every plan and counter.
  void disarm();

  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Evaluates the site (stage, key): may sleep, then may throw. The
  /// decision depends only on (seed, stage, key, kind) -- never on
  /// timing, thread, or call count -- so a request that draws no fault
  /// is untouched and bit-identity is preserved.
  void inject(Stage stage, std::uint64_t key);

  /// True when inject(stage, key) would throw (alloc or error). Lets
  /// the soak harness precompute each request's expected outcome.
  [[nodiscard]] bool would_fail(Stage stage, std::uint64_t key) const;

  [[nodiscard]] FaultStats stats() const;

 private:
  FaultInjector() = default;

  [[nodiscard]] const FaultPlan& plan_for(Stage stage) const;
  /// Uniform [0,1) draw for (stage, key, kind salt); pure.
  [[nodiscard]] double draw(Stage stage, std::uint64_t key,
                            std::uint64_t salt) const;

  std::atomic<bool> armed_{false};
  std::uint64_t seed_ = 0;
  FaultPlan default_plan_;
  /// Indexed by static_cast<size_t>(Stage); all_stages().size() entries.
  FaultPlan stage_plans_[16];
  bool stage_plan_set_[16] = {};
  std::atomic<std::uint64_t> injected_allocs_{0};
  std::atomic<std::uint64_t> injected_errors_{0};
  std::atomic<std::uint64_t> injected_delays_{0};
};

}  // namespace gana
