// Deterministic random number generation for reproducible experiments.
//
// All stochastic parts of the library (dataset generation, weight
// initialization, dropout, data shuffling) draw from an explicitly seeded
// `Rng` so every benchmark and test is bit-reproducible across runs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace gana {

/// Small, fast, seedable PRNG (xoshiro256** with a splitmix64 seeder).
///
/// Not cryptographic; statistical quality is more than adequate for
/// simulation and ML-initialization workloads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = next();
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(next_u64() % n);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int range(int lo, int hi) {
    return lo + static_cast<int>(index(static_cast<std::size_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller.
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal with mean mu and stddev sigma.
  double normal(double mu, double sigma) { return mu + sigma * normal(); }

  /// Uniformly pick an element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace gana
