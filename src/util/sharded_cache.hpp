// Lock-sharded concurrent map for the structural-hash caches.
//
// SamplePrepCache and AnnotationCache used to serialize every worker on
// one mutex; on a hot batch (64 copies of one cell, 8 jobs) that lock is
// taken twice per circuit per cache and every acquisition convoys the
// pool. Sharding by key hash bounds contention at 1/kShardCount of the
// old rate while keeping the exact same semantics: probes and inserts
// for one key always land on one shard, so first-insert-wins and
// hit/miss accounting are untouched. The shard count is a power of two
// and each shard is alignas(64) so neighboring shard locks never share a
// cache line (no false sharing between workers on different shards).
//
// Keys are canonical structural hashes (graph::structural_hash) and thus
// already well mixed; the shard index folds the high half in anyway so a
// hypothetical low-entropy low word cannot collapse every key onto one
// shard.
//
// stats() and clear() lock shards one at a time -- stats() is therefore
// not an atomic snapshot across shards. Callers (benchmarks, tests) read
// it quiescently, and per-shard counts are individually exact.
//
// Capacity bounding (graceful degradation for long-lived processes such
// as gana-serve): a per-shard capacity turns each shard into a FIFO --
// inserting into a full shard evicts that shard's oldest *inserted* key
// first. FIFO rather than LRU keeps probes cheap (no bookkeeping on
// find) and keeps which-key-is-evicted a pure function of insertion
// order, never of probe timing. Eviction changes only *when* a value
// must be recomputed, never what is computed: all cached values here are
// pure functions of their key, so a bounded cache stays bit-identical to
// an unbounded one (pinned by the cache-on/off determinism tests).
// Capacity 0 means unbounded (the historical behavior and the default).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "util/perf.hpp"

namespace gana {

/// Lock shards per cache. The single source of truth: ShardedCache's
/// shard array, its index mask, and per_shard_capacity_for's capacity
/// split all derive from this constant, so they cannot drift apart.
/// Must be a power of two (the shard index is a mask, not a modulo).
inline constexpr std::size_t kCacheShardCount = 16;
static_assert((kCacheShardCount & (kCacheShardCount - 1)) == 0,
              "shard index uses a power-of-two mask");

template <typename V>
class ShardedCache {
 public:
  static constexpr std::size_t kShardCount = kCacheShardCount;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;  ///< entries dropped by capacity bounding
    std::size_t entries = 0;
  };

  /// `per_shard_capacity` caps each shard's entry count (0 = unbounded).
  /// Total cache capacity is kShardCount * per_shard_capacity, reached
  /// exactly only when keys spread evenly across shards.
  explicit ShardedCache(std::size_t per_shard_capacity = 0)
      : per_shard_capacity_(per_shard_capacity) {}

  /// Cached value for `key`, or nullptr; counts a hit/miss on the shard.
  [[nodiscard]] std::shared_ptr<const V> find(std::uint64_t key) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.misses;
      return nullptr;
    }
    ++s.hits;
    return it->second;
  }

  /// Inserts `value` for `key`; returns the winning entry (the existing
  /// one if another worker inserted first). When the shard is at
  /// capacity, the shard's oldest-inserted key is evicted to make room.
  std::shared_ptr<const V> insert(std::uint64_t key,
                                  std::shared_ptr<const V> value) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto [it, inserted] = s.map.try_emplace(key, std::move(value));
    if (inserted && per_shard_capacity_ > 0) {
      // Invariant: fifo holds exactly the shard's keys in insert order
      // (every insert pushes, the only erase pops the front), so the
      // front is never the just-inserted key while size > capacity >= 1,
      // and erase never invalidates `it` (it points at a different key).
      s.fifo.push_back(key);
      while (s.map.size() > per_shard_capacity_) {
        const std::uint64_t oldest = s.fifo.front();
        s.fifo.pop_front();
        s.map.erase(oldest);
        ++s.evictions;
        perf::count_cache_eviction();
      }
    }
    return it->second;
  }

  [[nodiscard]] Stats stats() const {
    Stats out;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      out.hits += s.hits;
      out.misses += s.misses;
      out.evictions += s.evictions;
      out.entries += s.map.size();
    }
    return out;
  }

  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      s.map.clear();
      s.fifo.clear();
      s.hits = 0;
      s.misses = 0;
      s.evictions = 0;
    }
  }

  /// Per-shard entry cap this cache was constructed with (0 = unbounded).
  [[nodiscard]] std::size_t per_shard_capacity() const {
    return per_shard_capacity_;
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::shared_ptr<const V>> map;
    /// Insert-order queue driving FIFO eviction; empty when unbounded.
    std::deque<std::uint64_t> fifo;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  static std::size_t shard_index(std::uint64_t key) {
    return static_cast<std::size_t>((key ^ (key >> 32)) & (kShardCount - 1));
  }
  Shard& shard(std::uint64_t key) { return shards_[shard_index(key)]; }

  std::array<Shard, kShardCount> shards_;
  std::size_t per_shard_capacity_ = 0;  ///< immutable after construction
};

/// Splits a whole-cache capacity across kCacheShardCount shards,
/// rounding up so a nonzero total never becomes an accidental zero
/// (= unbounded) and the cache can always hold at least `total` entries
/// overall: kCacheShardCount * per_shard_capacity_for(total) >= total
/// for every total > 0 (pinned by the ShardedCache capacity unit test).
inline constexpr std::size_t per_shard_capacity_for(std::size_t total) {
  if (total == 0) return 0;
  return (total + kCacheShardCount - 1) / kCacheShardCount;
}
static_assert(per_shard_capacity_for(0) == 0, "0 stays unbounded");
static_assert(kCacheShardCount * per_shard_capacity_for(1) >= 1 &&
                  per_shard_capacity_for(1) > 0,
              "a nonzero total never rounds down to unbounded");
static_assert(kCacheShardCount * per_shard_capacity_for(kCacheShardCount + 1) >=
                  kCacheShardCount + 1,
              "summed shard capacity covers the requested total");

}  // namespace gana
