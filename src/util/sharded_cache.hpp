// Lock-sharded concurrent map for the structural-hash caches.
//
// SamplePrepCache and AnnotationCache used to serialize every worker on
// one mutex; on a hot batch (64 copies of one cell, 8 jobs) that lock is
// taken twice per circuit per cache and every acquisition convoys the
// pool. Sharding by key hash bounds contention at 1/kShardCount of the
// old rate while keeping the exact same semantics: probes and inserts
// for one key always land on one shard, so first-insert-wins and
// hit/miss accounting are untouched. The shard count is a power of two
// and each shard is alignas(64) so neighboring shard locks never share a
// cache line (no false sharing between workers on different shards).
//
// Keys are canonical structural hashes (graph::structural_hash) and thus
// already well mixed; the shard index folds the high half in anyway so a
// hypothetical low-entropy low word cannot collapse every key onto one
// shard.
//
// stats() and clear() lock shards one at a time -- stats() is therefore
// not an atomic snapshot across shards. Callers (benchmarks, tests) read
// it quiescently, and per-shard counts are individually exact.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace gana {

template <typename V>
class ShardedCache {
 public:
  static constexpr std::size_t kShardCount = 16;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };

  /// Cached value for `key`, or nullptr; counts a hit/miss on the shard.
  [[nodiscard]] std::shared_ptr<const V> find(std::uint64_t key) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.misses;
      return nullptr;
    }
    ++s.hits;
    return it->second;
  }

  /// Inserts `value` for `key`; returns the winning entry (the existing
  /// one if another worker inserted first).
  std::shared_ptr<const V> insert(std::uint64_t key,
                                  std::shared_ptr<const V> value) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto [it, inserted] = s.map.try_emplace(key, std::move(value));
    return it->second;
  }

  [[nodiscard]] Stats stats() const {
    Stats out;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      out.hits += s.hits;
      out.misses += s.misses;
      out.entries += s.map.size();
    }
    return out;
  }

  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      s.map.clear();
      s.hits = 0;
      s.misses = 0;
    }
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::shared_ptr<const V>> map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  static std::size_t shard_index(std::uint64_t key) {
    return static_cast<std::size_t>((key ^ (key >> 32)) & (kShardCount - 1));
  }
  Shard& shard(std::uint64_t key) { return shards_[shard_index(key)]; }

  std::array<Shard, kShardCount> shards_;
};

}  // namespace gana
