#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gana::util {

namespace {

Diag io_diag(const std::string& path, const std::string& what) {
  Diag d = make_diag(DiagCode::IoError, Stage::Io,
                     what + ": " + std::strerror(errno));
  d.loc.file = path;
  return d;
}

}  // namespace

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    this->~MmapFile();
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr && size_ != 0) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

Result<MmapFile> MmapFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return io_diag(path, "cannot open");
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    Diag d = io_diag(path, "cannot stat");
    ::close(fd);
    return d;
  }
  MmapFile out;
  out.path_ = path;
  out.size_ = static_cast<std::size_t>(st.st_size);
  if (out.size_ == 0) {
    // mmap rejects zero-length mappings; an empty view is still valid
    // input for the artifact layer (which rejects it as truncated).
    ::close(fd);
    return out;
  }
  void* mapped = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapped == MAP_FAILED) {
    out.size_ = 0;
    return io_diag(path, "cannot mmap");
  }
  out.data_ = static_cast<const std::uint8_t*>(mapped);
  return out;
}

}  // namespace gana::util
