// Wall-clock and thread-CPU timing helpers for the runtime benchmarks.
#pragma once

#include <chrono>
#include <ctime>

namespace gana {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU stopwatch: counts only time the calling thread spent
/// executing, not time it sat descheduled or blocked. Wall time minus
/// CPU time is therefore the contention/oversubscription signal the
/// batch timing split (BatchTimings `*_seconds` vs `*_wall_seconds`)
/// is built on: summed per-task CPU seconds stay comparable across job
/// counts even when more workers than cores time-share the machine,
/// while summed wall seconds inflate with every stall.
///
/// Must be read on the same thread that constructed/reset it. Falls
/// back to the monotonic clock where CLOCK_THREAD_CPUTIME_ID is
/// unavailable (then cpu == wall and the split is uninformative but
/// never wrong-signed).
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  /// Elapsed thread-CPU seconds since construction or the last reset().
  [[nodiscard]] double seconds() const { return now() - start_; }

 private:
  static double now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_;
};

}  // namespace gana
