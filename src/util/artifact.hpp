// Binary, versioned, checksummed artifact container.
//
// One container format backs both the GCN model artifact and the
// primitive-library artifact (DESIGN.md §15). Layout, all little-endian:
//
//   header (48 bytes):
//     char     magic[8]        "ganabin1"
//     u32      format_version  kArtifactVersion
//     u32      kind            ArtifactKind (model / primitive library)
//     u64      fingerprint     producer-defined content hash
//     u64      file_bytes      total file size, header included
//     u64      checksum        FNV-1a-64 over bytes [48, file_bytes)
//     u32      section_count
//     u32      reserved        0
//   section table (32 bytes per entry):
//     char     name[16]        NUL-padded, unique within the file
//     u64      offset          from file start, 64-byte aligned
//     u64      size            payload bytes (padding excluded)
//   payload sections, each starting on a 64-byte boundary
//
// The 64-byte section alignment means an f64 weight blob inside a
// mapped artifact is directly addressable: `GcnModel` borrows the
// pointer instead of copying (zero-copy load). Every malformed input --
// truncated header, bad magic, wrong version, kind mismatch, oversized
// or out-of-range section table, duplicate section names, checksum
// mismatch -- is rejected with a structured `FormatError` Diag before
// any payload byte is interpreted; a validated reader never faults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/diag.hpp"
#include "util/mmap_file.hpp"

namespace gana::util {

inline constexpr char kArtifactMagic[8] = {'g', 'a', 'n', 'a',
                                           'b', 'i', 'n', '1'};
inline constexpr std::uint32_t kArtifactVersion = 1;
inline constexpr std::size_t kArtifactHeaderBytes = 48;
inline constexpr std::size_t kArtifactSectionEntryBytes = 32;
inline constexpr std::size_t kArtifactSectionNameBytes = 16;
inline constexpr std::size_t kArtifactAlign = 64;
/// Section-count guard: a header claiming more sections than this is
/// rejected before the table is walked (oversized-table fuzz seed).
inline constexpr std::uint32_t kArtifactMaxSections = 1024;

/// What the file claims to contain; checked against the loader's
/// expectation so a library artifact can't be fed to the model loader.
enum class ArtifactKind : std::uint32_t {
  Model = 1,
  PrimitiveLibrary = 2,
};

/// FNV-1a-64 over a byte range (the header's checksum function).
[[nodiscard]] std::uint64_t artifact_checksum(const std::uint8_t* data,
                                              std::size_t size);

/// True when the buffer starts with the artifact magic -- the sniff
/// used by `load_model_any` to pick text vs binary loaders.
[[nodiscard]] bool looks_like_artifact(const std::uint8_t* data,
                                       std::size_t size);
[[nodiscard]] bool file_looks_like_artifact(const std::string& path);

/// A named payload slice inside a validated artifact. `data` points
/// into the backing mapping (or buffer); `size` excludes alignment
/// padding. Valid only while the backing storage lives.
struct ArtifactSection {
  std::string name;
  const std::uint8_t* data = nullptr;
  std::uint64_t size = 0;
};

/// Accumulates named sections, then writes the container in one pass.
class ArtifactWriter {
 public:
  /// Names must be unique, non-empty, and < 16 bytes. Violations are
  /// reported from `write` (the single failure point).
  void add_section(std::string name, std::vector<std::uint8_t> bytes);

  /// Serializes header + table + aligned payloads to `path`.
  /// IoError on filesystem failure, FormatError on bad section names.
  [[nodiscard]] Result<bool> write(const std::string& path, ArtifactKind kind,
                                   std::uint64_t fingerprint) const;

 private:
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
};

/// Validates a mapped (or in-memory) artifact and exposes its sections.
class ArtifactReader {
 public:
  /// Maps `path` and validates the container. The returned reader
  /// shares ownership of the mapping: keep `mapping()` alive for as
  /// long as zero-copy pointers into the file are used.
  [[nodiscard]] static Result<ArtifactReader> open(const std::string& path,
                                                   ArtifactKind kind);

  /// Validates an in-memory buffer (fuzz harness entry point). The
  /// caller keeps `data` alive; `name` labels diagnostics.
  [[nodiscard]] static Result<ArtifactReader> from_bytes(
      const std::uint8_t* data, std::size_t size, ArtifactKind kind,
      std::string name);

  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// nullptr when absent.
  [[nodiscard]] const ArtifactSection* section(std::string_view name) const;
  /// FormatError Diag when absent.
  [[nodiscard]] Result<ArtifactSection> require(std::string_view name) const;

  /// Keepalive handle for zero-copy borrowers; null for from_bytes.
  [[nodiscard]] std::shared_ptr<const MmapFile> mapping() const {
    return map_;
  }

 private:
  [[nodiscard]] static Result<ArtifactReader> validate(
      const std::uint8_t* data, std::size_t size, ArtifactKind kind,
      std::string name, std::shared_ptr<const MmapFile> map);

  std::shared_ptr<const MmapFile> map_;
  std::string name_;
  std::uint64_t fingerprint_ = 0;
  std::vector<ArtifactSection> sections_;
};

/// Little-endian section-payload encoder. Sections built with this and
/// decoded with ByteReader round-trip exactly; doubles travel as their
/// IEEE-754 bit pattern so text-loaded vs artifact-loaded models are
/// bitwise identical.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
  }
  /// Pads with zero bytes until the payload offset is a multiple of
  /// `align` -- used to 8-align f64 runs inside a section.
  void align_to(std::size_t align) {
    while (bytes_.size() % align != 0) bytes_.push_back(0);
  }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian decoder. Reads past the end latch the
/// fail flag and return zeros instead of faulting, so decoding a
/// corrupt-but-checksum-valid section degrades to a FormatError at the
/// caller's `ok()` check, never UB.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}
  explicit ByteReader(const ArtifactSection& s)
      : ByteReader(s.data, static_cast<std::size_t>(s.size)) {}

  [[nodiscard]] std::uint8_t u8() {
    if (!take(1)) return 0;
    return p_[-1];
  }
  [[nodiscard]] std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p_[i - 4]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p_[i - 8]) << (8 * i);
    return v;
  }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    if (!take(n)) return {};
    return std::string(reinterpret_cast<const char*>(p_ - n), n);
  }
  void align_to(std::size_t align, const std::uint8_t* base) {
    while (ok() && static_cast<std::size_t>(p_ - base) % align != 0) {
      (void)u8();
    }
  }
  /// Pointer to `n` raw bytes at the cursor (then advances); nullptr
  /// and latched failure when fewer than `n` remain.
  [[nodiscard]] const std::uint8_t* raw(std::size_t n) {
    if (!take(n)) return nullptr;
    return p_ - n;
  }
  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] bool at_end() const { return ok() && p_ == end_; }
  [[nodiscard]] std::size_t remaining() const {
    return failed_ ? 0 : static_cast<std::size_t>(end_ - p_);
  }

 private:
  bool take(std::size_t n) {
    if (failed_ || static_cast<std::size_t>(end_ - p_) < n) {
      failed_ = true;
      return false;
    }
    p_ += n;
    return true;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool failed_ = false;
};

}  // namespace gana::util
