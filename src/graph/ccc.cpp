#include "graph/ccc.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace gana::graph {
namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

bool is_rail(const Vertex& v) {
  return v.role == NetRole::Supply || v.role == NetRole::Ground;
}

}  // namespace

CccResult channel_connected_components(const CircuitGraph& g) {
  const std::size_t n = g.vertex_count();
  UnionFind uf(n);

  // Union MOS devices that share a non-rail net through a channel terminal.
  for (std::size_t v = 0; v < n; ++v) {
    const Vertex& net = g.vertex(v);
    if (net.kind != VertexKind::Net || is_rail(net)) continue;
    std::size_t first = CircuitGraph::npos;
    for (std::size_t eid : g.incident(v)) {
      const Edge& e = g.edge(eid);
      const Vertex& el = g.vertex(e.element);
      if (!spice::is_mos(el.dtype)) continue;
      if ((e.label & (kLabelSource | kLabelDrain)) == 0) continue;
      if (first == CircuitGraph::npos) {
        first = e.element;
      } else {
        uf.unite(first, e.element);
      }
    }
  }

  CccResult result;
  result.component_of.assign(n, -1);

  // Number the components over MOS elements.
  std::map<std::size_t, int> id_of_root;
  for (std::size_t v = 0; v < n; ++v) {
    const Vertex& vert = g.vertex(v);
    if (vert.kind != VertexKind::Element || !spice::is_mos(vert.dtype)) {
      continue;
    }
    const std::size_t root = uf.find(v);
    auto [it, inserted] =
        id_of_root.emplace(root, static_cast<int>(id_of_root.size()));
    result.component_of[v] = it->second;
    (void)inserted;
  }

  // Attach non-MOS elements to the component most represented among the
  // neighbors sharing a (non-rail) net with them. Neighbors reached
  // through a MOS *channel* terminal (or through another passive) vote
  // with priority; gate-only neighbors are a fallback -- a bias current
  // source on a mirror rail must join the mirror's component, not the
  // component of the many devices merely gated by that rail.
  auto neighbor_component = [&](std::size_t elem) -> int {
    std::map<int, int> strong, weak;
    for (std::size_t eid : g.incident(elem)) {
      const Edge& e = g.edge(eid);
      const Vertex& net = g.vertex(e.net);
      if (is_rail(net)) continue;
      for (std::size_t eid2 : g.incident(e.net)) {
        const Edge& e2 = g.edge(eid2);
        const std::size_t other = e2.element;
        if (other == elem) continue;
        const int c = result.component_of[other];
        if (c < 0) continue;
        const bool channel =
            !spice::is_mos(g.vertex(other).dtype) ||
            (e2.label & (kLabelSource | kLabelDrain)) != 0;
        ++(channel ? strong : weak)[c];
      }
    }
    auto best_of = [](const std::map<int, int>& votes) {
      int best = -1, best_votes = 0;
      for (auto [c, cnt] : votes) {
        if (cnt > best_votes) {
          best = c;
          best_votes = cnt;
        }
      }
      return best;
    };
    const int strong_best = best_of(strong);
    return strong_best >= 0 ? strong_best : best_of(weak);
  };

  // Two sweeps: a passive adjacent only to other passives can pick up the
  // component its neighbor acquired in the first sweep.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (std::size_t v = 0; v < n; ++v) {
      const Vertex& vert = g.vertex(v);
      if (vert.kind != VertexKind::Element) continue;
      if (result.component_of[v] >= 0) continue;
      const int c = neighbor_component(v);
      if (c >= 0) result.component_of[v] = c;
    }
  }
  // Leftover isolated elements each get a fresh component.
  int next_id = static_cast<int>(id_of_root.size());
  for (std::size_t v = 0; v < n; ++v) {
    const Vertex& vert = g.vertex(v);
    if (vert.kind == VertexKind::Element && result.component_of[v] < 0) {
      result.component_of[v] = next_id++;
    }
  }

  // Nets inherit the majority component of adjacent elements (rails stay
  // unassigned).
  for (std::size_t v = 0; v < n; ++v) {
    const Vertex& vert = g.vertex(v);
    if (vert.kind != VertexKind::Net || is_rail(vert)) continue;
    std::map<int, int> votes;
    for (std::size_t eid : g.incident(v)) {
      const int c = result.component_of[g.edge(eid).element];
      if (c >= 0) ++votes[c];
    }
    int best = -1, best_votes = 0;
    for (auto [c, cnt] : votes) {
      if (cnt > best_votes) {
        best = c;
        best_votes = cnt;
      }
    }
    result.component_of[v] = best;
  }

  result.count = static_cast<std::size_t>(next_id);
  result.members.assign(result.count, {});
  for (std::size_t v = 0; v < n; ++v) {
    if (g.vertex(v).kind == VertexKind::Element) {
      result.members[static_cast<std::size_t>(result.component_of[v])]
          .push_back(v);
    }
  }
  return result;
}

}  // namespace gana::graph
