// Graph Laplacian operators for the spectral GCN (paper §III-A, Eq. 1-5).
#pragma once

#include "graph/circuit_graph.hpp"
#include "linalg/sparse.hpp"

namespace gana::graph {

/// Unweighted adjacency matrix over all vertices (elements and nets);
/// symmetric, zero diagonal, one entry per bipartite edge direction.
SparseMatrix adjacency(const CircuitGraph& g);

/// Normalized Laplacian L = I - D^{-1/2} A D^{-1/2} (Eq. 1). Rows of
/// isolated vertices are zero.
SparseMatrix normalized_laplacian(const SparseMatrix& adjacency);

/// Convenience overload building the adjacency internally.
SparseMatrix normalized_laplacian(const CircuitGraph& g);

/// Scaled Laplacian L̂ = 2 L / λ_max - I used by the Chebyshev filters
/// (Eq. 3); its spectrum lies in [-1, 1].
SparseMatrix scaled_laplacian(const SparseMatrix& laplacian,
                              double lambda_max);

}  // namespace gana::graph
