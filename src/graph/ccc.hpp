// Channel-connected components (paper §V-A, Postprocessing I).
//
// "A channel-connected component is a cluster of transistors connected at
// the sources and drains (not counting connections to supply and ground
// nodes). It can be identified using simple linear-time graph traversal
// schemes."
//
// Gate connections and rail nets never merge components; passives do not
// conduct channel current and are attached to a neighboring component
// afterwards (or form stand-alone components, e.g. capacitor arrays).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/circuit_graph.hpp"

namespace gana::graph {

struct CccResult {
  /// Component id per vertex; -1 for supply/ground nets and nets with no
  /// classified neighbor.
  std::vector<int> component_of;
  /// Number of components.
  std::size_t count = 0;
  /// Element vertex ids per component.
  std::vector<std::vector<std::size_t>> members;

  [[nodiscard]] int of(std::size_t vertex_id) const {
    return component_of[vertex_id];
  }
};

/// Computes CCCs in O(V + E α(V)).
CccResult channel_connected_components(const CircuitGraph& g);

}  // namespace gana::graph
