// Construction of the bipartite circuit graph from a flat netlist.
#pragma once

#include "graph/circuit_graph.hpp"
#include "spice/interned.hpp"
#include "spice/netlist.hpp"

namespace gana::graph {

struct BuildOptions {
  /// Include a (label-0) edge for a MOS body terminal when the body is not
  /// tied to a supply/ground rail (body-driven circuits). Rail-tied bodies
  /// are skipped, matching the paper's figures which omit body connections.
  bool include_floating_body = true;
  /// Include supply/ground net vertices (and the edges into them). The
  /// recognition flow keeps them; CCC computation ignores them anyway.
  bool include_rails = true;
};

/// Builds the bipartite graph; element vertex ids appear in netlist device
/// order first, followed by net vertices. Requires a flat netlist.
CircuitGraph build_graph(const spice::Netlist& netlist,
                         const BuildOptions& options = {});

/// Id-space overload for the interned front end: consumes SymbolIds
/// directly (net vertices are still created in first-touch order, so the
/// resulting graph is bit-identical to the string overload's -- same
/// vertex ids, names, roles, and edges).
CircuitGraph build_graph(const spice::InternedNetlist& netlist,
                         const BuildOptions& options = {});

/// Net role from rail naming plus the netlist's port labels.
NetRole classify_net(const std::string& name, const spice::Netlist& netlist);

}  // namespace gana::graph
