#include "graph/structural_hash.hpp"

#include <algorithm>

namespace gana::graph {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv_word(std::uint64_t h, std::uint64_t word) {
  // FNV-1a one byte at a time over the little-endian word.
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t structural_hash(const CircuitGraph& g) {
  std::uint64_t h = kFnvOffset;
  h = fnv_word(h, g.vertex_count());
  h = fnv_word(h, g.element_count());
  for (const Vertex& v : g.vertices()) {
    std::uint64_t word = static_cast<std::uint64_t>(v.kind);
    if (v.kind == VertexKind::Element) {
      word |= static_cast<std::uint64_t>(v.dtype) << 8;
    } else {
      word |= static_cast<std::uint64_t>(v.role) << 8;
    }
    h = fnv_word(h, word);
  }
  h = fnv_word(h, g.edge_count());
  for (const Edge& e : g.edges()) {
    h = fnv_word(h, e.element);
    h = fnv_word(h, e.net);
    h = fnv_word(h, e.label);
  }
  return h;
}

std::uint64_t subgraph_structural_hash(
    const CircuitGraph& g, const std::vector<std::size_t>& vertices) {
  // Position of each included whole-graph vertex in `vertices`; npos
  // marks exclusion. A flat array keeps the restriction pass O(V + E).
  std::vector<std::size_t> position(g.vertex_count(), CircuitGraph::npos);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    position[vertices[i]] = i;
  }

  std::uint64_t h = fnv_word(kFnvOffset, vertices.size());
  std::uint64_t elements = 0;
  for (std::size_t v : vertices) {
    if (g.vertex(v).kind == VertexKind::Element) ++elements;
  }
  h = fnv_word(h, elements);
  for (std::size_t v : vertices) {
    const Vertex& vert = g.vertex(v);
    std::uint64_t word = static_cast<std::uint64_t>(vert.kind);
    if (vert.kind == VertexKind::Element) {
      word |= static_cast<std::uint64_t>(vert.dtype) << 8;
    } else {
      word |= static_cast<std::uint64_t>(vert.role) << 8;
    }
    h = fnv_word(h, word);
  }

  struct IndEdge {
    std::size_t element, net;
    std::uint8_t label;
  };
  std::vector<IndEdge> edges;
  for (const Edge& e : g.edges()) {
    const std::size_t ep = position[e.element];
    const std::size_t np = position[e.net];
    if (ep == CircuitGraph::npos || np == CircuitGraph::npos) continue;
    edges.push_back({ep, np, e.label});
  }
  std::sort(edges.begin(), edges.end(), [](const IndEdge& a, const IndEdge& b) {
    if (a.element != b.element) return a.element < b.element;
    if (a.net != b.net) return a.net < b.net;
    return a.label < b.label;
  });
  h = fnv_word(h, edges.size());
  for (const IndEdge& e : edges) {
    h = fnv_word(h, e.element);
    h = fnv_word(h, e.net);
    h = fnv_word(h, e.label);
  }
  return h;
}

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  // splitmix64 finalizer over the xor-shifted mix; cheap and well mixed.
  std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace gana::graph
