#include "graph/laplacian.hpp"

#include <cmath>

namespace gana::graph {

SparseMatrix adjacency(const CircuitGraph& g) {
  std::vector<Triplet> t;
  t.reserve(2 * g.edge_count());
  for (const Edge& e : g.edges()) {
    t.push_back({e.element, e.net, 1.0});
    t.push_back({e.net, e.element, 1.0});
  }
  return SparseMatrix::from_triplets(g.vertex_count(), g.vertex_count(),
                                     std::move(t));
}

SparseMatrix normalized_laplacian(const SparseMatrix& adjacency) {
  const std::size_t n = adjacency.rows();
  const std::vector<double> deg = adjacency.row_sums();
  std::vector<double> dinv_sqrt(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (deg[i] > 0.0) dinv_sqrt[i] = 1.0 / std::sqrt(deg[i]);
  }
  std::vector<Triplet> t;
  t.reserve(adjacency.nnz() + n);
  const auto& rp = adjacency.row_ptr();
  const auto& ci = adjacency.col_idx();
  const auto& vals = adjacency.values();
  for (std::size_t r = 0; r < n; ++r) {
    if (deg[r] > 0.0) t.push_back({r, r, 1.0});
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      const std::size_t c = ci[k];
      const double v = -vals[k] * dinv_sqrt[r] * dinv_sqrt[c];
      if (v != 0.0) t.push_back({r, c, v});
    }
  }
  return SparseMatrix::from_triplets(n, n, std::move(t));
}

SparseMatrix normalized_laplacian(const CircuitGraph& g) {
  return normalized_laplacian(adjacency(g));
}

SparseMatrix scaled_laplacian(const SparseMatrix& laplacian,
                              double lambda_max) {
  const double scale = lambda_max > 0.0 ? 2.0 / lambda_max : 0.0;
  return laplacian.scale_add_identity(scale, -1.0);
}

}  // namespace gana::graph
