// Bipartite circuit-graph representation (paper §II-C).
//
// Vertices are partitioned into elements (transistors/passives/sources)
// and nets; an edge joins an element to each net touched by its terminals
// and carries the 3-bit label l_g l_s l_d for MOS terminals (Fig. 2). A
// diode-connected transistor whose gate and drain share a net contributes
// a single edge labeled 101.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spice/netlist.hpp"

namespace gana::graph {

enum class VertexKind : std::uint8_t { Element, Net };

/// Semantic role of a net vertex, derived from rail names and from the
/// designer port labels (drives 5 of the 18 GCN input features).
enum class NetRole : std::uint8_t {
  Internal,
  Input,
  Output,
  Bias,
  Supply,
  Ground,
  Clock,
  Antenna,   ///< RF input port (Postprocessing II)
  LocalOsc,  ///< oscillating input port (Postprocessing II)
};

[[nodiscard]] const char* to_string(NetRole r);

/// Edge label bits; a MOS edge label is the OR of the bits of every
/// terminal connecting the device to that net.
enum EdgeLabelBit : std::uint8_t {
  kLabelDrain = 1u << 0,
  kLabelSource = 1u << 1,
  kLabelGate = 1u << 2,
};

struct Vertex {
  VertexKind kind = VertexKind::Net;
  std::string name;
  // Element-only fields.
  spice::DeviceType dtype = spice::DeviceType::Nmos;
  double value = 0.0;      ///< principal value for passives/sources
  int hier_depth = 0;      ///< original hierarchy depth
  std::size_t device_index = 0;  ///< index into the source netlist
  // Net-only field.
  NetRole role = NetRole::Internal;
};

struct Edge {
  std::size_t element = 0;  ///< vertex id of the element endpoint
  std::size_t net = 0;      ///< vertex id of the net endpoint
  std::uint8_t label = 0;   ///< l_g l_s l_d bits; 0 for passives/sources
};

/// Undirected bipartite graph of a circuit.
///
/// Invariants: every edge joins an Element vertex to a Net vertex; at most
/// one edge exists per (element, net) pair (labels are OR-merged).
class CircuitGraph {
 public:
  /// Adds an element vertex; returns its id.
  std::size_t add_element(Vertex v);

  /// Adds a net vertex; returns its id.
  std::size_t add_net(Vertex v);

  /// Connects an element to a net, OR-merging the label into an existing
  /// edge if the pair is already connected. Returns the edge index.
  std::size_t connect(std::size_t element, std::size_t net,
                      std::uint8_t label);

  [[nodiscard]] std::size_t vertex_count() const { return vertices_.size(); }
  [[nodiscard]] std::size_t element_count() const { return element_count_; }
  [[nodiscard]] std::size_t net_count() const {
    return vertices_.size() - element_count_;
  }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const Vertex& vertex(std::size_t id) const {
    return vertices_[id];
  }
  [[nodiscard]] Vertex& vertex(std::size_t id) { return vertices_[id]; }
  [[nodiscard]] const Edge& edge(std::size_t id) const { return edges_[id]; }

  [[nodiscard]] const std::vector<Vertex>& vertices() const {
    return vertices_;
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Edge ids incident on a vertex (element or net).
  [[nodiscard]] const std::vector<std::size_t>& incident(
      std::size_t vertex_id) const {
    return incident_[vertex_id];
  }

  /// Number of incident edges.
  [[nodiscard]] std::size_t degree(std::size_t vertex_id) const {
    return incident_[vertex_id].size();
  }

  /// Other endpoint of edge `e` as seen from vertex `v`.
  [[nodiscard]] std::size_t opposite(std::size_t edge_id,
                                     std::size_t vertex_id) const {
    const Edge& e = edges_[edge_id];
    return e.element == vertex_id ? e.net : e.element;
  }

  /// Vertex ids of all element vertices.
  [[nodiscard]] std::vector<std::size_t> element_ids() const;

  /// Vertex ids of all net vertices.
  [[nodiscard]] std::vector<std::size_t> net_ids() const;

  /// Id of the net vertex with the given name, or npos.
  [[nodiscard]] std::size_t find_net(const std::string& name) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> incident_;
  std::size_t element_count_ = 0;
};

}  // namespace gana::graph
