// Canonical structural hash of a bipartite circuit graph.
//
// Two circuits hash equally exactly when their graphs were built with
// the same vertex/edge sequences up to *structure*: vertex kinds, device
// types, net roles, and the (element, net, terminal-label) edge list.
// Device/net names, device values (W/L/R/C), and hierarchy depths are
// deliberately excluded -- 64 copies of one OTA cell with different
// instance names and sizings share a hash, which is what lets the
// SamplePrepCache share their spectral operators and cluster maps (all
// derived from the unweighted adjacency pattern alone).
//
// The hash is canonical for graphs produced by graph::build_graph, whose
// vertex ordering is a deterministic function of the flat netlist's
// device/net order; it is not a graph-isomorphism invariant (permuting
// device cards changes the hash, which only costs cache hits, never
// correctness).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/circuit_graph.hpp"

namespace gana::graph {

/// 64-bit FNV-1a over the structural word stream described above.
[[nodiscard]] std::uint64_t structural_hash(const CircuitGraph& g);

/// Sub-graph hashing mode: the structural hash of the sub-graph induced
/// by `vertices` (whole-graph vertex ids), with vertices renumbered to
/// their positions in `vertices` and edges restricted to those whose two
/// endpoints are both included, streamed in (element, net, label) sorted
/// order. The hash is a function of the induced structure *in the given
/// vertex order* -- callers that want an order-independent key (the
/// incremental session's per-region cache) pass a canonical order
/// (incremental::canonical_region_order).
[[nodiscard]] std::uint64_t subgraph_structural_hash(
    const CircuitGraph& g, const std::vector<std::size_t>& vertices);

/// Order-sensitive combiner (splitmix64 finalizer over h ^ mix(v)); used
/// to fold pool levels and the batch seed into a cache key.
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v);

}  // namespace gana::graph
