#include "graph/builder.hpp"

#include <map>

namespace gana::graph {

NetRole classify_net(const std::string& name, const spice::Netlist& netlist) {
  if (spice::is_supply_net(name)) return NetRole::Supply;
  if (spice::is_ground_net(name)) return NetRole::Ground;
  auto it = netlist.port_labels.find(name);
  if (it != netlist.port_labels.end()) {
    switch (it->second) {
      case spice::PortLabel::Input: return NetRole::Input;
      case spice::PortLabel::Output: return NetRole::Output;
      case spice::PortLabel::Bias: return NetRole::Bias;
      case spice::PortLabel::Clock: return NetRole::Clock;
      case spice::PortLabel::Antenna: return NetRole::Antenna;
      case spice::PortLabel::LocalOsc: return NetRole::LocalOsc;
      case spice::PortLabel::None: break;
    }
  }
  return NetRole::Internal;
}

CircuitGraph build_graph(const spice::Netlist& netlist,
                         const BuildOptions& options) {
  if (!netlist.is_flat()) {
    throw spice::NetlistError(
        make_diag(DiagCode::NotFlat, Stage::GraphBuild,
                  "build_graph requires a flattened netlist"));
  }
  CircuitGraph g;
  // Element vertices, in device order.
  for (std::size_t di = 0; di < netlist.devices.size(); ++di) {
    const auto& d = netlist.devices[di];
    Vertex v;
    v.name = d.name;
    v.dtype = d.type;
    v.value = d.value;
    if (spice::is_mos(d.type)) {
      // MOS devices carry their width as the characteristic value (drives
      // the low/medium/high feature bucket).
      auto w = d.params.find("w");
      if (w != d.params.end()) v.value = w->second;
    }
    v.hier_depth = d.hier_depth;
    v.device_index = di;
    g.add_element(std::move(v));
  }
  // Net vertices, created on demand.
  std::map<std::string, std::size_t> net_id;
  auto net_vertex = [&](const std::string& name) -> std::size_t {
    auto it = net_id.find(name);
    if (it != net_id.end()) return it->second;
    Vertex v;
    v.name = name;
    v.role = classify_net(name, netlist);
    const std::size_t id = g.add_net(std::move(v));
    net_id.emplace(name, id);
    return id;
  };

  for (std::size_t di = 0; di < netlist.devices.size(); ++di) {
    const auto& d = netlist.devices[di];
    if (spice::is_mos(d.type)) {
      const std::uint8_t bits[4] = {kLabelDrain, kLabelGate, kLabelSource, 0};
      for (std::size_t pi = 0; pi < 4; ++pi) {
        const std::string& net = d.pins[pi];
        const bool rail =
            spice::is_supply_net(net) || spice::is_ground_net(net);
        if (pi == spice::kBody) {
          if (rail || !options.include_floating_body) continue;
        }
        if (rail && !options.include_rails) continue;
        g.connect(di, net_vertex(net), bits[pi]);
      }
    } else {
      for (const std::string& net : d.pins) {
        const bool rail =
            spice::is_supply_net(net) || spice::is_ground_net(net);
        if (rail && !options.include_rails) continue;
        g.connect(di, net_vertex(net), 0);
      }
    }
  }
  return g;
}

namespace {

/// Per-id role classification for the interned overload; resolves rails
/// and port labels once per distinct net name instead of per pin.
class NetRoleCache {
 public:
  explicit NetRoleCache(const spice::InternedNetlist& netlist)
      : netlist_(netlist), rails_(netlist.syms) {}

  NetRole role(spice::SymbolId id) {
    if (rails_.supply(id)) return NetRole::Supply;
    if (rails_.ground(id)) return NetRole::Ground;
    for (const auto& [net, label] : netlist_.port_labels) {
      if (net != id) continue;
      switch (label) {
        case spice::PortLabel::Input: return NetRole::Input;
        case spice::PortLabel::Output: return NetRole::Output;
        case spice::PortLabel::Bias: return NetRole::Bias;
        case spice::PortLabel::Clock: return NetRole::Clock;
        case spice::PortLabel::Antenna: return NetRole::Antenna;
        case spice::PortLabel::LocalOsc: return NetRole::LocalOsc;
        case spice::PortLabel::None: break;
      }
    }
    return NetRole::Internal;
  }

  bool rail(spice::SymbolId id) { return rails_.rail(id); }

 private:
  const spice::InternedNetlist& netlist_;
  spice::NetClassCache rails_;
};

}  // namespace

CircuitGraph build_graph(const spice::InternedNetlist& netlist,
                         const BuildOptions& options) {
  if (!netlist.is_flat()) {
    throw spice::NetlistError(
        make_diag(DiagCode::NotFlat, Stage::GraphBuild,
                  "build_graph requires a flattened netlist"));
  }
  const spice::SymbolId w_key = netlist.syms.find("w");
  CircuitGraph g;
  // Element vertices, in device order.
  for (std::size_t di = 0; di < netlist.devices.size(); ++di) {
    const auto& d = netlist.devices[di];
    Vertex v;
    v.name = std::string(netlist.syms.name(d.name));
    v.dtype = d.type;
    v.value = d.value;
    if (spice::is_mos(d.type)) {
      // MOS devices carry their width as the characteristic value (drives
      // the low/medium/high feature bucket).
      if (const double* w = d.find_param(w_key)) v.value = *w;
    }
    v.hier_depth = d.hier_depth;
    v.device_index = di;
    g.add_element(std::move(v));
  }
  // Net vertices, created on demand in first-touch order (matching the
  // string overload, which also creates them as devices are walked).
  NetRoleCache roles(netlist);
  std::vector<std::size_t> net_vertex_of(netlist.syms.size(),
                                         CircuitGraph::npos);
  auto net_vertex = [&](spice::SymbolId id) -> std::size_t {
    if (net_vertex_of[id] != CircuitGraph::npos) return net_vertex_of[id];
    Vertex v;
    v.name = std::string(netlist.syms.name(id));
    v.role = roles.role(id);
    const std::size_t vid = g.add_net(std::move(v));
    net_vertex_of[id] = vid;
    return vid;
  };

  for (std::size_t di = 0; di < netlist.devices.size(); ++di) {
    const auto& d = netlist.devices[di];
    if (spice::is_mos(d.type)) {
      const std::uint8_t bits[4] = {kLabelDrain, kLabelGate, kLabelSource, 0};
      for (std::size_t pi = 0; pi < 4; ++pi) {
        const spice::SymbolId net = d.pins[pi];
        const bool rail = roles.rail(net);
        if (pi == spice::kBody) {
          if (rail || !options.include_floating_body) continue;
        }
        if (rail && !options.include_rails) continue;
        g.connect(di, net_vertex(net), bits[pi]);
      }
    } else {
      for (std::size_t pi = 0; pi < d.pins.size(); ++pi) {
        const spice::SymbolId net = d.pins[pi];
        const bool rail = roles.rail(net);
        if (rail && !options.include_rails) continue;
        g.connect(di, net_vertex(net), 0);
      }
    }
  }
  return g;
}

}  // namespace gana::graph
