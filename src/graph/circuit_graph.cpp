#include "graph/circuit_graph.hpp"

#include <cassert>

namespace gana::graph {

const char* to_string(NetRole r) {
  switch (r) {
    case NetRole::Internal: return "internal";
    case NetRole::Input: return "input";
    case NetRole::Output: return "output";
    case NetRole::Bias: return "bias";
    case NetRole::Supply: return "supply";
    case NetRole::Ground: return "ground";
    case NetRole::Clock: return "clock";
    case NetRole::Antenna: return "antenna";
    case NetRole::LocalOsc: return "lo";
  }
  return "?";
}

std::size_t CircuitGraph::add_element(Vertex v) {
  v.kind = VertexKind::Element;
  vertices_.push_back(std::move(v));
  incident_.emplace_back();
  ++element_count_;
  return vertices_.size() - 1;
}

std::size_t CircuitGraph::add_net(Vertex v) {
  v.kind = VertexKind::Net;
  vertices_.push_back(std::move(v));
  incident_.emplace_back();
  return vertices_.size() - 1;
}

std::size_t CircuitGraph::connect(std::size_t element, std::size_t net,
                                  std::uint8_t label) {
  assert(element < vertices_.size() && net < vertices_.size());
  assert(vertices_[element].kind == VertexKind::Element);
  assert(vertices_[net].kind == VertexKind::Net);
  // Merge into an existing (element, net) edge if present; element degree
  // is at most 4, so the scan is O(1).
  for (std::size_t eid : incident_[element]) {
    if (edges_[eid].net == net) {
      edges_[eid].label |= label;
      return eid;
    }
  }
  edges_.push_back({element, net, label});
  const std::size_t eid = edges_.size() - 1;
  incident_[element].push_back(eid);
  incident_[net].push_back(eid);
  return eid;
}

std::vector<std::size_t> CircuitGraph::element_ids() const {
  std::vector<std::size_t> out;
  out.reserve(element_count_);
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].kind == VertexKind::Element) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> CircuitGraph::net_ids() const {
  std::vector<std::size_t> out;
  out.reserve(net_count());
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].kind == VertexKind::Net) out.push_back(i);
  }
  return out;
}

std::size_t CircuitGraph::find_net(const std::string& name) const {
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].kind == VertexKind::Net && vertices_[i].name == name) {
      return i;
    }
  }
  return npos;
}

}  // namespace gana::graph
