// Hierarchy-tree construction (paper §II-A, Fig. 1(b)).
//
// The annotated circuit becomes a tree: the system at the root, sub-block
// nodes (merged same-class clusters), primitive nodes inside sub-blocks,
// and element leaves. Stand-alone primitives (buffers, inverter amps)
// hang directly under the root.
#pragma once

#include <string>
#include <vector>

#include "core/postprocess.hpp"
#include "graph/ccc.hpp"
#include "graph/circuit_graph.hpp"
#include "primitives/constraint.hpp"

namespace gana::core {

struct HierarchyNode {
  enum class Kind { System, SubBlock, Primitive, Element };
  Kind kind = Kind::System;
  std::string name;  ///< instance name, e.g. "ota0" or device name
  std::string type;  ///< class or primitive display name, e.g. "OTA", "DP-N"
  std::vector<HierarchyNode> children;
  std::vector<constraints::Constraint> constraints;

  /// Number of element leaves underneath.
  [[nodiscard]] std::size_t element_count() const;
  /// Depth of the tree (1 for a leaf).
  [[nodiscard]] std::size_t depth() const;
};

/// Builds the hierarchy tree from postprocessed cluster classes.
/// Adjacent CCCs with the same final class merge into one sub-block;
/// sub-blocks own the primitives whose elements they contain.
HierarchyNode build_hierarchy(const graph::CircuitGraph& g,
                              const graph::CccResult& ccc,
                              const PostprocessResult& post,
                              const std::vector<std::string>& class_names,
                              const std::string& circuit_name);

/// Pretty-prints the tree, e.g. for the examples and benches.
std::string to_string(const HierarchyNode& node, int indent = 0);

}  // namespace gana::core
