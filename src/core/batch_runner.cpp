#include "core/batch_runner.hpp"

#include <exception>
#include <thread>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace gana::core {

std::uint64_t task_seed(std::uint64_t root, std::size_t index) {
  // splitmix64 finalizer over the root seed advanced by the task index.
  std::uint64_t z =
      root + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

double stage_weighted_acc(const std::vector<AnnotateResult>& results,
                          double AnnotateResult::*acc) {
  double correct = 0.0;
  double counted = 0.0;
  for (const auto& r : results) {
    std::size_t with_truth = 0;
    for (int l : r.prepared.labels) {
      if (l >= 0) ++with_truth;
    }
    correct += r.*acc * static_cast<double>(with_truth);
    counted += static_cast<double>(with_truth);
  }
  return counted > 0.0 ? correct / counted : 0.0;
}

}  // namespace

double BatchResult::mean_acc_gcn() const {
  return stage_weighted_acc(results, &AnnotateResult::acc_gcn);
}
double BatchResult::mean_acc_post1() const {
  return stage_weighted_acc(results, &AnnotateResult::acc_post1);
}
double BatchResult::mean_acc_post2() const {
  return stage_weighted_acc(results, &AnnotateResult::acc_post2);
}

BatchRunner::BatchRunner(const Annotator& annotator, BatchOptions options)
    : annotator_(&annotator), options_(options) {}

std::size_t BatchRunner::resolved_jobs() const {
  if (options_.jobs != 0) return options_.jobs;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

template <typename Task>
BatchResult BatchRunner::dispatch(std::size_t count, const Task& task) const {
  BatchResult out;
  out.jobs = resolved_jobs();
  out.results.resize(count);

  Timer wall;
  if (out.jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) out.results[i] = task(i);
  } else {
    // One task per circuit; each writes only its own slot, so completion
    // order is irrelevant to the result.
    ThreadPool pool(std::min(out.jobs, count));
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      futures.push_back(pool.submit(
          [&task, &out, i]() { out.results[i] = task(i); }));
    }
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        pool.wait(f);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  out.timings.wall_seconds = wall.seconds();
  for (const auto& r : out.results) {
    out.timings.prepare_seconds += r.seconds_prepare;
    out.timings.gcn_seconds += r.seconds_gcn;
    out.timings.post_seconds += r.seconds_post;
  }
  return out;
}

BatchResult BatchRunner::run(
    const std::vector<datagen::LabeledCircuit>& batch) const {
  const Annotator& annotator = *annotator_;
  const std::uint64_t root = options_.seed;
  return dispatch(batch.size(), [&annotator, &batch, root](std::size_t i) {
    return annotator.annotate(batch[i], task_seed(root, i));
  });
}

BatchResult BatchRunner::run(const std::vector<spice::Netlist>& netlists,
                             const std::vector<std::string>& names) const {
  const Annotator& annotator = *annotator_;
  const std::uint64_t root = options_.seed;
  return dispatch(
      netlists.size(), [&annotator, &netlists, &names, root](std::size_t i) {
        const std::string name =
            i < names.size() ? names[i] : "batch/" + std::to_string(i);
        return annotator.annotate(netlists[i], name, task_seed(root, i));
      });
}

}  // namespace gana::core
