#include "core/batch_runner.hpp"

#include <atomic>
#include <optional>
#include <thread>
#include <utility>

#include "util/deadline.hpp"
#include "util/perf.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace gana::core {

namespace {

double stage_weighted_acc(const std::vector<AnnotateResult>& results,
                          double AnnotateResult::*acc) {
  double correct = 0.0;
  double counted = 0.0;
  for (const auto& r : results) {
    std::size_t with_truth = 0;
    for (int l : r.prepared.labels) {
      if (l >= 0) ++with_truth;
    }
    correct += r.*acc * static_cast<double>(with_truth);
    counted += static_cast<double>(with_truth);
  }
  return counted > 0.0 ? correct / counted : 0.0;
}

Diag skipped_diag(std::size_t index) {
  return make_diag(DiagCode::Skipped, Stage::Batch,
                   "task " + std::to_string(index) +
                       " skipped: fail-fast after an earlier failure");
}

/// How many chunks per worker the parallel dispatch overpartitions into.
/// One task per circuit (the old scheme) maximizes scheduling overhead on
/// small circuits; one chunk per worker loses load balancing when circuit
/// costs vary. A small constant factor keeps both in check while leaving
/// chunk boundaries a pure function of (count, jobs) -- never of timing.
constexpr std::size_t kBatchOverpartition = 4;

}  // namespace

BatchTimings& BatchTimings::operator+=(const BatchTimings& o) {
  wall_seconds += o.wall_seconds;
  prepare_seconds += o.prepare_seconds;
  gcn_seconds += o.gcn_seconds;
  post_seconds += o.post_seconds;
  prepare_wall_seconds += o.prepare_wall_seconds;
  gcn_wall_seconds += o.gcn_wall_seconds;
  post_wall_seconds += o.post_wall_seconds;
  matrix_allocs += o.matrix_allocs;
  matrix_alloc_bytes += o.matrix_alloc_bytes;
  spmm_calls += o.spmm_calls;
  spmm_flops += o.spmm_flops;
  matmul_calls += o.matmul_calls;
  matmul_flops += o.matmul_flops;
  sample_cache_hits += o.sample_cache_hits;
  sample_cache_misses += o.sample_cache_misses;
  inference_cache_hits += o.inference_cache_hits;
  inference_cache_misses += o.inference_cache_misses;
  vf2_states += o.vf2_states;
  vf2_sig_rejections += o.vf2_sig_rejections;
  vf2_pattern_skips += o.vf2_pattern_skips;
  annotation_cache_hits += o.annotation_cache_hits;
  annotation_cache_misses += o.annotation_cache_misses;
  cache_evictions += o.cache_evictions;
  parse_bytes += o.parse_bytes;
  intern_hits += o.intern_hits;
  intern_misses += o.intern_misses;
  frontend_allocs += o.frontend_allocs;
  incr_regions += o.incr_regions;
  incr_region_reuses += o.incr_region_reuses;
  incr_region_recomputes += o.incr_region_recomputes;
  incr_canon_fallbacks += o.incr_canon_fallbacks;
  return *this;
}

void BatchTimings::apply_perf_delta(const PerfSnapshot& perf) {
  matrix_allocs = perf.matrix_allocs;
  matrix_alloc_bytes = perf.matrix_alloc_bytes;
  spmm_calls = perf.spmm_calls;
  spmm_flops = perf.spmm_flops;
  matmul_calls = perf.matmul_calls;
  matmul_flops = perf.matmul_flops;
  sample_cache_hits = perf.sample_cache_hits;
  sample_cache_misses = perf.sample_cache_misses;
  inference_cache_hits = perf.inference_cache_hits;
  inference_cache_misses = perf.inference_cache_misses;
  vf2_states = perf.vf2_states;
  vf2_sig_rejections = perf.vf2_sig_rejections;
  vf2_pattern_skips = perf.vf2_pattern_skips;
  annotation_cache_hits = perf.annotation_cache_hits;
  annotation_cache_misses = perf.annotation_cache_misses;
  cache_evictions = perf.cache_evictions;
  parse_bytes = perf.parse_bytes;
  intern_hits = perf.intern_hits;
  intern_misses = perf.intern_misses;
  frontend_allocs = perf.frontend_allocs;
  incr_regions = perf.incr_regions;
  incr_region_reuses = perf.incr_region_reuses;
  incr_region_recomputes = perf.incr_region_recomputes;
  incr_canon_fallbacks = perf.incr_canon_fallbacks;
}

double BatchResult::mean_acc_gcn() const {
  return stage_weighted_acc(results, &AnnotateResult::acc_gcn);
}
double BatchResult::mean_acc_post1() const {
  return stage_weighted_acc(results, &AnnotateResult::acc_post1);
}
double BatchResult::mean_acc_post2() const {
  return stage_weighted_acc(results, &AnnotateResult::acc_post2);
}

std::size_t BatchOutcome::ok_count() const {
  std::size_t n = 0;
  for (const auto& o : outcomes) {
    if (o.ok()) ++n;
  }
  return n;
}

std::size_t BatchOutcome::failure_count() const {
  return outcomes.size() - ok_count();
}

const Diag* BatchOutcome::first_failure() const {
  const Diag* skipped = nullptr;
  for (const auto& o : outcomes) {
    if (o.ok()) continue;
    if (o.diag().code != DiagCode::Skipped) return &o.diag();
    if (skipped == nullptr) skipped = &o.diag();
  }
  return skipped;
}

BatchRunner::BatchRunner(const Annotator& annotator, BatchOptions options)
    : annotator_(&annotator), options_(options) {}

BatchRunner::~BatchRunner() = default;

std::size_t BatchRunner::resolved_jobs() const {
  if (options_.jobs != 0) return options_.jobs;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& BatchRunner::pool() const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(resolved_jobs());
  return *pool_;
}

/// `task` maps an index to Result<AnnotateResult> and must not throw
/// (Annotator::try_annotate already converts everything to Diags); a
/// throw here would be a harness bug and is surfaced as an Internal Diag.
template <typename Task>
BatchOutcome BatchRunner::dispatch(std::size_t count, const Task& task) const {
  BatchOutcome out;
  out.jobs = resolved_jobs();
  const bool fail_fast = options_.policy == FailurePolicy::FailFast;

  const double timeout = options_.timeout_seconds;
  auto guarded = [&task, timeout](std::size_t i) -> Result<AnnotateResult> {
    try {
      if (timeout > 0.0) {
        // Per-task deadline: installed for this task only, keyed by the
        // slot index so an armed FaultInjector makes per-slot decisions.
        const Deadline deadline = Deadline::after_seconds(timeout);
        const RequestContext ctx{&deadline, i};
        ScopedRequestContext scope(&ctx);
        return task(i);
      }
      return task(i);
    } catch (const DiagError& e) {
      return e.diag();
    } catch (const std::exception& e) {
      return make_diag(DiagCode::Internal, Stage::Batch,
                       "task " + std::to_string(i) + ": " + e.what());
    }
  };

  Timer wall;
  const PerfSnapshot perf_before = perf_snapshot();
  if (out.jobs <= 1 || count <= 1) {
    out.outcomes.reserve(count);
    bool aborted = false;
    for (std::size_t i = 0; i < count; ++i) {
      if (aborted) {
        out.outcomes.push_back(skipped_diag(i));
        continue;
      }
      out.outcomes.push_back(guarded(i));
      aborted = fail_fast && !out.outcomes.back().ok();
    }
  } else {
    // Chunked dispatch over the persistent pool: count circuits become at
    // most jobs * kBatchOverpartition contiguous-range tasks, so per-task
    // scheduling overhead (queue locking, future machinery) is paid per
    // chunk instead of per circuit. Each index still writes only its own
    // slot, so completion order is irrelevant to the result; the abort
    // flag is the only cross-task state, checked per index so fail-fast
    // stops mid-chunk, and only fail-fast reads it.
    std::vector<std::optional<Result<AnnotateResult>>> slots(count);
    std::atomic<bool> abort{false};
    ThreadPool& workers = pool();
    const std::size_t chunks =
        std::min(count, out.jobs * kBatchOverpartition);
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * count / chunks;
      const std::size_t end = (c + 1) * count / chunks;
      futures.push_back(workers.submit(
          [&slots, &guarded, &abort, fail_fast, begin, end]() {
            for (std::size_t i = begin; i < end; ++i) {
              if (fail_fast && abort.load(std::memory_order_relaxed)) {
                slots[i] = skipped_diag(i);
                continue;
              }
              slots[i] = guarded(i);
              if (fail_fast && !slots[i]->ok()) {
                abort.store(true, std::memory_order_relaxed);
              }
            }
          }));
    }
    for (auto& f : futures) {
      try {
        workers.wait(f);
      } catch (...) {
        // The task body never throws; this would be an allocation failure
        // inside the slot write. The slot stays empty and is filled below.
      }
    }
    out.outcomes.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!slots[i].has_value()) {
        slots[i] = make_diag(DiagCode::Internal, Stage::Batch,
                             "task " + std::to_string(i) +
                                 " produced no outcome");
      }
      out.outcomes.push_back(std::move(*slots[i]));
    }
  }
  out.timings.wall_seconds = wall.seconds();
  out.timings.apply_perf_delta(perf_snapshot() - perf_before);
  for (const auto& o : out.outcomes) {
    if (!o.ok()) continue;
    out.timings.prepare_seconds += o.value().cpu_seconds_prepare;
    out.timings.gcn_seconds += o.value().cpu_seconds_gcn;
    out.timings.post_seconds += o.value().cpu_seconds_post;
    out.timings.prepare_wall_seconds += o.value().seconds_prepare;
    out.timings.gcn_wall_seconds += o.value().seconds_gcn;
    out.timings.post_wall_seconds += o.value().seconds_post;
  }
  return out;
}

BatchResult BatchRunner::unwrap(BatchOutcome outcome) const {
  if (const Diag* failure = outcome.first_failure()) {
    throw spice::NetlistError(*failure);
  }
  BatchResult out;
  out.jobs = outcome.jobs;
  out.timings = outcome.timings;
  out.results.reserve(outcome.outcomes.size());
  for (auto& o : outcome.outcomes) {
    out.results.push_back(o.take());
  }
  return out;
}

BatchOutcome BatchRunner::run_isolated(
    const std::vector<datagen::LabeledCircuit>& batch) const {
  const Annotator& annotator = *annotator_;
  const std::uint64_t root = options_.seed;
  return dispatch(batch.size(), [&annotator, &batch, root](std::size_t i) {
    return annotator.try_annotate(batch[i], root);
  });
}

BatchOutcome BatchRunner::run_isolated(
    const std::vector<spice::Netlist>& netlists,
    const std::vector<std::string>& names) const {
  const Annotator& annotator = *annotator_;
  const std::uint64_t root = options_.seed;
  return dispatch(
      netlists.size(), [&annotator, &netlists, &names, root](std::size_t i) {
        const std::string name =
            i < names.size() ? names[i] : "batch/" + std::to_string(i);
        return annotator.try_annotate(netlists[i], name, root);
      });
}

BatchResult BatchRunner::run(
    const std::vector<datagen::LabeledCircuit>& batch) const {
  return unwrap(run_isolated(batch));
}

BatchResult BatchRunner::run(const std::vector<spice::Netlist>& netlists,
                             const std::vector<std::string>& names) const {
  return unwrap(run_isolated(netlists, names));
}

}  // namespace gana::core
