#include "core/export.hpp"

#include <sstream>

namespace gana::core {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void constraint_json(const constraints::Constraint& c, std::ostream& out) {
  out << "{\"kind\":\"" << constraints::to_string(c.kind) << "\",\"members\":[";
  for (std::size_t i = 0; i < c.members.size(); ++i) {
    if (i) out << ",";
    out << "\"" << json_escape(c.members[i]) << "\"";
  }
  out << "]";
  if (!c.tag.empty()) out << ",\"tag\":\"" << json_escape(c.tag) << "\"";
  out << "}";
}

const char* kind_name(HierarchyNode::Kind k) {
  switch (k) {
    case HierarchyNode::Kind::System: return "system";
    case HierarchyNode::Kind::SubBlock: return "sub-block";
    case HierarchyNode::Kind::Primitive: return "primitive";
    case HierarchyNode::Kind::Element: return "element";
  }
  return "?";
}

void node_json(const HierarchyNode& n, std::ostream& out) {
  out << "{\"kind\":\"" << kind_name(n.kind) << "\",\"name\":\""
      << json_escape(n.name) << "\",\"type\":\"" << json_escape(n.type)
      << "\"";
  if (!n.constraints.empty()) {
    out << ",\"constraints\":[";
    for (std::size_t i = 0; i < n.constraints.size(); ++i) {
      if (i) out << ",";
      constraint_json(n.constraints[i], out);
    }
    out << "]";
  }
  if (!n.children.empty()) {
    out << ",\"children\":[";
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      if (i) out << ",";
      node_json(n.children[i], out);
    }
    out << "]";
  }
  out << "}";
}

}  // namespace

std::string hierarchy_to_json(const HierarchyNode& root) {
  std::ostringstream out;
  node_json(root, out);
  return out.str();
}

std::string batch_timings_to_json(const BatchTimings& t, std::size_t jobs,
                                  std::size_t ok, std::size_t total) {
  std::ostringstream out;
  out << "{\"circuits\":" << total << ",\"ok\":" << ok
      << ",\"jobs\":" << jobs
      << ",\"wall_seconds\":" << t.wall_seconds
      << ",\"prepare_seconds\":" << t.prepare_seconds
      << ",\"gcn_seconds\":" << t.gcn_seconds
      << ",\"post_seconds\":" << t.post_seconds
      << ",\"prepare_wall_seconds\":" << t.prepare_wall_seconds
      << ",\"gcn_wall_seconds\":" << t.gcn_wall_seconds
      << ",\"post_wall_seconds\":" << t.post_wall_seconds
      << ",\"matrix_allocs\":" << t.matrix_allocs
      << ",\"matrix_alloc_bytes\":" << t.matrix_alloc_bytes
      << ",\"spmm_calls\":" << t.spmm_calls
      << ",\"spmm_flops\":" << t.spmm_flops
      << ",\"matmul_calls\":" << t.matmul_calls
      << ",\"matmul_flops\":" << t.matmul_flops
      << ",\"sample_cache_hits\":" << t.sample_cache_hits
      << ",\"sample_cache_misses\":" << t.sample_cache_misses
      << ",\"inference_cache_hits\":" << t.inference_cache_hits
      << ",\"inference_cache_misses\":" << t.inference_cache_misses
      << ",\"vf2_states\":" << t.vf2_states
      << ",\"vf2_sig_rejections\":" << t.vf2_sig_rejections
      << ",\"vf2_pattern_skips\":" << t.vf2_pattern_skips
      << ",\"annotation_cache_hits\":" << t.annotation_cache_hits
      << ",\"annotation_cache_misses\":" << t.annotation_cache_misses
      << ",\"cache_evictions\":" << t.cache_evictions
      << ",\"parse_bytes\":" << t.parse_bytes
      << ",\"intern_hits\":" << t.intern_hits
      << ",\"intern_misses\":" << t.intern_misses
      << ",\"frontend_allocs\":" << t.frontend_allocs
      << ",\"incr_regions\":" << t.incr_regions
      << ",\"incr_region_reuses\":" << t.incr_region_reuses
      << ",\"incr_region_recomputes\":" << t.incr_region_recomputes
      << ",\"incr_canon_fallbacks\":" << t.incr_canon_fallbacks << "}";
  return out.str();
}

std::string annotation_to_json(const AnnotateResult& result,
                               const std::vector<std::string>& class_names) {
  std::ostringstream out;
  out << "{\"circuit\":\"" << json_escape(result.prepared.name) << "\",";
  out << "\"classes\":[";
  for (std::size_t i = 0; i < class_names.size(); ++i) {
    if (i) out << ",";
    out << "\"" << json_escape(class_names[i]) << "\"";
  }
  out << "],";
  out << "\"accuracy\":{\"gcn\":" << result.acc_gcn
      << ",\"post1\":" << result.acc_post1
      << ",\"post2\":" << result.acc_post2 << "},";

  out << "\"vertices\":[";
  const auto& g = result.prepared.graph;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (v) out << ",";
    const auto& vert = g.vertex(v);
    out << "{\"name\":\"" << json_escape(vert.name) << "\",\"kind\":\""
        << (vert.kind == graph::VertexKind::Element ? "element" : "net")
        << "\",\"class\":";
    const int cls = result.final_class[v];
    if (cls >= 0 && static_cast<std::size_t>(cls) < class_names.size()) {
      out << "\"" << json_escape(class_names[static_cast<std::size_t>(cls)])
          << "\"";
    } else {
      out << "null";
    }
    out << "}";
  }
  out << "],";

  out << "\"primitives\":[";
  for (std::size_t i = 0; i < result.post.primitives.size(); ++i) {
    if (i) out << ",";
    const auto& p = result.post.primitives[i];
    out << "{\"type\":\"" << json_escape(p.display_name)
        << "\",\"elements\":[";
    for (std::size_t j = 0; j < p.elements.size(); ++j) {
      if (j) out << ",";
      out << "\"" << json_escape(g.vertex(p.elements[j]).name) << "\"";
    }
    out << "]}";
  }
  out << "],";

  out << "\"hierarchy\":";
  node_json(result.hierarchy, out);
  out << "}";
  return out.str();
}

std::string graph_to_dot(const graph::CircuitGraph& g,
                         const std::vector<int>& vertex_class,
                         const std::vector<std::string>& class_names) {
  static const char* kPalette[] = {"#4e79a7", "#59a14f", "#e15759",
                                   "#f28e2b", "#76b7b2", "#b07aa1",
                                   "#edc948", "#9c755f"};
  std::ostringstream out;
  out << "graph circuit {\n  graph [overlap=false];\n";
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto& vert = g.vertex(v);
    const int cls = v < vertex_class.size() ? vertex_class[v] : -1;
    const char* color =
        cls >= 0 ? kPalette[static_cast<std::size_t>(cls) % 8] : "#cccccc";
    if (vert.kind == graph::VertexKind::Element) {
      out << "  v" << v << " [shape=box,style=filled,fillcolor=\"" << color
          << "\",label=\"" << json_escape(vert.name) << "\\n("
          << spice::to_string(vert.dtype);
      if (cls >= 0 && static_cast<std::size_t>(cls) < class_names.size()) {
        out << ", " << class_names[static_cast<std::size_t>(cls)];
      }
      out << ")\"];\n";
    } else {
      out << "  v" << v << " [shape=ellipse,label=\""
          << json_escape(vert.name) << "\"];\n";
    }
  }
  for (const auto& e : g.edges()) {
    out << "  v" << e.element << " -- v" << e.net;
    if (e.label != 0) {
      out << " [label=\"" << ((e.label >> 2) & 1) << ((e.label >> 1) & 1)
          << (e.label & 1) << "\"]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace gana::core
