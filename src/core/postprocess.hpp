// Postprocessing of GCN classifications (paper §V-A).
//
// Postprocessing I (graph heuristics, design-independent):
//   * every vertex of a channel-connected component takes the CCC's
//     probability-weighted majority class;
//   * CCCs made entirely of inverter primitives are separated into
//     stand-alone units: a cyclic inverter chain is a ring oscillator, a
//     linear chain is a buffer (BUF), an inverter with a feedback
//     resistor is an inverter amplifier (INV);
//   * an oscillator-classified CCC with a cross-coupled pair plus
//     injection transistors (externally driven gates) is a BPF.
//
// Postprocessing II (class-specific port knowledge):
//   * a block touching an antenna-labeled net is the LNA;
//   * a block *driving* (source/drain) an oscillating-input net is an
//     oscillator; a block *gated* by one is a mixer.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "graph/ccc.hpp"
#include "graph/circuit_graph.hpp"
#include "linalg/dense.hpp"
#include "primitives/annotator.hpp"
#include "primitives/library.hpp"

namespace gana::core {

struct PostprocessResult {
  /// Final class per CCC (ids index the full class-name list, which may
  /// be longer than the GCN's output classes, e.g. bpf/buf/invamp).
  std::vector<int> cluster_class;
  /// All primitive instances found in the graph.
  std::vector<primitives::PrimitiveInstance> primitives;
  /// Indices into `primitives` of stand-alone units (buffers and
  /// inverter amps separated from sub-blocks).
  std::vector<std::size_t> standalone;
  /// CCC ids whose class was decided *structurally* by Postprocessing I
  /// (inverter chains/rings, LC oscillators, BPFs, inherited bias
  /// branches). Postprocessing II's port rules never override these.
  std::set<std::size_t> structural;
  /// True when the VF2 budget truncated primitive extraction; the
  /// primitive list is then a deterministic partial annotation.
  bool primitives_truncated = false;
  /// VF2 states explored across all library patterns.
  std::size_t vf2_states = 0;
};

/// Looks up a class name, returning its id or nullopt.
std::optional<int> class_id(const std::vector<std::string>& class_names,
                            const std::string& name);

/// Postprocessing I. `probs` holds the GCN's per-vertex class
/// probabilities (columns = the first probs.cols() entries of
/// `class_names`). `annotate_options` tunes primitive extraction (VF2
/// budgets, pattern-parallel pool, annotation cache); the default runs
/// sequential and uncached. Options never change the accepted primitive
/// set -- only how fast it is found.
PostprocessResult postprocess_stage1(
    const graph::CircuitGraph& g, const graph::CccResult& ccc,
    const Matrix& probs, const std::vector<std::string>& class_names,
    const primitives::PrimitiveLibrary& library,
    const primitives::AnnotateOptions& annotate_options = {});

/// Postprocessing I on a *precomputed* primitive annotation. The
/// incremental session engine runs VF2 per region (splicing cached
/// per-structure results for clean regions), merges the instances into
/// whole-graph order, and hands the merged outcome here -- everything
/// after extraction (CCC vote, stand-alone separation, LC/BPF rules,
/// bias inheritance) is cheap and global. Bit-identical to
/// postprocess_stage1 when `annotation` equals
/// annotate_primitives_guarded(g, library, options).
PostprocessResult postprocess_stage1_with_annotation(
    const graph::CircuitGraph& g, const graph::CccResult& ccc,
    const Matrix& probs, const std::vector<std::string>& class_names,
    primitives::AnnotateOutcome annotation);

/// Postprocessing II; updates `result.cluster_class` in place. No-op for
/// class vocabularies without RF classes.
void postprocess_stage2(const graph::CircuitGraph& g,
                        const graph::CccResult& ccc,
                        const std::vector<std::string>& class_names,
                        PostprocessResult& result);

/// Re-assigns pure bias-branch CCCs (diode references + sources) to the
/// class of the block they bias. Called by both stages; exposed for
/// custom flows. No-op for vocabularies with a dedicated "bias" class.
void inherit_bias_branches(const graph::CircuitGraph& g,
                           const graph::CccResult& ccc,
                           const std::vector<std::string>& class_names,
                           PostprocessResult& result);

/// Per-vertex classes from cluster classes: elements take their CCC's
/// class, nets the majority of adjacent elements, rails -1.
std::vector<int> vertex_classes(const graph::CircuitGraph& g,
                                const graph::CccResult& ccc,
                                const std::vector<int>& cluster_class);

/// Fraction of vertices (with truth >= 0 and prediction >= 0 semantics:
/// truth >= 0 counts) where prediction equals truth.
double accuracy(const std::vector<int>& prediction,
                const std::vector<int>& truth);

}  // namespace gana::core
