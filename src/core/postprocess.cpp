#include "core/postprocess.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace gana::core {

using graph::CircuitGraph;
using graph::NetRole;
using graph::VertexKind;

std::optional<int> class_id(const std::vector<std::string>& class_names,
                            const std::string& name) {
  for (std::size_t i = 0; i < class_names.size(); ++i) {
    if (class_names[i] == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

namespace {

bool is_rail_net(const graph::Vertex& v) {
  return v.kind == VertexKind::Net &&
         (v.role == NetRole::Supply || v.role == NetRole::Ground);
}

/// True if the net has an adjacent diode-connected MOS (gate+drain edge),
/// i.e. it is a mirror/bias feed rather than a signal injection.
bool net_has_diode_neighbor(const CircuitGraph& g, std::size_t net) {
  for (std::size_t eid : g.incident(net)) {
    const auto& e = g.edge(eid);
    const int bits = (e.label & 1) + ((e.label >> 1) & 1) + ((e.label >> 2) & 1);
    if (bits >= 2) return true;
  }
  return false;
}

/// True if a resistor connects nets `a` and `b`.
bool has_resistor_between(const CircuitGraph& g, std::size_t a,
                          std::size_t b) {
  for (std::size_t eid : g.incident(a)) {
    const auto& e = g.edge(eid);
    if (g.vertex(e.element).dtype != spice::DeviceType::Resistor) continue;
    for (std::size_t eid2 : g.incident(e.element)) {
      if (g.edge(eid2).net == b) return true;
    }
  }
  return false;
}

}  // namespace

PostprocessResult postprocess_stage1(
    const CircuitGraph& g, const graph::CccResult& ccc, const Matrix& probs,
    const std::vector<std::string>& class_names,
    const primitives::PrimitiveLibrary& library,
    const primitives::AnnotateOptions& annotate_options) {
  // --- Primitive extraction over the whole graph, under the VF2
  // resource budget: pathological graphs yield a deterministic partial
  // annotation flagged via `primitives_truncated` instead of hanging.
  auto annotation =
      primitives::annotate_primitives_guarded(g, library, annotate_options);
  return postprocess_stage1_with_annotation(g, ccc, probs, class_names,
                                            std::move(annotation));
}

PostprocessResult postprocess_stage1_with_annotation(
    const CircuitGraph& g, const graph::CccResult& ccc, const Matrix& probs,
    const std::vector<std::string>& class_names,
    primitives::AnnotateOutcome annotation) {
  PostprocessResult result;
  const std::size_t k = probs.cols();

  // --- Probability-weighted majority vote per CCC.
  result.cluster_class.assign(ccc.count, 0);
  for (std::size_t c = 0; c < ccc.count; ++c) {
    std::vector<double> score(k, 0.0);
    for (std::size_t v : ccc.members[c]) {
      for (std::size_t j = 0; j < k; ++j) score[j] += probs(v, j);
    }
    result.cluster_class[c] = static_cast<int>(
        std::max_element(score.begin(), score.end()) - score.begin());
  }

  result.primitives = std::move(annotation.primitives);
  result.primitives_truncated = annotation.truncated;
  result.vf2_states = annotation.vf2_states;

  // Primitive instances grouped by CCC (an instance belongs to the CCC of
  // its elements; library patterns never straddle CCCs except through
  // gate-only nets, so the first element decides).
  std::vector<std::vector<std::size_t>> prims_of_ccc(ccc.count);
  for (std::size_t pi = 0; pi < result.primitives.size(); ++pi) {
    const auto& inst = result.primitives[pi];
    if (inst.elements.empty()) continue;
    const int c = ccc.of(inst.elements.front());
    if (c >= 0) prims_of_ccc[static_cast<std::size_t>(c)].push_back(pi);
  }

  // --- Stand-alone separation of inverter chains. A CMOS inverter is its
  // own CCC (gates do not merge components), so buffers, inverter
  // amplifiers, and ring oscillators span several CCCs connected only by
  // gate nets. We build a chain graph over "pure" inverter CCCs (all MOS
  // devices covered by an INV primitive) and classify each weakly
  // connected chain: a directed cycle is a ring oscillator, a feedback
  // resistor marks an inverter amplifier, anything else is a buffer.
  const auto buf_id = class_id(class_names, "buf");
  const auto inv_id = class_id(class_names, "invamp");
  const auto osc_id = class_id(class_names, "osc");
  if (buf_id || inv_id) {
    struct InvNode {
      std::size_t prim_index;       ///< into result.primitives
      std::size_t in_net, out_net;  ///< net vertex ids
      std::set<std::size_t> cccs;   ///< components its elements live in
    };
    // Collect inverter-family instances (a 4T buffer is one "buf"
    // instance; a lone CMOS inverter is an "inv" instance) and the set of
    // elements they cover per CCC.
    std::vector<InvNode> candidates;
    std::map<std::size_t, std::set<std::size_t>> covered_of_ccc;
    for (std::size_t pi = 0; pi < result.primitives.size(); ++pi) {
      const auto& inst = result.primitives[pi];
      if (inst.type != "inv" && inst.type != "buf") continue;
      auto in_it = inst.net_binding.find("in");
      auto out_it = inst.net_binding.find("out");
      if (in_it == inst.net_binding.end() ||
          out_it == inst.net_binding.end()) {
        continue;
      }
      InvNode node;
      node.prim_index = pi;
      node.in_net = in_it->second;
      node.out_net = out_it->second;
      for (std::size_t v : inst.elements) {
        const int c = ccc.of(v);
        if (c < 0) continue;
        node.cccs.insert(static_cast<std::size_t>(c));
        covered_of_ccc[static_cast<std::size_t>(c)].insert(v);
      }
      candidates.push_back(std::move(node));
    }
    // Eligible = every touched CCC is "pure": all its MOS devices belong
    // to inverter-family primitives (a push-pull OTA output stage never
    // qualifies because its neighbors are not inverters).
    auto ccc_pure = [&](std::size_t c) {
      auto it = covered_of_ccc.find(c);
      if (it == covered_of_ccc.end()) return false;
      for (std::size_t v : ccc.members[c]) {
        if (spice::is_mos(g.vertex(v).dtype) && !it->second.count(v)) {
          return false;
        }
      }
      return true;
    };
    std::vector<InvNode> chain;
    for (auto& node : candidates) {
      bool ok = !node.cccs.empty();
      for (std::size_t c : node.cccs) ok = ok && ccc_pure(c);
      if (ok) chain.push_back(std::move(node));
    }
    // Union inverters sharing a net (weak connectivity).
    std::vector<std::size_t> group(chain.size());
    for (std::size_t i = 0; i < chain.size(); ++i) group[i] = i;
    std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
      while (group[x] != x) {
        group[x] = group[group[x]];
        x = group[x];
      }
      return x;
    };
    for (std::size_t i = 0; i < chain.size(); ++i) {
      for (std::size_t j = i + 1; j < chain.size(); ++j) {
        if (chain[i].out_net == chain[j].in_net ||
            chain[j].out_net == chain[i].in_net) {
          group[find(i)] = find(j);
        }
      }
    }
    std::map<std::size_t, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      groups[find(i)].push_back(i);
    }
    for (const auto& [root, members] : groups) {
      (void)root;
      // Directed cycle: follow out -> in links up to |members| hops.
      bool cycle = false;
      for (std::size_t start : members) {
        std::size_t cur = start;
        for (std::size_t hop = 0; hop <= members.size(); ++hop) {
          bool advanced = false;
          for (std::size_t j : members) {
            if (chain[j].in_net == chain[cur].out_net) {
              cur = j;
              advanced = true;
              break;
            }
          }
          if (!advanced) break;
          if (cur == start) {
            cycle = true;
            break;
          }
        }
        if (cycle) break;
      }
      bool feedback = false;
      for (std::size_t i : members) {
        if (has_resistor_between(g, chain[i].in_net, chain[i].out_net)) {
          feedback = true;
          break;
        }
      }
      std::optional<int> id;
      if (cycle) {
        id = osc_id;
      } else if (feedback) {
        id = inv_id;
      } else {
        id = buf_id;
      }
      if (!id) continue;
      for (std::size_t i : members) {
        for (std::size_t c : chain[i].cccs) {
          result.cluster_class[c] = *id;
          result.structural.insert(c);
        }
        if (!cycle) result.standalone.push_back(chain[i].prim_index);
      }
    }
  }

  // --- LC-oscillator / BPF structural rule. A CCC containing a
  // cross-coupled pair together with a tank inductor is an LC oscillator
  // regardless of the GCN's vote; if it additionally has >= 2 injection
  // transistors whose gates are driven from outside the component, it is
  // the paper's BPF ("a combination of an oscillator with two input
  // transistors", §V-B).
  const auto bpf_id = class_id(class_names, "bpf");
  if (osc_id) {
    for (std::size_t c = 0; c < ccc.count; ++c) {
      std::set<std::size_t> cp_elements;
      for (std::size_t pi : prims_of_ccc[c]) {
        const auto& inst = result.primitives[pi];
        if (inst.type == "cp_n" || inst.type == "cp_p") {
          cp_elements.insert(inst.elements.begin(), inst.elements.end());
        }
      }
      if (cp_elements.empty()) continue;
      bool has_inductor = false;
      for (std::size_t v : ccc.members[c]) {
        if (g.vertex(v).dtype == spice::DeviceType::Inductor) {
          has_inductor = true;
          break;
        }
      }
      if (!has_inductor) continue;
      result.cluster_class[c] = *osc_id;
      result.structural.insert(c);
      // Channel nets of this CCC: nets touched by a member's source or
      // drain. A gate on anything else is driven from outside the
      // component (an injection input), unless it is a bias/diode feed.
      std::set<std::size_t> channel_nets;
      for (std::size_t v : ccc.members[c]) {
        if (!spice::is_mos(g.vertex(v).dtype)) continue;
        for (std::size_t eid : g.incident(v)) {
          const auto& e = g.edge(eid);
          if (e.label & (graph::kLabelSource | graph::kLabelDrain)) {
            channel_nets.insert(e.net);
          }
        }
      }
      int injections = 0;
      for (std::size_t v : ccc.members[c]) {
        if (!spice::is_mos(g.vertex(v).dtype) || cp_elements.count(v)) {
          continue;
        }
        for (std::size_t eid : g.incident(v)) {
          const auto& e = g.edge(eid);
          if ((e.label & graph::kLabelGate) == 0) continue;
          const auto& net = g.vertex(e.net);
          if (is_rail_net(net) || net.role == NetRole::Bias) continue;
          if (net_has_diode_neighbor(g, e.net)) continue;
          if (!channel_nets.count(e.net)) ++injections;
        }
      }
      if (bpf_id && injections >= 2) result.cluster_class[c] = *bpf_id;
    }
  }

  inherit_bias_branches(g, ccc, class_names, result);
  return result;
}

// Bias-branch inheritance. In vocabularies without a dedicated "bias"
// class (the RF sets), a CCC made of diode-connected references plus
// sources/passives exists only to bias another block: it adopts the
// majority class of the devices *gated* by its nets (the paper's
// hierarchies likewise keep a block's bias devices with the block).
// Idempotent; re-run after any rule that changes cluster classes.
void inherit_bias_branches(const CircuitGraph& g,
                           const graph::CccResult& ccc,
                           const std::vector<std::string>& class_names,
                           PostprocessResult& result) {
  if (class_id(class_names, "bias")) return;
  for (std::size_t c = 0; c < ccc.count; ++c) {
    bool has_diode = false, bias_like = true;
    for (std::size_t v : ccc.members[c]) {
      if (!spice::is_mos(g.vertex(v).dtype)) continue;
      bool diode = false;
      for (std::size_t eid : g.incident(v)) {
        const auto label = g.edge(eid).label;
        if ((label & graph::kLabelGate) &&
            (label & (graph::kLabelSource | graph::kLabelDrain))) {
          diode = true;
        }
      }
      if (diode) {
        has_diode = true;
      } else {
        bias_like = false;
        break;
      }
    }
    if (!has_diode || !bias_like) continue;
    // Vote over the cluster classes of externally gated devices.
    std::map<int, int> votes;
    for (std::size_t v : ccc.members[c]) {
      for (std::size_t eid : g.incident(v)) {
        const std::size_t net = g.edge(eid).net;
        for (std::size_t eid2 : g.incident(net)) {
          const auto& e2 = g.edge(eid2);
          if ((e2.label & graph::kLabelGate) == 0) continue;
          const int other_c = ccc.of(e2.element);
          if (other_c < 0 || other_c == static_cast<int>(c)) continue;
          ++votes[result.cluster_class[static_cast<std::size_t>(other_c)]];
        }
      }
    }
    int best = -1, best_votes = 0;
    for (auto [cls, cnt] : votes) {
      if (cnt > best_votes) {
        best = cls;
        best_votes = cnt;
      }
    }
    if (best >= 0) {
      result.cluster_class[c] = best;
      result.structural.insert(c);
    }
  }
}

void postprocess_stage2(const CircuitGraph& g, const graph::CccResult& ccc,
                        const std::vector<std::string>& class_names,
                        PostprocessResult& result) {
  const auto lna_id = class_id(class_names, "lna");
  const auto mixer_id = class_id(class_names, "mixer");
  const auto osc_id = class_id(class_names, "osc");
  if (!lna_id || !mixer_id || !osc_id) return;  // no RF knowledge applies

  auto is_core_rf = [&](int cls) {
    return cls == *lna_id || cls == *mixer_id || cls == *osc_id;
  };

  // Classes of the clusters *driving* a net through a short passive chain
  // (gate inductors, AC-coupling caps): BFS from `net` over R/L/C
  // elements, collecting the classes of clusters whose MOS devices put a
  // channel terminal on a reached net.
  auto driving_classes = [&](std::size_t start_net,
                             std::size_t self) -> std::set<int> {
    std::set<int> classes;
    std::set<std::size_t> seen{start_net};
    std::vector<std::size_t> frontier{start_net};
    for (int depth = 0; depth < 3 && !frontier.empty(); ++depth) {
      std::vector<std::size_t> next;
      for (std::size_t net : frontier) {
        for (std::size_t eid : g.incident(net)) {
          const auto& e = g.edge(eid);
          const auto& el = g.vertex(e.element);
          if (spice::is_mos(el.dtype)) {
            if ((e.label & (graph::kLabelSource | graph::kLabelDrain)) == 0) {
              continue;
            }
            const int oc = ccc.of(e.element);
            if (oc >= 0 && oc != static_cast<int>(self)) {
              classes.insert(
                  result.cluster_class[static_cast<std::size_t>(oc)]);
            }
          } else if (spice::is_passive(el.dtype)) {
            for (std::size_t eid2 : g.incident(e.element)) {
              const std::size_t other = g.edge(eid2).net;
              if (seen.insert(other).second) next.push_back(other);
            }
          }
        }
      }
      frontier = std::move(next);
    }
    return classes;
  };

  // Port rules + signal-chain propagation, iterated to a fixpoint so a
  // corrected LNA stage can pull the next cascade stage with it.
  for (int iter = 0; iter < 4; ++iter) {
    bool changed = false;
    for (std::size_t c = 0; c < ccc.count; ++c) {
      if (!is_core_rf(result.cluster_class[c])) continue;
      if (result.structural.count(c)) continue;
      bool touches_antenna = false;
      bool drives_lo = false;  // source/drain on an oscillating net
      bool gated_by_lo = false;
      for (std::size_t v : ccc.members[c]) {
        for (std::size_t eid : g.incident(v)) {
          const auto& e = g.edge(eid);
          const auto& net = g.vertex(e.net);
          if (net.role == NetRole::Antenna) touches_antenna = true;
          if (net.role == NetRole::LocalOsc) {
            if (e.label & (graph::kLabelSource | graph::kLabelDrain)) {
              drives_lo = true;
            }
            if (e.label & graph::kLabelGate) gated_by_lo = true;
          }
        }
      }
      int cls = result.cluster_class[c];
      if (touches_antenna) {
        cls = *lna_id;
      } else if (drives_lo) {
        cls = *osc_id;
      } else if (gated_by_lo) {
        cls = *mixer_id;
      } else if (cls == *osc_id) {
        // "An LNA has an antenna input, while a mixer has an oscillating
        // input" -- and a free-running oscillator has no signal input at
        // all. An osc-classified cluster that is not structurally an
        // oscillator and whose gates are fed through passives from an
        // LNA-classified cluster is another gain stage of the front end.
        bool fed_by_lna = false;
        for (std::size_t v : ccc.members[c]) {
          if (!spice::is_mos(g.vertex(v).dtype)) continue;
          for (std::size_t eid : g.incident(v)) {
            const auto& e = g.edge(eid);
            if ((e.label & graph::kLabelGate) == 0) continue;
            if (e.label &
                (graph::kLabelSource | graph::kLabelDrain)) {
              continue;  // diode-connected: a bias node, not an input
            }
            const auto drivers = driving_classes(e.net, c);
            if (drivers.count(*lna_id)) fed_by_lna = true;
          }
        }
        if (fed_by_lna) cls = *lna_id;
      }
      if (cls != result.cluster_class[c]) {
        result.cluster_class[c] = cls;
        changed = true;
      }
    }
    if (!changed) break;
  }
  // Bias branches follow the blocks they bias after any reassignment.
  inherit_bias_branches(g, ccc, class_names, result);
}

std::vector<int> vertex_classes(const CircuitGraph& g,
                                const graph::CccResult& ccc,
                                const std::vector<int>& cluster_class) {
  std::vector<int> out(g.vertex_count(), -1);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto& vert = g.vertex(v);
    if (vert.kind == VertexKind::Element) {
      const int c = ccc.of(v);
      if (c >= 0) out[v] = cluster_class[static_cast<std::size_t>(c)];
    }
  }
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto& vert = g.vertex(v);
    if (vert.kind != VertexKind::Net || is_rail_net(vert)) continue;
    std::map<int, int> votes;
    for (std::size_t eid : g.incident(v)) {
      const int c = out[g.edge(eid).element];
      if (c >= 0) ++votes[c];
    }
    int best = -1, best_votes = 0;
    for (auto [cls, cnt] : votes) {
      if (cnt > best_votes) {
        best = cls;
        best_votes = cnt;
      }
    }
    out[v] = best;
  }
  return out;
}

double accuracy(const std::vector<int>& prediction,
                const std::vector<int>& truth) {
  std::size_t correct = 0, counted = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] < 0) continue;
    ++counted;
    if (i < prediction.size() && prediction[i] == truth[i]) ++correct;
  }
  return counted > 0
             ? static_cast<double>(correct) / static_cast<double>(counted)
             : 1.0;
}

}  // namespace gana::core
