// The 18 per-vertex input features of the GCN (paper §V-A):
//   * 12 element-type features: device one-hot (NMOS, PMOS, R, C, L,
//     voltage reference, current reference, hierarchical block), the
//     hierarchy level, and a low/medium/high value bucket;
//   * 5 net-type features: input, output, bias, supply, ground;
//   * 1 feature describing the labeled edges incident on a transistor
//     vertex (set when any terminal pair is merged, e.g. diode-connected
//     gate-drain ties -- the signature of mirror inputs).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/circuit_graph.hpp"
#include "linalg/dense.hpp"

namespace gana::core {

inline constexpr std::size_t kNumFeatures = 18;

/// Feature column indices (documented layout; tests rely on it).
enum Feature : std::size_t {
  kFeatNmos = 0,
  kFeatPmos,
  kFeatResistor,
  kFeatCapacitor,
  kFeatInductor,
  kFeatVRef,
  kFeatIRef,
  kFeatHierBlock,
  kFeatHierLevel,
  kFeatValueLow,
  kFeatValueMed,
  kFeatValueHigh,
  kFeatNetInput,
  kFeatNetOutput,
  kFeatNetBias,
  kFeatNetSupply,
  kFeatNetGround,
  kFeatEdgeMerged,
};

/// Builds the n x 18 feature matrix for a circuit graph.
Matrix build_features(const graph::CircuitGraph& g);

/// Order-sensitive fingerprint of a feature matrix: FNV-1a over the
/// dimensions and the raw IEEE-754 bits of every entry. Folded into the
/// GCN inference-cache key so two circuits that share a structural hash
/// but differ in feature *values* (e.g. a sizing edit that crosses a
/// value bucket) can never alias to one cached probability matrix.
std::uint64_t features_fingerprint(const Matrix& features);

/// Ground-truth class per vertex: elements take their device label; nets
/// take the majority label of adjacent elements (ties break toward the
/// smaller class id); supply/ground rails and unlabeled vertices get -1.
std::vector<int> vertex_labels(
    const graph::CircuitGraph& g,
    const std::map<std::string, int>& device_labels);

}  // namespace gana::core
