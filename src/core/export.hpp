// Machine-readable exports of annotation results.
//
// The paper positions GANA as the front end of the ALIGN layout flow:
// "each recognition step is helpful in providing a set of substructures
// that can be transmitted to a placement/routing algorithm". These
// exporters are that hand-off surface: a JSON rendering of the hierarchy
// tree with its constraints, and a Graphviz DOT rendering of the
// annotated bipartite graph for inspection.
#pragma once

#include <string>

#include "core/batch_runner.hpp"
#include "core/pipeline.hpp"

namespace gana::core {

/// Serializes one batch run's performance observations -- wall/stage
/// seconds plus the perf-counter deltas (allocations, spmm/matmul flops,
/// sample-cache hits) -- as a flat JSON object (the `--perf-json` CLI
/// payload and the benchmark record format).
std::string batch_timings_to_json(const BatchTimings& t, std::size_t jobs,
                                  std::size_t ok, std::size_t total);

/// Serializes a hierarchy tree (names, types, constraints, children) as
/// JSON. Stable field order; no external JSON dependency.
std::string hierarchy_to_json(const HierarchyNode& root);

/// Serializes a full annotation result: hierarchy, per-vertex classes,
/// primitive instances, and stage accuracies.
std::string annotation_to_json(const AnnotateResult& result,
                               const std::vector<std::string>& class_names);

/// Graphviz DOT of the bipartite circuit graph; element vertices are
/// boxes colored by final class, nets are ellipses, edge labels show the
/// l_g l_s l_d bits.
std::string graph_to_dot(const graph::CircuitGraph& g,
                         const std::vector<int>& vertex_class,
                         const std::vector<std::string>& class_names);

}  // namespace gana::core
