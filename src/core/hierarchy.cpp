#include "core/hierarchy.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "core/constraints.hpp"

namespace gana::core {

using graph::CircuitGraph;
using graph::VertexKind;

std::size_t HierarchyNode::element_count() const {
  if (kind == Kind::Element) return 1;
  std::size_t n = 0;
  for (const auto& c : children) n += c.element_count();
  return n;
}

std::size_t HierarchyNode::depth() const {
  std::size_t d = 0;
  for (const auto& c : children) d = std::max(d, c.depth());
  return d + 1;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

HierarchyNode build_hierarchy(const CircuitGraph& g,
                              const graph::CccResult& ccc,
                              const PostprocessResult& post,
                              const std::vector<std::string>& class_names,
                              const std::string& circuit_name) {
  HierarchyNode root;
  root.kind = HierarchyNode::Kind::System;
  root.name = circuit_name;
  root.type = "system";

  const std::set<std::size_t> standalone_prims(post.standalone.begin(),
                                               post.standalone.end());

  // Merge same-class CCCs that share a (non-rail) net into one sub-block.
  UnionFind uf(ccc.count);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto& vert = g.vertex(v);
    if (vert.kind != VertexKind::Net) continue;
    if (vert.role == graph::NetRole::Supply ||
        vert.role == graph::NetRole::Ground) {
      continue;
    }
    std::vector<int> comps;
    for (std::size_t eid : g.incident(v)) {
      const int c = ccc.of(g.edge(eid).element);
      if (c >= 0) comps.push_back(c);
    }
    for (std::size_t i = 1; i < comps.size(); ++i) {
      const auto a = static_cast<std::size_t>(comps[0]);
      const auto b = static_cast<std::size_t>(comps[i]);
      if (post.cluster_class[a] == post.cluster_class[b]) uf.unite(a, b);
    }
  }

  // Group element vertices per merged sub-block.
  std::map<std::size_t, std::vector<std::size_t>> members_of_block;
  for (std::size_t c = 0; c < ccc.count; ++c) {
    const std::size_t root_c = uf.find(c);
    auto& m = members_of_block[root_c];
    m.insert(m.end(), ccc.members[c].begin(), ccc.members[c].end());
  }

  // Elements covered by a stand-alone primitive are pulled out of their
  // sub-block and emitted as top-level primitive nodes.
  std::set<std::size_t> standalone_elements;
  for (std::size_t pi : standalone_prims) {
    const auto& inst = post.primitives[pi];
    standalone_elements.insert(inst.elements.begin(), inst.elements.end());
  }

  // Primitive -> owning merged block (by its first element). A primitive
  // may span blocks (e.g. a current mirror whose diode lives in the bias
  // network and whose output device is an OTA tail -- the situation that
  // motivates flattening in §II-B); it is emitted once, in the block of
  // its first element, and its elements never reappear as loose leaves.
  std::map<std::size_t, std::vector<std::size_t>> prims_of_block;
  std::set<std::size_t> claimed_by_primitive;
  for (std::size_t pi = 0; pi < post.primitives.size(); ++pi) {
    if (standalone_prims.count(pi)) continue;
    const auto& inst = post.primitives[pi];
    if (inst.elements.empty()) continue;
    claimed_by_primitive.insert(inst.elements.begin(), inst.elements.end());
    const int c = ccc.of(inst.elements.front());
    if (c >= 0) {
      prims_of_block[uf.find(static_cast<std::size_t>(c))].push_back(pi);
    }
  }

  auto element_node = [&](std::size_t v) {
    HierarchyNode leaf;
    leaf.kind = HierarchyNode::Kind::Element;
    leaf.name = g.vertex(v).name;
    leaf.type = spice::to_string(g.vertex(v).dtype);
    return leaf;
  };

  auto primitive_node = [&](std::size_t pi) {
    const auto& inst = post.primitives[pi];
    HierarchyNode node;
    node.kind = HierarchyNode::Kind::Primitive;
    node.name = inst.type + "_" + std::to_string(pi);
    node.type = inst.display_name;
    node.constraints = inst.constraints;
    for (std::size_t v : inst.elements) node.children.push_back(element_node(v));
    return node;
  };

  std::map<std::string, int> type_counter;
  for (auto& [block_root, elements] : members_of_block) {
    // Skip blocks whose elements are all stand-alone (emitted below).
    std::vector<std::size_t> own;
    for (std::size_t v : elements) {
      if (!standalone_elements.count(v)) own.push_back(v);
    }
    if (own.empty()) continue;
    const int cls = post.cluster_class[block_root];
    const std::string cls_name =
        cls >= 0 && static_cast<std::size_t>(cls) < class_names.size()
            ? class_names[static_cast<std::size_t>(cls)]
            : "unknown";

    HierarchyNode block;
    block.kind = HierarchyNode::Kind::SubBlock;
    block.name = cls_name + std::to_string(type_counter[cls_name]++);
    block.type = cls_name;

    // Constituent CCCs of this merged block: when a block was stitched
    // together from several channel-connected components (e.g. the two
    // stages of a Miller OTA), each becomes a nested stage node -- the
    // paper's hierarchy trees likewise nest "STAGE 1"/"STAGE 2" inside
    // the big OTA (Fig. 1(c)).
    std::map<int, std::vector<std::size_t>> prims_of_stage;
    for (std::size_t pi : prims_of_block[block_root]) {
      const auto& inst = post.primitives[pi];
      prims_of_stage[ccc.of(inst.elements.front())].push_back(pi);
    }
    std::map<int, std::vector<std::size_t>> loose_of_stage;
    for (std::size_t v : own) {
      if (!claimed_by_primitive.count(v)) {
        loose_of_stage[ccc.of(v)].push_back(v);
      }
    }
    std::set<int> stage_ids;
    for (const auto& [c, p] : prims_of_stage) {
      (void)p;
      stage_ids.insert(c);
    }
    for (const auto& [c, e] : loose_of_stage) {
      (void)e;
      stage_ids.insert(c);
    }

    const bool nest_stages = stage_ids.size() > 1;
    int stage_index = 0;
    for (int c : stage_ids) {
      HierarchyNode* sink = &block;
      HierarchyNode stage;
      if (nest_stages) {
        stage.kind = HierarchyNode::Kind::SubBlock;
        stage.name = block.name + "/stage" + std::to_string(stage_index++);
        stage.type = cls_name + "-stage";
        sink = &stage;
      }
      for (std::size_t pi : prims_of_stage[c]) {
        sink->children.push_back(primitive_node(pi));
      }
      for (std::size_t v : loose_of_stage[c]) {
        sink->children.push_back(element_node(v));
      }
      if (nest_stages) {
        attach_block_constraints(stage);
        block.children.push_back(std::move(stage));
      }
    }
    attach_block_constraints(block);
    root.children.push_back(std::move(block));
  }

  // Stand-alone primitives at the top level (paper: "a primitive that can
  // be considered a stand-alone unit is separated and listed as a
  // stand-alone primitive in the hierarchy tree").
  for (std::size_t pi : standalone_prims) {
    root.children.push_back(primitive_node(pi));
  }
  return root;
}

std::string to_string(const HierarchyNode& node, int indent) {
  std::string out(static_cast<std::size_t>(indent) * 2, ' ');
  switch (node.kind) {
    case HierarchyNode::Kind::System: out += "[system] "; break;
    case HierarchyNode::Kind::SubBlock: out += "[sub-block] "; break;
    case HierarchyNode::Kind::Primitive: out += "[primitive] "; break;
    case HierarchyNode::Kind::Element: out += "[element] "; break;
  }
  out += node.name;
  if (!node.type.empty() && node.type != node.name) {
    out += " (" + node.type + ")";
  }
  for (const auto& c : node.constraints) {
    out += "  {" + constraints::to_string(c) + "}";
  }
  out += "\n";
  for (const auto& child : node.children) {
    out += to_string(child, indent + 1);
  }
  return out;
}

}  // namespace gana::core
