// Sub-block constraint annotation and propagation (paper §III-C, §IV-B).
//
// "For every known category of blocks, it is possible to associate the
// recognized block with a set of layout constraints based on its
// functionality." Primitive-level symmetry/matching constraints are
// attached at match time (primitives module); this module derives the
// class-driven block constraints and propagates symmetry axes up the
// hierarchy ("these two may be combined to ensure a common symmetry axis
// for both structures").
#pragma once

#include <vector>

#include "primitives/constraint.hpp"

namespace gana::core {

struct HierarchyNode;

/// Attaches class-driven constraints to a sub-block node and merges the
/// symmetry axes of its primitives:
///   * any differential/cross-coupled pair inside promotes a block-level
///     symmetry axis shared by all such pairs and by current-mirror
///     matching groups (re-tagged CommonCentroid about the same axis);
///   * OTA blocks get the axis constraint; LNA blocks get antenna
///     Proximity; LNA/mixer blocks get GuardRing; all RF classes get
///     MinWireLength.
void attach_block_constraints(HierarchyNode& block);

/// Flattens every constraint in the subtree (block + primitives).
std::vector<constraints::Constraint> collect_constraints(
    const HierarchyNode& node);

}  // namespace gana::core
