#include "core/pipeline.hpp"

#include <cmath>
#include <functional>
#include <new>
#include <utility>

#include "gcn/trainer.hpp"
#include "graph/builder.hpp"
#include "graph/laplacian.hpp"
#include "graph/structural_hash.hpp"
#include "spice/flatten.hpp"
#include "spice/interned.hpp"
#include "util/deadline.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace gana::core {

namespace {

/// Marks the stage currently executing when the caller asked for one,
/// and runs the per-stage checkpoint: an expired request deadline (or an
/// armed fault-injection site) aborts the request here with a DiagError
/// the fault-isolation guards convert to a per-request Diag. Pure
/// control flow -- a request that passes every checkpoint is
/// bit-identical to one annotated with no deadline installed.
inline void mark(Stage* stage, Stage s) {
  if (stage != nullptr) *stage = s;
  checkpoint(s);
}

}  // namespace

PreparedCircuit prepare_circuit(const datagen::LabeledCircuit& input,
                                const PrepareOptions& options, Stage* stage) {
  PreparedCircuit out;
  out.name = input.name;
  out.class_names = input.class_names;

  // Transfer labels across preprocessing: removed devices alias to their
  // surviving representative (or vanish).
  std::map<std::string, int> device_labels = input.device_labels;

  if (options.front_end == FrontEnd::Interned) {
    // Id-space fast path: intern once, then flatten/preprocess/build on
    // SymbolIds; names materialize only into `out.flat` at the boundary.
    mark(stage, Stage::Flatten);
    spice::InternedNetlist flat = spice::flatten_interned(
        spice::intern_netlist(input.netlist), input.name);
    if (options.preprocess) {
      mark(stage, Stage::Preprocess);
      out.preprocess_report =
          spice::preprocess_interned(flat, options.preprocess_options);
      for (const auto& [removed, kept] : out.preprocess_report.alias) {
        device_labels.erase(removed);
        (void)kept;  // the representative keeps its own label
      }
    }
    mark(stage, Stage::GraphBuild);
    out.graph = graph::build_graph(flat);
    out.flat = spice::materialize_netlist(flat);
  } else {
    mark(stage, Stage::Flatten);
    out.flat = spice::flatten(input.netlist, input.name);
    if (options.preprocess) {
      mark(stage, Stage::Preprocess);
      out.preprocess_report =
          spice::preprocess(out.flat, options.preprocess_options);
      for (const auto& [removed, kept] : out.preprocess_report.alias) {
        device_labels.erase(removed);
        (void)kept;  // the representative keeps its own label
      }
    }
    mark(stage, Stage::GraphBuild);
    out.graph = graph::build_graph(out.flat);
  }
  out.labels = vertex_labels(out.graph, device_labels);
  return out;
}

PreparedCircuit prepare_netlist(const spice::Netlist& netlist,
                                std::vector<std::string> class_names,
                                const std::string& name,
                                const PrepareOptions& options, Stage* stage) {
  datagen::LabeledCircuit lc;
  lc.name = name;
  lc.netlist = netlist;
  lc.class_names = std::move(class_names);
  return prepare_circuit(lc, options, stage);
}

gcn::GraphSample make_gcn_sample(const PreparedCircuit& prepared,
                                 int pool_levels, Rng& rng) {
  return gcn::make_sample(graph::adjacency(prepared.graph),
                          build_features(prepared.graph), prepared.labels,
                          pool_levels, rng, prepared.name);
}

std::vector<gcn::GraphSample> make_gcn_samples(
    const std::vector<datagen::LabeledCircuit>& circuits, int pool_levels,
    std::uint64_t seed, const PrepareOptions& options) {
  Rng rng(seed);
  std::vector<gcn::GraphSample> out;
  out.reserve(circuits.size());
  for (const auto& c : circuits) {
    out.push_back(
        make_gcn_sample(prepare_circuit(c, options), pool_levels, rng));
  }
  return out;
}

Annotator::Annotator(const gcn::GcnModel* model,
                     std::vector<std::string> class_names,
                     primitives::PrimitiveLibrary library,
                     PrepareOptions prepare)
    : model_(model),
      class_names_(std::move(class_names)),
      library_(std::move(library)),
      prepare_(prepare) {}

AnnotateResult Annotator::annotate(const datagen::LabeledCircuit& input,
                                   std::uint64_t sample_seed) const {
  Timer prepare_timer;
  ThreadCpuTimer prepare_cpu;
  PreparedCircuit prepared = prepare_circuit(input, prepare_);
  return run(std::move(prepared), prepare_timer.seconds(),
             prepare_cpu.seconds(), nullptr, sample_seed);
}

AnnotateResult Annotator::annotate(const spice::Netlist& netlist,
                                   const std::string& name,
                                   std::uint64_t sample_seed) const {
  Timer prepare_timer;
  ThreadCpuTimer prepare_cpu;
  PreparedCircuit prepared =
      prepare_netlist(netlist, class_names_, name, prepare_);
  return run(std::move(prepared), prepare_timer.seconds(),
             prepare_cpu.seconds(), nullptr, sample_seed);
}

AnnotateResult Annotator::annotate_oracle(
    const datagen::LabeledCircuit& input, std::size_t oracle_classes) const {
  Timer prepare_timer;
  ThreadCpuTimer prepare_cpu;
  PreparedCircuit prepared = prepare_circuit(input, prepare_);
  const double seconds_prepare = prepare_timer.seconds();
  const double cpu_seconds_prepare = prepare_cpu.seconds();
  const std::size_t n = prepared.graph.vertex_count();
  Matrix probs(n, oracle_classes, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    const int t = prepared.labels[v];
    if (t >= 0 && t < static_cast<int>(oracle_classes)) {
      probs(v, static_cast<std::size_t>(t)) = 1.0;
    } else {
      for (std::size_t k = 0; k < oracle_classes; ++k) {
        probs(v, k) = 1.0 / static_cast<double>(oracle_classes);
      }
    }
  }
  return run(std::move(prepared), seconds_prepare, cpu_seconds_prepare,
             &probs, kDefaultSampleSeed);
}

namespace {

/// Runs `body` with stage tracking, converting every escaping exception
/// into a Diag stamped with the stage that was executing.
Result<AnnotateResult> guard(const std::string& name,
                             const std::function<AnnotateResult(Stage*)>& body) {
  Stage stage = Stage::Flatten;
  try {
    return body(&stage);
  } catch (const DiagError& e) {
    // Structured failures (NetlistError and every other DiagError
    // subclass, e.g. sparse-assembly validation) keep their Diag.
    return e.diag();
  } catch (const std::bad_alloc&) {
    return make_diag(DiagCode::BudgetExhausted, stage,
                     "out of memory annotating circuit " + name);
  } catch (const std::exception& e) {
    return make_diag(DiagCode::Internal, stage,
                     std::string("unexpected error annotating circuit ") +
                         name + ": " + e.what());
  }
}

}  // namespace

Result<AnnotateResult> Annotator::try_annotate(
    const datagen::LabeledCircuit& input, std::uint64_t sample_seed) const {
  return guard(input.name, [&](Stage* stage) {
    Timer prepare_timer;
    ThreadCpuTimer prepare_cpu;
    PreparedCircuit prepared = prepare_circuit(input, prepare_, stage);
    return run(std::move(prepared), prepare_timer.seconds(),
               prepare_cpu.seconds(), nullptr, sample_seed, stage);
  });
}

Result<AnnotateResult> Annotator::try_annotate(
    const spice::Netlist& netlist, const std::string& name,
    std::uint64_t sample_seed) const {
  return guard(name, [&](Stage* stage) {
    Timer prepare_timer;
    ThreadCpuTimer prepare_cpu;
    PreparedCircuit prepared =
        prepare_netlist(netlist, class_names_, name, prepare_, stage);
    return run(std::move(prepared), prepare_timer.seconds(),
               prepare_cpu.seconds(), nullptr, sample_seed, stage);
  });
}

namespace {

/// Rejects Inf/NaN before they reach the solver: a single bad weight
/// poisons every activation and the argmax silently returns garbage.
void require_finite(const Matrix& m, Stage stage, const std::string& name,
                    const std::string& what) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (!std::isfinite(m(i, j))) {
        throw spice::NetlistError(make_diag(
            DiagCode::NonFinite, stage,
            "non-finite " + what + " at (" + std::to_string(i) + ", " +
                std::to_string(j) + ") of circuit " + name));
      }
    }
  }
}

}  // namespace

Matrix Annotator::compute_probabilities(const PreparedCircuit& prepared,
                                        std::uint64_t sample_seed,
                                        Stage* stage) const {
  const std::size_t n = prepared.graph.vertex_count();
  if (model_ == nullptr) {
    // No model: uniform probabilities over the first class only, so the
    // graph-based stages can still be exercised in isolation.
    const std::size_t k = std::max<std::size_t>(1, class_names_.size());
    return Matrix(n, k, 1.0 / static_cast<double>(k));
  }
  mark(stage, Stage::Features);
  // Seed the prep stream from the circuit's structure, not its batch
  // slot: structurally identical circuits then get bit-identical
  // spectral operators whether or not the SamplePrepCache is attached.
  const int pool_levels = model_->config().required_pool_levels();
  const std::uint64_t prep_seed = graph::hash_combine(
      sample_seed, graph::structural_hash(prepared.graph));
  const std::uint64_t sample_key = graph::hash_combine(
      prep_seed, static_cast<std::uint64_t>(pool_levels));
  Matrix features = build_features(prepared.graph);
  // Inference memoization: the probabilities are a pure function of the
  // sample bits and the model weights. The key folds the structural
  // sample key, the weights fingerprint, and a fingerprint of the
  // feature values -- the structural hash alone would alias two sizings
  // of one topology whose values fall in different feature buckets.
  std::shared_ptr<const Matrix> cached_probs;
  std::uint64_t infer_key = 0;
  if (inference_cache_ != nullptr) {
    infer_key =
        graph::hash_combine(graph::hash_combine(sample_key, model_fingerprint_),
                            features_fingerprint(features));
    cached_probs = inference_cache_->find(infer_key);
  }
  if (cached_probs != nullptr) {
    mark(stage, Stage::Gcn);
    return *cached_probs;
  }
  gcn::GraphSample sample;
  if (sample_cache_ != nullptr) {
    std::shared_ptr<const gcn::SamplePrep> prep = sample_cache_->find(sample_key);
    if (prep == nullptr) {
      Rng rng(prep_seed);
      prep = sample_cache_->insert(
          sample_key,
          std::make_shared<gcn::SamplePrep>(gcn::make_sample_prep(
              graph::adjacency(prepared.graph), pool_levels, rng)));
    }
    sample = gcn::sample_from_prep(*prep, std::move(features), prepared.labels,
                                   prepared.name);
  } else {
    Rng rng(prep_seed);
    sample = gcn::make_sample(graph::adjacency(prepared.graph),
                              std::move(features), prepared.labels, pool_levels,
                              rng, prepared.name);
  }
  require_finite(sample.features, Stage::Features, prepared.name,
                 "feature value");
  mark(stage, Stage::Gcn);
  // One workspace per worker thread: steady-state inference reuses its
  // buffers and performs zero heap allocations inside the model.
  thread_local gcn::InferWorkspace ws;
  Matrix probs = gcn::softmax(model_->infer(sample, ws));
  require_finite(probs, Stage::Gcn, prepared.name, "class probability");
  if (inference_cache_ != nullptr) {
    inference_cache_->insert(infer_key, std::make_shared<Matrix>(probs));
  }
  return probs;
}

AnnotateResult Annotator::run(PreparedCircuit prepared,
                              double seconds_prepare,
                              double cpu_seconds_prepare,
                              const Matrix* oracle_probs,
                              std::uint64_t sample_seed, Stage* stage) const {
  AnnotateResult r;
  r.prepared = std::move(prepared);
  r.seconds_prepare = seconds_prepare;
  r.cpu_seconds_prepare = cpu_seconds_prepare;

  // --- GCN classification.
  Timer gcn_timer;
  ThreadCpuTimer gcn_cpu;
  const std::size_t n = r.prepared.graph.vertex_count();
  if (oracle_probs != nullptr) {
    mark(stage, Stage::Gcn);
    r.probabilities = *oracle_probs;
  } else {
    r.probabilities = compute_probabilities(r.prepared, sample_seed, stage);
  }
  r.gcn_class.assign(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < r.probabilities.cols(); ++c) {
      if (r.probabilities(v, c) > r.probabilities(v, best)) best = c;
    }
    r.gcn_class[v] = static_cast<int>(best);
  }
  r.seconds_gcn = gcn_timer.seconds();
  r.cpu_seconds_gcn = gcn_cpu.seconds();

  // --- Postprocessing I.
  Timer post_timer;
  ThreadCpuTimer post_cpu;
  mark(stage, Stage::Primitives);
  r.ccc = graph::channel_connected_components(r.prepared.graph);
  // Pattern-parallel matching on the shared compute pool (a no-op when
  // this call already runs on a pool worker, e.g. inside a BatchRunner
  // task) plus the optional cross-circuit annotation cache. Neither can
  // change the accepted primitive set.
  primitives::AnnotateOptions annotate_options;
  annotate_options.pool = compute_pool();
  annotate_options.cache = annotation_cache_.get();
  r.post = postprocess_stage1(r.prepared.graph, r.ccc, r.probabilities,
                              class_names_, library_, annotate_options);
  if (r.post.primitives_truncated) {
    r.warnings.push_back(make_diag(
        DiagCode::Truncated, Stage::Primitives,
        "VF2 budget exhausted after " + std::to_string(r.post.vf2_states) +
            " states; primitive annotation of circuit " + r.prepared.name +
            " is partial"));
  }
  mark(stage, Stage::Postprocess);
  r.post1_class = vertex_classes(r.prepared.graph, r.ccc,
                                 r.post.cluster_class);

  // --- Postprocessing II.
  postprocess_stage2(r.prepared.graph, r.ccc, class_names_, r.post);
  r.final_class =
      vertex_classes(r.prepared.graph, r.ccc, r.post.cluster_class);

  // --- Hierarchy + constraints.
  mark(stage, Stage::Hierarchy);
  r.hierarchy = build_hierarchy(r.prepared.graph, r.ccc, r.post,
                                class_names_, r.prepared.name);
  r.seconds_post = post_timer.seconds();
  r.cpu_seconds_post = post_cpu.seconds();

  // --- Accuracy vs. ground truth (when present).
  r.acc_gcn = accuracy(r.gcn_class, r.prepared.labels);
  r.acc_post1 = accuracy(r.post1_class, r.prepared.labels);
  r.acc_post2 = accuracy(r.final_class, r.prepared.labels);
  return r;
}

}  // namespace gana::core
