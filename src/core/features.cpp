#include "core/features.hpp"

#include <algorithm>
#include <bit>

namespace gana::core {
namespace {

using graph::NetRole;
using graph::VertexKind;
using spice::DeviceType;

/// Value bucket (low=0, med=1, high=2) given per-type thresholds.
int value_bucket(DeviceType t, double value, double w_param) {
  switch (t) {
    case DeviceType::Resistor:
      return value < 2e3 ? 0 : (value < 50e3 ? 1 : 2);
    case DeviceType::Capacitor:
      return value < 500e-15 ? 0 : (value < 5e-12 ? 1 : 2);
    case DeviceType::Inductor:
      return value < 2e-9 ? 0 : (value < 8e-9 ? 1 : 2);
    case DeviceType::ISource:
      return value < 10e-6 ? 0 : (value < 100e-6 ? 1 : 2);
    case DeviceType::VSource:
      return value < 0.5 ? 0 : (value < 1.2 ? 1 : 2);
    case DeviceType::Nmos:
    case DeviceType::Pmos:
      // MOS devices bucket by width.
      return w_param < 2e-6 ? 0 : (w_param < 8e-6 ? 1 : 2);
  }
  return 1;
}

std::size_t type_column(DeviceType t) {
  switch (t) {
    case DeviceType::Nmos: return kFeatNmos;
    case DeviceType::Pmos: return kFeatPmos;
    case DeviceType::Resistor: return kFeatResistor;
    case DeviceType::Capacitor: return kFeatCapacitor;
    case DeviceType::Inductor: return kFeatInductor;
    case DeviceType::VSource: return kFeatVRef;
    case DeviceType::ISource: return kFeatIRef;
  }
  return kFeatNmos;
}

}  // namespace

Matrix build_features(const graph::CircuitGraph& g) {
  Matrix x(g.vertex_count(), kNumFeatures);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto& vert = g.vertex(v);
    if (vert.kind == VertexKind::Element) {
      x(v, type_column(vert.dtype)) = 1.0;
      x(v, kFeatHierLevel) =
          std::min(1.0, static_cast<double>(vert.hier_depth) / 8.0);
      // For MOS vertices `value` is the device width (set by the builder).
      const int bucket = value_bucket(vert.dtype, vert.value, vert.value);
      x(v, kFeatValueLow + static_cast<std::size_t>(bucket)) = 1.0;
      // Merged-terminal signature: any incident edge with two or more
      // label bits set (diode connections and the like).
      for (std::size_t eid : g.incident(v)) {
        const std::uint8_t label = g.edge(eid).label;
        const int bits = (label & 1) + ((label >> 1) & 1) + ((label >> 2) & 1);
        if (bits >= 2) {
          x(v, kFeatEdgeMerged) = 1.0;
          break;
        }
      }
    } else {
      switch (vert.role) {
        case NetRole::Input:
        case NetRole::Antenna:
        case NetRole::LocalOsc:
        case NetRole::Clock:
          x(v, kFeatNetInput) = 1.0;
          break;
        case NetRole::Output:
          x(v, kFeatNetOutput) = 1.0;
          break;
        case NetRole::Bias:
          x(v, kFeatNetBias) = 1.0;
          break;
        case NetRole::Supply:
          x(v, kFeatNetSupply) = 1.0;
          break;
        case NetRole::Ground:
          x(v, kFeatNetGround) = 1.0;
          break;
        case NetRole::Internal:
          break;
      }
    }
  }
  return x;
}

std::vector<int> vertex_labels(
    const graph::CircuitGraph& g,
    const std::map<std::string, int>& device_labels) {
  std::vector<int> labels(g.vertex_count(), -1);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto& vert = g.vertex(v);
    if (vert.kind != VertexKind::Element) continue;
    auto it = device_labels.find(vert.name);
    if (it != device_labels.end()) labels[v] = it->second;
  }
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto& vert = g.vertex(v);
    if (vert.kind != VertexKind::Net) continue;
    if (vert.role == NetRole::Supply || vert.role == NetRole::Ground) {
      continue;  // rails stay -1: they belong to every block
    }
    std::map<int, int> votes;
    for (std::size_t eid : g.incident(v)) {
      const int c = labels[g.edge(eid).element];
      if (c >= 0) ++votes[c];
    }
    int best = -1, best_votes = 0;
    for (auto [c, cnt] : votes) {  // map order => ties pick smaller id
      if (cnt > best_votes) {
        best = c;
        best_votes = cnt;
      }
    }
    labels[v] = best;
  }
  return labels;
}

std::uint64_t features_fingerprint(const Matrix& features) {
  constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
  auto fold = [](std::uint64_t h, std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      h ^= (word >> (8 * i)) & 0xffu;
      h *= kFnvPrime;
    }
    return h;
  };
  std::uint64_t h = fold(kFnvOffset, features.rows());
  h = fold(h, features.cols());
  for (double x : features.data()) {
    h = fold(h, std::bit_cast<std::uint64_t>(x));
  }
  return h;
}

}  // namespace gana::core
