#include "core/constraints.hpp"

#include "core/hierarchy.hpp"

namespace gana::core {

using constraints::Constraint;
using constraints::Kind;

void attach_block_constraints(HierarchyNode& block) {
  const std::string axis = "axis:" + block.name;

  // Collect the symmetric pairs of child primitives and re-tag their axes
  // so every pair in this block shares one axis.
  std::vector<std::string> mirrored;
  bool has_pair = false;
  for (auto& prim : block.children) {
    for (auto& c : prim.constraints) {
      if (c.kind == Kind::Symmetry) {
        c.tag = axis;
        has_pair = true;
        for (const auto& m : c.members) mirrored.push_back(m);
      }
    }
  }
  if (has_pair) {
    // Matching groups in a block with a symmetry axis become
    // common-centroid groups about that axis (paper §IV-B: the CM and DP
    // of stage 1 combine to a common symmetry axis).
    for (auto& prim : block.children) {
      // Collect first, append after: pushing while iterating would
      // invalidate the range-for iterators on reallocation.
      std::vector<Constraint> added;
      for (const auto& c : prim.constraints) {
        if (c.kind == Kind::Matching && c.members.size() >= 2) {
          Constraint cc;
          cc.kind = Kind::CommonCentroid;
          cc.members = c.members;
          cc.tag = axis;
          added.push_back(std::move(cc));
        }
      }
      for (auto& cc : added) prim.constraints.push_back(std::move(cc));
    }
    Constraint sym;
    sym.kind = Kind::Symmetry;
    sym.members = mirrored;
    sym.tag = axis;
    block.constraints.push_back(std::move(sym));
  }

  // Class-driven constraints.
  const std::string& cls = block.type;
  const bool rf = cls == "lna" || cls == "mixer" || cls == "osc" ||
                  cls == "bpf" || cls == "buf" || cls == "invamp";
  if (cls == "lna") {
    Constraint p;
    p.kind = Kind::Proximity;
    p.members = {block.name};
    p.tag = "antenna";
    block.constraints.push_back(std::move(p));
  }
  if (cls == "lna" || cls == "mixer") {
    Constraint gr;
    gr.kind = Kind::GuardRing;
    gr.members = {block.name};
    block.constraints.push_back(std::move(gr));
  }
  if (rf) {
    Constraint wl;
    wl.kind = Kind::MinWireLength;
    wl.members = {block.name};
    block.constraints.push_back(std::move(wl));
  }
}

std::vector<Constraint> collect_constraints(const HierarchyNode& node) {
  std::vector<Constraint> out = node.constraints;
  for (const auto& child : node.children) {
    const auto sub = collect_constraints(child);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

}  // namespace gana::core
