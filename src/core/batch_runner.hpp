// Parallel batched annotation runtime.
//
// Fans a batch of netlists out across a work-stealing thread pool; each
// worker runs the full pipeline (flatten -> preprocess -> graph ->
// features -> GCN inference -> VF2 primitives -> postprocessing ->
// hierarchy) independently against a shared read-only Annotator (model
// weights + primitive library).
//
// Determinism guarantee: results are bit-identical to the sequential
// path regardless of thread count --
//   * every circuit is a self-contained task writing only results[i];
//   * each task's sample Rng stream is derived from (root seed,
//     structural hash of the circuit graph) inside the Annotator --
//     never from scheduling order, and not from the slot index either,
//     so structurally identical circuits share one stream and the
//     sample-prep cache can serve them bit-identically;
//   * shared state (model, library, prep cache) is read-only or
//     internally synchronized with order-independent semantics;
//   * the row-partitioned spmm keeps per-row accumulation order fixed.
//
// Fault isolation: `run_isolated` never throws on bad input. Each task
// yields either an AnnotateResult or a structured Diag (code, stage,
// source location); one malformed circuit cannot abort its siblings.
// Under FailurePolicy::CollectAll the outcome vector is fully
// deterministic at any thread count. FailFast stops scheduling after the
// first observed failure -- tasks that never ran come back as
// DiagCode::Skipped -- trading determinism of *which* later slots are
// skipped (scheduling-dependent when parallel) for latency.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace gana {
class ThreadPool;
struct PerfSnapshot;
}

namespace gana::core {

/// What to do when a task in the batch fails.
enum class FailurePolicy {
  /// Stop scheduling new tasks after the first failure; unstarted tasks
  /// yield DiagCode::Skipped. `run` throws the failure.
  FailFast,
  /// Annotate every circuit regardless of sibling failures; the outcome
  /// vector is deterministic at any thread count.
  CollectAll,
};

struct BatchOptions {
  /// Worker threads; 1 runs inline on the calling thread, 0 means
  /// std::thread::hardware_concurrency().
  std::size_t jobs = 1;
  /// Root sample seed handed to every task unchanged; the Annotator
  /// derives the per-circuit prep stream from (seed, structural hash).
  std::uint64_t seed = kDefaultSampleSeed;
  /// Failure handling for `run_isolated` (and how eagerly `run` aborts).
  FailurePolicy policy = FailurePolicy::FailFast;
  /// Per-task wall-clock budget in seconds; 0 disables. Each task gets
  /// its own util::Deadline starting when the task starts executing; a
  /// task past its budget aborts at the next pipeline checkpoint with a
  /// DiagCode::DeadlineExceeded outcome (its siblings are unaffected,
  /// and tasks that finish in budget are bit-identical to an untimed
  /// run). Wall-clock based, hence NOT deterministic near the boundary;
  /// use a budget comfortably above (or below) the expected task time.
  double timeout_seconds = 0.0;
};

/// Wall-clock and summed per-stage timings of one batch run, plus the
/// process-wide perf-counter deltas (util/perf.hpp) observed across it.
///
/// Each stage is recorded on two clocks so contention is diagnosable
/// instead of guesswork:
///   * `*_seconds` sums per-task *thread-CPU* time (ThreadCpuTimer):
///     executing time only, comparable across job counts -- at J jobs it
///     should stay within a small factor of the 1-job figure, and the
///     batch-scaling regression test pins that bound;
///   * `*_wall_seconds` sums per-task wall time: it additionally counts
///     every stall (descheduling under oversubscription, allocator or
///     lock waits), so `*_wall_seconds >> *_seconds` is the contention
///     signal.
/// Failed tasks contribute nothing to stage sums. The counter deltas
/// include any concurrent linalg activity in the process -- in the
/// usual one-batch-at-a-time setup they are exact.
struct BatchTimings {
  double wall_seconds = 0.0;     ///< whole-batch wall clock
  double prepare_seconds = 0.0;  ///< CPU sum: flatten + preprocess + graph
  double gcn_seconds = 0.0;      ///< CPU sum: features + sample + inference
  double post_seconds = 0.0;     ///< CPU sum: CCC + VF2 + postprocess + tree
  double prepare_wall_seconds = 0.0;  ///< wall sum of the prepare stage
  double gcn_wall_seconds = 0.0;      ///< wall sum of the GCN stage
  double post_wall_seconds = 0.0;     ///< wall sum of the post stage
  std::uint64_t matrix_allocs = 0;      ///< dense-buffer heap growths
  std::uint64_t matrix_alloc_bytes = 0;
  std::uint64_t spmm_calls = 0;
  std::uint64_t spmm_flops = 0;
  std::uint64_t matmul_calls = 0;
  std::uint64_t matmul_flops = 0;
  std::uint64_t sample_cache_hits = 0;
  std::uint64_t sample_cache_misses = 0;
  std::uint64_t inference_cache_hits = 0;
  std::uint64_t inference_cache_misses = 0;
  std::uint64_t vf2_states = 0;           ///< VF2 search states explored
  std::uint64_t vf2_sig_rejections = 0;   ///< signature-lookahead cuts
  std::uint64_t vf2_pattern_skips = 0;    ///< counting-filter pattern skips
  std::uint64_t annotation_cache_hits = 0;
  std::uint64_t annotation_cache_misses = 0;
  std::uint64_t cache_evictions = 0;   ///< capacity-bounded cache drops
  std::uint64_t parse_bytes = 0;       ///< netlist text bytes parsed
  std::uint64_t intern_hits = 0;       ///< SymbolTable lookups of known names
  std::uint64_t intern_misses = 0;     ///< SymbolTable first-time interns
  std::uint64_t frontend_allocs = 0;   ///< interned front-end heap allocations
  std::uint64_t incr_regions = 0;      ///< regions seen by session runs
  std::uint64_t incr_region_reuses = 0;      ///< regions served from cache
  std::uint64_t incr_region_recomputes = 0;  ///< regions re-run (dirty cone)
  std::uint64_t incr_canon_fallbacks = 0;    ///< canonical-order budget hits

  /// Copies the perf-counter fields of a counter-window delta into this
  /// record (timing fields are untouched). BatchRunner uses it for every
  /// batch; session-mode drivers use it to report the same JSON schema.
  void apply_perf_delta(const PerfSnapshot& delta);

  /// Field-wise accumulation, for callers that run a corpus as a
  /// sequence of batches (the shard worker's chunked streaming loop)
  /// and report one summed record. Every field adds -- including
  /// wall_seconds, which therefore means "summed batch wall clock", not
  /// end-to-end elapsed time, once more than one batch contributed.
  BatchTimings& operator+=(const BatchTimings& o);
};

struct BatchResult {
  /// One entry per input, in input order (independent of scheduling).
  std::vector<AnnotateResult> results;
  BatchTimings timings;
  std::size_t jobs = 1;  ///< worker count actually used

  /// Node-weighted mean accuracy over circuits with ground truth, per
  /// stage (gcn / post1 / post2); 0 when no labels were present.
  [[nodiscard]] double mean_acc_gcn() const;
  [[nodiscard]] double mean_acc_post1() const;
  [[nodiscard]] double mean_acc_post2() const;
};

/// Result of a fault-isolated batch run: one Ok/Diag outcome per input,
/// in input order.
struct BatchOutcome {
  std::vector<Result<AnnotateResult>> outcomes;
  BatchTimings timings;
  std::size_t jobs = 1;

  [[nodiscard]] std::size_t ok_count() const;
  [[nodiscard]] std::size_t failure_count() const;
  /// Lowest-index failure that is not a fail-fast Skipped marker (falls
  /// back to the first Skipped slot); nullptr when every task succeeded.
  [[nodiscard]] const Diag* first_failure() const;
};

/// Runs batches of circuits through a shared Annotator in parallel.
///
/// The worker pool is created lazily on the first parallel run and then
/// reused for the runner's lifetime: repeated batches pay no thread
/// spawn/join, and worker thread_locals (the per-thread GCN inference
/// workspace) stay warm across runs. Noncopyable because of that owned
/// pool; construct one runner per (annotator, options) pair and reuse it.
class BatchRunner {
 public:
  explicit BatchRunner(const Annotator& annotator, BatchOptions options = {});
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Annotates every circuit; ground truth only feeds accuracy fields.
  /// Throws (the first failure's NetlistError) if any circuit fails.
  [[nodiscard]] BatchResult run(
      const std::vector<datagen::LabeledCircuit>& batch) const;

  /// Annotates bare netlists; `names[i]` labels netlists[i] (names may be
  /// empty or shorter than the batch -- missing names become "batch/i").
  [[nodiscard]] BatchResult run(
      const std::vector<spice::Netlist>& netlists,
      const std::vector<std::string>& names = {}) const;

  /// Fault-isolated variants: never throw on malformed circuits. Healthy
  /// slots are bit-identical to the sequential/throwing path.
  [[nodiscard]] BatchOutcome run_isolated(
      const std::vector<datagen::LabeledCircuit>& batch) const;
  [[nodiscard]] BatchOutcome run_isolated(
      const std::vector<spice::Netlist>& netlists,
      const std::vector<std::string>& names = {}) const;

  [[nodiscard]] const BatchOptions& options() const { return options_; }
  [[nodiscard]] std::size_t resolved_jobs() const;

 private:
  template <typename Task>
  BatchOutcome dispatch(std::size_t count, const Task& task) const;

  BatchResult unwrap(BatchOutcome outcome) const;

  /// Returns the persistent worker pool, creating it (with resolved_jobs()
  /// threads) on first use. Only called when a parallel run is requested.
  ThreadPool& pool() const;

  const Annotator* annotator_;  ///< not owned; must outlive the runner
  BatchOptions options_;
  mutable std::mutex pool_mutex_;           ///< guards lazy pool creation
  mutable std::unique_ptr<ThreadPool> pool_;  ///< persistent across runs
};

}  // namespace gana::core
