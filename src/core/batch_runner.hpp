// Parallel batched annotation runtime.
//
// Fans a batch of netlists out across a work-stealing thread pool; each
// worker runs the full pipeline (flatten -> preprocess -> graph ->
// features -> GCN inference -> VF2 primitives -> postprocessing ->
// hierarchy) independently against a shared read-only Annotator (model
// weights + primitive library).
//
// Determinism guarantee: results are bit-identical to the sequential
// path regardless of thread count --
//   * every circuit is a self-contained task writing only results[i];
//   * each task's sample Rng stream is derived from (root seed, index),
//     never from scheduling order;
//   * shared state (model, library) is read-only during the run;
//   * the row-partitioned spmm keeps per-row accumulation order fixed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace gana::core {

struct BatchOptions {
  /// Worker threads; 1 runs inline on the calling thread, 0 means
  /// std::thread::hardware_concurrency().
  std::size_t jobs = 1;
  /// Root seed; task i annotates with stream task_seed(seed, i).
  std::uint64_t seed = kDefaultSampleSeed;
};

/// Per-task sample-Rng stream: a splitmix64 mix of the root seed and the
/// task index, so streams are decorrelated but depend only on position
/// in the batch (not on which worker runs the task, or when).
[[nodiscard]] std::uint64_t task_seed(std::uint64_t root, std::size_t index);

/// Wall-clock and summed per-stage timings of one batch run. Stage sums
/// add CPU seconds across circuits (they exceed wall_seconds when the
/// run is parallel).
struct BatchTimings {
  double wall_seconds = 0.0;
  double prepare_seconds = 0.0;  ///< sum: flatten + preprocess + graph
  double gcn_seconds = 0.0;      ///< sum: features + sample + inference
  double post_seconds = 0.0;     ///< sum: CCC + VF2 + postprocess + tree
};

struct BatchResult {
  /// One entry per input, in input order (independent of scheduling).
  std::vector<AnnotateResult> results;
  BatchTimings timings;
  std::size_t jobs = 1;  ///< worker count actually used

  /// Node-weighted mean accuracy over circuits with ground truth, per
  /// stage (gcn / post1 / post2); 0 when no labels were present.
  [[nodiscard]] double mean_acc_gcn() const;
  [[nodiscard]] double mean_acc_post1() const;
  [[nodiscard]] double mean_acc_post2() const;
};

/// Runs batches of circuits through a shared Annotator in parallel.
class BatchRunner {
 public:
  explicit BatchRunner(const Annotator& annotator, BatchOptions options = {});

  /// Annotates every circuit; ground truth only feeds accuracy fields.
  [[nodiscard]] BatchResult run(
      const std::vector<datagen::LabeledCircuit>& batch) const;

  /// Annotates bare netlists; `names[i]` labels netlists[i] (names may be
  /// empty or shorter than the batch -- missing names become "batch/i").
  [[nodiscard]] BatchResult run(
      const std::vector<spice::Netlist>& netlists,
      const std::vector<std::string>& names = {}) const;

  [[nodiscard]] const BatchOptions& options() const { return options_; }
  [[nodiscard]] std::size_t resolved_jobs() const;

 private:
  template <typename Task>
  BatchResult dispatch(std::size_t count, const Task& task) const;

  const Annotator* annotator_;  ///< not owned; must outlive the runner
  BatchOptions options_;
};

}  // namespace gana::core
