// The end-to-end GANA pipeline (paper §II-B):
//   SPICE netlist -> flatten -> preprocess -> bipartite graph ->
//   18 features -> GCN classification -> Postprocessing I (CCC majority,
//   primitive extraction, stand-alone separation) -> Postprocessing II
//   (port knowledge) -> hierarchy tree + constraints.
#pragma once

#include <string>
#include <vector>

#include <memory>

#include "core/features.hpp"
#include "core/hierarchy.hpp"
#include "core/postprocess.hpp"
#include "datagen/sizing.hpp"
#include "gcn/model.hpp"
#include "gcn/sample.hpp"
#include "gcn/inference_cache.hpp"
#include "gcn/sample_cache.hpp"
#include "graph/ccc.hpp"
#include "primitives/library.hpp"
#include "spice/preprocess.hpp"

namespace gana::core {

/// A circuit after the front end: flat, preprocessed, graphed, featurized,
/// with ground-truth labels transferred when available.
struct PreparedCircuit {
  std::string name;
  spice::Netlist flat;
  spice::PreprocessReport preprocess_report;
  graph::CircuitGraph graph;
  std::vector<int> labels;  ///< truth per vertex, -1 unknown
  std::vector<std::string> class_names;
};

/// Which front-end implementation prepares circuits. Both produce
/// bit-identical PreparedCircuits (flat netlist, report, graph) -- the
/// contract pinned by tests/frontend_test.cpp; Reference exists as the
/// plainly-written oracle, Interned as the fast path.
enum class FrontEnd {
  Reference,  ///< legacy string-keyed flatten/preprocess/build
  Interned,   ///< id-space path over an arena-backed SymbolTable
};

struct PrepareOptions {
  bool preprocess = true;
  spice::PreprocessOptions preprocess_options;
  FrontEnd front_end = FrontEnd::Interned;
};

/// Front end on a labeled circuit (labels survive preprocessing through
/// the alias map). When `stage` is non-null it tracks the stage currently
/// executing, so a caller catching an exception knows where the pipeline
/// stopped.
PreparedCircuit prepare_circuit(const datagen::LabeledCircuit& input,
                                const PrepareOptions& options = {},
                                Stage* stage = nullptr);

/// Front end on a bare netlist (no ground truth).
PreparedCircuit prepare_netlist(const spice::Netlist& netlist,
                                std::vector<std::string> class_names,
                                const std::string& name,
                                const PrepareOptions& options = {},
                                Stage* stage = nullptr);

/// GCN sample from a prepared circuit.
gcn::GraphSample make_gcn_sample(const PreparedCircuit& prepared,
                                 int pool_levels, Rng& rng);

/// Batch conversion of labeled circuits into GCN samples.
std::vector<gcn::GraphSample> make_gcn_samples(
    const std::vector<datagen::LabeledCircuit>& circuits, int pool_levels,
    std::uint64_t seed, const PrepareOptions& options = {});

/// Root seed of the per-circuit sample Rng (Lanczos start vectors,
/// Graclus tie-breaking) when the caller does not supply one. The
/// effective prep stream is seeded by hash_combine(root, structural
/// hash of the circuit graph), so structurally identical circuits get
/// identical prep no matter which batch slot (or process) they appear
/// in -- the invariant that makes SamplePrepCache hits bit-identical to
/// cache-off runs.
inline constexpr std::uint64_t kDefaultSampleSeed = 0xc0ffee;

/// Full annotation result with per-stage classifications and accuracies.
struct AnnotateResult {
  PreparedCircuit prepared;
  Matrix probabilities;             ///< per-vertex GCN class probabilities
  graph::CccResult ccc;
  std::vector<int> gcn_class;       ///< raw GCN argmax per vertex
  std::vector<int> post1_class;     ///< after Postprocessing I
  std::vector<int> final_class;     ///< after Postprocessing II
  PostprocessResult post;           ///< final cluster classes + primitives
  HierarchyNode hierarchy;
  double acc_gcn = 0.0;    ///< vs. truth, when labels are present
  double acc_post1 = 0.0;
  double acc_post2 = 0.0;
  /// Per-stage wall seconds of this task (includes any time the worker
  /// was descheduled -- inflates when workers oversubscribe the cores).
  double seconds_prepare = 0.0;  ///< flatten + preprocess + graph build
  double seconds_gcn = 0.0;
  double seconds_post = 0.0;
  /// Per-stage thread-CPU seconds of this task (executing time only;
  /// comparable across job counts -- see ThreadCpuTimer).
  double cpu_seconds_prepare = 0.0;
  double cpu_seconds_gcn = 0.0;
  double cpu_seconds_post = 0.0;
  /// Non-fatal diagnostics (e.g. DiagCode::Truncated when the VF2 budget
  /// cut primitive extraction short). The annotation itself is complete
  /// and deterministic; warnings flag reduced fidelity.
  std::vector<Diag> warnings;
};

/// Ties a trained model, its class vocabulary, and the primitive library
/// into a reusable annotator.
///
/// Every annotate* method is const and touches no mutable state (model
/// inference goes through GcnModel::infer), so one Annotator may serve
/// many worker threads concurrently -- see core::BatchRunner.
class Annotator {
 public:
  Annotator(const gcn::GcnModel* model, std::vector<std::string> class_names,
            primitives::PrimitiveLibrary library =
                primitives::PrimitiveLibrary::standard(),
            PrepareOptions prepare = {});

  /// Runs the full pipeline. Ground-truth labels in `input` are used only
  /// to fill the accuracy fields.
  AnnotateResult annotate(const datagen::LabeledCircuit& input,
                          std::uint64_t sample_seed = kDefaultSampleSeed) const;

  /// Pipeline on an unlabeled netlist.
  AnnotateResult annotate(const spice::Netlist& netlist,
                          const std::string& name,
                          std::uint64_t sample_seed = kDefaultSampleSeed) const;

  /// Runs the pipeline with an ORACLE classifier: probabilities are
  /// one-hot on the ground-truth labels (uniform for labels outside the
  /// first `oracle_classes` entries). Isolates the graph-based stages
  /// from GCN quality -- used by tests and postprocessing audits.
  AnnotateResult annotate_oracle(const datagen::LabeledCircuit& input,
                                 std::size_t oracle_classes) const;

  /// Fault-isolated annotation: never throws on malformed or adversarial
  /// input. Any exception escaping a pipeline stage -- structured
  /// NetlistError or otherwise -- comes back as a Diag stamped with the
  /// stage that was executing. Successful results are bit-identical to
  /// the throwing `annotate` path.
  [[nodiscard]] Result<AnnotateResult> try_annotate(
      const datagen::LabeledCircuit& input,
      std::uint64_t sample_seed = kDefaultSampleSeed) const;
  [[nodiscard]] Result<AnnotateResult> try_annotate(
      const spice::Netlist& netlist, const std::string& name,
      std::uint64_t sample_seed = kDefaultSampleSeed) const;

  /// Attaches a sample-prep cache shared by all annotate calls (and all
  /// threads -- the cache is internally synchronized). Pass nullptr to
  /// detach. Cached and uncached runs produce bit-identical results;
  /// the cache only skips recomputing spectral operators for circuits
  /// whose structural hash was already seen.
  void set_sample_cache(std::shared_ptr<gcn::SamplePrepCache> cache) {
    sample_cache_ = std::move(cache);
  }
  [[nodiscard]] const std::shared_ptr<gcn::SamplePrepCache>& sample_cache()
      const {
    return sample_cache_;
  }

  /// Attaches a GCN inference-result cache shared by all annotate calls
  /// (internally synchronized, like the sample cache). Structurally
  /// identical circuits then pay for a single GCN forward pass; cached
  /// and uncached runs produce bit-identical probabilities because every
  /// kernel is bit-deterministic. Entries are keyed by sample key x
  /// GcnModel::weights_fingerprint(), captured at attach time -- attach
  /// (or re-attach) AFTER training or loading weights. Pass nullptr to
  /// detach.
  void set_inference_cache(std::shared_ptr<gcn::InferenceCache> cache) {
    inference_cache_ = std::move(cache);
    model_fingerprint_ = (inference_cache_ != nullptr && model_ != nullptr)
                             ? model_->weights_fingerprint()
                             : 0;
  }
  [[nodiscard]] const std::shared_ptr<gcn::InferenceCache>& inference_cache()
      const {
    return inference_cache_;
  }

  /// Attaches a primitive-annotation cache shared by all annotate calls
  /// (internally synchronized, like the sample cache). Structurally
  /// identical circuits then pay for a single VF2 sweep; cached and
  /// uncached runs produce bit-identical primitive sets. Pass nullptr to
  /// detach.
  void set_annotation_cache(
      std::shared_ptr<primitives::AnnotationCache> cache) {
    annotation_cache_ = std::move(cache);
  }
  [[nodiscard]] const std::shared_ptr<primitives::AnnotationCache>&
  annotation_cache() const {
    return annotation_cache_;
  }

  /// GCN class probabilities for a prepared circuit: features, (cached)
  /// spectral prep, inference, softmax. Exactly the GCN stage of the
  /// full pipeline -- annotate() calls this -- exposed so the
  /// incremental session engine can reuse the stage (and its caches)
  /// while replacing primitive extraction with region-level reuse.
  /// Honors the attached sample and inference caches; with no model it
  /// returns the uniform fallback distribution. The inference-cache key
  /// folds in a fingerprint of the feature *values*, so circuits that
  /// share a structure but differ in sizing buckets never alias.
  [[nodiscard]] Matrix compute_probabilities(
      const PreparedCircuit& prepared,
      std::uint64_t sample_seed = kDefaultSampleSeed,
      Stage* stage = nullptr) const;

  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return class_names_;
  }
  [[nodiscard]] const PrepareOptions& prepare_options() const {
    return prepare_;
  }
  [[nodiscard]] const primitives::PrimitiveLibrary& library() const {
    return library_;
  }
  [[nodiscard]] const gcn::GcnModel* model() const { return model_; }

 private:
  AnnotateResult run(PreparedCircuit prepared, double seconds_prepare,
                     double cpu_seconds_prepare, const Matrix* oracle_probs,
                     std::uint64_t sample_seed, Stage* stage = nullptr) const;

  const gcn::GcnModel* model_;  ///< not owned; may be null (uniform probabilities)
  std::vector<std::string> class_names_;
  primitives::PrimitiveLibrary library_;
  PrepareOptions prepare_;
  std::shared_ptr<gcn::SamplePrepCache> sample_cache_;           ///< optional
  std::shared_ptr<gcn::InferenceCache> inference_cache_;         ///< optional
  /// weights_fingerprint() of model_, captured when inference_cache_ was
  /// attached; 0 when no inference cache (or no model) is present.
  std::uint64_t model_fingerprint_ = 0;
  std::shared_ptr<primitives::AnnotationCache> annotation_cache_;  ///< optional
};

}  // namespace gana::core
