#include "incremental/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <new>
#include <utility>

#include "graph/ccc.hpp"
#include "graph/structural_hash.hpp"
#include "incremental/region.hpp"
#include "isomorph/candidate_index.hpp"
#include "primitives/annotator.hpp"
#include "util/deadline.hpp"
#include "util/perf.hpp"
#include "util/timer.hpp"

namespace gana::incremental {

using core::AnnotateResult;
using core::PreparedCircuit;
using graph::CircuitGraph;
using spice::Device;
using spice::Netlist;

namespace {

/// Stage tracking + per-stage checkpoint, as in core/pipeline.cpp.
inline void mark(Stage* stage, Stage s) {
  if (stage != nullptr) *stage = s;
  checkpoint(s);
}

/// Exception-to-Diag guard, mirroring Annotator::try_annotate so session
/// failures are indistinguishable from cold-path failures.
Result<AnnotateResult> guard(
    const std::string& name,
    const std::function<AnnotateResult(Stage*)>& body) {
  Stage stage = Stage::Flatten;
  try {
    return body(&stage);
  } catch (const DiagError& e) {
    return e.diag();
  } catch (const std::bad_alloc&) {
    return make_diag(DiagCode::BudgetExhausted, stage,
                     "out of memory annotating circuit " + name);
  } catch (const std::exception& e) {
    return make_diag(DiagCode::Internal, stage,
                     std::string("unexpected error annotating circuit ") +
                         name + ": " + e.what());
  }
}

bool finite_device(const Device& d) {
  if (!std::isfinite(d.value)) return false;
  for (const auto& [key, val] : d.params) {
    if (!std::isfinite(val)) return false;
  }
  return true;
}

/// Everything but the sizing: a device whose non-value fields moved (or
/// whose multiplicity moved -- preprocessing folds "m") routes the
/// revision through the full front end.
bool same_except_sizing(const Device& a, const Device& b) {
  if (a.name != b.name || a.type != b.type || a.model != b.model ||
      a.pins != b.pins || a.hier_depth != b.hier_depth) {
    return false;
  }
  const auto ma = a.params.find("m");
  const auto mb = b.params.find("m");
  if ((ma == a.params.end()) != (mb == b.params.end())) return false;
  if (ma != a.params.end() && ma->second != mb->second) return false;
  return true;
}

bool device_equal(const Device& a, const Device& b) {
  return a.name == b.name && a.type == b.type && a.model == b.model &&
         a.pins == b.pins && a.hier_depth == b.hier_depth &&
         a.value == b.value && a.params == b.params;
}

bool instances_equal(const std::vector<spice::Instance>& a,
                     const std::vector<spice::Instance>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].subckt != b[i].subckt ||
        a[i].nets != b[i].nets) {
      return false;
    }
  }
  return true;
}

bool subckts_equal(const std::map<std::string, spice::SubcktDef>& a,
                   const std::map<std::string, spice::SubcktDef>& b) {
  if (a.size() != b.size()) return false;
  auto ita = a.begin();
  auto itb = b.begin();
  for (; ita != a.end(); ++ita, ++itb) {
    if (ita->first != itb->first) return false;
    const spice::SubcktDef& sa = ita->second;
    const spice::SubcktDef& sb = itb->second;
    if (sa.name != sb.name || sa.ports != sb.ports) return false;
    if (!instances_equal(sa.instances, sb.instances)) return false;
    if (sa.devices.size() != sb.devices.size()) return false;
    for (std::size_t i = 0; i < sa.devices.size(); ++i) {
      if (!device_equal(sa.devices[i], sb.devices[i])) return false;
    }
  }
  return true;
}

}  // namespace

AnnotationSession::AnnotationSession(const core::Annotator* annotator,
                                     SessionOptions options)
    : annotator_(annotator), options_(options) {
  const primitives::PrimitiveLibrary& library = annotator_->library();
  pattern_safe_.resize(library.size());
  for (std::size_t li = 0; li < library.size(); ++li) {
    pattern_safe_[li] = pattern_region_safe(library.spec(li));
  }
}

Result<AnnotateResult> AnnotationSession::reannotate(const Netlist& netlist,
                                                     const std::string& name) {
  stats_ = SessionStats{};
  Result<AnnotateResult> result = guard(name, [&](Stage* stage) {
    Timer prepare_timer;
    ThreadCpuTimer prepare_cpu;
    PreparedCircuit prepared;
    if (!try_patch_prepare(netlist, name, prepared)) {
      stats_.full_prepare = true;
      prepared =
          core::prepare_netlist(netlist, annotator_->class_names(), name,
                                annotator_->prepare_options(), stage);
      diff_flat(prepared.flat);
    }
    // The patch path cannot move the structural hash (it rewrites only
    // sizings), so the hash is recomputed only after a full prepare.
    stats_.structure_changed =
        stats_.full_prepare &&
        (!has_prev_ ||
         graph::structural_hash(prepared.graph) != prev_graph_hash_);
    return run_incremental(std::move(prepared), prepare_timer.seconds(),
                           prepare_cpu.seconds(), stage);
  });
  if (result.ok()) {
    if (stats_.full_prepare) {
      remember(netlist, result.value().prepared);
    } else {
      remember_patched(netlist);
    }
    if (!stats_.result_reused) store_derived(result.value());
  }
  return result;
}

bool AnnotationSession::try_patch_prepare(const Netlist& input,
                                          const std::string& name,
                                          PreparedCircuit& out) {
  if (!has_prev_ || name != prev_prepared_.name) return false;
  const Netlist& prev = prev_input_;
  if (prev.title != input.title || prev.globals != input.globals ||
      prev.port_labels != input.port_labels) {
    return false;
  }
  if (!instances_equal(prev.instances, input.instances)) return false;
  if (!subckts_equal(prev.subckts, input.subckts)) return false;
  if (prev.devices.size() != input.devices.size()) return false;

  std::vector<std::size_t> changed;
  for (std::size_t i = 0; i < prev.devices.size(); ++i) {
    const Device& da = prev.devices[i];
    const Device& db = input.devices[i];
    if (!same_except_sizing(da, db)) return false;
    if (da.value != db.value || da.params != db.params) {
      // A cold run validates values in the front end; non-finite edits
      // must take the same path to fail the same way.
      if (!finite_device(db)) return false;
      changed.push_back(i);
    }
  }
  // Every changed device must have survived preprocessing untouched:
  // aliased devices (parallel/series merges, either side) carry derived
  // values, and preprocessing decisions -- though value-independent --
  // may have removed others entirely.
  for (std::size_t i : changed) {
    const std::string& dev = prev.devices[i].name;
    if (prev_alias_names_.count(dev) != 0) return false;
    if (prev_flat_index_.find(dev) == prev_flat_index_.end()) return false;
  }

  out = prev_prepared_;
  for (std::size_t i : changed) {
    const Device& nd = input.devices[i];
    const std::size_t fi = prev_flat_index_.at(nd.name);
    Device& fd = out.flat.devices[fi];
    fd.value = nd.value;
    fd.params = nd.params;
    fd.src_line = nd.src_line;
    // Mirror graph::build_graph's characteristic-value rule.
    graph::Vertex& v = out.graph.vertex(prev_device_vertex_[fi]);
    v.value = nd.value;
    if (spice::is_mos(nd.type)) {
      const auto w = nd.params.find("w");
      if (w != nd.params.end()) v.value = w->second;
    }
  }
  stats_.full_prepare = false;
  stats_.devices_changed = changed.size();
  patch_changed_ = std::move(changed);
  return true;
}

void AnnotationSession::diff_flat(const Netlist& flat) {
  if (!has_prev_) {
    stats_.devices_added = flat.devices.size();
    return;
  }
  std::size_t matched = 0;
  for (const Device& d : flat.devices) {
    const auto it = prev_flat_index_.find(d.name);
    if (it == prev_flat_index_.end()) {
      ++stats_.devices_added;
      continue;
    }
    ++matched;
    if (!device_equal(prev_prepared_.flat.devices[it->second], d)) {
      ++stats_.devices_changed;
    }
  }
  stats_.devices_removed = prev_prepared_.flat.devices.size() - matched;
}

primitives::AnnotateOutcome AnnotationSession::incremental_annotate(
    const CircuitGraph& g) {
  const primitives::PrimitiveLibrary& library = annotator_->library();
  primitives::AnnotateOptions opt;
  opt.match = options_.match;

  // Wall-clock budgets make truncation machine-dependent; such sessions
  // run every revision cold (same rule as AnnotationCache).
  if (opt.match.max_seconds != 0.0) {
    stats_.fallback_cold = true;
    return primitives::annotate_primitives_guarded(g, library, opt);
  }

  primitives::AnnotateOutcome outcome;
  const std::uint64_t whole_key =
      primitives::annotation_cache_key(g, library, opt);
  if (const auto it = whole_annotations_.find(whole_key);
      it != whole_annotations_.end()) {
    // Value or rename edit: the structure (and thus the whole accepted
    // match set) is unchanged; only names need re-instantiation.
    outcome.cache_hit = true;
    outcome.truncated = it->second.ann->truncated;
    stats_.annotation_reused = true;
    stats_.regions = it->second.regions;
    stats_.region_reuses = it->second.regions;
    perf::count_incremental_regions(stats_.regions, stats_.region_reuses, 0);
    primitives::instantiate_annotation(g, library, *it->second.ann,
                                       outcome.primitives);
    return outcome;
  }

  const RegionPartition part = partition_regions(g);
  const std::size_t nregions = part.elements.size();
  std::vector<RegionSubgraph> subs;
  subs.reserve(nregions);
  for (const auto& elems : part.elements) {
    subs.push_back(build_region_subgraph(g, elems, options_.canon_leaf_budget));
  }

  const std::vector<std::size_t> order = library.priority_order();
  const iso::CandidateIndex whole_index(g);
  std::vector<primitives::PatternMatchList> lists(order.size());
  std::vector<bool> region_fresh(nregions, false);
  std::vector<std::unique_ptr<iso::CandidateIndex>> region_index(nregions);
  bool truncated = false;

  for (std::size_t i = 0; i < order.size() && !truncated; ++i) {
    const std::size_t li = order[i];
    const primitives::PrimitiveSpec& spec = library.spec(li);
    if (!pattern_safe_[li]) {
      // Whole-graph pattern: exactly the cold matching stage.
      lists[i] =
          primitives::match_library_pattern(spec, g, whole_index, opt.match);
      truncated = lists[i].stats.truncated;
      continue;
    }
    // Cold-equivalent counting filter (so patterns_skipped agrees).
    if (!whole_index.profile().admits(iso::count_profile(spec.graph))) {
      lists[i].skipped = true;
      continue;
    }
    std::vector<iso::Match> merged;
    for (std::size_t rid = 0; rid < nregions && !truncated; ++rid) {
      const std::uint64_t key = graph::hash_combine(
          subs[rid].key, static_cast<std::uint64_t>(li));
      std::shared_ptr<const std::vector<iso::Match>> matches;
      if (const auto it = region_matches_.find(key);
          it != region_matches_.end()) {
        matches = it->second;
      } else {
        region_fresh[rid] = true;
        if (region_index[rid] == nullptr) {
          region_index[rid] =
              std::make_unique<iso::CandidateIndex>(subs[rid].graph);
        }
        auto computed = std::make_shared<std::vector<iso::Match>>();
        if (region_index[rid]->profile().admits(
                iso::count_profile(spec.graph))) {
          // Dedup after translation: the cached record must contain
          // every automorphic image so the lex-min representative can
          // be chosen in whole-graph coordinates, as cold VF2 does.
          iso::MatchOptions ropt = opt.match;
          ropt.dedup_by_elements = false;
          iso::MatchStats st;
          *computed = iso::find_subgraph_matches(
              spec.pattern(), subs[rid].graph, ropt, &st, region_index[rid].get());
          lists[i].stats.states += st.states;
          lists[i].stats.sig_rejections += st.sig_rejections;
          truncated = truncated || st.truncated;
        }
        if (!truncated) region_matches_.emplace(key, computed);
        matches = std::move(computed);
      }
      if (truncated) break;
      for (const iso::Match& m : *matches) {
        iso::Match whole;
        whole.map.reserve(m.map.size());
        for (std::size_t lv : m.map) {
          whole.map.push_back(subs[rid].to_whole[lv]);
        }
        merged.push_back(std::move(whole));
      }
    }
    if (truncated) break;
    // Reproduce the cold list: lex-min map per element key (matches of
    // one element set never span regions for a safe pattern), then the
    // canonical (element key, map) acceptance order.
    std::vector<std::vector<std::size_t>> keys(merged.size());
    std::vector<std::size_t> idx(merged.size());
    for (std::size_t k = 0; k < merged.size(); ++k) {
      idx[k] = k;
      keys[k] = merged[k].element_key(spec.graph);
    }
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      if (keys[a] != keys[b]) return keys[a] < keys[b];
      return merged[a].map < merged[b].map;
    });
    std::vector<iso::Match> sorted;
    sorted.reserve(idx.size());
    for (std::size_t k = 0; k < idx.size(); ++k) {
      if (opt.match.dedup_by_elements && k > 0 &&
          keys[idx[k]] == keys[idx[k - 1]]) {
        continue;  // automorphic image; the lex-min map came first
      }
      sorted.push_back(std::move(merged[idx[k]]));
    }
    lists[i].matches = std::move(sorted);
  }

  if (truncated) {
    // A budget fired under region decomposition. Cold truncation points
    // are the pinned deterministic ones, so replay the whole sweep cold.
    stats_.fallback_cold = true;
    stats_.regions = nregions;
    stats_.region_recomputes = nregions;
    perf::count_incremental_regions(nregions, 0, nregions);
    primitives::AnnotateOutcome cold;
    primitives::AnnotateOptions cold_opt;
    cold_opt.match = options_.match;
    return primitives::annotate_primitives_guarded(g, library, cold_opt);
  }

  primitives::CachedAnnotation ann = primitives::accept_pattern_matches(
      g, library, order, lists, opt, outcome);
  stats_.regions = nregions;
  for (const bool fresh : region_fresh) {
    if (fresh) {
      ++stats_.region_recomputes;
    } else {
      ++stats_.region_reuses;
    }
  }
  perf::count_incremental_regions(stats_.regions, stats_.region_reuses,
                                  stats_.region_recomputes);
  auto stored = std::make_shared<const primitives::CachedAnnotation>(
      std::move(ann));
  if (!outcome.truncated) {
    whole_annotations_[whole_key] = {stored, nregions};
  }
  primitives::instantiate_annotation(g, library, *stored, outcome.primitives);
  return outcome;
}

AnnotateResult AnnotationSession::run_incremental(PreparedCircuit prepared,
                                                  double seconds_prepare,
                                                  double cpu_seconds_prepare,
                                                  Stage* stage) {
  AnnotateResult r;
  r.prepared = std::move(prepared);
  r.seconds_prepare = seconds_prepare;
  r.cpu_seconds_prepare = cpu_seconds_prepare;

  // --- GCN classification (shared with the cold pipeline, including
  // its sample-prep and inference caches).
  Timer gcn_timer;
  ThreadCpuTimer gcn_cpu;
  const std::size_t n = r.prepared.graph.vertex_count();
  r.probabilities =
      annotator_->compute_probabilities(r.prepared, options_.sample_seed, stage);

  // Sizing-loop fast path: a value patch plus bit-identical
  // probabilities means CCC, extraction, both postprocess stages, and
  // the hierarchy all run on inputs equal to the previous revision's
  // (structure and names are patch-path invariants; values are read by
  // nothing downstream of the GCN). Re-emit the stored outputs. The
  // stage marks still fire so fault-injection draws stay aligned with
  // the recompute path.
  if (!stats_.full_prepare && derived_.valid &&
      r.probabilities.rows() == derived_.probabilities.rows() &&
      r.probabilities.cols() == derived_.probabilities.cols() &&
      !r.probabilities.empty() &&
      std::memcmp(r.probabilities.data().data(),
                  derived_.probabilities.data().data(),
                  r.probabilities.size() * sizeof(double)) == 0) {
    r.gcn_class = derived_.gcn_class;
    r.seconds_gcn = gcn_timer.seconds();
    r.cpu_seconds_gcn = gcn_cpu.seconds();
    Timer reuse_timer;
    ThreadCpuTimer reuse_cpu;
    mark(stage, Stage::Primitives);
    r.ccc = derived_.ccc;
    r.post = derived_.post;
    mark(stage, Stage::Postprocess);
    r.post1_class = derived_.post1_class;
    r.final_class = derived_.final_class;
    mark(stage, Stage::Hierarchy);
    r.hierarchy = derived_.hierarchy;
    r.warnings = derived_.warnings;
    r.seconds_post = reuse_timer.seconds();
    r.cpu_seconds_post = reuse_cpu.seconds();
    stats_.annotation_reused = true;
    stats_.result_reused = true;
    stats_.regions = derived_.regions;
    stats_.region_reuses = derived_.regions;
    perf::count_incremental_regions(stats_.regions, stats_.region_reuses, 0);
    r.acc_gcn = core::accuracy(r.gcn_class, r.prepared.labels);
    r.acc_post1 = core::accuracy(r.post1_class, r.prepared.labels);
    r.acc_post2 = core::accuracy(r.final_class, r.prepared.labels);
    return r;
  }

  r.gcn_class.assign(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < r.probabilities.cols(); ++c) {
      if (r.probabilities(v, c) > r.probabilities(v, best)) best = c;
    }
    r.gcn_class[v] = static_cast<int>(best);
  }
  r.seconds_gcn = gcn_timer.seconds();
  r.cpu_seconds_gcn = gcn_cpu.seconds();

  // --- Postprocessing I, with region-level primitive extraction.
  Timer post_timer;
  ThreadCpuTimer post_cpu;
  mark(stage, Stage::Primitives);
  r.ccc = graph::channel_connected_components(r.prepared.graph);
  primitives::AnnotateOutcome outcome =
      incremental_annotate(r.prepared.graph);
  r.post = core::postprocess_stage1_with_annotation(
      r.prepared.graph, r.ccc, r.probabilities, annotator_->class_names(),
      std::move(outcome));
  if (r.post.primitives_truncated) {
    r.warnings.push_back(make_diag(
        DiagCode::Truncated, Stage::Primitives,
        "VF2 budget exhausted after " + std::to_string(r.post.vf2_states) +
            " states; primitive annotation of circuit " + r.prepared.name +
            " is partial"));
  }
  mark(stage, Stage::Postprocess);
  r.post1_class =
      core::vertex_classes(r.prepared.graph, r.ccc, r.post.cluster_class);

  // --- Postprocessing II.
  core::postprocess_stage2(r.prepared.graph, r.ccc,
                           annotator_->class_names(), r.post);
  r.final_class =
      core::vertex_classes(r.prepared.graph, r.ccc, r.post.cluster_class);

  // --- Hierarchy + constraints.
  mark(stage, Stage::Hierarchy);
  r.hierarchy = core::build_hierarchy(r.prepared.graph, r.ccc, r.post,
                                      annotator_->class_names(),
                                      r.prepared.name);
  r.seconds_post = post_timer.seconds();
  r.cpu_seconds_post = post_cpu.seconds();

  r.acc_gcn = core::accuracy(r.gcn_class, r.prepared.labels);
  r.acc_post1 = core::accuracy(r.post1_class, r.prepared.labels);
  r.acc_post2 = core::accuracy(r.final_class, r.prepared.labels);
  return r;
}

void AnnotationSession::remember(const Netlist& input,
                                 const PreparedCircuit& prepared) {
  prev_input_ = input;
  prev_prepared_ = prepared;
  prev_graph_hash_ = graph::structural_hash(prepared.graph);
  prev_flat_index_.clear();
  for (std::size_t i = 0; i < prepared.flat.devices.size(); ++i) {
    prev_flat_index_.emplace(prepared.flat.devices[i].name, i);
  }
  prev_device_vertex_.assign(prepared.flat.devices.size(), CircuitGraph::npos);
  const CircuitGraph& g = prepared.graph;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const graph::Vertex& vert = g.vertex(v);
    if (vert.kind == graph::VertexKind::Element &&
        vert.device_index < prev_device_vertex_.size()) {
      prev_device_vertex_[vert.device_index] = v;
    }
  }
  prev_alias_names_.clear();
  for (const auto& [removed, kept] : prepared.preprocess_report.alias) {
    prev_alias_names_.emplace(removed, true);
    if (!kept.empty()) prev_alias_names_.emplace(kept, true);
  }
  has_prev_ = true;
}

void AnnotationSession::remember_patched(const Netlist& input) {
  // The patch path already proved names, topology, and the flattening
  // inputs unchanged, so the graph hash, flat index, device-vertex map,
  // and alias set all remain valid. Fold in only the edited sizings --
  // the same rewrite try_patch_prepare applied to its output copy.
  for (std::size_t i : patch_changed_) {
    const Device& nd = input.devices[i];
    prev_input_.devices[i] = nd;
    const std::size_t fi = prev_flat_index_.at(nd.name);
    Device& fd = prev_prepared_.flat.devices[fi];
    fd.value = nd.value;
    fd.params = nd.params;
    fd.src_line = nd.src_line;
    graph::Vertex& v = prev_prepared_.graph.vertex(prev_device_vertex_[fi]);
    v.value = nd.value;
    if (spice::is_mos(nd.type)) {
      const auto w = nd.params.find("w");
      if (w != nd.params.end()) v.value = w->second;
    }
  }
}

void AnnotationSession::store_derived(const core::AnnotateResult& r) {
  derived_.valid = true;
  derived_.probabilities = r.probabilities;
  derived_.ccc = r.ccc;
  derived_.gcn_class = r.gcn_class;
  derived_.post1_class = r.post1_class;
  derived_.final_class = r.final_class;
  derived_.post = r.post;
  derived_.hierarchy = r.hierarchy;
  derived_.warnings = r.warnings;
  derived_.regions = stats_.regions;
}

}  // namespace gana::incremental
