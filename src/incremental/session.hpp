// Incremental re-annotation sessions (DESIGN.md §14).
//
// An AnnotationSession holds the artifacts of the previous annotation
// of one evolving design and re-annotates each edited revision by
// recomputing only what the edit dirtied:
//
//   * value-only edits (device sizing, same topology) skip the front
//     end entirely: the previous flat netlist and graph are patched in
//     place (guarded by the preprocess alias map, whose decisions are
//     value-independent), features are rebuilt, and the GCN inference
//     cache -- keyed since this engine's introduction by a fingerprint
//     of the feature *values* on top of the structural sample key --
//     serves the probabilities when the edit stays inside its feature
//     buckets;
//   * the VF2 sweep is decomposed by region (incremental/region.hpp):
//     region-safe patterns are matched per region with results cached
//     under the region's canonical structure key, so an edit re-matches
//     only the regions it touched; the remaining patterns are matched
//     whole-graph. A whole-graph annotation store short-circuits both
//     when the structural hash is unchanged;
//   * everything downstream of extraction (CCC vote, stand-alone
//     separation, postprocessing II, hierarchy) is recomputed globally
//     -- except on the sizing-loop fast path: when a value patch leaves
//     the GCN probabilities bit-identical (compared, not assumed), every
//     downstream stage would run on inputs equal to the previous
//     revision's, so the session re-emits the stored derived result
//     outright.
//
// Bit-identity contract: reannotate() output equals a cold
// Annotator::try_annotate of the same netlist, byte for byte, at any
// thread count. Every reuse path above preserves it by construction
// (patching reproduces what prepare would build; region match sets
// equal whole-graph sets restricted to the region for safe patterns;
// acceptance runs globally on the merged lists). Any VF2 budget
// truncation anywhere aborts reuse and falls back to the cold sweep,
// whose truncation points the determinism tests already pin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "isomorph/vf2.hpp"
#include "primitives/annotation_cache.hpp"
#include "spice/netlist.hpp"

namespace gana::incremental {

struct SessionOptions {
  std::uint64_t sample_seed = core::kDefaultSampleSeed;
  /// Individualization leaf budget of the canonical labeler.
  std::size_t canon_leaf_budget = 64;
  /// VF2 budgets for the incremental sweeps. `max_seconds` must stay 0:
  /// wall-clock truncation points are machine-dependent, so a session
  /// with a wall budget runs every revision cold.
  iso::MatchOptions match;
};

/// Per-revision reuse report (also flushed to the perf counters).
struct SessionStats {
  bool full_prepare = true;   ///< false when the value-patch path ran
  std::size_t devices_added = 0;    ///< flattened-instance-level diff
  std::size_t devices_removed = 0;  ///< vs. the previous revision
  std::size_t devices_changed = 0;
  bool structure_changed = true;  ///< whole-graph structural hash moved
  std::size_t regions = 0;
  std::size_t region_reuses = 0;      ///< served from the region cache
  std::size_t region_recomputes = 0;  ///< ran VF2 fresh
  bool annotation_reused = false;  ///< whole-graph annotation store hit
  /// The previous revision's entire derived result (CCC, postprocess,
  /// hierarchy, classes) was re-emitted: a value-only edit left the
  /// structure, names, and GCN probabilities bit-identical, so every
  /// downstream stage's inputs were unchanged.
  bool result_reused = false;
  bool fallback_cold = false;      ///< truncation forced a cold sweep
};

class AnnotationSession {
 public:
  /// `annotator` is borrowed and must outlive the session. Its attached
  /// sample/inference caches carry the GCN reuse; the session adds its
  /// own match-level stores on top.
  explicit AnnotationSession(const core::Annotator* annotator,
                             SessionOptions options = {});

  /// Annotates the next revision of the design. Never throws; failures
  /// come back as Diags exactly like Annotator::try_annotate. On
  /// success the revision becomes the new baseline for the next call.
  [[nodiscard]] Result<core::AnnotateResult> reannotate(
      const spice::Netlist& netlist, const std::string& name);

  /// Reuse report of the last reannotate() call.
  [[nodiscard]] const SessionStats& last_stats() const { return stats_; }

  [[nodiscard]] const core::Annotator& annotator() const {
    return *annotator_;
  }

 private:
  struct WholeEntry {
    std::shared_ptr<const primitives::CachedAnnotation> ann;
    std::size_t regions = 0;  ///< region count of the structure, for stats
  };

  /// Everything downstream of the GCN for the previous revision. When a
  /// value patch leaves the probabilities bit-identical, these are the
  /// outputs of pure functions whose inputs did not change, so the next
  /// revision re-emits them instead of recomputing (the interactive
  /// sizing-loop fast path: prepare patch + probability compare only).
  struct StoredDerived {
    bool valid = false;
    Matrix probabilities;
    graph::CccResult ccc;
    std::vector<int> gcn_class, post1_class, final_class;
    core::PostprocessResult post;
    core::HierarchyNode hierarchy;
    std::vector<Diag> warnings;
    std::size_t regions = 0;  ///< that revision's region count, for stats
  };

  core::AnnotateResult run_incremental(core::PreparedCircuit prepared,
                                       double seconds_prepare,
                                       double cpu_seconds_prepare,
                                       Stage* stage);
  primitives::AnnotateOutcome incremental_annotate(
      const graph::CircuitGraph& g);
  bool try_patch_prepare(const spice::Netlist& input, const std::string& name,
                         core::PreparedCircuit& out);
  void diff_flat(const spice::Netlist& flat);
  void remember(const spice::Netlist& input,
                const core::PreparedCircuit& prepared);
  /// O(edited devices) baseline update after a successful patch-path
  /// revision: names, structure, and every derived index are unchanged,
  /// so only the edited sizings are folded into the stored baseline.
  void remember_patched(const spice::Netlist& input);
  void store_derived(const core::AnnotateResult& r);

  const core::Annotator* annotator_;
  SessionOptions options_;
  SessionStats stats_;

  // Previous-revision baseline.
  bool has_prev_ = false;
  spice::Netlist prev_input_;
  core::PreparedCircuit prev_prepared_;
  std::uint64_t prev_graph_hash_ = 0;
  std::unordered_map<std::string, std::size_t> prev_flat_index_;
  std::vector<std::size_t> prev_device_vertex_;  ///< flat index -> vertex id
  std::unordered_map<std::string, bool> prev_alias_names_;  ///< either side
  /// Flat-device indices the last successful patch-path revision edited.
  std::vector<std::size_t> patch_changed_;
  StoredDerived derived_;

  // Match-level stores, keyed by structure. Unbounded: a session tracks
  // one evolving design, so the population is the design's distinct
  // region structures (dozens), not a corpus.
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const std::vector<iso::Match>>>
      region_matches_;
  std::unordered_map<std::uint64_t, WholeEntry> whole_annotations_;
  /// Region-safety of each library pattern, classified once.
  std::vector<bool> pattern_safe_;
};

}  // namespace gana::incremental
