#include "incremental/canonical.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

namespace gana::incremental {

using graph::CircuitGraph;
using graph::Vertex;
using graph::VertexKind;

namespace {

/// Structural attribute word of a vertex: what the whole-graph
/// structural hash sees (kind plus device type or net role). Names,
/// values, and hierarchy depth are invisible to matching, so they are
/// invisible here too.
std::uint64_t attr_word(const Vertex& v) {
  std::uint64_t word = static_cast<std::uint64_t>(v.kind);
  if (v.kind == VertexKind::Element) {
    word |= static_cast<std::uint64_t>(v.dtype) << 8;
  } else {
    word |= static_cast<std::uint64_t>(v.role) << 8;
  }
  return word;
}

/// The induced subgraph in local coordinates.
struct LocalGraph {
  std::size_t n = 0;
  std::vector<std::uint64_t> attr;
  /// Per local vertex: (edge label, local neighbor), sorted.
  std::vector<std::vector<std::pair<std::uint8_t, std::uint32_t>>> adj;
};

/// Splits color classes by refinement signatures until stable. Colors
/// are dense ranks; refinement only ever splits classes, so stability is
/// "class count unchanged".
void refine(const LocalGraph& lg, std::vector<std::uint32_t>& color) {
  const std::size_t n = lg.n;
  std::vector<std::vector<std::uint64_t>> sig(n);
  std::vector<std::size_t> idx(n);
  for (;;) {
    std::size_t old_classes = 0;
    for (std::size_t v = 0; v < n; ++v) {
      old_classes = std::max<std::size_t>(old_classes, color[v] + 1);
    }
    for (std::size_t v = 0; v < n; ++v) {
      sig[v].clear();
      sig[v].push_back(color[v]);
      for (auto [label, u] : lg.adj[v]) {
        sig[v].push_back((static_cast<std::uint64_t>(label) << 32) | color[u]);
      }
      std::sort(sig[v].begin() + 1, sig[v].end());
    }
    for (std::size_t v = 0; v < n; ++v) idx[v] = v;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return sig[a] < sig[b]; });
    std::uint32_t next = 0;
    std::vector<std::uint32_t> fresh(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0 && sig[idx[i]] != sig[idx[i - 1]]) ++next;
      fresh[idx[i]] = next;
    }
    color.swap(fresh);
    if (static_cast<std::size_t>(next) + 1 == old_classes) return;
  }
}

/// Certificate of a discrete coloring: vertex attributes in color order
/// plus the sorted positional edge triples. Equal certificates imply
/// identical ordered subgraphs.
std::vector<std::uint64_t> encode(const LocalGraph& lg,
                                  const std::vector<std::size_t>& order) {
  std::vector<std::size_t> pos(lg.n);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  std::vector<std::uint64_t> cert;
  cert.reserve(lg.n * 4);
  for (std::size_t v : order) cert.push_back(lg.attr[v]);
  std::vector<std::uint64_t> edges;
  for (std::size_t v = 0; v < lg.n; ++v) {
    for (auto [label, u] : lg.adj[v]) {
      if (v > u) continue;  // each edge once (bipartite: v<->u, keep min side)
      const std::uint64_t a = std::min(pos[v], pos[u]);
      const std::uint64_t b = std::max(pos[v], pos[u]);
      edges.push_back((a << 40) | (b << 16) | label);
    }
  }
  std::sort(edges.begin(), edges.end());
  cert.push_back(edges.size());
  cert.insert(cert.end(), edges.begin(), edges.end());
  return cert;
}

struct Best {
  std::vector<std::uint64_t> cert;
  std::vector<std::size_t> order;
  bool set = false;
};

/// Individualization-refinement search; returns false when the leaf
/// budget is exhausted (the caller falls back).
bool search(const LocalGraph& lg, std::vector<std::uint32_t> color,
            std::size_t& leaves, std::size_t leaf_budget, Best& best) {
  refine(lg, color);
  // First non-singleton class, by color rank.
  std::vector<std::size_t> class_size(lg.n, 0);
  for (std::uint32_t c : color) ++class_size[c];
  std::uint32_t target = 0;
  bool discrete = true;
  for (std::uint32_t c = 0; c < lg.n; ++c) {
    if (class_size[c] > 1) {
      target = c;
      discrete = false;
      break;
    }
  }
  if (discrete) {
    if (++leaves > leaf_budget) return false;
    std::vector<std::size_t> order(lg.n);
    std::vector<std::size_t> idx(lg.n);
    for (std::size_t v = 0; v < lg.n; ++v) idx[v] = v;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return color[a] < color[b];
    });
    order = std::move(idx);
    std::vector<std::uint64_t> cert = encode(lg, order);
    if (!best.set || cert < best.cert) {
      best.cert = std::move(cert);
      best.order = std::move(order);
      best.set = true;
    }
    return true;
  }
  for (std::size_t v = 0; v < lg.n; ++v) {
    if (color[v] != target) continue;
    std::vector<std::uint32_t> branched = color;
    branched[v] = static_cast<std::uint32_t>(lg.n);  // unique: colors < n
    if (!search(lg, std::move(branched), leaves, leaf_budget, best)) {
      return false;
    }
  }
  return true;
}

}  // namespace

CanonicalOrder canonical_order(const CircuitGraph& g,
                               const std::vector<std::size_t>& vertices,
                               std::size_t leaf_budget) {
  std::vector<std::size_t> sorted = vertices;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  CanonicalOrder out;
  if (sorted.empty()) return out;

  LocalGraph lg;
  lg.n = sorted.size();
  lg.attr.resize(lg.n);
  lg.adj.resize(lg.n);
  std::vector<std::size_t> position(g.vertex_count(), CircuitGraph::npos);
  for (std::size_t i = 0; i < sorted.size(); ++i) position[sorted[i]] = i;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    lg.attr[i] = attr_word(g.vertex(sorted[i]));
  }
  for (const graph::Edge& e : g.edges()) {
    const std::size_t ep = position[e.element];
    const std::size_t np = position[e.net];
    if (ep == CircuitGraph::npos || np == CircuitGraph::npos) continue;
    lg.adj[ep].emplace_back(e.label, static_cast<std::uint32_t>(np));
    lg.adj[np].emplace_back(e.label, static_cast<std::uint32_t>(ep));
  }
  for (auto& a : lg.adj) std::sort(a.begin(), a.end());

  // Initial colors: rank of the attribute word.
  std::vector<std::uint64_t> attrs = lg.attr;
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  std::vector<std::uint32_t> color(lg.n);
  for (std::size_t v = 0; v < lg.n; ++v) {
    color[v] = static_cast<std::uint32_t>(
        std::lower_bound(attrs.begin(), attrs.end(), lg.attr[v]) -
        attrs.begin());
  }

  std::size_t leaves = 0;
  Best best;
  if (!search(lg, std::move(color), leaves, leaf_budget, best) || !best.set) {
    out.order = std::move(sorted);
    out.fallback = true;
    return out;
  }
  out.order.reserve(lg.n);
  for (std::size_t local : best.order) out.order.push_back(sorted[local]);
  return out;
}

}  // namespace gana::incremental
