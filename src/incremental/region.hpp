// Region decomposition for incremental primitive matching (DESIGN.md §14).
//
// A *region* is a connected component of element vertices under
// shared-non-rail-net adjacency: two devices are in one region iff a
// chain of signal nets (anything but the supply/ground rails) links
// them. Rails connect almost everything to almost everything, so they
// are deliberately not edges of this relation -- they are instead
// *included* in every adjacent region's subgraph, giving each region
// the full local context VF2 needs.
//
// A library pattern is *region-safe* when matching it inside each
// region subgraph provably enumerates exactly the whole-graph matches
// whose elements lie in that region:
//   (a) the pattern's elements are connected through forbid-rail nets,
//       so every match's element set sits inside one region (a
//       forbid-rail pattern net can only bind a signal net, and devices
//       sharing a signal net share a region);
//   (b) no strict-degree pattern net may bind a rail, so the exact
//       degree check always lands on a signal net -- whose region-local
//       degree equals its whole-graph degree (all its devices are in
//       the region). The >= degree pruning on other nets is sound
//       because a completed match forces region degree >= pattern
//       degree at every bound net.
// Patterns failing either test (rail-decorated mirrors, single-device
// patterns with strict rail ports, ...) are matched against the whole
// graph and cached under the whole-graph structural hash instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/circuit_graph.hpp"
#include "primitives/library.hpp"

namespace gana::incremental {

struct RegionPartition {
  /// Per region: sorted element vertex ids. Regions are numbered by
  /// their smallest element id, so the partition is deterministic.
  std::vector<std::vector<std::size_t>> elements;
  /// Per vertex: region id for element vertices, -1 for nets.
  std::vector<int> region_of;
};

/// True for supply/ground net vertices.
[[nodiscard]] bool is_rail(const graph::Vertex& v);

/// Partitions the elements of `g` into regions.
RegionPartition partition_regions(const graph::CircuitGraph& g);

/// The region-safety test described above.
[[nodiscard]] bool pattern_region_safe(const primitives::PrimitiveSpec& spec);

/// A region subgraph in canonical vertex order: the region's elements,
/// every adjacent net (rails included), and every edge incident to a
/// region element -- edges inserted in sorted positional order, so the
/// graph is a pure function of `key`.
struct RegionSubgraph {
  graph::CircuitGraph graph;
  /// Local vertex id -> whole-graph vertex id.
  std::vector<std::size_t> to_whole;
  /// Structure key: subgraph_structural_hash over the canonical order.
  /// Equal keys imply identical local graphs (64-bit collisions
  /// accepted, as everywhere else the structural hash is used).
  std::uint64_t key = 0;
  /// Canonical labeling hit its leaf budget (key degrades to the
  /// numbering-sensitive fallback order).
  bool canon_fallback = false;
};

RegionSubgraph build_region_subgraph(const graph::CircuitGraph& g,
                                     const std::vector<std::size_t>& elements,
                                     std::size_t canon_leaf_budget = 64);

}  // namespace gana::incremental
