#include "incremental/region.hpp"

#include <algorithm>
#include <utility>

#include "graph/structural_hash.hpp"
#include "incremental/canonical.hpp"
#include "util/perf.hpp"

namespace gana::incremental {

using graph::CircuitGraph;
using graph::NetRole;
using graph::Vertex;
using graph::VertexKind;

bool is_rail(const Vertex& v) {
  return v.kind == VertexKind::Net &&
         (v.role == NetRole::Supply || v.role == NetRole::Ground);
}

namespace {

/// Minimal union-find over vertex ids.
struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t find(std::size_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

}  // namespace

RegionPartition partition_regions(const CircuitGraph& g) {
  const std::size_t n = g.vertex_count();
  UnionFind uf(n);
  for (std::size_t v = 0; v < n; ++v) {
    const Vertex& vert = g.vertex(v);
    if (vert.kind != VertexKind::Net || is_rail(vert)) continue;
    // All elements on a signal net share a region.
    std::size_t first = CircuitGraph::npos;
    for (std::size_t eid : g.incident(v)) {
      const std::size_t el = g.edge(eid).element;
      if (first == CircuitGraph::npos) {
        first = el;
      } else {
        uf.unite(first, el);
      }
    }
  }
  RegionPartition out;
  out.region_of.assign(n, -1);
  std::vector<int> root_region(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    if (g.vertex(v).kind != VertexKind::Element) continue;
    const std::size_t root = uf.find(v);
    if (root_region[root] < 0) {
      root_region[root] = static_cast<int>(out.elements.size());
      out.elements.emplace_back();
    }
    out.region_of[v] = root_region[root];
    out.elements[static_cast<std::size_t>(root_region[root])].push_back(v);
  }
  return out;  // per-region lists are ascending by construction
}

bool pattern_region_safe(const primitives::PrimitiveSpec& spec) {
  const CircuitGraph& pg = spec.graph;
  const std::size_t n = pg.vertex_count();
  if (pg.element_count() == 0) return false;
  // (b) every strict-degree net must also be forbid-rail: the exact
  // degree comparison is only region-stable on signal nets.
  for (std::size_t v = 0; v < n; ++v) {
    if (pg.vertex(v).kind != VertexKind::Net) continue;
    const bool strict = v < spec.strict_degree.size() && spec.strict_degree[v];
    const bool no_rail = v < spec.forbid_rail.size() && spec.forbid_rail[v];
    if (strict && !no_rail) return false;
  }
  // (a) elements connected through forbid-rail nets.
  UnionFind uf(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (pg.vertex(v).kind != VertexKind::Net) continue;
    if (!(v < spec.forbid_rail.size() && spec.forbid_rail[v])) continue;
    std::size_t first = CircuitGraph::npos;
    for (std::size_t eid : pg.incident(v)) {
      const std::size_t el = pg.edge(eid).element;
      if (first == CircuitGraph::npos) {
        first = el;
      } else {
        uf.unite(first, el);
      }
    }
  }
  std::size_t root = CircuitGraph::npos;
  for (std::size_t v = 0; v < n; ++v) {
    if (pg.vertex(v).kind != VertexKind::Element) continue;
    const std::size_t r = uf.find(v);
    if (root == CircuitGraph::npos) {
      root = r;
    } else if (r != root) {
      return false;
    }
  }
  return true;
}

RegionSubgraph build_region_subgraph(const CircuitGraph& g,
                                     const std::vector<std::size_t>& elements,
                                     std::size_t canon_leaf_budget) {
  // Vertex set: the region's elements plus every adjacent net.
  std::vector<std::size_t> vset = elements;
  for (std::size_t el : elements) {
    for (std::size_t eid : g.incident(el)) {
      vset.push_back(g.edge(eid).net);
    }
  }
  std::sort(vset.begin(), vset.end());
  vset.erase(std::unique(vset.begin(), vset.end()), vset.end());

  CanonicalOrder co = canonical_order(g, vset, canon_leaf_budget);
  if (co.fallback) perf::count_incremental_canon_fallback();

  RegionSubgraph out;
  out.canon_fallback = co.fallback;
  out.key = graph::subgraph_structural_hash(g, co.order);
  out.to_whole = co.order;

  std::vector<std::size_t> position(g.vertex_count(), CircuitGraph::npos);
  for (std::size_t i = 0; i < co.order.size(); ++i) {
    position[co.order[i]] = i;
  }
  // Local vertices in canonical order. CircuitGraph numbers elements and
  // nets in one id space by insertion, so inserting in canonical order
  // reproduces the order the key hashed.
  for (std::size_t v : co.order) {
    Vertex copy = g.vertex(v);
    if (copy.kind == VertexKind::Element) {
      out.graph.add_element(std::move(copy));
    } else {
      out.graph.add_net(std::move(copy));
    }
  }
  // Edges incident to region elements, inserted in sorted positional
  // order so the local edge list (and thus budgeted VF2 enumeration) is
  // a pure function of the key, not of whole-graph edge order.
  std::vector<bool> in_region(g.vertex_count(), false);
  for (std::size_t el : elements) in_region[el] = true;
  struct Triple {
    std::size_t element, net;
    std::uint8_t label;
  };
  std::vector<Triple> triples;
  for (const graph::Edge& e : g.edges()) {
    if (!in_region[e.element]) continue;
    triples.push_back({position[e.element], position[e.net], e.label});
  }
  std::sort(triples.begin(), triples.end(), [](const Triple& a, const Triple& b) {
    if (a.element != b.element) return a.element < b.element;
    if (a.net != b.net) return a.net < b.net;
    return a.label < b.label;
  });
  for (const Triple& t : triples) {
    out.graph.connect(t.element, t.net, t.label);
  }
  return out;
}

}  // namespace gana::incremental
