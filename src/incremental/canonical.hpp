// Canonical vertex ordering of an induced subgraph (DESIGN.md §14).
//
// The incremental session engine caches per-region VF2 match lists
// keyed by the region's *structure*. Two edits that produce the same
// region under different whole-graph vertex numbering (a pure
// reordering of the netlist, say) must land on the same cache entry,
// and the cached match maps -- expressed in region-local coordinates --
// must mean the same thing in both. Both requirements reduce to one:
// order the region's vertices by structure alone.
//
// The algorithm is textbook iterated color refinement with
// individualization:
//   * initial colors = (vertex kind, device type or net role);
//   * refinement signature = (old color, sorted multiset of
//     (edge label, neighbor color)) until the partition is stable;
//   * while a non-singleton class remains, individualize each member of
//     the first one in turn, recurse, and keep the lexicographically
//     smallest certificate (vertex attributes in order + sorted
//     positional edge triples).
// The leaf budget bounds the individualization tree on adversarially
// symmetric regions; exceeding it falls back to ascending whole-graph
// id order (sound -- the cache key then simply tracks the input
// numbering and reuse degrades, counted by incr_canon_fallbacks).
// Correctness never depends on the order being canonical, only on
// "equal key => identical ordered subgraph".
#pragma once

#include <cstddef>
#include <vector>

#include "graph/circuit_graph.hpp"

namespace gana::incremental {

struct CanonicalOrder {
  /// Whole-graph vertex ids of the subgraph, in canonical sequence.
  std::vector<std::size_t> order;
  /// True when the leaf budget was exceeded and `order` is the sorted-id
  /// fallback (still deterministic, just numbering-sensitive).
  bool fallback = false;
};

/// Canonically orders the subgraph of `g` induced by `vertices`
/// (duplicates ignored). Pure function of the induced structure: two
/// vertex sets inducing isomorphic labeled subgraphs yield orders under
/// which the subgraphs are identical, whatever the original numbering
/// -- unless the search exceeds `leaf_budget` leaves.
CanonicalOrder canonical_order(const graph::CircuitGraph& g,
                               const std::vector<std::size_t>& vertices,
                               std::size_t leaf_budget = 64);

}  // namespace gana::incremental
