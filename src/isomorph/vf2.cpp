#include "isomorph/vf2.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>
#include <set>

namespace gana::iso {

using graph::CircuitGraph;
using graph::Edge;
using graph::NetRole;
using graph::Vertex;
using graph::VertexKind;

namespace {

constexpr std::size_t kNone = CircuitGraph::npos;

/// Swaps the source and drain bits of an edge label.
std::uint8_t swap_sd(std::uint8_t label) {
  const std::uint8_t gate = label & graph::kLabelGate;
  const std::uint8_t s = (label & graph::kLabelSource) ? graph::kLabelDrain : 0;
  const std::uint8_t d = (label & graph::kLabelDrain) ? graph::kLabelSource : 0;
  return static_cast<std::uint8_t>(gate | s | d);
}

/// Static vertex compatibility (ignores edges).
bool vertex_compatible(const Vertex& p, const Vertex& t) {
  if (p.kind != t.kind) return false;
  if (p.kind == VertexKind::Element) {
    return p.dtype == t.dtype;
  }
  // Net roles: a pattern rail must match the same rail in the target; a
  // generic pattern net may match any target net (including rails, so a
  // grounded current-mirror source port can bind to gnd!).
  if (p.role == NetRole::Supply) return t.role == NetRole::Supply;
  if (p.role == NetRole::Ground) return t.role == NetRole::Ground;
  return true;
}

class Vf2State {
 public:
  Vf2State(const Pattern& pattern, const CircuitGraph& target,
           const MatchOptions& options)
      : p_(*pattern.graph),
        t_(target),
        strict_(pattern.strict_degree),
        forbid_rail_(pattern.forbid_rail),
        options_(options) {
    core_p_.assign(p_.vertex_count(), kNone);
    core_t_.assign(t_.vertex_count(), kNone);
    flip_.assign(p_.vertex_count(), false);
    order_ = search_order();
    if (options.max_seconds > 0.0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(options.max_seconds));
    }
  }

  std::vector<Match> run(MatchStats* stats) {
    if (!order_.empty()) recurse(0);
    if (stats != nullptr) {
      stats->states = states_;
      stats->truncated = truncated_;
    }
    return std::move(matches_);
  }

 private:
  /// A connected search order over pattern vertices: start from the
  /// highest-degree element, grow by edges. (Primitives are connected.)
  std::vector<std::size_t> search_order() const {
    const std::size_t n = p_.vertex_count();
    if (n == 0) return {};
    std::size_t root = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const bool better =
          (p_.vertex(v).kind == VertexKind::Element &&
           p_.vertex(root).kind != VertexKind::Element) ||
          (p_.vertex(v).kind == p_.vertex(root).kind &&
           p_.degree(v) > p_.degree(root));
      if (better) root = v;
    }
    std::vector<std::size_t> order;
    std::vector<bool> seen(n, false);
    order.push_back(root);
    seen[root] = true;
    for (std::size_t i = 0; i < order.size(); ++i) {
      // Among frontier vertices adjacent to the ordered prefix, prefer
      // elements and high degree: they constrain the search most.
      std::size_t best = kNone;
      auto consider = [&](std::size_t v) {
        if (seen[v]) return;
        if (best == kNone) {
          best = v;
          return;
        }
        const Vertex& a = p_.vertex(v);
        const Vertex& b = p_.vertex(best);
        if (a.kind == VertexKind::Element && b.kind != VertexKind::Element) {
          best = v;
        } else if (a.kind == b.kind && p_.degree(v) > p_.degree(best)) {
          best = v;
        }
      };
      for (std::size_t u : order) {
        for (std::size_t eid : p_.incident(u)) {
          consider(p_.opposite(eid, u));
        }
      }
      if (best != kNone) {
        seen[best] = true;
        order.push_back(best);
      } else if (order.size() < n) {
        // Disconnected pattern: pick any unseen vertex (rare; supported
        // for completeness).
        for (std::size_t v = 0; v < n; ++v) {
          if (!seen[v]) {
            seen[v] = true;
            order.push_back(v);
            break;
          }
        }
      }
    }
    return order;
  }

  /// Expected target label of pattern edge `label` on element `pe` given
  /// its orientation flip.
  std::uint8_t expected_label(std::size_t pe, std::uint8_t label) const {
    return flip_[pe] ? swap_sd(label) : label;
  }

  /// Checks all pattern edges from `pu` into already-mapped neighbors.
  bool edges_consistent(std::size_t pu, std::size_t tv) const {
    for (std::size_t eid : p_.incident(pu)) {
      const Edge& pe = p_.edge(eid);
      const std::size_t pw = (pe.element == pu) ? pe.net : pe.element;
      const std::size_t tw = core_p_[pw];
      if (tw == kNone) continue;
      // Locate the target edge (tv, tw); vertex degrees are tiny on the
      // element side, so scan the element endpoint.
      const std::size_t t_elem = (pe.element == pu) ? tv : tw;
      const std::size_t t_net = (pe.element == pu) ? tw : tv;
      const std::size_t p_elem_vertex = pe.element;
      bool found = false;
      for (std::size_t teid : t_.incident(t_elem)) {
        const Edge& te = t_.edge(teid);
        if (te.net != t_net) continue;
        const std::uint8_t want = expected_label(p_elem_vertex, pe.label);
        if (te.label == want) found = true;
        break;  // at most one (element, net) edge exists
      }
      if (!found) return false;
    }
    return true;
  }

  bool feasible(std::size_t pu, std::size_t tv) const {
    if (core_t_[tv] != kNone) return false;
    const Vertex& pv = p_.vertex(pu);
    const Vertex& tvert = t_.vertex(tv);
    if (!vertex_compatible(pv, tvert)) return false;
    // Degree: monomorphism needs >=; strict (internal) nets need ==.
    const std::size_t pd = p_.degree(pu);
    const std::size_t td = t_.degree(tv);
    if (td < pd) return false;
    if (pv.kind == VertexKind::Net && pu < strict_.size() && strict_[pu] &&
        td != pd) {
      return false;
    }
    if (pv.kind == VertexKind::Net && pu < forbid_rail_.size() &&
        forbid_rail_[pu] &&
        (tvert.role == NetRole::Supply || tvert.role == NetRole::Ground)) {
      return false;
    }
    return true;
  }

  /// Candidate targets for pattern vertex `pu`: neighbors (in the target)
  /// of the image of a mapped pattern-neighbor, or every compatible target
  /// vertex for the root.
  std::vector<std::size_t> candidates(std::size_t pu) const {
    for (std::size_t eid : p_.incident(pu)) {
      const std::size_t pw = p_.opposite(eid, pu);
      const std::size_t tw = core_p_[pw];
      if (tw == kNone) continue;
      std::vector<std::size_t> out;
      out.reserve(t_.degree(tw));
      for (std::size_t teid : t_.incident(tw)) {
        out.push_back(t_.opposite(teid, tw));
      }
      return out;
    }
    // Root (or disconnected component start): all target vertices.
    std::vector<std::size_t> out;
    out.reserve(t_.vertex_count());
    for (std::size_t v = 0; v < t_.vertex_count(); ++v) out.push_back(v);
    return out;
  }

  void record_match() {
    Match m;
    m.map = core_p_;
    if (options_.dedup_by_elements) {
      auto key = m.element_key(p_);
      if (!seen_keys_.insert(std::move(key)).second) return;
    }
    matches_.push_back(std::move(m));
  }

  /// True once any budget stops the search. The states budget truncates
  /// at a point determined only by the inputs, keeping truncated results
  /// deterministic; the optional deadline is checked every 1024 states to
  /// stay off the hot path.
  bool budget_exhausted() {
    if (states_ > options_.max_states) {
      truncated_ = true;
      return true;
    }
    if (deadline_ && (states_ & 1023u) == 0 &&
        std::chrono::steady_clock::now() > *deadline_) {
      truncated_ = true;
      return true;
    }
    return false;
  }

  /// Stop condition re-checked after every nested recursion.
  [[nodiscard]] bool stop_requested() const {
    return truncated_ || matches_.size() >= options_.max_matches;
  }

  void recurse(std::size_t depth) {
    if (matches_.size() >= options_.max_matches) {
      truncated_ = true;  // enumeration cut short, not exhausted
      return;
    }
    ++states_;
    if (budget_exhausted()) return;
    if (depth == order_.size()) {
      record_match();
      return;
    }
    const std::size_t pu = order_[depth];
    const bool is_sym_mos = p_.vertex(pu).kind == VertexKind::Element &&
                            spice::is_mos(p_.vertex(pu).dtype);
    for (std::size_t tv : candidates(pu)) {
      if (!feasible(pu, tv)) continue;
      core_p_[pu] = tv;
      core_t_[tv] = pu;
      // For MOS elements try both source/drain orientations; for anything
      // else a single pass with flip=false.
      const int flips = is_sym_mos ? 2 : 1;
      for (int f = 0; f < flips; ++f) {
        flip_[pu] = (f == 1);
        if (edges_consistent(pu, tv)) {
          recurse(depth + 1);
          if (stop_requested()) break;
        }
      }
      flip_[pu] = false;
      core_p_[pu] = kNone;
      core_t_[tv] = kNone;
      if (stop_requested()) return;
    }
  }

  const CircuitGraph& p_;
  const CircuitGraph& t_;
  std::vector<bool> strict_;
  std::vector<bool> forbid_rail_;
  const MatchOptions& options_;

  std::vector<std::size_t> core_p_;  // pattern -> target
  std::vector<std::size_t> core_t_;  // target -> pattern
  std::vector<bool> flip_;           // per pattern element: s/d swapped
  std::vector<std::size_t> order_;
  std::vector<Match> matches_;
  std::set<std::vector<std::size_t>> seen_keys_;
  std::size_t states_ = 0;
  bool truncated_ = false;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
};

}  // namespace

std::vector<std::size_t> Match::element_key(
    const CircuitGraph& pattern) const {
  std::vector<std::size_t> key;
  for (std::size_t pv = 0; pv < map.size(); ++pv) {
    if (pattern.vertex(pv).kind == VertexKind::Element) {
      key.push_back(map[pv]);
    }
  }
  std::sort(key.begin(), key.end());
  return key;
}

std::vector<Match> find_subgraph_matches(const Pattern& pattern,
                                         const graph::CircuitGraph& target,
                                         const MatchOptions& options,
                                         MatchStats* stats) {
  assert(pattern.graph != nullptr);
  return Vf2State(pattern, target, options).run(stats);
}

bool contains_subgraph(const Pattern& pattern,
                       const graph::CircuitGraph& target) {
  MatchOptions options;
  options.max_matches = 1;
  return !find_subgraph_matches(pattern, target, options).empty();
}

}  // namespace gana::iso
