#include "isomorph/vf2.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <optional>

#include "isomorph/candidate_index.hpp"
#include "util/deadline.hpp"
#include "util/perf.hpp"

namespace gana::iso {

using graph::CircuitGraph;
using graph::Edge;
using graph::NetRole;
using graph::Vertex;
using graph::VertexKind;

namespace {

constexpr std::size_t kNone = CircuitGraph::npos;

/// Static vertex compatibility (ignores edges).
bool vertex_compatible(const Vertex& p, const Vertex& t) {
  if (p.kind != t.kind) return false;
  if (p.kind == VertexKind::Element) {
    return p.dtype == t.dtype;
  }
  // Net roles: a pattern rail must match the same rail in the target; a
  // generic pattern net may match any target net (including rails, so a
  // grounded current-mirror source port can bind to gnd!).
  if (p.role == NetRole::Supply) return t.role == NetRole::Supply;
  if (p.role == NetRole::Ground) return t.role == NetRole::Ground;
  return true;
}

class Vf2State {
 public:
  Vf2State(const Pattern& pattern, const CircuitGraph& target,
           const MatchOptions& options, const CandidateIndex* index)
      : p_(*pattern.graph),
        t_(target),
        strict_(pattern.strict_degree),
        forbid_rail_(pattern.forbid_rail),
        options_(options),
        index_(options.engine == MatchEngine::Indexed ? index : nullptr) {
    core_p_.assign(p_.vertex_count(), kNone);
    core_t_.assign(t_.vertex_count(), kNone);
    flip_.assign(p_.vertex_count(), false);
    if (index_ != nullptr) {
      pattern_sig_.resize(p_.vertex_count());
      for (std::size_t v = 0; v < p_.vertex_count(); ++v) {
        pattern_sig_[v] = label_signature(p_, v);
      }
    }
    order_ = search_order();
    if (options.max_seconds > 0.0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(options.max_seconds));
    }
  }

  std::vector<Match> run(MatchStats* stats) {
    if (!order_.empty()) recurse(0);
    perf::count_vf2(states_, sig_rejections_);
    if (stats != nullptr) {
      stats->states = states_;
      stats->truncated = truncated_;
      stats->sig_rejections = sig_rejections_;
    }
    return std::move(matches_);
  }

 private:
  /// Root of the search. Reference: highest-degree element (static).
  /// Indexed: the element whose device type is rarest in the target --
  /// the VF2++ "start from the most constrained vertex" rule -- with
  /// degree, then id, breaking ties deterministically.
  std::size_t search_root() const {
    const std::size_t n = p_.vertex_count();
    std::size_t root = 0;
    if (index_ == nullptr) {
      for (std::size_t v = 0; v < n; ++v) {
        const bool better =
            (p_.vertex(v).kind == VertexKind::Element &&
             p_.vertex(root).kind != VertexKind::Element) ||
            (p_.vertex(v).kind == p_.vertex(root).kind &&
             p_.degree(v) > p_.degree(root));
        if (better) root = v;
      }
      return root;
    }
    auto bucket_size = [&](std::size_t v) {
      return index_->elements_of(p_.vertex(v).dtype).size();
    };
    for (std::size_t v = 1; v < n; ++v) {
      const Vertex& a = p_.vertex(v);
      const Vertex& b = p_.vertex(root);
      if (a.kind == VertexKind::Element && b.kind != VertexKind::Element) {
        root = v;
        continue;
      }
      if (a.kind != b.kind) continue;
      if (a.kind == VertexKind::Element) {
        if (bucket_size(v) < bucket_size(root) ||
            (bucket_size(v) == bucket_size(root) &&
             p_.degree(v) > p_.degree(root))) {
          root = v;
        }
      } else if (p_.degree(v) > p_.degree(root)) {
        root = v;
      }
    }
    return root;
  }

  /// A connected search order over pattern vertices: start from the
  /// root, grow by edges. (Primitives are connected.)
  std::vector<std::size_t> search_order() const {
    const std::size_t n = p_.vertex_count();
    if (n == 0) return {};
    const std::size_t root = search_root();
    std::vector<std::size_t> order;
    std::vector<bool> seen(n, false);
    order.push_back(root);
    seen[root] = true;
    for (std::size_t i = 0; i < order.size(); ++i) {
      // Among frontier vertices adjacent to the ordered prefix, prefer
      // elements and high degree: they constrain the search most.
      std::size_t best = kNone;
      auto consider = [&](std::size_t v) {
        if (seen[v]) return;
        if (best == kNone) {
          best = v;
          return;
        }
        const Vertex& a = p_.vertex(v);
        const Vertex& b = p_.vertex(best);
        if (a.kind == VertexKind::Element && b.kind != VertexKind::Element) {
          best = v;
        } else if (a.kind == b.kind && p_.degree(v) > p_.degree(best)) {
          best = v;
        }
      };
      for (std::size_t u : order) {
        for (std::size_t eid : p_.incident(u)) {
          consider(p_.opposite(eid, u));
        }
      }
      if (best != kNone) {
        seen[best] = true;
        order.push_back(best);
      } else if (order.size() < n) {
        // Disconnected pattern: pick any unseen vertex (rare; supported
        // for completeness).
        for (std::size_t v = 0; v < n; ++v) {
          if (!seen[v]) {
            seen[v] = true;
            order.push_back(v);
            break;
          }
        }
      }
    }
    return order;
  }

  /// Expected target label of pattern edge `label` on element `pe` given
  /// its orientation flip.
  std::uint8_t expected_label(std::size_t pe, std::uint8_t label) const {
    return flip_[pe] ? swap_source_drain(label) : label;
  }

  /// Checks all pattern edges from `pu` into already-mapped neighbors.
  bool edges_consistent(std::size_t pu, std::size_t tv) const {
    for (std::size_t eid : p_.incident(pu)) {
      const Edge& pe = p_.edge(eid);
      const std::size_t pw = (pe.element == pu) ? pe.net : pe.element;
      const std::size_t tw = core_p_[pw];
      if (tw == kNone) continue;
      // Locate the target edge (tv, tw); vertex degrees are tiny on the
      // element side, so scan the element endpoint.
      const std::size_t t_elem = (pe.element == pu) ? tv : tw;
      const std::size_t t_net = (pe.element == pu) ? tw : tv;
      const std::size_t p_elem_vertex = pe.element;
      bool found = false;
      for (std::size_t teid : t_.incident(t_elem)) {
        const Edge& te = t_.edge(teid);
        if (te.net != t_net) continue;
        const std::uint8_t want = expected_label(p_elem_vertex, pe.label);
        if (te.label == want) found = true;
        break;  // at most one (element, net) edge exists
      }
      if (!found) return false;
    }
    return true;
  }

  bool feasible(std::size_t pu, std::size_t tv) {
    if (core_t_[tv] != kNone) return false;
    const Vertex& pv = p_.vertex(pu);
    const Vertex& tvert = t_.vertex(tv);
    if (!vertex_compatible(pv, tvert)) return false;
    // Degree: monomorphism needs >=; strict (internal) nets need ==.
    const std::size_t pd = p_.degree(pu);
    const std::size_t td = t_.degree(tv);
    if (td < pd) return false;
    if (pv.kind == VertexKind::Net && pu < strict_.size() && strict_[pu] &&
        td != pd) {
      return false;
    }
    if (pv.kind == VertexKind::Net && pu < forbid_rail_.size() &&
        forbid_rail_[pu] &&
        (tvert.role == NetRole::Supply || tvert.role == NetRole::Ground)) {
      return false;
    }
    // Signature lookahead (Indexed): the candidate's canonical-label
    // multiset must contain the pattern vertex's, or some incident
    // pattern edge can never find its target edge.
    if (index_ != nullptr &&
        !signature_contains(index_->signature(tv), pattern_sig_[pu])) {
      ++sig_rejections_;
      return false;
    }
    return true;
  }

  /// Candidate targets for pattern vertex `pu`: neighbors (in the target)
  /// of the image of a mapped pattern-neighbor, or -- for the root -- the
  /// device-type bucket of the index (Indexed) / every target vertex
  /// (Reference). The Indexed engine picks the mapped neighbor whose
  /// image has the fewest target edges (fewest candidates to try).
  std::vector<std::size_t> candidates(std::size_t pu) const {
    std::size_t from = kNone;
    for (std::size_t eid : p_.incident(pu)) {
      const std::size_t pw = p_.opposite(eid, pu);
      const std::size_t tw = core_p_[pw];
      if (tw == kNone) continue;
      if (from == kNone) {
        from = tw;
        if (index_ == nullptr) break;  // Reference: first mapped neighbor
      } else if (t_.degree(tw) < t_.degree(from)) {
        from = tw;
      }
    }
    std::vector<std::size_t> out;
    if (from != kNone) {
      out.reserve(t_.degree(from));
      for (std::size_t teid : t_.incident(from)) {
        out.push_back(t_.opposite(teid, from));
      }
      return out;
    }
    // Root (or disconnected component start).
    if (index_ != nullptr && p_.vertex(pu).kind == VertexKind::Element) {
      return index_->elements_of(p_.vertex(pu).dtype);
    }
    out.reserve(t_.vertex_count());
    for (std::size_t v = 0; v < t_.vertex_count(); ++v) out.push_back(v);
    return out;
  }

  void record_match() {
    if (options_.dedup_by_elements) {
      auto key = Match{core_p_}.element_key(p_);
      auto [it, inserted] = seen_keys_.try_emplace(std::move(key),
                                                   matches_.size());
      if (!inserted) {
        // Same element set, different automorphic image: keep the
        // lexicographically smallest map so the representative does not
        // depend on enumeration order (and thus on the engine).
        if (core_p_ < matches_[it->second].map) {
          matches_[it->second].map = core_p_;
        }
        return;
      }
    }
    Match m;
    m.map = core_p_;
    matches_.push_back(std::move(m));
  }

  /// True once any budget stops the search. The states budget truncates
  /// at a point determined only by the inputs, keeping truncated results
  /// deterministic; the optional deadline is checked every 1024 states to
  /// stay off the hot path. The per-request deadline (util/deadline.hpp)
  /// rides the same 1024-state cadence but *throws* instead of
  /// truncating: a request past its wall budget must abort with
  /// DeadlineExceeded, not return a quietly partial annotation whose
  /// truncation point would be machine-dependent.
  bool budget_exhausted() {
    if (states_ > options_.max_states) {
      truncated_ = true;
      return true;
    }
    if ((states_ & 1023u) == 0) {
      check_deadline(Stage::Primitives);
      if (deadline_ && std::chrono::steady_clock::now() > *deadline_) {
        truncated_ = true;
        return true;
      }
    }
    return false;
  }

  /// Stop condition re-checked after every nested recursion.
  [[nodiscard]] bool stop_requested() const {
    return truncated_ || matches_.size() >= options_.max_matches;
  }

  void recurse(std::size_t depth) {
    if (matches_.size() >= options_.max_matches) {
      truncated_ = true;  // enumeration cut short, not exhausted
      return;
    }
    ++states_;
    if (budget_exhausted()) return;
    if (depth == order_.size()) {
      record_match();
      return;
    }
    const std::size_t pu = order_[depth];
    const bool is_sym_mos = p_.vertex(pu).kind == VertexKind::Element &&
                            spice::is_mos(p_.vertex(pu).dtype);
    for (std::size_t tv : candidates(pu)) {
      if (!feasible(pu, tv)) continue;
      core_p_[pu] = tv;
      core_t_[tv] = pu;
      // For MOS elements try both source/drain orientations; for anything
      // else a single pass with flip=false.
      const int flips = is_sym_mos ? 2 : 1;
      for (int f = 0; f < flips; ++f) {
        flip_[pu] = (f == 1);
        if (edges_consistent(pu, tv)) {
          recurse(depth + 1);
          if (stop_requested()) break;
        }
      }
      flip_[pu] = false;
      core_p_[pu] = kNone;
      core_t_[tv] = kNone;
      if (stop_requested()) return;
    }
  }

  const CircuitGraph& p_;
  const CircuitGraph& t_;
  std::vector<bool> strict_;
  std::vector<bool> forbid_rail_;
  const MatchOptions& options_;
  const CandidateIndex* index_;  ///< null = Reference engine

  std::vector<std::size_t> core_p_;  // pattern -> target
  std::vector<std::size_t> core_t_;  // target -> pattern
  std::vector<bool> flip_;           // per pattern element: s/d swapped
  std::vector<std::size_t> order_;
  std::vector<LabelSignature> pattern_sig_;  // Indexed engine only
  std::vector<Match> matches_;
  std::map<std::vector<std::size_t>, std::size_t> seen_keys_;
  std::size_t states_ = 0;
  std::size_t sig_rejections_ = 0;
  bool truncated_ = false;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
};

}  // namespace

std::vector<std::size_t> Match::element_key(
    const CircuitGraph& pattern) const {
  std::vector<std::size_t> key;
  for (std::size_t pv = 0; pv < map.size(); ++pv) {
    if (pattern.vertex(pv).kind == VertexKind::Element) {
      key.push_back(map[pv]);
    }
  }
  std::sort(key.begin(), key.end());
  return key;
}

std::vector<Match> find_subgraph_matches(const Pattern& pattern,
                                         const graph::CircuitGraph& target,
                                         const MatchOptions& options,
                                         MatchStats* stats,
                                         const CandidateIndex* index) {
  assert(pattern.graph != nullptr);
  if (options.engine == MatchEngine::Indexed && index == nullptr) {
    const CandidateIndex local(target);
    return Vf2State(pattern, target, options, &local).run(stats);
  }
  return Vf2State(pattern, target, options, index).run(stats);
}

bool contains_subgraph(const Pattern& pattern,
                       const graph::CircuitGraph& target) {
  MatchOptions options;
  options.max_matches = 1;
  return !find_subgraph_matches(pattern, target, options).empty();
}

}  // namespace gana::iso
