// Per-circuit candidate index for accelerated subgraph matching.
//
// Built once per target graph and shared (read-only) across every
// library pattern and worker thread, it replaces the matcher's cold
// per-pattern full-vertex root scan with three precomputed views:
//  * element buckets by device type -- root candidates for a pattern
//    rooted at an NMOS are exactly the target's NMOS vertices;
//  * per-vertex labeled-edge signatures -- a packed multiset of the
//    canonical (source/drain-flip-invariant) edge labels incident on
//    each vertex, used as an O(1) lookahead: a candidate whose
//    signature does not contain the pattern vertex's signature can
//    never satisfy the per-edge label checks and is rejected before
//    any recursion;
//  * circuit-level count profiles (device types, canonical edge
//    labels, rail nets) backing the library counting filter: a pattern
//    requiring more NMOS devices, more diode edges, or a supply rail
//    the circuit lacks is skipped without starting a search.
//
// Soundness: a monomorphic embedding maps distinct pattern elements to
// distinct target elements of the same device type, and each pattern
// edge to a distinct target edge whose label equals the pattern label
// or its source/drain swap (the flip is per-element and consistent).
// Canonicalizing labels under the swap therefore makes multiset
// containment a necessary condition at every level -- vertex signatures
// and whole-circuit profiles alike -- so neither filter can reject an
// embeddable pattern.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/circuit_graph.hpp"

namespace gana::iso {

/// Number of device-type buckets (== number of spice::DeviceType values).
inline constexpr std::size_t kDeviceTypeCount = 7;

/// Swaps the source and drain bits of a 3-bit l_g l_s l_d edge label.
[[nodiscard]] constexpr std::uint8_t swap_source_drain(std::uint8_t label) {
  const std::uint8_t gate = label & graph::kLabelGate;
  const std::uint8_t s = (label & graph::kLabelSource)
                             ? static_cast<std::uint8_t>(graph::kLabelDrain)
                             : std::uint8_t{0};
  const std::uint8_t d = (label & graph::kLabelDrain)
                             ? static_cast<std::uint8_t>(graph::kLabelSource)
                             : std::uint8_t{0};
  return static_cast<std::uint8_t>(gate | s | d);
}

/// Flip-invariant representative of an edge label: min(label, swapped).
/// Two labels can match under some per-element orientation iff their
/// canonical forms are equal.
[[nodiscard]] constexpr std::uint8_t canonical_label(std::uint8_t label) {
  const std::uint8_t sw = swap_source_drain(label);
  return label < sw ? label : sw;
}

/// Packed multiset of canonical edge labels: one byte of count per
/// canonical class (saturating at 255). Signature containment (every
/// byte of the pattern <= the target's) is the vertex-level lookahead.
using LabelSignature = std::uint64_t;

[[nodiscard]] LabelSignature label_signature(const graph::CircuitGraph& g,
                                             std::size_t vertex);

/// True when `sub` is a sub-multiset of `super`, byte-wise.
[[nodiscard]] constexpr bool signature_contains(LabelSignature super,
                                                LabelSignature sub) {
  for (int k = 0; k < 8; ++k) {
    if (((super >> (8 * k)) & 0xff) < ((sub >> (8 * k)) & 0xff)) return false;
  }
  return true;
}

/// Whole-graph count profile used by the library counting filter. The
/// same structure profiles a pattern (requirements) and a circuit
/// (capacity); the circuit admits the pattern iff every count is >=.
struct CountProfile {
  std::array<std::size_t, kDeviceTypeCount> device_types{};
  std::array<std::size_t, 8> edge_labels{};  ///< canonical classes
  std::size_t supply_nets = 0;
  std::size_t ground_nets = 0;

  /// True when `this` (a circuit) can possibly contain `pattern`.
  [[nodiscard]] bool admits(const CountProfile& pattern) const;
};

[[nodiscard]] CountProfile count_profile(const graph::CircuitGraph& g);

/// Immutable per-circuit index; safe to share across threads.
class CandidateIndex {
 public:
  explicit CandidateIndex(const graph::CircuitGraph& g);

  /// The graph this index was built from (must outlive the index).
  [[nodiscard]] const graph::CircuitGraph& graph() const { return *g_; }

  /// Element vertex ids of the given device type, ascending.
  [[nodiscard]] const std::vector<std::size_t>& elements_of(
      spice::DeviceType t) const {
    return buckets_[static_cast<std::size_t>(t)];
  }

  /// Packed canonical-label multiset of a vertex's incident edges.
  [[nodiscard]] LabelSignature signature(std::size_t vertex) const {
    return signatures_[vertex];
  }

  [[nodiscard]] const CountProfile& profile() const { return profile_; }

 private:
  const graph::CircuitGraph* g_;
  std::array<std::vector<std::size_t>, kDeviceTypeCount> buckets_;
  std::vector<LabelSignature> signatures_;
  CountProfile profile_;
};

}  // namespace gana::iso
