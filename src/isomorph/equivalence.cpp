#include "isomorph/equivalence.hpp"

#include <algorithm>
#include <map>

#include "graph/builder.hpp"
#include "isomorph/vf2.hpp"
#include "spice/flatten.hpp"

namespace gana::iso {

using graph::CircuitGraph;
using graph::VertexKind;

namespace {

/// Multiset signature of a graph: counts per (kind, dtype/role, degree).
/// A cheap necessary condition checked before running VF2.
std::map<std::tuple<int, int, std::size_t>, int> signature(
    const CircuitGraph& g) {
  std::map<std::tuple<int, int, std::size_t>, int> sig;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto& vert = g.vertex(v);
    const int kind = static_cast<int>(vert.kind);
    const int sub = vert.kind == VertexKind::Element
                        ? static_cast<int>(vert.dtype)
                        : static_cast<int>(vert.role);
    ++sig[{kind, sub, g.degree(v)}];
  }
  return sig;
}

}  // namespace

EquivalenceResult graphs_equivalent(const CircuitGraph& a,
                                    const CircuitGraph& b) {
  EquivalenceResult r;
  if (a.element_count() != b.element_count()) {
    r.reason = "element count differs (" +
               std::to_string(a.element_count()) + " vs " +
               std::to_string(b.element_count()) + ")";
    return r;
  }
  if (a.net_count() != b.net_count()) {
    r.reason = "net count differs (" + std::to_string(a.net_count()) +
               " vs " + std::to_string(b.net_count()) + ")";
    return r;
  }
  if (a.edge_count() != b.edge_count()) {
    r.reason = "edge count differs (" + std::to_string(a.edge_count()) +
               " vs " + std::to_string(b.edge_count()) + ")";
    return r;
  }
  if (signature(a) != signature(b)) {
    r.reason = "vertex type/degree signature differs";
    return r;
  }
  // Exact isomorphism: use VF2 with strict degrees on every net vertex of
  // the pattern. Since vertex counts match and degrees must agree, any
  // monomorphism found is an isomorphism.
  Pattern p;
  p.graph = &a;
  p.strict_degree.assign(a.vertex_count(), false);
  for (std::size_t v = 0; v < a.vertex_count(); ++v) {
    if (a.vertex(v).kind == VertexKind::Net) p.strict_degree[v] = true;
  }
  MatchOptions opt;
  opt.max_matches = 1;
  const auto matches = find_subgraph_matches(p, b, opt);
  if (matches.empty()) {
    r.reason = "no isomorphism found";
    return r;
  }
  r.equivalent = true;
  return r;
}

EquivalenceResult netlists_equivalent(const spice::Netlist& a,
                                      const spice::Netlist& b) {
  return graphs_equivalent(graph::build_graph(spice::flatten(a)),
                           graph::build_graph(spice::flatten(b)));
}

}  // namespace gana::iso
