// Full-netlist structural equivalence checking.
//
// Two netlists are structurally equivalent when their bipartite circuit
// graphs are isomorphic under the same compatibility rules used for
// primitive matching (device types, terminal labels with source/drain
// symmetry, rail roles). Device and net *names* are ignored -- this is
// the check a layout or migration flow uses to confirm that a rewritten
// netlist still implements the same circuit.
#pragma once

#include "graph/circuit_graph.hpp"
#include "spice/netlist.hpp"

namespace gana::iso {

struct EquivalenceResult {
  bool equivalent = false;
  /// Human-readable reason when not equivalent ("device count differs",
  /// "no isomorphism found", ...).
  std::string reason;
};

/// Checks graph isomorphism between two circuit graphs (exact: every
/// vertex of `a` maps to a distinct vertex of `b`, degrees equal).
EquivalenceResult graphs_equivalent(const graph::CircuitGraph& a,
                                    const graph::CircuitGraph& b);

/// Convenience: flattens both netlists and compares their graphs.
EquivalenceResult netlists_equivalent(const spice::Netlist& a,
                                      const spice::Netlist& b);

}  // namespace gana::iso
