// VF2-style labeled subgraph isomorphism for bipartite circuit graphs
// (paper §IV-A).
//
// The matcher finds monomorphic embeddings of a small primitive pattern
// into a circuit graph:
//  * element vertices must agree on device type (NMOS != PMOS != R != C);
//  * MOS source/drain interchangeability is handled by branching on a
//    per-device orientation flip that swaps the l_s/l_d bits consistently
//    across all edges of that device;
//  * edge labels must match exactly (under the chosen flip), so a
//    diode-connected device (101) never matches a plain gate edge (100);
//  * pattern nets marked `strict_degree` (a primitive's internal nets)
//    must match a target net of identical degree; port nets may have
//    extra fanout in the target;
//  * the mapping is injective on elements and on nets.
//
// Two engines share this contract:
//  * Indexed (default) -- VF2++-style accelerated search: root
//    candidates come from a per-circuit CandidateIndex bucket instead of
//    a full vertex scan, the pattern search order is chosen by target
//    rarity (rarest device type roots the search), and every candidate
//    passes a canonical labeled-edge signature lookahead before any
//    recursion;
//  * Reference -- the original uninidexed search, retained as the
//    ground truth the accelerated engine is pinned against in tests.
// On a non-truncated search both engines return the same match set
// (identical maps; representatives of automorphic element sets are
// canonicalized order-independently), though possibly in a different
// enumeration order and with different `states` counts.
//
// For patterns of O(1) size and O(1) degree the search runs in O(n) per
// root candidate, matching the complexity argument in the paper.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/circuit_graph.hpp"

namespace gana::iso {

class CandidateIndex;

/// A pattern to search for: a small circuit graph plus per-vertex
/// strictness flags for its net vertices.
struct Pattern {
  const graph::CircuitGraph* graph = nullptr;
  /// Per pattern-vertex: true for net vertices that must match a target
  /// net of identical degree (primitive-internal nets). Ignored for
  /// element vertices.
  std::vector<bool> strict_degree;
  /// Per pattern-vertex: true for net vertices that must NOT bind to a
  /// supply/ground rail (e.g. the signal input of a common-gate stage,
  /// which would otherwise subsume every common-source device). May be
  /// empty (no restriction).
  std::vector<bool> forbid_rail;
};

/// One embedding: pattern vertex id -> target vertex id.
struct Match {
  std::vector<std::size_t> map;

  /// Sorted target vertex ids of the matched elements; two matches with
  /// the same element set are the same physical instance.
  [[nodiscard]] std::vector<std::size_t> element_key(
      const graph::CircuitGraph& pattern) const;
};

/// Search strategy selector; see the header comment.
enum class MatchEngine : std::uint8_t { Indexed, Reference };

struct MatchOptions {
  /// Stop after this many distinct (post-dedup) matches.
  std::size_t max_matches = 100000;
  /// Node-expansion budget: abort the search after this many explored
  /// states. Deterministic (a truncated search always truncates at the
  /// same point for the same inputs), so budget-limited results stay
  /// bit-identical across runs and thread counts. The default is never
  /// hit for O(1)-diameter library patterns on sane circuits; adversarial
  /// graphs hit it and come back `truncated` instead of hanging. The
  /// Indexed engine prunes more, so its truncation point differs from
  /// the Reference engine's; each is deterministic on its own.
  std::size_t max_states = 50000000;
  /// Optional wall-clock budget in seconds (0 = disabled). NOT
  /// deterministic -- where the search stops depends on machine speed --
  /// so the pipeline leaves this off and relies on `max_states`; it is an
  /// escape hatch for interactive callers.
  double max_seconds = 0.0;
  /// Deduplicate matches that cover the same element set (automorphic
  /// images, e.g. the two orderings of a differential pair). The kept
  /// representative is the lexicographically smallest map among the
  /// images enumerated, so it does not depend on enumeration order.
  bool dedup_by_elements = true;
  /// Search engine; Indexed unless a caller explicitly pins Reference.
  MatchEngine engine = MatchEngine::Indexed;
};

/// What the search actually did; written through the optional out-param
/// of `find_subgraph_matches`.
struct MatchStats {
  std::size_t states = 0;    ///< explored search states
  bool truncated = false;    ///< a budget (states/seconds/matches) was hit
  /// Candidates rejected by the signature lookahead before recursion
  /// (Indexed engine only; 0 under Reference).
  std::size_t sig_rejections = 0;
};

/// Enumerates embeddings of `pattern` into `target`. When a resource
/// budget is exhausted the matches found so far are returned and
/// `stats->truncated` is set; the caller decides whether a partial
/// enumeration is acceptable.
///
/// `index`, when non-null, must have been built from `target`; it is
/// only consulted by the Indexed engine, which otherwise builds a
/// throwaway index for this one call. Callers matching many patterns
/// against one circuit should build the index once and pass it in.
std::vector<Match> find_subgraph_matches(const Pattern& pattern,
                                         const graph::CircuitGraph& target,
                                         const MatchOptions& options = {},
                                         MatchStats* stats = nullptr,
                                         const CandidateIndex* index = nullptr);

/// Convenience: true if at least one embedding exists.
bool contains_subgraph(const Pattern& pattern,
                       const graph::CircuitGraph& target);

}  // namespace gana::iso
