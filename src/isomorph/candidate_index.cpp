#include "isomorph/candidate_index.hpp"

namespace gana::iso {

using graph::CircuitGraph;
using graph::NetRole;
using graph::VertexKind;

LabelSignature label_signature(const CircuitGraph& g, std::size_t vertex) {
  LabelSignature sig = 0;
  for (std::size_t eid : g.incident(vertex)) {
    const std::uint8_t cls = canonical_label(g.edge(eid).label);
    const int shift = 8 * cls;
    if (((sig >> shift) & 0xff) != 0xff) sig += LabelSignature{1} << shift;
  }
  return sig;
}

bool CountProfile::admits(const CountProfile& pattern) const {
  for (std::size_t t = 0; t < kDeviceTypeCount; ++t) {
    if (device_types[t] < pattern.device_types[t]) return false;
  }
  for (std::size_t l = 0; l < edge_labels.size(); ++l) {
    if (edge_labels[l] < pattern.edge_labels[l]) return false;
  }
  if (supply_nets < pattern.supply_nets) return false;
  if (ground_nets < pattern.ground_nets) return false;
  return true;
}

CountProfile count_profile(const CircuitGraph& g) {
  CountProfile p;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto& vert = g.vertex(v);
    if (vert.kind == VertexKind::Element) {
      ++p.device_types[static_cast<std::size_t>(vert.dtype)];
    } else if (vert.role == NetRole::Supply) {
      ++p.supply_nets;
    } else if (vert.role == NetRole::Ground) {
      ++p.ground_nets;
    }
  }
  for (const auto& e : g.edges()) {
    ++p.edge_labels[canonical_label(e.label)];
  }
  return p;
}

CandidateIndex::CandidateIndex(const CircuitGraph& g) : g_(&g) {
  signatures_.resize(g.vertex_count());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto& vert = g.vertex(v);
    if (vert.kind == VertexKind::Element) {
      buckets_[static_cast<std::size_t>(vert.dtype)].push_back(v);
    }
    signatures_[v] = label_signature(g, v);
  }
  profile_ = count_profile(g);
}

}  // namespace gana::iso
