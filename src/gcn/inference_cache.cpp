#include "gcn/inference_cache.hpp"

#include "util/perf.hpp"

namespace gana::gcn {

std::shared_ptr<const Matrix> InferenceCache::find(std::uint64_t key) {
  std::shared_ptr<const Matrix> probs = cache_.find(key);
  if (probs == nullptr) {
    perf::count_inference_cache_miss();
  } else {
    perf::count_inference_cache_hit();
  }
  return probs;
}

std::shared_ptr<const Matrix> InferenceCache::insert(
    std::uint64_t key, std::shared_ptr<const Matrix> probs) {
  return cache_.insert(key, std::move(probs));
}

InferenceCache::Stats InferenceCache::stats() const { return cache_.stats(); }

void InferenceCache::clear() { cache_.clear(); }

}  // namespace gana::gcn
