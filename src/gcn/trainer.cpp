#include "gcn/trainer.hpp"

#include "gcn/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gana::gcn {

double evaluate_accuracy(GcnModel& model,
                         const std::vector<GraphSample>& samples) {
  std::size_t correct = 0, counted = 0;
  for (const auto& s : samples) {
    const Matrix logits = model.forward(s, /*training=*/false);
    const LossResult r = softmax_cross_entropy(logits, s.labels);
    correct += r.correct;
    counted += r.counted;
  }
  return counted > 0 ? static_cast<double>(correct) /
                           static_cast<double>(counted)
                     : 0.0;
}

std::vector<std::vector<std::size_t>> confusion_matrix(
    GcnModel& model, const std::vector<GraphSample>& samples,
    std::size_t num_classes) {
  std::vector<std::vector<std::size_t>> confusion(
      num_classes, std::vector<std::size_t>(num_classes, 0));
  for (const auto& s : samples) {
    const Matrix p = predict_probabilities(model, s);
    for (std::size_t r = 0; r < p.rows(); ++r) {
      const int y = s.labels[r];
      if (y < 0) continue;
      std::size_t best = 0;
      for (std::size_t c = 1; c < p.cols(); ++c) {
        if (p(r, c) > p(r, best)) best = c;
      }
      ++confusion[static_cast<std::size_t>(y)][best];
    }
  }
  return confusion;
}

Matrix predict_probabilities(const GcnModel& model,
                             const GraphSample& sample) {
  return softmax(model.infer(sample));
}

TrainResult train(GcnModel& model, const std::vector<GraphSample>& train_set,
                  const std::vector<GraphSample>& val_set,
                  const TrainConfig& config) {
  Timer timer;
  TrainResult result;
  Adam adam(model.params(), model.grads(), config.adam);
  Rng shuffle_rng(config.shuffle_seed);

  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);

  int since_best = 0;
  for (int epoch = 1; epoch <= config.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t correct = 0, counted = 0, in_batch = 0;
    model.zero_grads();
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
      const GraphSample& s = train_set[order[oi]];
      const Matrix logits = model.forward(s, /*training=*/true);
      LossResult r =
          config.class_weights.empty()
              ? softmax_cross_entropy(logits, s.labels)
              : weighted_softmax_cross_entropy(logits, s.labels,
                                               config.class_weights);
      if (r.counted > 0) {
        model.backward(r.grad);
        loss_sum += r.loss;
        correct += r.correct;
        counted += r.counted;
      }
      if (++in_batch >= static_cast<std::size_t>(config.batch_size) ||
          oi + 1 == order.size()) {
        // Average accumulated gradients over the batch.
        const double inv = 1.0 / static_cast<double>(in_batch);
        for (Matrix* g : model.grads()) (*g) *= inv;
        adam.step();
        model.zero_grads();
        in_batch = 0;
      }
    }
    if (config.lr_decay_every > 0 && epoch % config.lr_decay_every == 0) {
      adam.set_lr(adam.lr() * config.lr_decay);
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss =
        train_set.empty() ? 0.0
                          : loss_sum / static_cast<double>(train_set.size());
    stats.train_acc = counted > 0 ? static_cast<double>(correct) /
                                        static_cast<double>(counted)
                                  : 0.0;
    stats.val_acc =
        val_set.empty() ? stats.train_acc : evaluate_accuracy(model, val_set);
    result.history.push_back(stats);
    result.final_train_acc = stats.train_acc;

    if (stats.val_acc > result.best_val_acc) {
      result.best_val_acc = stats.val_acc;
      result.best_epoch = epoch;
      since_best = 0;
    } else {
      ++since_best;
    }
    if (config.verbose) {
      std::printf("epoch %3d  loss %.4f  train %.4f  val %.4f\n", epoch,
                  stats.train_loss, stats.train_acc, stats.val_acc);
    }
    if (config.patience > 0 && since_best >= config.patience) break;
  }
  result.train_seconds = timer.seconds();
  return result;
}

std::pair<std::vector<GraphSample>, std::vector<GraphSample>> split_dataset(
    std::vector<GraphSample> samples, double train_fraction,
    std::uint64_t seed) {
  Rng rng(seed);
  rng.shuffle(samples);
  const std::size_t n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(samples.size()));
  std::vector<GraphSample> train_set(
      std::make_move_iterator(samples.begin()),
      std::make_move_iterator(samples.begin() +
                              static_cast<std::ptrdiff_t>(n_train)));
  std::vector<GraphSample> val_set(
      std::make_move_iterator(samples.begin() +
                              static_cast<std::ptrdiff_t>(n_train)),
      std::make_move_iterator(samples.end()));
  return {std::move(train_set), std::move(val_set)};
}

}  // namespace gana::gcn
