#include "gcn/layers.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "gcn/coarsen.hpp"
#include "graph/laplacian.hpp"
#include "linalg/lanczos.hpp"

namespace gana::gcn {

// ---------------------------------------------------------------------------
// Sample preparation
// ---------------------------------------------------------------------------

SparseMatrix make_scaled_laplacian(const SparseMatrix& adjacency, Rng& rng) {
  const SparseMatrix lap = graph::normalized_laplacian(adjacency);
  double lmax = lanczos_lambda_max(lap, rng, 24);
  // Clamp into the normalized-Laplacian range (0, 2] first, THEN pad for
  // the Lanczos under-estimate. Padding before clamping silently undid
  // the pad whenever the padded value crossed 2 -- exactly the bipartite
  // case (circuit graphs are bipartite, lambda_max == 2), where an
  // unpadded estimate leaves |spec(L̂)| touching 1.
  lmax = std::min(std::max(lmax, 1e-3), 2.0) * 1.01;
  return graph::scaled_laplacian(lap, lmax);
}

namespace {

// Row-normalized propagation P = D^{-1} A for the GraphSAGE-mean
// alternative. Zero-degree vertices get an identity self-loop row so an
// isolated vertex propagates its own features instead of zeros.
SparseMatrix row_normalized(const SparseMatrix& adj) {
  const auto deg = adj.row_sums();
  std::vector<Triplet> t;
  t.reserve(adj.nnz());
  const auto& rp = adj.row_ptr();
  for (std::size_t r = 0; r < adj.rows(); ++r) {
    if (deg[r] <= 0.0) {
      t.push_back({r, r, 1.0});
      continue;
    }
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      t.push_back({r, adj.col_idx()[k], adj.values()[k] / deg[r]});
    }
  }
  return SparseMatrix::from_triplets(adj.rows(), adj.cols(), std::move(t));
}

}  // namespace

SamplePrep make_sample_prep(const SparseMatrix& adjacency, int pool_levels,
                            Rng& rng) {
  SamplePrep prep;
  auto push_level = [&](const SparseMatrix& adj) {
    prep.lhat.push_back(make_scaled_laplacian(adj, rng));
    SparseMatrix p = row_normalized(adj);
    prep.prop_t.push_back(p.transposed());
    prep.prop.push_back(std::move(p));
  };

  push_level(adjacency);
  if (pool_levels > 0) {
    const Coarsening c = graclus_coarsen(adjacency, pool_levels, rng);
    for (std::size_t l = 0; l < c.levels(); ++l) {
      prep.cluster_maps.push_back(c.cluster_maps[l]);
      push_level(c.adjacency[l]);
    }
  }
  return prep;
}

GraphSample sample_from_prep(const SamplePrep& prep, Matrix features,
                             std::vector<int> labels, std::string name) {
  GraphSample s;
  s.name = std::move(name);
  s.features = std::move(features);
  s.labels = std::move(labels);
  s.lhat = prep.lhat;
  s.cluster_maps = prep.cluster_maps;
  s.prop = prep.prop;
  s.prop_t = prep.prop_t;
  return s;
}

GraphSample make_sample(const SparseMatrix& adjacency, Matrix features,
                        std::vector<int> labels, int pool_levels, Rng& rng,
                        std::string name) {
  assert(features.rows() == adjacency.rows());
  assert(labels.size() == adjacency.rows());
  SamplePrep prep = make_sample_prep(adjacency, pool_levels, rng);
  GraphSample s;
  s.name = std::move(name);
  s.features = std::move(features);
  s.labels = std::move(labels);
  s.lhat = std::move(prep.lhat);
  s.cluster_maps = std::move(prep.cluster_maps);
  s.prop = std::move(prep.prop);
  s.prop_t = std::move(prep.prop_t);
  return s;
}

// ---------------------------------------------------------------------------
// Layer (allocating inference wrapper)
// ---------------------------------------------------------------------------

Matrix Layer::infer(const Matrix& x, const GraphSample& sample) const {
  InferWorkspace ws;
  Matrix out;
  infer_into(x, sample, ws, out);
  return out;
}

// ---------------------------------------------------------------------------
// ChebConv
// ---------------------------------------------------------------------------

ChebConv::ChebConv(std::size_t in_features, std::size_t out_features, int k,
                   int level, Rng& rng)
    : in_(in_features), out_(out_features), k_(k), level_(level) {
  assert(k_ >= 1);
  weight_ = Matrix::glorot(static_cast<std::size_t>(k_) * in_, out_, rng);
  bias_ = Matrix(1, out_);
  grad_weight_ = Matrix(weight_.rows(), weight_.cols());
  grad_bias_ = Matrix(1, out_);
}

Matrix ChebConv::forward(const Matrix& x, const GraphSample& sample,
                         bool /*training*/, Rng& /*rng*/) {
  assert(x.cols() == in_);
  assert(static_cast<std::size_t>(level_) < sample.lhat.size());
  lhat_ = &sample.lhat[static_cast<std::size_t>(level_)];
  const std::size_t n = x.rows();
  assert(lhat_->rows() == n);

  // Chebyshev recurrence: T_0 = X, T_1 = L̂X, T_k = 2 L̂ T_{k-1} - T_{k-2}.
  z_ = Matrix(n, static_cast<std::size_t>(k_) * in_);
  Matrix t_prev2;  // T_{k-2}
  Matrix t_prev = x;
  for (int k = 0; k < k_; ++k) {
    Matrix t_cur;
    if (k == 0) {
      t_cur = x;
    } else if (k == 1) {
      t_cur = lhat_->multiply(x);
    } else {
      t_cur = lhat_->multiply(t_prev);
      t_cur *= 2.0;
      t_cur -= t_prev2;
    }
    for (std::size_t r = 0; r < n; ++r) {
      double* zrow = z_.row_ptr(r) + static_cast<std::size_t>(k) * in_;
      const double* trow = t_cur.row_ptr(r);
      for (std::size_t c = 0; c < in_; ++c) zrow[c] = trow[c];
    }
    t_prev2 = std::move(t_prev);
    t_prev = std::move(t_cur);
  }

  Matrix y = matmul(z_, weight_);
  for (std::size_t r = 0; r < n; ++r) {
    double* yrow = y.row_ptr(r);
    for (std::size_t c = 0; c < out_; ++c) yrow[c] += bias_(0, c);
  }
  return y;
}

void ChebConv::infer_into(const Matrix& x, const GraphSample& sample,
                          InferWorkspace& ws, Matrix& out) const {
  // Same arithmetic, in the same order, as the evaluation-mode forward();
  // all intermediates live in the workspace, so a shared model is
  // read-only and a warm workspace allocates nothing.
  assert(x.cols() == in_);
  assert(static_cast<std::size_t>(level_) < sample.lhat.size());
  const SparseMatrix& lhat = sample.lhat[static_cast<std::size_t>(level_)];
  const std::size_t n = x.rows();
  assert(lhat.rows() == n);

  ws.z.resize(n, static_cast<std::size_t>(k_) * in_);
  // Ring-buffered recurrence: T_k lands in ws.t[k % 3], which is never
  // T_{k-1} or T_{k-2} (k, k-1, k-2 are distinct mod 3).
  const Matrix* t_prev2 = nullptr;  // T_{k-2}
  const Matrix* t_prev = &x;        // T_{k-1}
  for (int k = 0; k < k_; ++k) {
    const Matrix* t_cur;
    if (k == 0) {
      t_cur = &x;
    } else {
      Matrix& buf = ws.t[static_cast<std::size_t>(k % 3)];
      if (k == 1) {
        lhat.multiply_into(x, buf);
      } else {
        lhat.multiply_into(*t_prev, buf);
        buf *= 2.0;
        buf -= *t_prev2;
      }
      t_cur = &buf;
    }
    for (std::size_t r = 0; r < n; ++r) {
      double* zrow = ws.z.row_ptr(r) + static_cast<std::size_t>(k) * in_;
      const double* trow = t_cur->row_ptr(r);
      for (std::size_t c = 0; c < in_; ++c) zrow[c] = trow[c];
    }
    t_prev2 = t_prev;
    t_prev = t_cur;
  }

  matmul_into(ws.z, weight_, out);
  for (std::size_t r = 0; r < n; ++r) {
    double* yrow = out.row_ptr(r);
    for (std::size_t c = 0; c < out_; ++c) yrow[c] += bias_(0, c);
  }
}

Matrix ChebConv::backward(const Matrix& grad_out) {
  assert(lhat_ != nullptr);
  const std::size_t n = grad_out.rows();
  assert(grad_out.cols() == out_);

  grad_weight_ += matmul_at_b(z_, grad_out);
  for (std::size_t r = 0; r < n; ++r) {
    const double* grow = grad_out.row_ptr(r);
    for (std::size_t c = 0; c < out_; ++c) grad_bias_(0, c) += grow[c];
  }

  // dZ = dY W^T, split into per-order blocks B_k.
  const Matrix dz = matmul_a_bt(grad_out, weight_);
  std::vector<Matrix> blocks(static_cast<std::size_t>(k_));
  for (int k = 0; k < k_; ++k) {
    Matrix& b = blocks[static_cast<std::size_t>(k)];
    b = Matrix(n, in_);
    for (std::size_t r = 0; r < n; ++r) {
      const double* src = dz.row_ptr(r) + static_cast<std::size_t>(k) * in_;
      double* dst = b.row_ptr(r);
      for (std::size_t c = 0; c < in_; ++c) dst[c] = src[c];
    }
  }

  // dX = sum_k T_k(L̂) B_k, evaluated by the Clenshaw recurrence
  //   b_k = B_k + 2 L̂ b_{k+1} - b_{k+2},   dX = B_0 + L̂ b_1 - b_2.
  // (Valid because L̂ is symmetric, so T_k(L̂)^T = T_k(L̂).)
  Matrix b_next1(n, in_), b_next2(n, in_);  // b_{k+1}, b_{k+2}
  for (int k = k_ - 1; k >= 1; --k) {
    Matrix bk = lhat_->multiply(b_next1);
    bk *= 2.0;
    bk -= b_next2;
    bk += blocks[static_cast<std::size_t>(k)];
    b_next2 = std::move(b_next1);
    b_next1 = std::move(bk);
  }
  Matrix dx = lhat_->multiply(b_next1);
  dx -= b_next2;
  dx += blocks[0];
  return dx;
}

// ---------------------------------------------------------------------------
// SageConv
// ---------------------------------------------------------------------------

SageConv::SageConv(std::size_t in_features, std::size_t out_features,
                   int level, Rng& rng)
    : in_(in_features), out_(out_features), level_(level) {
  weight_ = Matrix::glorot(2 * in_, out_, rng);
  bias_ = Matrix(1, out_);
  grad_weight_ = Matrix(weight_.rows(), weight_.cols());
  grad_bias_ = Matrix(1, out_);
}

Matrix SageConv::forward(const Matrix& x, const GraphSample& sample,
                         bool /*training*/, Rng& /*rng*/) {
  assert(x.cols() == in_);
  assert(static_cast<std::size_t>(level_) < sample.prop.size());
  const SparseMatrix& p = sample.prop[static_cast<std::size_t>(level_)];
  prop_t_ = &sample.prop_t[static_cast<std::size_t>(level_)];
  z_ = hcat(x, p.multiply(x));
  Matrix y = matmul(z_, weight_);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    double* yrow = y.row_ptr(r);
    for (std::size_t c = 0; c < out_; ++c) yrow[c] += bias_(0, c);
  }
  return y;
}

void SageConv::infer_into(const Matrix& x, const GraphSample& sample,
                          InferWorkspace& ws, Matrix& out) const {
  assert(x.cols() == in_);
  assert(static_cast<std::size_t>(level_) < sample.prop.size());
  const SparseMatrix& p = sample.prop[static_cast<std::size_t>(level_)];
  p.multiply_into(x, ws.t[0]);
  hcat_into(x, ws.t[0], ws.z);
  matmul_into(ws.z, weight_, out);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    double* yrow = out.row_ptr(r);
    for (std::size_t c = 0; c < out_; ++c) yrow[c] += bias_(0, c);
  }
}

Matrix SageConv::backward(const Matrix& grad_out) {
  assert(prop_t_ != nullptr);
  const std::size_t n = grad_out.rows();
  grad_weight_ += matmul_at_b(z_, grad_out);
  for (std::size_t r = 0; r < n; ++r) {
    const double* grow = grad_out.row_ptr(r);
    for (std::size_t c = 0; c < out_; ++c) grad_bias_(0, c) += grow[c];
  }
  const Matrix dz = matmul_a_bt(grad_out, weight_);
  // Split dz into the self block and the neighbor block.
  Matrix d_self(n, in_), d_neigh(n, in_);
  for (std::size_t r = 0; r < n; ++r) {
    const double* src = dz.row_ptr(r);
    double* s = d_self.row_ptr(r);
    double* g = d_neigh.row_ptr(r);
    for (std::size_t c = 0; c < in_; ++c) {
      s[c] = src[c];
      g[c] = src[in_ + c];
    }
  }
  Matrix dx = prop_t_->multiply(d_neigh);
  dx += d_self;
  return dx;
}

// ---------------------------------------------------------------------------
// Relu / Dropout
// ---------------------------------------------------------------------------

Matrix Relu::forward(const Matrix& x, const GraphSample& /*sample*/,
                     bool /*training*/, Rng& /*rng*/) {
  Matrix y = x;
  mask_.assign(y.size(), false);
  auto d = y.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d[i] > 0.0) {
      mask_[i] = true;
    } else {
      d[i] = 0.0;
    }
  }
  return y;
}

void Relu::infer_into(const Matrix& x, const GraphSample& /*sample*/,
                      InferWorkspace& /*ws*/, Matrix& out) const {
  out.copy_from(x);
  for (auto& v : out.data()) {
    if (!(v > 0.0)) v = 0.0;
  }
}

Matrix Relu::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  auto d = g.data();
  assert(d.size() == mask_.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (!mask_[i]) d[i] = 0.0;
  }
  return g;
}

Matrix Dropout::forward(const Matrix& x, const GraphSample& /*sample*/,
                        bool training, Rng& rng) {
  Matrix y = x;
  scale_.assign(y.size(), 1.0);
  if (training && rate_ > 0.0) {
    const double keep = 1.0 - rate_;
    auto d = y.data();
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (rng.uniform() < rate_) {
        scale_[i] = 0.0;
        d[i] = 0.0;
      } else {
        scale_[i] = 1.0 / keep;
        d[i] *= scale_[i];
      }
    }
  }
  return y;
}

void Dropout::infer_into(const Matrix& x, const GraphSample& /*sample*/,
                         InferWorkspace& /*ws*/, Matrix& out) const {
  out.copy_from(x);  // identity in evaluation mode
}

Matrix Dropout::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  auto d = g.data();
  assert(d.size() == scale_.size());
  for (std::size_t i = 0; i < d.size(); ++i) d[i] *= scale_[i];
  return g;
}

// ---------------------------------------------------------------------------
// BatchNorm
// ---------------------------------------------------------------------------

BatchNorm::BatchNorm(std::size_t features, double momentum, double eps)
    : momentum_(momentum),
      eps_(eps),
      gamma_(1, features, 1.0),
      beta_(1, features, 0.0),
      grad_gamma_(1, features),
      grad_beta_(1, features),
      running_mean_(1, features, 0.0),
      running_var_(1, features, 1.0) {}

Matrix BatchNorm::forward(const Matrix& x, const GraphSample& /*sample*/,
                          bool training, Rng& /*rng*/) {
  const std::size_t n = x.rows(), f = x.cols();
  Matrix y(n, f);
  xhat_ = Matrix(n, f);
  ivar_.assign(f, 0.0);
  trained_pass_ = training && n > 0;
  for (std::size_t c = 0; c < f; ++c) {
    double mean, var;
    if (training && n > 0) {
      mean = 0.0;
      for (std::size_t r = 0; r < n; ++r) mean += x(r, c);
      mean /= static_cast<double>(n);
      var = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const double d = x(r, c) - mean;
        var += d * d;
      }
      var /= static_cast<double>(n);
      running_mean_(0, c) =
          momentum_ * running_mean_(0, c) + (1.0 - momentum_) * mean;
      running_var_(0, c) =
          momentum_ * running_var_(0, c) + (1.0 - momentum_) * var;
    } else {
      mean = running_mean_(0, c);
      var = running_var_(0, c);
    }
    const double iv = 1.0 / std::sqrt(var + eps_);
    ivar_[c] = iv;
    for (std::size_t r = 0; r < n; ++r) {
      const double xh = (x(r, c) - mean) * iv;
      xhat_(r, c) = xh;
      y(r, c) = gamma_(0, c) * xh + beta_(0, c);
    }
  }
  return y;
}

void BatchNorm::infer_into(const Matrix& x, const GraphSample& /*sample*/,
                           InferWorkspace& /*ws*/, Matrix& out) const {
  const std::size_t n = x.rows(), f = x.cols();
  out.resize(n, f);
  for (std::size_t c = 0; c < f; ++c) {
    const double mean = running_mean_(0, c);
    const double var = running_var_(0, c);
    const double iv = 1.0 / std::sqrt(var + eps_);
    for (std::size_t r = 0; r < n; ++r) {
      const double xh = (x(r, c) - mean) * iv;
      out(r, c) = gamma_(0, c) * xh + beta_(0, c);
    }
  }
}

Matrix BatchNorm::backward(const Matrix& grad_out) {
  const std::size_t n = grad_out.rows(), f = grad_out.cols();
  Matrix dx(n, f);
  const double inv_n = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  for (std::size_t c = 0; c < f; ++c) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      sum_dy += grad_out(r, c);
      sum_dy_xhat += grad_out(r, c) * xhat_(r, c);
    }
    grad_beta_(0, c) += sum_dy;
    grad_gamma_(0, c) += sum_dy_xhat;
    const double g = gamma_(0, c) * ivar_[c];
    if (trained_pass_) {
      // Batch statistics depend on x: full batch-norm backward.
      for (std::size_t r = 0; r < n; ++r) {
        dx(r, c) = g * (grad_out(r, c) - inv_n * sum_dy -
                        inv_n * xhat_(r, c) * sum_dy_xhat);
      }
    } else {
      // Running statistics are constants: the layer is affine.
      for (std::size_t r = 0; r < n; ++r) {
        dx(r, c) = g * grad_out(r, c);
      }
    }
  }
  return dx;
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : weight_(Matrix::glorot(in_features, out_features, rng)),
      bias_(1, out_features),
      grad_weight_(in_features, out_features),
      grad_bias_(1, out_features) {}

Matrix Dense::forward(const Matrix& x, const GraphSample& /*sample*/,
                      bool /*training*/, Rng& /*rng*/) {
  x_ = x;
  Matrix y = matmul(x, weight_);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    double* yrow = y.row_ptr(r);
    for (std::size_t c = 0; c < y.cols(); ++c) yrow[c] += bias_(0, c);
  }
  return y;
}

void Dense::infer_into(const Matrix& x, const GraphSample& /*sample*/,
                       InferWorkspace& /*ws*/, Matrix& out) const {
  matmul_into(x, weight_, out);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    double* yrow = out.row_ptr(r);
    for (std::size_t c = 0; c < out.cols(); ++c) yrow[c] += bias_(0, c);
  }
}

Matrix Dense::backward(const Matrix& grad_out) {
  grad_weight_ += matmul_at_b(x_, grad_out);
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    const double* grow = grad_out.row_ptr(r);
    for (std::size_t c = 0; c < grad_out.cols(); ++c) {
      grad_bias_(0, c) += grow[c];
    }
  }
  return matmul_a_bt(grad_out, weight_);
}

// ---------------------------------------------------------------------------
// GraclusPool / Unpool
// ---------------------------------------------------------------------------

Matrix GraclusPool::forward(const Matrix& x, const GraphSample& sample,
                            bool /*training*/, Rng& /*rng*/) {
  assert(static_cast<std::size_t>(level_) < sample.cluster_maps.size());
  cluster_of_ = sample.cluster_maps[static_cast<std::size_t>(level_)];
  fine_n_ = x.rows();
  cols_ = x.cols();
  assert(cluster_of_.size() == fine_n_);
  const std::size_t coarse_n =
      cluster_of_.empty()
          ? 0
          : *std::max_element(cluster_of_.begin(), cluster_of_.end()) + 1;

  Matrix y(coarse_n, cols_);
  if (mode_ == Mode::Max) {
    y.fill(-1e300);
    argmax_.assign(coarse_n * cols_, 0);
    for (std::size_t v = 0; v < fine_n_; ++v) {
      const std::size_t c = cluster_of_[v];
      for (std::size_t j = 0; j < cols_; ++j) {
        if (x(v, j) > y(c, j)) {
          y(c, j) = x(v, j);
          argmax_[c * cols_ + j] = v;
        }
      }
    }
  } else {
    std::vector<double> count(coarse_n, 0.0);
    for (std::size_t v = 0; v < fine_n_; ++v) {
      const std::size_t c = cluster_of_[v];
      count[c] += 1.0;
      for (std::size_t j = 0; j < cols_; ++j) y(c, j) += x(v, j);
    }
    inv_size_.assign(coarse_n, 0.0);
    for (std::size_t c = 0; c < coarse_n; ++c) {
      if (count[c] > 0.0) inv_size_[c] = 1.0 / count[c];
      for (std::size_t j = 0; j < cols_; ++j) y(c, j) *= inv_size_[c];
    }
  }
  return y;
}

void GraclusPool::infer_into(const Matrix& x, const GraphSample& sample,
                             InferWorkspace& ws, Matrix& out) const {
  assert(static_cast<std::size_t>(level_) < sample.cluster_maps.size());
  const std::vector<std::size_t>& cluster_of =
      sample.cluster_maps[static_cast<std::size_t>(level_)];
  const std::size_t fine_n = x.rows(), cols = x.cols();
  assert(cluster_of.size() == fine_n);
  const std::size_t coarse_n =
      cluster_of.empty()
          ? 0
          : *std::max_element(cluster_of.begin(), cluster_of.end()) + 1;

  out.resize(coarse_n, cols);
  if (mode_ == Mode::Max) {
    out.fill(-1e300);
    for (std::size_t v = 0; v < fine_n; ++v) {
      const std::size_t c = cluster_of[v];
      for (std::size_t j = 0; j < cols; ++j) {
        if (x(v, j) > out(c, j)) out(c, j) = x(v, j);
      }
    }
  } else {
    ws.scratch.assign(coarse_n, 0.0);
    for (std::size_t v = 0; v < fine_n; ++v) {
      const std::size_t c = cluster_of[v];
      ws.scratch[c] += 1.0;
      for (std::size_t j = 0; j < cols; ++j) out(c, j) += x(v, j);
    }
    for (std::size_t c = 0; c < coarse_n; ++c) {
      const double inv = ws.scratch[c] > 0.0 ? 1.0 / ws.scratch[c] : 0.0;
      for (std::size_t j = 0; j < cols; ++j) out(c, j) *= inv;
    }
  }
}

Matrix GraclusPool::backward(const Matrix& grad_out) {
  Matrix dx(fine_n_, cols_);
  if (mode_ == Mode::Max) {
    for (std::size_t c = 0; c < grad_out.rows(); ++c) {
      for (std::size_t j = 0; j < cols_; ++j) {
        dx(argmax_[c * cols_ + j], j) += grad_out(c, j);
      }
    }
  } else {
    for (std::size_t v = 0; v < fine_n_; ++v) {
      const std::size_t c = cluster_of_[v];
      for (std::size_t j = 0; j < cols_; ++j) {
        dx(v, j) = grad_out(c, j) * inv_size_[c];
      }
    }
  }
  return dx;
}

Matrix Unpool::forward(const Matrix& x, const GraphSample& sample,
                       bool /*training*/, Rng& /*rng*/) {
  assert(static_cast<std::size_t>(level_) < sample.cluster_maps.size());
  cluster_of_ = sample.cluster_maps[static_cast<std::size_t>(level_)];
  coarse_n_ = x.rows();
  Matrix y(cluster_of_.size(), x.cols());
  for (std::size_t v = 0; v < cluster_of_.size(); ++v) {
    const std::size_t c = cluster_of_[v];
    assert(c < coarse_n_);
    for (std::size_t j = 0; j < x.cols(); ++j) y(v, j) = x(c, j);
  }
  return y;
}

void Unpool::infer_into(const Matrix& x, const GraphSample& sample,
                        InferWorkspace& /*ws*/, Matrix& out) const {
  assert(static_cast<std::size_t>(level_) < sample.cluster_maps.size());
  const std::vector<std::size_t>& cluster_of =
      sample.cluster_maps[static_cast<std::size_t>(level_)];
  out.resize(cluster_of.size(), x.cols());
  for (std::size_t v = 0; v < cluster_of.size(); ++v) {
    const std::size_t c = cluster_of[v];
    assert(c < x.rows());
    for (std::size_t j = 0; j < x.cols(); ++j) out(v, j) = x(c, j);
  }
}

Matrix Unpool::backward(const Matrix& grad_out) {
  Matrix dx(coarse_n_, grad_out.cols());
  for (std::size_t v = 0; v < cluster_of_.size(); ++v) {
    const std::size_t c = cluster_of_[v];
    for (std::size_t j = 0; j < grad_out.cols(); ++j) {
      dx(c, j) += grad_out(v, j);
    }
  }
  return dx;
}

// ---------------------------------------------------------------------------
// Loss
// ---------------------------------------------------------------------------

Matrix softmax(const Matrix& logits) {
  Matrix p = logits;
  for (std::size_t r = 0; r < p.rows(); ++r) {
    double* row = p.row_ptr(r);
    double mx = row[0];
    for (std::size_t c = 1; c < p.cols(); ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (std::size_t c = 0; c < p.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (std::size_t c = 0; c < p.cols(); ++c) row[c] /= sum;
  }
  return p;
}

LossResult softmax_cross_entropy(const Matrix& logits,
                                 const std::vector<int>& labels) {
  assert(labels.size() == logits.rows());
  LossResult res;
  res.grad = Matrix(logits.rows(), logits.cols());
  const Matrix p = softmax(logits);
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    if (labels[r] < 0) continue;
    ++res.counted;
  }
  if (res.counted == 0) return res;
  const double inv = 1.0 / static_cast<double>(res.counted);
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const int y = labels[r];
    if (y < 0) continue;
    assert(static_cast<std::size_t>(y) < logits.cols());
    res.loss -= std::log(std::max(p(r, static_cast<std::size_t>(y)), 1e-300));
    std::size_t best = 0;
    for (std::size_t c = 1; c < p.cols(); ++c) {
      if (p(r, c) > p(r, best)) best = c;
    }
    if (best == static_cast<std::size_t>(y)) ++res.correct;
    for (std::size_t c = 0; c < p.cols(); ++c) {
      res.grad(r, c) =
          (p(r, c) - (c == static_cast<std::size_t>(y) ? 1.0 : 0.0)) * inv;
    }
  }
  res.loss *= inv;
  return res;
}

}  // namespace gana::gcn
