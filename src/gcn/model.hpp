// The circuit-recognition GCN (paper §III-B, Fig. 4).
//
// Default topology: two Chebyshev convolution stages (with batch norm,
// ReLU, and optional Graclus pooling) followed by a 512-wide fully
// connected layer and a softmax classifier over sub-block classes.
// Without pooling the network is a per-node ChebNet classifier; with
// pooling enabled, convolutions after the i-th pool operate on the i-th
// coarsened graph and the logits are broadcast back to the original
// vertices through unpooling layers.
#pragma once

#include <memory>
#include <vector>

#include "gcn/layers.hpp"

namespace gana::gcn {

/// Which graph convolution the model uses.
enum class ConvKind {
  Chebyshev,  ///< spectral ChebNet (the paper's choice, Eq. 3-5)
  SageMean,   ///< GraphSAGE mean aggregator (ablation alternative)
};

struct ModelConfig {
  std::size_t in_features = 18;
  std::size_t num_classes = 2;
  ConvKind conv_kind = ConvKind::Chebyshev;
  /// Output channels of each Chebyshev convolution stage; the paper uses
  /// two stages (one to three explored in the layer ablation).
  std::vector<std::size_t> conv_channels = {32, 64};
  /// Chebyshev filter size K (paper Fig. 5 sweeps this).
  int cheb_k = 8;
  /// Width of the fully connected layer ("of size 512" in the paper).
  std::size_t fc_hidden = 512;
  bool use_pooling = false;
  GraclusPool::Mode pool_mode = GraclusPool::Mode::Max;
  double dropout = 0.5;
  bool batch_norm = true;
  std::uint64_t seed = 1;

  /// Number of Graclus levels a GraphSample must be prepared with.
  [[nodiscard]] int required_pool_levels() const {
    return use_pooling ? static_cast<int>(conv_channels.size()) : 0;
  }
};

/// A feed-forward stack of layers with explicit backprop.
class GcnModel {
 public:
  explicit GcnModel(const ModelConfig& config);

  /// Per-node logits, shape nodes x num_classes.
  Matrix forward(const GraphSample& sample, bool training);

  /// Evaluation-mode logits without touching any mutable state --
  /// bit-identical to forward(sample, false). Thread-safe: concurrent
  /// infer() calls may share one model (the parallel batch runtime
  /// annotates many circuits against the same weights).
  [[nodiscard]] Matrix infer(const GraphSample& sample) const;

  /// Zero-allocation fast path: logits land in a workspace buffer that
  /// is reused (and stays valid) until the next infer call with the same
  /// workspace. Bit-identical to infer(sample). Activations ping-pong
  /// between ws.act_a and ws.act_b so no layer reads and writes the same
  /// buffer; once the workspace is warm for the largest sample shape,
  /// steady-state calls perform zero heap allocations.
  const Matrix& infer(const GraphSample& sample, InferWorkspace& ws) const;

  /// Backpropagates dLoss/dLogits, accumulating parameter gradients.
  void backward(const Matrix& grad_logits);

  [[nodiscard]] std::vector<Matrix*> params();
  [[nodiscard]] std::vector<Matrix*> grads();
  /// Non-trainable persistent state (batch-norm running statistics).
  [[nodiscard]] std::vector<Matrix*> buffers();
  void zero_grads();

  /// Total number of trainable scalars.
  [[nodiscard]] std::size_t parameter_count();

  /// Bit-stable FNV-1a hash over every parameter and buffer (shapes and
  /// raw double bit patterns). Two models agree iff their weights are
  /// bitwise identical, so it keys the InferenceCache: an entry written
  /// under one set of weights can never be served to another. Recompute
  /// after any training step or weight load.
  [[nodiscard]] std::uint64_t weights_fingerprint() const;

  [[nodiscard]] const ModelConfig& config() const { return config_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Ties external weight storage to the model's lifetime. The
  /// zero-copy artifact loader points parameter matrices into a
  /// memory-mapped file (`Matrix::borrow`); the mapping handed here
  /// stays alive as long as the model does, so those borrows can never
  /// dangle. Multiple calls accumulate.
  void retain_storage(std::shared_ptr<const void> storage) {
    retained_.push_back(std::move(storage));
  }

 private:
  ModelConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<std::shared_ptr<const void>> retained_;
};

}  // namespace gana::gcn
