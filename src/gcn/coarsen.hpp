// Greedy Graclus-style graph coarsening (paper §III-B).
//
// "The GCN used in this work uses the greedy Graclus heuristic, built on
// top of the Metis algorithm for multilevel clustering. The pooling
// operator is based on a balanced binary tree that represents each
// cluster."
//
// Each level pairs every vertex with an unmatched neighbor maximizing the
// normalized cut weight w_ij (1/d_i + 1/d_j); unmatched leftovers become
// singleton clusters (the "fake node" of the balanced binary tree is
// implicit: pooling treats singletons as clusters of size one).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse.hpp"

namespace gana {
class Rng;
}

namespace gana::gcn {

/// Multilevel coarsening of a weighted adjacency matrix.
struct Coarsening {
  /// cluster_maps[l][v] = cluster (coarse vertex) of fine vertex v at
  /// level l; level 0 maps original vertices to level-1 vertices.
  std::vector<std::vector<std::size_t>> cluster_maps;
  /// adjacency[l] = weighted adjacency of the level-(l+1) coarse graph.
  std::vector<SparseMatrix> adjacency;

  [[nodiscard]] std::size_t levels() const { return cluster_maps.size(); }

  /// Vertex count of the coarse graph after `level`+1 coarsenings.
  [[nodiscard]] std::size_t coarse_size(std::size_t level) const {
    return adjacency[level].rows();
  }
};

/// Runs `levels` rounds of greedy matching. Deterministic given the rng
/// state. Self-loops produced by merging are dropped.
Coarsening graclus_coarsen(const SparseMatrix& adjacency, int levels,
                           Rng& rng);

}  // namespace gana::gcn
