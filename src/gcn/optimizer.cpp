#include "gcn/optimizer.hpp"

#include <cassert>
#include <cmath>

namespace gana::gcn {

Adam::Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads,
           const AdamConfig& config)
    : params_(std::move(params)), grads_(std::move(grads)), config_(config) {
  assert(params_.size() == grads_.size());
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Matrix* p : params_) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto p = params_[i]->data();
    const auto g = grads_[i]->data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    assert(p.size() == g.size());
    for (std::size_t j = 0; j < p.size(); ++j) {
      // L2 weight decay folded into the gradient.
      const double grad = g[j] + config_.weight_decay * p[j];
      m[j] = config_.beta1 * m[j] + (1.0 - config_.beta1) * grad;
      v[j] = config_.beta2 * v[j] + (1.0 - config_.beta2) * grad * grad;
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      p[j] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

}  // namespace gana::gcn
