#include "gcn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/artifact.hpp"

namespace gana::gcn {

namespace {

constexpr const char* kMagic = "gana-gcn-v1";

Diag checkpoint_diag(DiagCode code, const std::string& name,
                     std::string message) {
  Diag d = make_diag(code, Stage::Io, std::move(message));
  d.loc.file = name;
  return d;
}

/// All parameter and buffer tensors in declaration order -- the single
/// tensor ordering shared by the text format, the artifact "shapes" and
/// "weights" sections, and weights_fingerprint(). GcnModel::params() is
/// non-const by design (the optimizer mutates through it);
/// serialization only reads.
std::vector<Matrix*> all_tensors(const GcnModel& model) {
  auto& mutable_model = const_cast<GcnModel&>(model);
  auto tensors = mutable_model.params();
  auto buffers = mutable_model.buffers();
  tensors.insert(tensors.end(), buffers.begin(), buffers.end());
  return tensors;
}

}  // namespace

void save_model(const GcnModel& model, std::ostream& out) {
  const ModelConfig& cfg = model.config();
  out << kMagic << "\n";
  out << "in_features " << cfg.in_features << "\n";
  out << "num_classes " << cfg.num_classes << "\n";
  out << "conv_channels";
  for (std::size_t c : cfg.conv_channels) out << " " << c;
  out << "\n";
  out << "cheb_k " << cfg.cheb_k << "\n";
  out << "fc_hidden " << cfg.fc_hidden << "\n";
  out << "use_pooling " << (cfg.use_pooling ? 1 : 0) << "\n";
  out << "pool_mode "
      << (cfg.pool_mode == GraclusPool::Mode::Max ? "max" : "mean") << "\n";
  out << "dropout " << cfg.dropout << "\n";
  out << "batch_norm " << (cfg.batch_norm ? 1 : 0) << "\n";
  out << "seed " << cfg.seed << "\n";

  const auto tensors = all_tensors(model);
  out << "tensors " << tensors.size() << "\n";
  out << std::setprecision(17);
  for (const Matrix* p : tensors) {
    out << p->rows() << " " << p->cols() << "\n";
    for (double v : p->data()) out << v << " ";
    out << "\n";
  }
}

void save_model_file(const GcnModel& model, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write " + path);
  save_model(model, f);
}

Result<GcnModel> load_model_result(std::istream& in,
                                   const std::string& name) {
  const auto fail = [&](DiagCode code, std::string message) {
    return checkpoint_diag(code, name, std::move(message));
  };
  std::string magic;
  in >> magic;
  if (magic != kMagic) {
    return fail(DiagCode::FormatError,
                "not a gana-gcn checkpoint (bad magic)");
  }

  // Config keys in any order, each at most once: duplicates are
  // rejected instead of last-write-wins so a checkpoint has exactly one
  // meaning (text -> binary packing relies on this).
  ModelConfig cfg;
  std::map<std::string, bool> seen;
  const auto claim = [&](const std::string& key) {
    if (seen[key]) return false;
    seen[key] = true;
    return true;
  };
  std::string key;
  bool have_tensors_header = false;
  std::size_t tensor_count = 0;
  while (in >> key) {
    if (key == "tensors") {
      if (!(in >> tensor_count)) {
        return fail(DiagCode::BadValue, "checkpoint: bad tensor count");
      }
      have_tensors_header = true;
      break;
    }
    if (!claim(key)) {
      return fail(DiagCode::DuplicateName,
                  "checkpoint: duplicate key '" + key + "'");
    }
    bool value_ok = true;
    if (key == "in_features") {
      value_ok = static_cast<bool>(in >> cfg.in_features);
    } else if (key == "num_classes") {
      value_ok = static_cast<bool>(in >> cfg.num_classes);
    } else if (key == "conv_channels") {
      cfg.conv_channels.clear();
      // Channels run until the next (non-numeric) key.
      while (in >> std::ws && in.peek() >= '0' && in.peek() <= '9') {
        std::size_t c = 0;
        if (!(in >> c)) break;
        cfg.conv_channels.push_back(c);
      }
    } else if (key == "cheb_k") {
      value_ok = static_cast<bool>(in >> cfg.cheb_k);
    } else if (key == "fc_hidden") {
      value_ok = static_cast<bool>(in >> cfg.fc_hidden);
    } else if (key == "use_pooling" || key == "batch_norm") {
      int flag = 0;
      value_ok = static_cast<bool>(in >> flag);
      (key == "use_pooling" ? cfg.use_pooling : cfg.batch_norm) = flag != 0;
    } else if (key == "pool_mode") {
      std::string mode;
      value_ok = static_cast<bool>(in >> mode);
      cfg.pool_mode =
          mode == "max" ? GraclusPool::Mode::Max : GraclusPool::Mode::Mean;
    } else if (key == "conv_kind") {
      std::string kind;
      value_ok = static_cast<bool>(in >> kind);
      cfg.conv_kind =
          kind == "sage" ? ConvKind::SageMean : ConvKind::Chebyshev;
    } else if (key == "dropout") {
      value_ok = static_cast<bool>(in >> cfg.dropout);
    } else if (key == "seed") {
      value_ok = static_cast<bool>(in >> cfg.seed);
    } else {
      return fail(DiagCode::SyntaxError,
                  "checkpoint: unknown key '" + key + "'");
    }
    if (!value_ok) {
      return fail(DiagCode::BadValue,
                  "checkpoint: bad value for key '" + key + "'");
    }
  }
  if (!have_tensors_header) {
    return fail(DiagCode::FormatError,
                "checkpoint: missing 'tensors' section");
  }

  GcnModel model(cfg);
  const auto tensors = all_tensors(model);
  if (tensors.size() != tensor_count) {
    return fail(DiagCode::FormatError,
                "checkpoint: tensor count mismatch (file " +
                    std::to_string(tensor_count) + ", model " +
                    std::to_string(tensors.size()) + ")");
  }
  for (Matrix* p : tensors) {
    std::size_t rows = 0, cols = 0;
    if (!(in >> rows >> cols) || rows != p->rows() || cols != p->cols()) {
      return fail(DiagCode::FormatError,
                  "checkpoint: tensor shape mismatch");
    }
    for (double& v : p->data()) {
      if (!(in >> v)) {
        return fail(DiagCode::FormatError,
                    "checkpoint: truncated tensor data");
      }
    }
  }
  return model;
}

Result<GcnModel> load_model_file_result(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    return checkpoint_diag(DiagCode::IoError, path, "cannot read " + path);
  }
  return load_model_result(f, path);
}

GcnModel load_model(std::istream& in) {
  auto loaded = load_model_result(in);
  if (!loaded.ok()) throw DiagError(loaded.diag());
  return loaded.take();
}

GcnModel load_model_file(const std::string& path) {
  auto loaded = load_model_file_result(path);
  if (!loaded.ok()) throw DiagError(loaded.diag());
  return loaded.take();
}

// ---------------------------------------------------------------------------
// Binary model artifact
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kConfigSection = "config";
constexpr const char* kShapesSection = "shapes";
constexpr const char* kWeightsSection = "weights";

std::vector<std::uint8_t> encode_config(const ModelConfig& cfg) {
  util::ByteWriter w;
  w.u64(cfg.in_features);
  w.u64(cfg.num_classes);
  w.u8(cfg.conv_kind == ConvKind::SageMean ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(cfg.cheb_k));
  w.u64(cfg.fc_hidden);
  w.u8(cfg.use_pooling ? 1 : 0);
  w.u8(cfg.pool_mode == GraclusPool::Mode::Max ? 0 : 1);
  w.f64(cfg.dropout);
  w.u8(cfg.batch_norm ? 1 : 0);
  w.u64(cfg.seed);
  w.u32(static_cast<std::uint32_t>(cfg.conv_channels.size()));
  for (std::size_t c : cfg.conv_channels) w.u64(c);
  return w.take();
}

Result<ModelConfig> decode_config(const util::ArtifactSection& section,
                                  const std::string& name) {
  util::ByteReader r(section);
  ModelConfig cfg;
  cfg.in_features = r.u64();
  cfg.num_classes = r.u64();
  cfg.conv_kind = r.u8() == 1 ? ConvKind::SageMean : ConvKind::Chebyshev;
  cfg.cheb_k = static_cast<int>(r.u32());
  cfg.fc_hidden = r.u64();
  cfg.use_pooling = r.u8() != 0;
  cfg.pool_mode =
      r.u8() == 0 ? GraclusPool::Mode::Max : GraclusPool::Mode::Mean;
  cfg.dropout = r.f64();
  cfg.batch_norm = r.u8() != 0;
  cfg.seed = r.u64();
  const std::uint32_t channels = r.u32();
  // Guard before resizing: a corrupt count must not drive allocation.
  if (!r.ok() || r.remaining() != std::size_t{channels} * 8) {
    return checkpoint_diag(DiagCode::FormatError, name,
                           "model artifact: malformed config section");
  }
  cfg.conv_channels.clear();
  for (std::uint32_t i = 0; i < channels; ++i) {
    cfg.conv_channels.push_back(r.u64());
  }
  return cfg;
}

}  // namespace

Result<bool> save_model_artifact(const GcnModel& model,
                                 const std::string& path) {
  const auto tensors = all_tensors(model);

  util::ByteWriter shapes;
  shapes.u32(static_cast<std::uint32_t>(tensors.size()));
  for (const Matrix* p : tensors) {
    shapes.u64(p->rows());
    shapes.u64(p->cols());
  }

  util::ByteWriter weights;
  for (const Matrix* p : tensors) {
    for (double v : static_cast<const Matrix*>(p)->data()) weights.f64(v);
  }

  util::ArtifactWriter writer;
  writer.add_section(kConfigSection, encode_config(model.config()));
  writer.add_section(kShapesSection, shapes.take());
  writer.add_section(kWeightsSection, weights.take());
  return writer.write(path, util::ArtifactKind::Model,
                      model.weights_fingerprint());
}

Result<GcnModel> load_model_artifact(const std::string& path) {
  auto opened = util::ArtifactReader::open(path, util::ArtifactKind::Model);
  if (!opened.ok()) return opened.diag();
  const util::ArtifactReader reader = opened.take();

  auto config_section = reader.require(kConfigSection);
  if (!config_section.ok()) return config_section.diag();
  auto shapes_section = reader.require(kShapesSection);
  if (!shapes_section.ok()) return shapes_section.diag();
  auto weights_section = reader.require(kWeightsSection);
  if (!weights_section.ok()) return weights_section.diag();

  auto cfg = decode_config(config_section.value(), path);
  if (!cfg.ok()) return cfg.diag();

  GcnModel model(cfg.value());
  const auto tensors = all_tensors(model);

  util::ByteReader shapes(shapes_section.value());
  const std::uint32_t tensor_count = shapes.u32();
  if (!shapes.ok() || tensor_count != tensors.size()) {
    return checkpoint_diag(
        DiagCode::FormatError, path,
        "model artifact: tensor count mismatch (file " +
            std::to_string(tensor_count) + ", model " +
            std::to_string(tensors.size()) + ")");
  }
  std::uint64_t total_doubles = 0;
  for (const Matrix* p : tensors) {
    const std::uint64_t rows = shapes.u64();
    const std::uint64_t cols = shapes.u64();
    if (!shapes.ok() || rows != p->rows() || cols != p->cols()) {
      return checkpoint_diag(DiagCode::FormatError, path,
                             "model artifact: tensor shape mismatch");
    }
    total_doubles += rows * cols;
  }
  const auto& weights = weights_section.value();
  if (weights.size != total_doubles * sizeof(double)) {
    return checkpoint_diag(DiagCode::FormatError, path,
                           "model artifact: weights section size mismatch");
  }

  // Zero-copy: every tensor borrows its slice of the mapped weights
  // section (64-byte aligned by the container format). The mapping is
  // retained by the model, so the borrows outlive every use.
  const double* cursor = reinterpret_cast<const double*>(weights.data);
  for (Matrix* p : tensors) {
    const std::size_t n = p->size();
    *p = Matrix::borrow(cursor, p->rows(), p->cols());
    cursor += n;
  }
  model.retain_storage(reader.mapping());

  if (model.weights_fingerprint() != reader.fingerprint()) {
    return checkpoint_diag(
        DiagCode::FormatError, path,
        "model artifact: weights fingerprint mismatch (header does not "
        "match tensor contents)");
  }
  return model;
}

Result<GcnModel> load_model_any(const std::string& path) {
  if (util::file_looks_like_artifact(path)) {
    return load_model_artifact(path);
  }
  return load_model_file_result(path);
}

}  // namespace gana::gcn
