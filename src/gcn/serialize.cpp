#include "gcn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace gana::gcn {

namespace {
constexpr const char* kMagic = "gana-gcn-v1";
}  // namespace

void save_model(const GcnModel& model, std::ostream& out) {
  const ModelConfig& cfg = model.config();
  out << kMagic << "\n";
  out << "in_features " << cfg.in_features << "\n";
  out << "num_classes " << cfg.num_classes << "\n";
  out << "conv_channels";
  for (std::size_t c : cfg.conv_channels) out << " " << c;
  out << "\n";
  out << "cheb_k " << cfg.cheb_k << "\n";
  out << "fc_hidden " << cfg.fc_hidden << "\n";
  out << "use_pooling " << (cfg.use_pooling ? 1 : 0) << "\n";
  out << "pool_mode "
      << (cfg.pool_mode == GraclusPool::Mode::Max ? "max" : "mean") << "\n";
  out << "dropout " << cfg.dropout << "\n";
  out << "batch_norm " << (cfg.batch_norm ? 1 : 0) << "\n";
  out << "seed " << cfg.seed << "\n";

  // GcnModel::params() is non-const by design (the optimizer mutates
  // through it); serialization only reads.
  auto& mutable_model = const_cast<GcnModel&>(model);
  auto params = mutable_model.params();
  auto buffers = mutable_model.buffers();
  params.insert(params.end(), buffers.begin(), buffers.end());
  out << "tensors " << params.size() << "\n";
  out << std::setprecision(17);
  for (const Matrix* p : params) {
    out << p->rows() << " " << p->cols() << "\n";
    for (double v : p->data()) out << v << " ";
    out << "\n";
  }
}

void save_model_file(const GcnModel& model, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write " + path);
  save_model(model, f);
}

GcnModel load_model(std::istream& in) {
  std::string magic;
  in >> magic;
  if (magic != kMagic) {
    throw std::runtime_error("not a gana-gcn checkpoint (bad magic)");
  }
  ModelConfig cfg;
  std::string key;
  // Fixed key order as written by save_model.
  auto expect = [&](const char* want) {
    in >> key;
    if (key != want) {
      throw std::runtime_error("checkpoint: expected key '" +
                               std::string(want) + "', got '" + key + "'");
    }
  };
  expect("in_features");
  in >> cfg.in_features;
  expect("num_classes");
  in >> cfg.num_classes;
  expect("conv_channels");
  cfg.conv_channels.clear();
  // Channels run until the next key ("cheb_k").
  while (in >> key && key != "cheb_k") {
    cfg.conv_channels.push_back(std::stoul(key));
  }
  in >> cfg.cheb_k;
  expect("fc_hidden");
  in >> cfg.fc_hidden;
  expect("use_pooling");
  int flag = 0;
  in >> flag;
  cfg.use_pooling = flag != 0;
  expect("pool_mode");
  std::string mode;
  in >> mode;
  cfg.pool_mode =
      mode == "max" ? GraclusPool::Mode::Max : GraclusPool::Mode::Mean;
  expect("dropout");
  in >> cfg.dropout;
  expect("batch_norm");
  in >> flag;
  cfg.batch_norm = flag != 0;
  expect("seed");
  in >> cfg.seed;
  expect("tensors");
  std::size_t tensor_count = 0;
  in >> tensor_count;

  GcnModel model(cfg);
  auto params = model.params();
  auto buffers = model.buffers();
  params.insert(params.end(), buffers.begin(), buffers.end());
  if (params.size() != tensor_count) {
    throw std::runtime_error(
        "checkpoint: tensor count mismatch (file " +
        std::to_string(tensor_count) + ", model " +
        std::to_string(params.size()) + ")");
  }
  for (Matrix* p : params) {
    std::size_t rows = 0, cols = 0;
    in >> rows >> cols;
    if (rows != p->rows() || cols != p->cols()) {
      throw std::runtime_error("checkpoint: tensor shape mismatch");
    }
    for (double& v : p->data()) {
      if (!(in >> v)) {
        throw std::runtime_error("checkpoint: truncated tensor data");
      }
    }
  }
  return model;
}

GcnModel load_model_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot read " + path);
  return load_model(f);
}

}  // namespace gana::gcn
