// GCN inference-result cache keyed by sample key x weights fingerprint.
//
// The sample-prep cache (sample_cache.hpp) already exploits the fact
// that batch workloads are dominated by structurally identical circuits;
// this cache completes the idea. Inference is a pure function of the
// sample bits and the model weights -- every kernel is bit-deterministic
// at any thread count (tests/kernel_equivalence_test.cpp) -- so two
// circuits with the same sample key and the same weights fingerprint
// have bitwise-equal class probabilities. The first slot to need a
// structure runs the GCN; every other slot reuses its probabilities,
// skipping the ~1.4 MFLOP forward pass entirely. Cache hits can never
// change an output (pinned by the BatchScaling cache-on/off tests).
//
// Keys MUST mix in GcnModel::weights_fingerprint(): the sample key alone
// identifies the input, not the weights, and a cache outliving a
// training step would otherwise serve stale probabilities. The Annotator
// does this automatically; direct users compose the key themselves.
//
// Thread-safe and lock-sharded like the other structural caches; two
// workers racing on the same miss both infer identical probabilities
// and first-insert wins.
#pragma once

#include <cstdint>
#include <memory>

#include "linalg/dense.hpp"
#include "util/sharded_cache.hpp"

namespace gana::gcn {

class InferenceCache {
 public:
  using Stats = ShardedCache<Matrix>::Stats;

  InferenceCache() = default;
  /// Bounds the cache to roughly `capacity` entries total (0 =
  /// unbounded); at capacity each shard FIFO-evicts its oldest entry.
  /// Eviction only costs recomputation -- results stay bit-identical.
  explicit InferenceCache(std::size_t capacity)
      : cache_(per_shard_capacity_for(capacity)) {}

  /// Cached per-vertex probabilities for `key`, or nullptr (counts a
  /// hit/miss).
  [[nodiscard]] std::shared_ptr<const Matrix> find(std::uint64_t key);

  /// Inserts `probs` for `key`; returns the winning entry (the existing
  /// one if another worker inserted first).
  std::shared_ptr<const Matrix> insert(std::uint64_t key,
                                       std::shared_ptr<const Matrix> probs);

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  ShardedCache<Matrix> cache_;
};

}  // namespace gana::gcn
