// Evaluation metrics beyond plain accuracy: per-class precision/recall/F1
// and macro-F1, plus class-weighted cross-entropy for the imbalanced
// node-classification tasks (bias devices are a minority of an OTA's
// nodes; LNA devices a minority of a receiver's).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gcn/layers.hpp"
#include "gcn/model.hpp"
#include "gcn/sample.hpp"

namespace gana::gcn {

struct ClassMetrics {
  std::size_t support = 0;  ///< ground-truth count
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

struct MetricsReport {
  std::vector<ClassMetrics> per_class;
  double accuracy = 0.0;
  double macro_f1 = 0.0;
  std::size_t counted = 0;

  /// Renders an aligned report, one line per class.
  [[nodiscard]] std::string str(
      const std::vector<std::string>& class_names = {}) const;
};

/// Computes metrics from a confusion matrix (rows = truth, cols = pred).
MetricsReport metrics_from_confusion(
    const std::vector<std::vector<std::size_t>>& confusion);

/// Evaluates `model` over `samples`, returning the full report.
MetricsReport evaluate_metrics(GcnModel& model,
                               const std::vector<GraphSample>& samples,
                               std::size_t num_classes);

/// Inverse-frequency class weights over the labeled vertices of a
/// dataset, normalized to mean 1 (uniform weights if a class is absent).
std::vector<double> inverse_frequency_weights(
    const std::vector<GraphSample>& samples, std::size_t num_classes);

/// Class-weighted softmax cross-entropy; `weights` has one entry per
/// class. Equivalent to softmax_cross_entropy when all weights are 1.
LossResult weighted_softmax_cross_entropy(const Matrix& logits,
                                          const std::vector<int>& labels,
                                          const std::vector<double>& weights);

}  // namespace gana::gcn
