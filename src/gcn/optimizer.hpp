// Adam optimizer with decoupled L2 weight decay.
#pragma once

#include <vector>

#include "linalg/dense.hpp"

namespace gana::gcn {

struct AdamConfig {
  double lr = 0.01;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 5e-4;
};

/// Standard Adam over a fixed set of parameter matrices. The parameter
/// and gradient pointers must remain stable for the optimizer's lifetime.
class Adam {
 public:
  Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads,
       const AdamConfig& config = {});

  /// Applies one update from the accumulated gradients.
  void step();

  void set_lr(double lr) { config_.lr = lr; }
  [[nodiscard]] double lr() const { return config_.lr; }
  [[nodiscard]] long steps_taken() const { return t_; }

 private:
  std::vector<Matrix*> params_;
  std::vector<Matrix*> grads_;
  std::vector<Matrix> m_, v_;
  AdamConfig config_;
  long t_ = 0;
};

}  // namespace gana::gcn
