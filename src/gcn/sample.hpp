// A training/inference sample for the GCN: one circuit graph with its
// multilevel spectral operators precomputed.
#pragma once

#include <string>
#include <vector>

#include "linalg/dense.hpp"
#include "linalg/sparse.hpp"

namespace gana {
class Rng;
}

namespace gana::gcn {

/// The graph-level precomputation of one sample: multilevel spectral
/// operators and cluster maps. Everything here is a function of the
/// adjacency *pattern* alone (plus the prep Rng stream), never of device
/// values or names -- which is why structurally identical circuits can
/// share one SamplePrep through the SamplePrepCache.
struct SamplePrep {
  std::vector<SparseMatrix> lhat;
  std::vector<std::vector<std::size_t>> cluster_maps;
  /// Row-normalized propagation operators P = D^{-1} A per level (and
  /// their transposes, needed by backprop), used by the GraphSAGE-mean
  /// alternative convolution. Zero-degree vertices get an identity
  /// self-loop row so isolated vertices keep their own features under
  /// mean propagation.
  std::vector<SparseMatrix> prop;
  std::vector<SparseMatrix> prop_t;
};

/// One circuit, ready for the network. `lhat[0]` is the scaled Laplacian
/// L̂ = 2L/λ_max - I of the original graph (paper Eq. 3); `lhat[l]` for
/// l > 0 are the operators of the Graclus-coarsened graphs used below
/// each pooling layer; `cluster_maps[l]` maps level-l vertices to their
/// level-(l+1) cluster.
struct GraphSample {
  std::string name;
  Matrix features;         ///< n x d input features
  std::vector<int> labels; ///< per-node class id; -1 = excluded from loss
  std::vector<SparseMatrix> lhat;
  std::vector<std::vector<std::size_t>> cluster_maps;
  /// See SamplePrep::prop.
  std::vector<SparseMatrix> prop;
  std::vector<SparseMatrix> prop_t;

  [[nodiscard]] std::size_t nodes() const { return features.rows(); }
};

/// Scaled Laplacian L̂ of one adjacency matrix: normalized Laplacian,
/// Lanczos λ_max estimate (clamped into (0, 2] *before* the 1.01 safety
/// pad so the |spec(L̂)| <= 1 contract holds even when λ_max is exactly
/// 2, as on bipartite graphs), then 2L/λ_max - I.
SparseMatrix make_scaled_laplacian(const SparseMatrix& adjacency, Rng& rng);

/// Graph-level precomputation: scaled Laplacians, propagation operators,
/// and `pool_levels` rounds of Graclus coarsening.
SamplePrep make_sample_prep(const SparseMatrix& adjacency, int pool_levels,
                            Rng& rng);

/// Builds a GraphSample from an adjacency matrix: normalized Laplacian,
/// Lanczos λ_max (with a Gershgorin fallback for tiny graphs), scaling,
/// and `pool_levels` rounds of Graclus coarsening with the corresponding
/// coarse operators.
GraphSample make_sample(const SparseMatrix& adjacency, Matrix features,
                        std::vector<int> labels, int pool_levels, Rng& rng,
                        std::string name = {});

/// Assembles a GraphSample around precomputed (possibly cached) prep;
/// the operators are copied out of `prep`, features/labels stay
/// per-sample.
GraphSample sample_from_prep(const SamplePrep& prep, Matrix features,
                             std::vector<int> labels, std::string name = {});

}  // namespace gana::gcn
