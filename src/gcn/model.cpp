#include "gcn/model.hpp"

#include "util/deadline.hpp"

#include <cstdint>
#include <cstring>

namespace gana::gcn {

GcnModel::GcnModel(const ModelConfig& config)
    : config_(config), rng_(config.seed) {
  std::size_t channels = config_.in_features;
  const int num_convs = static_cast<int>(config_.conv_channels.size());
  for (int i = 0; i < num_convs; ++i) {
    const std::size_t out = config_.conv_channels[static_cast<std::size_t>(i)];
    const int level = config_.use_pooling ? i : 0;
    if (config_.conv_kind == ConvKind::SageMean) {
      layers_.push_back(std::make_unique<SageConv>(channels, out, level, rng_));
    } else {
      layers_.push_back(std::make_unique<ChebConv>(
          channels, out, config_.cheb_k, level, rng_));
    }
    if (config_.batch_norm) {
      layers_.push_back(std::make_unique<BatchNorm>(out));
    }
    layers_.push_back(std::make_unique<Relu>());
    if (config_.use_pooling) {
      layers_.push_back(std::make_unique<GraclusPool>(i, config_.pool_mode));
    }
    channels = out;
  }
  if (config_.dropout > 0.0) {
    layers_.push_back(std::make_unique<Dropout>(config_.dropout));
  }
  layers_.push_back(std::make_unique<Dense>(channels, config_.fc_hidden, rng_));
  layers_.push_back(std::make_unique<Relu>());
  if (config_.dropout > 0.0) {
    layers_.push_back(std::make_unique<Dropout>(config_.dropout));
  }
  layers_.push_back(
      std::make_unique<Dense>(config_.fc_hidden, config_.num_classes, rng_));
  // Broadcast coarse logits back to the original vertices.
  if (config_.use_pooling) {
    for (int i = num_convs - 1; i >= 0; --i) {
      layers_.push_back(std::make_unique<Unpool>(i));
    }
  }
}

Matrix GcnModel::forward(const GraphSample& sample, bool training) {
  Matrix x = sample.features;
  for (auto& layer : layers_) {
    x = layer->forward(x, sample, training, rng_);
  }
  return x;
}

Matrix GcnModel::infer(const GraphSample& sample) const {
  InferWorkspace ws;
  return infer(sample, ws);  // copies the logits out of the workspace
}

const Matrix& GcnModel::infer(const GraphSample& sample,
                              InferWorkspace& ws) const {
  const Matrix* cur = &sample.features;
  Matrix* next = &ws.act_a;
  for (const auto& layer : layers_) {
    // Per-request deadline checkpoint between layers: inference is the
    // longest uninterruptible span of the pipeline, and a layer is its
    // natural granularity (aborting mid-kernel would buy little and cost
    // a branch per tile).
    check_deadline(Stage::Gcn);
    layer->infer_into(*cur, sample, ws, *next);
    cur = next;
    next = (next == &ws.act_a) ? &ws.act_b : &ws.act_a;
  }
  return *cur;
}

void GcnModel::backward(const Matrix& grad_logits) {
  Matrix g = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
}

std::vector<Matrix*> GcnModel::params() {
  std::vector<Matrix*> out;
  for (auto& layer : layers_) {
    for (Matrix* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Matrix*> GcnModel::grads() {
  std::vector<Matrix*> out;
  for (auto& layer : layers_) {
    for (Matrix* g : layer->grads()) out.push_back(g);
  }
  return out;
}

std::vector<Matrix*> GcnModel::buffers() {
  std::vector<Matrix*> out;
  for (auto& layer : layers_) {
    for (Matrix* b : layer->buffers()) out.push_back(b);
  }
  return out;
}

void GcnModel::zero_grads() {
  for (auto& layer : layers_) layer->zero_grads();
}

std::size_t GcnModel::parameter_count() {
  std::size_t total = 0;
  for (Matrix* p : params()) total += p->size();
  return total;
}

std::uint64_t GcnModel::weights_fingerprint() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix_u64 = [&h](std::uint64_t bits) {
    h ^= bits;
    h *= 1099511628211ull;  // FNV-1a prime
  };
  auto mix_matrix = [&](const Matrix& m) {
    mix_u64(static_cast<std::uint64_t>(m.rows()));
    mix_u64(static_cast<std::uint64_t>(m.cols()));
    for (const double v : m.data()) {
      std::uint64_t bits;
      std::memcpy(&bits, &v, sizeof bits);
      mix_u64(bits);
    }
  };
  for (const auto& layer : layers_) {
    for (const Matrix* p : layer->params()) mix_matrix(*p);
    for (const Matrix* b : layer->buffers()) mix_matrix(*b);
  }
  return h;
}

}  // namespace gana::gcn
