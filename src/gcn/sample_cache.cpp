#include "gcn/sample_cache.hpp"

#include "util/perf.hpp"

namespace gana::gcn {

std::shared_ptr<const SamplePrep> SamplePrepCache::find(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    perf::count_sample_cache_miss();
    return nullptr;
  }
  ++hits_;
  perf::count_sample_cache_hit();
  return it->second;
}

std::shared_ptr<const SamplePrep> SamplePrepCache::insert(
    std::uint64_t key, std::shared_ptr<const SamplePrep> prep) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = map_.emplace(key, std::move(prep));
  return it->second;
}

SamplePrepCache::Stats SamplePrepCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {hits_, misses_, map_.size()};
}

void SamplePrepCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace gana::gcn
