#include "gcn/sample_cache.hpp"

#include "util/perf.hpp"

namespace gana::gcn {

std::shared_ptr<const SamplePrep> SamplePrepCache::find(std::uint64_t key) {
  std::shared_ptr<const SamplePrep> prep = cache_.find(key);
  if (prep == nullptr) {
    perf::count_sample_cache_miss();
  } else {
    perf::count_sample_cache_hit();
  }
  return prep;
}

std::shared_ptr<const SamplePrep> SamplePrepCache::insert(
    std::uint64_t key, std::shared_ptr<const SamplePrep> prep) {
  return cache_.insert(key, std::move(prep));
}

SamplePrepCache::Stats SamplePrepCache::stats() const { return cache_.stats(); }

void SamplePrepCache::clear() { cache_.clear(); }

}  // namespace gana::gcn
