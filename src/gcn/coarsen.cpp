#include "gcn/coarsen.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/rng.hpp"

namespace gana::gcn {
namespace {

/// One level of greedy Graclus matching. Returns the cluster map and the
/// coarse adjacency.
std::pair<std::vector<std::size_t>, SparseMatrix> coarsen_once(
    const SparseMatrix& adj, Rng& rng) {
  const std::size_t n = adj.rows();
  const std::vector<double> degree = adj.row_sums();

  std::vector<std::size_t> visit(n);
  std::iota(visit.begin(), visit.end(), 0);
  rng.shuffle(visit);

  constexpr std::size_t kUnmatched = static_cast<std::size_t>(-1);
  std::vector<std::size_t> cluster(n, kUnmatched);
  std::size_t next_cluster = 0;

  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  const auto& vals = adj.values();

  for (std::size_t v : visit) {
    if (cluster[v] != kUnmatched) continue;
    // Best unmatched neighbor by normalized-cut gain w_ij (1/d_i + 1/d_j).
    std::size_t best = kUnmatched;
    double best_gain = -1.0;
    for (std::size_t k = rp[v]; k < rp[v + 1]; ++k) {
      const std::size_t u = ci[k];
      if (u == v || cluster[u] != kUnmatched) continue;
      const double di = degree[v] > 0 ? 1.0 / degree[v] : 0.0;
      const double dj = degree[u] > 0 ? 1.0 / degree[u] : 0.0;
      const double gain = vals[k] * (di + dj);
      if (gain > best_gain) {
        best_gain = gain;
        best = u;
      }
    }
    cluster[v] = next_cluster;
    if (best != kUnmatched) cluster[best] = next_cluster;
    ++next_cluster;
  }

  // Coarse adjacency: sum fine weights between clusters; drop self-loops.
  std::vector<Triplet> t;
  t.reserve(adj.nnz());
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      const std::size_t cr = cluster[r];
      const std::size_t cc = cluster[ci[k]];
      if (cr == cc) continue;
      t.push_back({cr, cc, vals[k]});
    }
  }
  return {std::move(cluster),
          SparseMatrix::from_triplets(next_cluster, next_cluster,
                                      std::move(t))};
}

}  // namespace

Coarsening graclus_coarsen(const SparseMatrix& adjacency, int levels,
                           Rng& rng) {
  Coarsening out;
  SparseMatrix current = adjacency;
  for (int l = 0; l < levels; ++l) {
    auto [map, coarse] = coarsen_once(current, rng);
    out.cluster_maps.push_back(std::move(map));
    out.adjacency.push_back(coarse);
    current = std::move(coarse);
    if (current.rows() <= 1) break;
  }
  return out;
}

}  // namespace gana::gcn
