// Neural network layers for the circuit-recognition GCN (paper §III).
//
// Implemented from scratch: each layer provides an explicit forward and
// backward pass and exposes its parameters/gradients to the optimizer.
// Layers cache activations from the most recent forward call, so a model
// processes one sample at a time (gradients accumulate across a batch).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "gcn/sample.hpp"
#include "gcn/workspace.hpp"
#include "linalg/dense.hpp"
#include "util/rng.hpp"

namespace gana::gcn {

/// Abstract layer with explicit backprop.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output; caches whatever backward() needs.
  virtual Matrix forward(const Matrix& x, const GraphSample& sample,
                         bool training, Rng& rng) = 0;

  /// Evaluation-mode output into a caller-owned buffer, with NO mutable
  /// layer state: bit-identical to forward(x, sample, training=false,
  /// rng) but const, so many threads can run inference through one
  /// shared model (the parallel batch runtime relies on this). All
  /// intermediates live in `ws`; once the workspace buffers are warm the
  /// call performs zero heap allocations. `out` must not alias `x` or a
  /// workspace buffer the layer uses as scratch (GcnModel's ping-pong
  /// activations guarantee this).
  virtual void infer_into(const Matrix& x, const GraphSample& sample,
                          InferWorkspace& ws, Matrix& out) const = 0;

  /// Allocating convenience wrapper over infer_into (fresh workspace per
  /// call); bit-identical to the workspace path.
  [[nodiscard]] Matrix infer(const Matrix& x, const GraphSample& sample) const;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must follow a forward() call.
  virtual Matrix backward(const Matrix& grad_out) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Matrix*> params() { return {}; }
  /// Gradients, parallel to params().
  virtual std::vector<Matrix*> grads() { return {}; }
  /// Non-trainable persistent state (e.g. batch-norm running statistics);
  /// serialized with the model but never touched by the optimizer.
  virtual std::vector<Matrix*> buffers() { return {}; }

  void zero_grads() {
    for (Matrix* g : grads()) g->fill(0.0);
  }
};

/// Chebyshev spectral graph convolution (paper Eq. 3-5):
///   y = sum_{k=0}^{K-1} theta_k T_k(L̂) x
/// operating on the sample's level-`level` operator. Weights are stored
/// as a (K*in) x out matrix; the k-th block row holds theta_k.
class ChebConv : public Layer {
 public:
  ChebConv(std::size_t in_features, std::size_t out_features, int k,
           int level, Rng& rng);

  Matrix forward(const Matrix& x, const GraphSample& sample, bool training,
                 Rng& rng) override;
  void infer_into(const Matrix& x, const GraphSample& sample,
                  InferWorkspace& ws, Matrix& out) const override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Matrix*> params() override { return {&weight_, &bias_}; }
  std::vector<Matrix*> grads() override { return {&grad_weight_, &grad_bias_}; }

  [[nodiscard]] int order() const { return k_; }

 private:
  std::size_t in_ = 0, out_ = 0;
  int k_ = 1;
  int level_ = 0;
  Matrix weight_, bias_;
  Matrix grad_weight_, grad_bias_;
  // Forward cache.
  Matrix z_;                          ///< [T_0 x | ... | T_{K-1} x]
  const SparseMatrix* lhat_ = nullptr;
};

/// GraphSAGE-style mean-aggregator convolution (ablation alternative to
/// the spectral ChebConv; cf. Hamilton et al., cited as [7] in the
/// paper): y = [x | P x] W + b with P = D^{-1} A.
class SageConv : public Layer {
 public:
  SageConv(std::size_t in_features, std::size_t out_features, int level,
           Rng& rng);

  Matrix forward(const Matrix& x, const GraphSample& sample, bool training,
                 Rng& rng) override;
  void infer_into(const Matrix& x, const GraphSample& sample,
                  InferWorkspace& ws, Matrix& out) const override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Matrix*> params() override { return {&weight_, &bias_}; }
  std::vector<Matrix*> grads() override { return {&grad_weight_, &grad_bias_}; }

 private:
  std::size_t in_ = 0, out_ = 0;
  int level_ = 0;
  Matrix weight_, bias_, grad_weight_, grad_bias_;
  // Forward cache.
  Matrix z_;  ///< [x | P x]
  const SparseMatrix* prop_t_ = nullptr;
};

/// Rectified linear unit.
class Relu : public Layer {
 public:
  Matrix forward(const Matrix& x, const GraphSample& sample, bool training,
                 Rng& rng) override;
  void infer_into(const Matrix& x, const GraphSample& sample,
                  InferWorkspace& ws, Matrix& out) const override;
  Matrix backward(const Matrix& grad_out) override;

 private:
  std::vector<bool> mask_;
};

/// Inverted dropout; identity in evaluation mode.
class Dropout : public Layer {
 public:
  explicit Dropout(double rate) : rate_(rate) {}
  Matrix forward(const Matrix& x, const GraphSample& sample, bool training,
                 Rng& rng) override;
  void infer_into(const Matrix& x, const GraphSample& sample,
                  InferWorkspace& ws, Matrix& out) const override;
  Matrix backward(const Matrix& grad_out) override;

 private:
  double rate_ = 0.5;
  std::vector<double> scale_;  ///< per-entry multiplier of the last pass
};

/// Batch normalization over the node dimension with running statistics.
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(std::size_t features, double momentum = 0.9,
                     double eps = 1e-5);
  Matrix forward(const Matrix& x, const GraphSample& sample, bool training,
                 Rng& rng) override;
  void infer_into(const Matrix& x, const GraphSample& sample,
                  InferWorkspace& ws, Matrix& out) const override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Matrix*> params() override { return {&gamma_, &beta_}; }
  std::vector<Matrix*> grads() override { return {&grad_gamma_, &grad_beta_}; }
  std::vector<Matrix*> buffers() override {
    return {&running_mean_, &running_var_};
  }

 private:
  double momentum_, eps_;
  Matrix gamma_, beta_, grad_gamma_, grad_beta_;
  Matrix running_mean_, running_var_;
  // Forward cache.
  Matrix xhat_;
  std::vector<double> ivar_;
  bool trained_pass_ = false;  ///< last forward used batch statistics
};

/// Per-node fully connected layer: y = x W + b.
class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);
  Matrix forward(const Matrix& x, const GraphSample& sample, bool training,
                 Rng& rng) override;
  void infer_into(const Matrix& x, const GraphSample& sample,
                  InferWorkspace& ws, Matrix& out) const override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Matrix*> params() override { return {&weight_, &bias_}; }
  std::vector<Matrix*> grads() override { return {&grad_weight_, &grad_bias_}; }

 private:
  Matrix weight_, bias_, grad_weight_, grad_bias_;
  Matrix x_;  ///< forward cache
};

/// Graclus pooling (paper §III-B): aggregates each level-`level` cluster
/// into one coarse vertex, max or mean over members.
class GraclusPool : public Layer {
 public:
  enum class Mode { Max, Mean };
  GraclusPool(int level, Mode mode) : level_(level), mode_(mode) {}
  Matrix forward(const Matrix& x, const GraphSample& sample, bool training,
                 Rng& rng) override;
  void infer_into(const Matrix& x, const GraphSample& sample,
                  InferWorkspace& ws, Matrix& out) const override;
  Matrix backward(const Matrix& grad_out) override;

 private:
  int level_ = 0;
  Mode mode_ = Mode::Max;
  // Forward cache.
  std::vector<std::size_t> argmax_;      ///< Max mode: winning fine vertex
  std::vector<std::size_t> cluster_of_;  ///< fine vertex -> cluster
  std::vector<double> inv_size_;         ///< Mean mode: 1/|cluster|
  std::size_t fine_n_ = 0;
  std::size_t cols_ = 0;
};

/// Broadcast unpooling: copies each cluster's row back to its members
/// (used to produce per-node logits after pooled convolutions).
class Unpool : public Layer {
 public:
  explicit Unpool(int level) : level_(level) {}
  Matrix forward(const Matrix& x, const GraphSample& sample, bool training,
                 Rng& rng) override;
  void infer_into(const Matrix& x, const GraphSample& sample,
                  InferWorkspace& ws, Matrix& out) const override;
  Matrix backward(const Matrix& grad_out) override;

 private:
  int level_ = 0;
  std::vector<std::size_t> cluster_of_;
  std::size_t coarse_n_ = 0;
};

/// Softmax cross-entropy over per-node logits; labels of -1 are ignored.
struct LossResult {
  double loss = 0.0;        ///< mean over counted nodes
  Matrix grad;              ///< dLoss/dLogits (already divided by count)
  std::size_t correct = 0;  ///< argmax == label
  std::size_t counted = 0;  ///< labels >= 0
};

LossResult softmax_cross_entropy(const Matrix& logits,
                                 const std::vector<int>& labels);

/// Row-wise softmax (inference-time class probabilities).
Matrix softmax(const Matrix& logits);

}  // namespace gana::gcn
