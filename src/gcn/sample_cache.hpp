// Sample-preparation cache keyed by a canonical structural hash.
//
// Batch workloads (datagen sweeps, fuzz corpora, phased arrays of one
// cell) are dominated by structurally identical circuits; their spectral
// operators (Lanczos λ_max + scaled Laplacians), propagation operators,
// and Graclus cluster maps are identical too, because sample prep is
// seeded from the structure hash -- never from the batch slot. The
// first slot to need a given structure computes its SamplePrep; every
// other slot reuses it bit-identically, so cache hits can never change
// an output (pinned by the batch_determinism cache-on/off tests).
//
// Thread-safe: lookups and inserts take a mutex (the critical section is
// a hash-map probe; prep computation happens outside the lock). Two
// workers racing on the same miss both compute identical preps and
// first-insert wins -- duplicated work, never divergent results.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "gcn/sample.hpp"

namespace gana::gcn {

class SamplePrepCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };

  /// Cached prep for `key`, or nullptr (counts a hit/miss).
  [[nodiscard]] std::shared_ptr<const SamplePrep> find(std::uint64_t key);

  /// Inserts `prep` for `key`; returns the winning entry (the existing
  /// one if another worker inserted first).
  std::shared_ptr<const SamplePrep> insert(
      std::uint64_t key, std::shared_ptr<const SamplePrep> prep);

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const SamplePrep>> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace gana::gcn
