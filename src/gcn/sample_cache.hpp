// Sample-preparation cache keyed by a canonical structural hash.
//
// Batch workloads (datagen sweeps, fuzz corpora, phased arrays of one
// cell) are dominated by structurally identical circuits; their spectral
// operators (Lanczos λ_max + scaled Laplacians), propagation operators,
// and Graclus cluster maps are identical too, because sample prep is
// seeded from the structure hash -- never from the batch slot. The
// first slot to need a given structure computes its SamplePrep; every
// other slot reuses it bit-identically, so cache hits can never change
// an output (pinned by the batch_determinism cache-on/off tests).
//
// Thread-safe and lock-sharded (util/sharded_cache.hpp): a probe locks
// only the shard its key hashes to, so parallel workers stop convoying
// on one cache-wide mutex. Prep computation happens outside any lock;
// two workers racing on the same miss both compute identical preps and
// first-insert wins -- duplicated work, never divergent results.
#pragma once

#include <cstdint>
#include <memory>

#include "gcn/sample.hpp"
#include "util/sharded_cache.hpp"

namespace gana::gcn {

class SamplePrepCache {
 public:
  using Stats = ShardedCache<SamplePrep>::Stats;

  SamplePrepCache() = default;
  /// Bounds the cache to roughly `capacity` entries total (0 =
  /// unbounded); at capacity each shard FIFO-evicts its oldest entry.
  /// Eviction only costs recomputation -- results stay bit-identical.
  explicit SamplePrepCache(std::size_t capacity)
      : cache_(per_shard_capacity_for(capacity)) {}

  /// Cached prep for `key`, or nullptr (counts a hit/miss).
  [[nodiscard]] std::shared_ptr<const SamplePrep> find(std::uint64_t key);

  /// Inserts `prep` for `key`; returns the winning entry (the existing
  /// one if another worker inserted first).
  std::shared_ptr<const SamplePrep> insert(
      std::uint64_t key, std::shared_ptr<const SamplePrep> prep);

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  ShardedCache<SamplePrep> cache_;
};

}  // namespace gana::gcn
