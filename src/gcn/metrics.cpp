#include "gcn/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "gcn/trainer.hpp"

namespace gana::gcn {

std::string MetricsReport::str(
    const std::vector<std::string>& class_names) const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-12s %8s %10s %8s %8s\n", "class",
                "support", "precision", "recall", "f1");
  out += line;
  for (std::size_t c = 0; c < per_class.size(); ++c) {
    const std::string name =
        c < class_names.size() ? class_names[c] : "class" + std::to_string(c);
    const auto& m = per_class[c];
    std::snprintf(line, sizeof line, "%-12s %8zu %9.2f%% %7.2f%% %7.2f%%\n",
                  name.c_str(), m.support, m.precision * 100.0,
                  m.recall * 100.0, m.f1 * 100.0);
    out += line;
  }
  std::snprintf(line, sizeof line,
                "accuracy %.2f%%  macro-F1 %.2f%%  (n=%zu)\n",
                accuracy * 100.0, macro_f1 * 100.0, counted);
  out += line;
  return out;
}

MetricsReport metrics_from_confusion(
    const std::vector<std::vector<std::size_t>>& confusion) {
  MetricsReport report;
  const std::size_t k = confusion.size();
  report.per_class.resize(k);

  std::vector<std::size_t> pred_total(k, 0);
  std::size_t correct = 0, total = 0;
  for (std::size_t t = 0; t < k; ++t) {
    for (std::size_t p = 0; p < k; ++p) {
      pred_total[p] += confusion[t][p];
      total += confusion[t][p];
      if (t == p) correct += confusion[t][p];
    }
  }
  double f1_sum = 0.0;
  std::size_t f1_classes = 0;
  for (std::size_t c = 0; c < k; ++c) {
    ClassMetrics& m = report.per_class[c];
    std::size_t truth_total = 0;
    for (std::size_t p = 0; p < k; ++p) truth_total += confusion[c][p];
    m.support = truth_total;
    const std::size_t tp = confusion[c][c];
    m.precision = pred_total[c] > 0
                      ? static_cast<double>(tp) /
                            static_cast<double>(pred_total[c])
                      : 0.0;
    m.recall = truth_total > 0 ? static_cast<double>(tp) /
                                     static_cast<double>(truth_total)
                               : 0.0;
    m.f1 = (m.precision + m.recall) > 0.0
               ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
               : 0.0;
    if (truth_total > 0) {
      f1_sum += m.f1;
      ++f1_classes;
    }
  }
  report.counted = total;
  report.accuracy =
      total > 0 ? static_cast<double>(correct) / static_cast<double>(total)
                : 0.0;
  report.macro_f1 =
      f1_classes > 0 ? f1_sum / static_cast<double>(f1_classes) : 0.0;
  return report;
}

MetricsReport evaluate_metrics(GcnModel& model,
                               const std::vector<GraphSample>& samples,
                               std::size_t num_classes) {
  return metrics_from_confusion(
      confusion_matrix(model, samples, num_classes));
}

std::vector<double> inverse_frequency_weights(
    const std::vector<GraphSample>& samples, std::size_t num_classes) {
  std::vector<double> counts(num_classes, 0.0);
  double total = 0.0;
  for (const auto& s : samples) {
    for (int l : s.labels) {
      if (l >= 0 && static_cast<std::size_t>(l) < num_classes) {
        counts[static_cast<std::size_t>(l)] += 1.0;
        total += 1.0;
      }
    }
  }
  std::vector<double> weights(num_classes, 1.0);
  if (total <= 0.0) return weights;
  for (std::size_t c = 0; c < num_classes; ++c) {
    weights[c] = counts[c] > 0.0
                     ? total / (static_cast<double>(num_classes) * counts[c])
                     : 1.0;
  }
  // Normalize to mean 1 over the present classes.
  double sum = 0.0;
  for (double w : weights) sum += w;
  const double scale = static_cast<double>(num_classes) / sum;
  for (double& w : weights) w *= scale;
  return weights;
}

LossResult weighted_softmax_cross_entropy(const Matrix& logits,
                                          const std::vector<int>& labels,
                                          const std::vector<double>& weights) {
  assert(labels.size() == logits.rows());
  assert(weights.size() == logits.cols());
  LossResult res;
  res.grad = Matrix(logits.rows(), logits.cols());
  const Matrix p = softmax(logits);

  double weight_sum = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const int y = labels[r];
    if (y < 0) continue;
    ++res.counted;
    weight_sum += weights[static_cast<std::size_t>(y)];
  }
  if (res.counted == 0) return res;
  const double inv = 1.0 / weight_sum;

  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const int y = labels[r];
    if (y < 0) continue;
    const double w = weights[static_cast<std::size_t>(y)];
    res.loss -= w * std::log(std::max(
                        p(r, static_cast<std::size_t>(y)), 1e-300));
    std::size_t best = 0;
    for (std::size_t c = 1; c < p.cols(); ++c) {
      if (p(r, c) > p(r, best)) best = c;
    }
    if (best == static_cast<std::size_t>(y)) ++res.correct;
    for (std::size_t c = 0; c < p.cols(); ++c) {
      res.grad(r, c) =
          w * (p(r, c) - (c == static_cast<std::size_t>(y) ? 1.0 : 0.0)) *
          inv;
    }
  }
  res.loss *= inv;
  return res;
}

}  // namespace gana::gcn
