// Reusable buffers for the zero-allocation inference fast path.
//
// Every Layer::infer_into writes its output and scratch intermediates
// into caller-owned matrices whose heap buffers persist across calls
// (Matrix::resize reuses capacity). After a warm-up pass that grows the
// buffers to the largest shapes the model produces, steady-state
// inference through GcnModel::infer(sample, ws) performs zero heap
// allocations -- pinned by InferWorkspace tests against the perf
// counters (util/perf.hpp).
//
// A workspace is single-threaded mutable state: one per worker thread
// (the batch runtime keeps a thread_local one). Sharing a workspace
// between concurrent infer calls is a data race.
#pragma once

#include <vector>

#include "linalg/dense.hpp"

namespace gana::gcn {

struct InferWorkspace {
  /// Ping-pong activation buffers threaded between layers by
  /// GcnModel::infer; a layer always reads one and writes the other.
  Matrix act_a, act_b;
  /// Stacked Chebyshev basis [T_0 x | ... | T_{K-1} x] (or the [x | Px]
  /// pair for SageConv); shared by all convolution layers since layers
  /// run sequentially.
  Matrix z;
  /// Chebyshev recurrence ring buffer (T_{k-2}, T_{k-1}, T_k rotate
  /// through these without ever colliding: indices k, k-1, k-2 are
  /// distinct mod 3).
  Matrix t[3];
  /// Per-cluster member counts for mean Graclus pooling.
  std::vector<double> scratch;
};

}  // namespace gana::gcn
