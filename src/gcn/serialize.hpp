// Model checkpointing: save/load a trained GcnModel.
//
// Two on-disk formats:
//  - the portable text checkpoint ("gana-gcn-v1": config header +
//    parameter tensors at full double precision), unchanged since PR 2;
//  - the binary model artifact (util/artifact container, kind Model),
//    whose "weights" section is 64-byte aligned so `load_model_artifact`
//    maps the file and borrows the tensors in place -- zero parse, zero
//    copy, one shared page-cache image across shard workers.
//
// Both loaders produce bitwise-identical models: the text format writes
// doubles at setprecision(17) (exact round trip) and the artifact
// stores raw IEEE-754 bits, so `weights_fingerprint()` agrees across
// formats -- pinned by artifact_test.
#pragma once

#include <iosfwd>
#include <string>

#include "gcn/model.hpp"
#include "util/diag.hpp"

namespace gana::gcn {

/// Writes the model config and all parameter tensors (text format).
void save_model(const GcnModel& model, std::ostream& out);
void save_model_file(const GcnModel& model, const std::string& path);

/// Reads a text checkpoint. Config keys may appear in any order;
/// duplicate keys are rejected (DuplicateName) instead of
/// last-write-wins, so text -> binary packing is unambiguous. `name`
/// labels diagnostics.
[[nodiscard]] Result<GcnModel> load_model_result(
    std::istream& in, const std::string& name = "<stream>");
[[nodiscard]] Result<GcnModel> load_model_file_result(
    const std::string& path);

/// Exception wrappers kept for existing call sites; throw DiagError
/// (a std::runtime_error) on malformed input.
GcnModel load_model(std::istream& in);
GcnModel load_model_file(const std::string& path);

/// Writes the binary model artifact (`gana_shard --pack-model`).
[[nodiscard]] Result<bool> save_model_artifact(const GcnModel& model,
                                               const std::string& path);

/// Maps a binary model artifact and loads it zero-copy: parameter and
/// buffer matrices borrow the mapping's "weights" section, and the
/// model retains the mapping so the borrows cannot dangle. Rejects
/// corrupt, truncated, wrong-kind, or fingerprint-mismatched files with
/// structured IoError/FormatError Diags.
[[nodiscard]] Result<GcnModel> load_model_artifact(const std::string& path);

/// Loads either format, sniffing the artifact magic -- the single entry
/// point behind every `--load-model` flag.
[[nodiscard]] Result<GcnModel> load_model_any(const std::string& path);

}  // namespace gana::gcn
