// Model checkpointing: save/load a trained GcnModel to a portable text
// format (config header + parameter tensors), so annotation flows can
// reuse a model without retraining.
#pragma once

#include <iosfwd>
#include <string>

#include "gcn/model.hpp"

namespace gana::gcn {

/// Writes the model config and all parameter tensors.
void save_model(const GcnModel& model, std::ostream& out);
void save_model_file(const GcnModel& model, const std::string& path);

/// Reads a model saved by save_model. Throws std::runtime_error on
/// malformed input or config/parameter shape mismatch.
GcnModel load_model(std::istream& in);
GcnModel load_model_file(const std::string& path);

}  // namespace gana::gcn
