// Training loop: mini-batched Adam with validation-based early stopping
// (paper §V-A: 80/20 train/validation split, batch norm + dropout
// regularization).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gcn/model.hpp"
#include "gcn/optimizer.hpp"
#include "gcn/sample.hpp"

namespace gana::gcn {

struct TrainConfig {
  int epochs = 120;
  /// Circuits per gradient step (gradients accumulate over the batch).
  int batch_size = 8;
  AdamConfig adam;
  /// Stop after this many epochs without validation improvement
  /// (<= 0 disables early stopping).
  int patience = 20;
  /// Multiply the learning rate by `lr_decay` every `lr_decay_every`
  /// epochs (decay rate is one of the paper's tuned hyperparameters).
  double lr_decay = 0.95;
  int lr_decay_every = 10;
  /// Per-class loss weights (empty = unweighted). Use
  /// inverse_frequency_weights() for imbalanced node populations.
  std::vector<double> class_weights;
  std::uint64_t shuffle_seed = 7;
  bool verbose = false;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double train_acc = 0.0;
  double val_acc = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double best_val_acc = 0.0;
  int best_epoch = -1;
  double final_train_acc = 0.0;
  double train_seconds = 0.0;
};

/// Node-level accuracy of `model` over `samples` (evaluation mode).
double evaluate_accuracy(GcnModel& model,
                         const std::vector<GraphSample>& samples);

/// Per-class confusion counts: confusion[truth][prediction].
std::vector<std::vector<std::size_t>> confusion_matrix(
    GcnModel& model, const std::vector<GraphSample>& samples,
    std::size_t num_classes);

/// Per-node class probabilities for one sample (evaluation mode).
/// Const and state-free: safe to call concurrently on a shared model.
Matrix predict_probabilities(const GcnModel& model, const GraphSample& sample);

/// Trains `model` in place.
TrainResult train(GcnModel& model, const std::vector<GraphSample>& train_set,
                  const std::vector<GraphSample>& val_set,
                  const TrainConfig& config = {});

/// Splits samples into train/val by the given fraction (shuffled).
std::pair<std::vector<GraphSample>, std::vector<GraphSample>> split_dataset(
    std::vector<GraphSample> samples, double train_fraction,
    std::uint64_t seed);

}  // namespace gana::gcn
