// RF circuit generators (DESIGN.md substitution for the paper's "RF data"
// dataset: LNA, mixer, and oscillator sub-blocks composed into receivers,
// after Razavi's RF Microelectronics and the Bevilacqua/Niknejad and
// Abidi receiver architectures cited by the paper).
#pragma once

#include <string>

#include "datagen/sizing.hpp"

namespace gana::datagen {

/// Class ids of the RF dataset. Training uses the first three (paper
/// Table I: 3 labels); the phased-array testcase additionally contains
/// BPF / VCO-buffer / inverter-amplifier structures that Postprocessing I
/// must separate (paper §V-B).
enum RfClass : int {
  kRfLna = 0,
  kRfMixer = 1,
  kRfOsc = 2,
  kRfBpf = 3,
  kRfBuf = 4,
  kRfInvAmp = 5,
};

/// Names for all six RF ground-truth classes.
const std::vector<std::string>& rf_class_names();

enum class LnaKind { InductiveDegen, CommonGate, ShuntFeedback, Differential };
enum class MixerKind { Gilbert, SingleBalanced, PassiveRing };
enum class OscKind { CrossCoupledLc, ComplementaryLc, Ring3, Ring5, Colpitts };

inline constexpr LnaKind kAllLnaKinds[] = {
    LnaKind::InductiveDegen, LnaKind::CommonGate, LnaKind::ShuntFeedback,
    LnaKind::Differential};
inline constexpr MixerKind kAllMixerKinds[] = {
    MixerKind::Gilbert, MixerKind::SingleBalanced, MixerKind::PassiveRing};
inline constexpr OscKind kAllOscKinds[] = {
    OscKind::CrossCoupledLc, OscKind::ComplementaryLc, OscKind::Ring3,
    OscKind::Ring5, OscKind::Colpitts};

[[nodiscard]] const char* to_string(LnaKind k);
[[nodiscard]] const char* to_string(MixerKind k);
[[nodiscard]] const char* to_string(OscKind k);

/// Net names a block exposes; unused entries are empty.
struct RfBlockPorts {
  std::string in1, in2;    ///< signal inputs (in2 for differential)
  std::string out1, out2;  ///< signal outputs
};

// Block emitters: append the block's devices to `b` (under `prefix`,
// labeled with the block's class) and return its port nets.
RfBlockPorts emit_lna(CircuitBuilder& b, LnaKind kind,
                      const std::string& prefix);
RfBlockPorts emit_mixer(CircuitBuilder& b, MixerKind kind,
                        const std::string& prefix);
RfBlockPorts emit_oscillator(CircuitBuilder& b, OscKind kind,
                             const std::string& prefix);
/// Band-pass filter: an LC-tank/cross-coupled core with two injection
/// transistors (paper: "the BPF is identified as a combination of an
/// oscillator with two input transistors").
RfBlockPorts emit_bpf(CircuitBuilder& b, const std::string& prefix);
/// VCO buffer: cascaded inverters.
RfBlockPorts emit_buffer(CircuitBuilder& b, const std::string& prefix);
/// Inverter-based amplifier: self-biased inverter with feedback resistor.
RfBlockPorts emit_inv_amp(CircuitBuilder& b, const std::string& prefix);

/// A stand-alone block circuit (single class).
struct RfBlockOptions {
  RfClass block = kRfLna;
  LnaKind lna = LnaKind::InductiveDegen;
  MixerKind mixer = MixerKind::Gilbert;
  OscKind osc = OscKind::CrossCoupledLc;
  bool port_labels = true;
};
LabeledCircuit generate_rf_block(const RfBlockOptions& options, Rng& rng,
                                 const std::string& name);

/// A receiver combining LNA -> mixer with an LO from an oscillator
/// (optionally I/Q with two mixers and an LO buffer).
struct ReceiverOptions {
  LnaKind lna = LnaKind::InductiveDegen;
  MixerKind mixer = MixerKind::Gilbert;
  OscKind osc = OscKind::CrossCoupledLc;
  int lna_stages = 1;        ///< cascaded LNA gain stages (AC-coupled)
  bool iq = false;           ///< two mixers fed in quadrature
  bool lo_buffer = false;    ///< buffer between oscillator and mixer LO
  bool port_labels = true;   ///< antenna/LO/output .portlabel annotations
};
LabeledCircuit generate_receiver(const ReceiverOptions& options, Rng& rng,
                                 const std::string& name);

}  // namespace gana::datagen
