// Additional circuit families beyond the paper's two datasets, used by
// the examples and tests to exercise primitive annotation and the
// common-centroid constraint path on structures the paper's introduction
// mentions (DAC switch/passive separation, §II-B) and on dynamic
// comparators.
#pragma once

#include "datagen/sizing.hpp"

namespace gana::datagen {

/// StrongARM latched comparator: clocked tail, input differential pair,
/// cross-coupled latch (both polarities), and precharge switches.
/// Classes: {"comparator"} (single-class; used for primitive tests).
LabeledCircuit generate_strongarm_comparator(Rng& rng);

/// Bandgap-style reference: resistor-defined core with mirrored branches
/// and diode-connected references. Classes: {"core", "bias"}.
LabeledCircuit generate_bandgap_reference(Rng& rng);

/// Binary-weighted capacitor DAC with NMOS switches: the capacitors form
/// a common-centroid array candidate, the switches a separate noisy
/// cluster (the paper's §II-B DAC grouping example).
struct DacOptions {
  int bits = 4;
  bool port_labels = true;
};
LabeledCircuit generate_cap_dac(const DacOptions& options, Rng& rng);

}  // namespace gana::datagen
