// Labeled-circuit construction helpers for the synthetic dataset
// generators (DESIGN.md substitution: the paper's textbook/literature
// training circuits are reproduced by parameterized generators).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/netlist.hpp"
#include "util/rng.hpp"

namespace gana::datagen {

/// A circuit with per-device ground-truth sub-block labels.
struct LabeledCircuit {
  std::string name;
  spice::Netlist netlist;  ///< flat
  /// device name -> class id (indexes class_names).
  std::map<std::string, int> device_labels;
  std::vector<std::string> class_names;
};

/// Randomized-but-plausible device sizing; drives the "value low/med/high"
/// input features and adds the sizing diversity of real design data.
struct Sizing {
  explicit Sizing(Rng& rng) : rng_(&rng) {}

  /// MOS width in meters, log-uniform in [w_lo, w_hi].
  double mos_w(double lo = 0.5e-6, double hi = 20e-6);
  /// MOS length in meters.
  double mos_l(double lo = 45e-9, double hi = 500e-9);
  /// Resistance in ohms, log-uniform.
  double resistance(double lo = 500.0, double hi = 200e3);
  /// Capacitance in farads, log-uniform.
  double capacitance(double lo = 10e-15, double hi = 10e-12);
  /// Large capacitance (DC-DC/decap scale).
  double big_capacitance(double lo = 100e-12, double hi = 10e-9);
  /// Inductance in henries.
  double inductance(double lo = 0.5e-9, double hi = 20e-9);
  /// Bias current in amperes.
  double bias_current(double lo = 1e-6, double hi = 500e-6);

 private:
  double log_uniform(double lo, double hi);
  Rng* rng_;
};

/// Incrementally builds a flat labeled netlist. Devices are auto-named
/// (m0, m1, ..., r0, c0, ...) with an optional prefix per block; every
/// added device is tagged with the builder's current class label.
class CircuitBuilder {
 public:
  CircuitBuilder(std::string circuit_name, std::vector<std::string> classes,
                 Rng& rng);

  /// Sets the class label attached to subsequently added devices.
  void set_label(int class_id) { label_ = class_id; }
  [[nodiscard]] int label() const { return label_; }

  /// Sets the name prefix of subsequently added devices ("lna0/").
  void set_prefix(std::string prefix) { prefix_ = std::move(prefix); }

  // Device factories; all return the created device's name.
  std::string nmos(const std::string& d, const std::string& g,
                   const std::string& s, double w = 0.0, double l = 0.0);
  std::string pmos(const std::string& d, const std::string& g,
                   const std::string& s, double w = 0.0, double l = 0.0);
  std::string res(const std::string& a, const std::string& b, double value);
  std::string cap(const std::string& a, const std::string& b, double value);
  std::string ind(const std::string& a, const std::string& b, double value);
  std::string isrc(const std::string& p, const std::string& n, double value);
  std::string vsrc(const std::string& p, const std::string& n, double value);

  /// Marks a net with a designer port label (.portlabel).
  void port(const std::string& net, spice::PortLabel label);

  /// Fresh unique internal net name ("n12" with the current prefix).
  std::string fresh_net(const std::string& hint = "n");

  /// Inserts `copies` extra parallel duplicates of the most recent device
  /// (exercises the preprocessing parallel-merge pass).
  void stack_parallel(int copies);

  /// Adds a dummy transistor parked on the rails next to the most recent
  /// MOS device (exercises dummy removal).
  void add_dummy();

  [[nodiscard]] Sizing& sizing() { return sizing_; }
  [[nodiscard]] Rng& rng() { return *rng_; }

  /// Finalizes: validates and returns the labeled circuit.
  LabeledCircuit finish();

  [[nodiscard]] std::size_t device_count() const {
    return result_.netlist.devices.size();
  }

 private:
  std::string add_mos(spice::DeviceType type, const std::string& d,
                      const std::string& g, const std::string& s, double w,
                      double l);
  std::string add_two_pin(spice::DeviceType type, char letter,
                          const std::string& a, const std::string& b,
                          double value);
  std::string next_name(char letter);

  LabeledCircuit result_;
  Rng* rng_;
  Sizing sizing_;
  int label_ = 0;
  std::string prefix_;
  std::map<char, int> counters_;
  int net_counter_ = 0;
};

}  // namespace gana::datagen
