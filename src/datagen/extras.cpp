#include "datagen/extras.hpp"

namespace gana::datagen {

LabeledCircuit generate_strongarm_comparator(Rng& rng) {
  CircuitBuilder b("strongarm", {"comparator"}, rng);
  Sizing& sz = b.sizing();
  b.set_label(0);

  // Clocked tail.
  b.nmos("tail", "clk", "gnd!");
  // Input pair.
  b.nmos("di", "vinp", "tail");
  b.nmos("dib", "vinn", "tail");
  // NMOS cross-coupled latch on the integration nodes.
  b.nmos("outp", "outn", "di");
  b.nmos("outn", "outp", "dib");
  // PMOS cross-coupled latch.
  b.pmos("outp", "outn", "vdd!");
  b.pmos("outn", "outp", "vdd!");
  // Precharge (reset) switches on both output and integration nodes.
  b.pmos("outp", "clk", "vdd!");
  b.pmos("outn", "clk", "vdd!");
  b.pmos("di", "clk", "vdd!");
  b.pmos("dib", "clk", "vdd!");
  // Load caps.
  b.cap("outp", "gnd!", sz.capacitance(10e-15, 100e-15));
  b.cap("outn", "gnd!", sz.capacitance(10e-15, 100e-15));

  b.port("clk", spice::PortLabel::Clock);
  b.port("vinp", spice::PortLabel::Input);
  b.port("vinn", spice::PortLabel::Input);
  b.port("outp", spice::PortLabel::Output);
  b.port("outn", spice::PortLabel::Output);
  return b.finish();
}

LabeledCircuit generate_bandgap_reference(Rng& rng) {
  CircuitBuilder b("bandgap", {"core", "bias"}, rng);
  Sizing& sz = b.sizing();

  // Mirrored PMOS current sources (class bias).
  b.set_label(1);
  b.pmos("n1", "pg", "vdd!");
  b.pmos("n2", "pg", "vdd!");
  b.pmos("vref", "pg", "vdd!");
  b.pmos("pg", "pg", "vdd!");  // diode that defines the gate rail
  b.isrc("pg", "gnd!", sz.bias_current());

  // Core: diode-connected "BJT stand-ins" and the PTAT resistor network
  // (class core).
  b.set_label(0);
  b.nmos("n1", "n1", "gnd!");       // diode branch 1
  const std::string x = b.fresh_net("x");
  b.res("n2", x, sz.resistance(1e3, 20e3));  // PTAT resistor
  b.nmos(x, x, "gnd!");             // diode branch 2 (scaled)
  b.res("vref", "fb", sz.resistance(20e3, 200e3));
  b.nmos("fb", "fb", "gnd!");       // output branch diode
  b.cap("vref", "gnd!", sz.capacitance(1e-12, 10e-12));

  b.port("vref", spice::PortLabel::Output);
  return b.finish();
}

LabeledCircuit generate_cap_dac(const DacOptions& opt, Rng& rng) {
  CircuitBuilder b("cap_dac", {"array", "switches"}, rng);
  Sizing& sz = b.sizing();
  const double unit = sz.capacitance(50e-15, 200e-15);

  for (int bit = 0; bit < opt.bits; ++bit) {
    const std::string bot = b.fresh_net("bot");
    const std::string ctl = "d" + std::to_string(bit);
    // Binary-weighted capacitor from the shared top plate (class array).
    b.set_label(0);
    b.cap("top", bot, unit * static_cast<double>(1 << bit));
    // Switch pair steering the bottom plate to vrefp or ground (class
    // switches -- "the passives should be grouped together in a
    // common-centroid layout, separately from the noisy switches").
    b.set_label(1);
    b.nmos(bot, ctl, "vrefp");
    b.nmos(bot, ctl + "b", "gnd!");
    if (opt.port_labels) {
      b.port(ctl, spice::PortLabel::Clock);
      b.port(ctl + "b", spice::PortLabel::Clock);
    }
  }
  // Termination cap.
  b.set_label(0);
  b.cap("top", "gnd!", unit);

  if (opt.port_labels) {
    b.port("top", spice::PortLabel::Output);
    b.port("vrefp", spice::PortLabel::Bias);
  }
  return b.finish();
}

}  // namespace gana::datagen
