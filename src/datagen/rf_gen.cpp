#include "datagen/rf_gen.hpp"

namespace gana::datagen {

const std::vector<std::string>& rf_class_names() {
  static const std::vector<std::string> names = {"lna", "mixer", "osc",
                                                 "bpf", "buf",   "invamp"};
  return names;
}

const char* to_string(LnaKind k) {
  switch (k) {
    case LnaKind::InductiveDegen: return "ind-degen";
    case LnaKind::CommonGate: return "common-gate";
    case LnaKind::ShuntFeedback: return "shunt-feedback";
    case LnaKind::Differential: return "differential";
  }
  return "?";
}

const char* to_string(MixerKind k) {
  switch (k) {
    case MixerKind::Gilbert: return "gilbert";
    case MixerKind::SingleBalanced: return "single-balanced";
    case MixerKind::PassiveRing: return "passive-ring";
  }
  return "?";
}

const char* to_string(OscKind k) {
  switch (k) {
    case OscKind::CrossCoupledLc: return "xc-lc";
    case OscKind::ComplementaryLc: return "comp-lc";
    case OscKind::Ring3: return "ring3";
    case OscKind::Ring5: return "ring5";
    case OscKind::Colpitts: return "colpitts";
  }
  return "?";
}

namespace {

/// Local bias branch for a block: current reference + diode -> bias net.
std::string emit_local_bias(CircuitBuilder& b) {
  Sizing& sz = b.sizing();
  const std::string vb = b.fresh_net("vb");
  b.isrc("vdd!", vb, sz.bias_current());
  b.nmos(vb, vb, "gnd!");
  return vb;
}

}  // namespace

RfBlockPorts emit_lna(CircuitBuilder& b, LnaKind kind,
                      const std::string& prefix) {
  b.set_prefix(prefix);
  b.set_label(kRfLna);
  Sizing& sz = b.sizing();
  RfBlockPorts ports;
  ports.in1 = b.fresh_net("rfin");
  ports.out1 = b.fresh_net("rfout");

  switch (kind) {
    case LnaKind::InductiveDegen: {
      // Inductively degenerated cascode LNA (Razavi / Bevilacqua style).
      const std::string vb = emit_local_bias(b);
      b.set_label(kRfLna);
      const std::string g = b.fresh_net("g");
      const std::string s = b.fresh_net("s");
      const std::string x = b.fresh_net("x");
      b.ind(ports.in1, g, sz.inductance());       // gate inductor
      b.res(vb, g, sz.resistance(5e3, 50e3));     // bias feed
      b.nmos(x, g, s);                            // input device
      b.ind(s, "gnd!", sz.inductance(0.2e-9, 2e-9));  // degeneration
      b.nmos(ports.out1, vb, x);                  // cascode
      b.ind("vdd!", ports.out1, sz.inductance()); // load inductor
      b.cap(ports.out1, "gnd!", sz.capacitance(50e-15, 500e-15));  // tank
      break;
    }
    case LnaKind::CommonGate: {
      const std::string vb = emit_local_bias(b);
      b.set_label(kRfLna);
      b.nmos(ports.out1, vb, ports.in1);
      b.ind(ports.in1, "gnd!", sz.inductance());
      b.ind("vdd!", ports.out1, sz.inductance());
      b.cap(ports.out1, "gnd!", sz.capacitance(50e-15, 500e-15));
      break;
    }
    case LnaKind::ShuntFeedback: {
      const std::string g = b.fresh_net("g");
      b.cap(ports.in1, g, sz.capacitance());
      b.nmos(ports.out1, g, "gnd!");
      b.res(ports.out1, g, sz.resistance(1e3, 20e3));   // feedback
      b.res("vdd!", ports.out1, sz.resistance(500, 5e3));  // load
      break;
    }
    case LnaKind::Differential: {
      const std::string vb = emit_local_bias(b);
      b.set_label(kRfLna);
      ports.in2 = b.fresh_net("rfin");
      ports.out2 = b.fresh_net("rfout");
      const std::string tail = b.fresh_net("tail");
      b.nmos(tail, vb, "gnd!");
      const std::string g1 = b.fresh_net("g"), g2 = b.fresh_net("g");
      const std::string x1 = b.fresh_net("x"), x2 = b.fresh_net("x");
      b.ind(ports.in1, g1, sz.inductance());
      b.ind(ports.in2, g2, sz.inductance());
      b.nmos(x1, g1, tail);
      b.nmos(x2, g2, tail);
      b.nmos(ports.out1, vb, x1);  // cascodes
      b.nmos(ports.out2, vb, x2);
      b.ind("vdd!", ports.out1, sz.inductance());
      b.ind("vdd!", ports.out2, sz.inductance());
      break;
    }
  }
  b.set_prefix("");
  return ports;
}

RfBlockPorts emit_mixer(CircuitBuilder& b, MixerKind kind,
                        const std::string& prefix) {
  b.set_prefix(prefix);
  b.set_label(kRfMixer);
  Sizing& sz = b.sizing();
  RfBlockPorts ports;
  ports.in1 = b.fresh_net("rf");
  ports.in2 = b.fresh_net("lo");
  ports.out1 = b.fresh_net("if");

  switch (kind) {
    case MixerKind::Gilbert: {
      const std::string vb = emit_local_bias(b);
      b.set_label(kRfMixer);
      ports.out2 = b.fresh_net("if");
      const std::string lob = b.fresh_net("lob");
      const std::string rfb = b.fresh_net("rfb");
      const std::string tail = b.fresh_net("tail");
      const std::string a = b.fresh_net("a"), c = b.fresh_net("c");
      b.nmos(tail, vb, "gnd!");
      // RF transconductance pair.
      b.nmos(a, ports.in1, tail);
      b.nmos(c, rfb, tail);
      b.res(vb, rfb, sz.resistance(10e3, 80e3));  // bias the dummy RF input
      // Switching quad.
      b.nmos(ports.out1, ports.in2, a);
      b.nmos(ports.out2, lob, a);
      b.nmos(ports.out1, lob, c);
      b.nmos(ports.out2, ports.in2, c);
      b.res(vb, lob, sz.resistance(10e3, 80e3));
      // Loads.
      b.res("vdd!", ports.out1, sz.resistance(500, 5e3));
      b.res("vdd!", ports.out2, sz.resistance(500, 5e3));
      break;
    }
    case MixerKind::SingleBalanced: {
      const std::string vb = emit_local_bias(b);
      b.set_label(kRfMixer);
      ports.out2 = b.fresh_net("if");
      const std::string lob = b.fresh_net("lob");
      const std::string a = b.fresh_net("a");
      b.nmos(a, ports.in1, "gnd!");  // RF transconductor
      b.nmos(ports.out1, ports.in2, a);
      b.nmos(ports.out2, lob, a);
      b.res(vb, lob, sz.resistance(10e3, 80e3));
      b.res("vdd!", ports.out1, sz.resistance(500, 5e3));
      b.res("vdd!", ports.out2, sz.resistance(500, 5e3));
      break;
    }
    case MixerKind::PassiveRing: {
      ports.out2 = b.fresh_net("if");
      const std::string rfb = b.fresh_net("rfb");
      const std::string lob = b.fresh_net("lob");
      b.nmos(ports.out1, ports.in2, ports.in1);
      b.nmos(ports.out2, lob, ports.in1);
      b.nmos(ports.out1, lob, rfb);
      b.nmos(ports.out2, ports.in2, rfb);
      b.cap(rfb, "gnd!", sz.capacitance());
      b.cap(ports.out1, "gnd!", sz.capacitance());
      b.cap(ports.out2, "gnd!", sz.capacitance());
      break;
    }
  }
  b.set_prefix("");
  return ports;
}

RfBlockPorts emit_oscillator(CircuitBuilder& b, OscKind kind,
                             const std::string& prefix) {
  b.set_prefix(prefix);
  b.set_label(kRfOsc);
  Sizing& sz = b.sizing();
  RfBlockPorts ports;
  ports.out1 = b.fresh_net("oscp");

  switch (kind) {
    case OscKind::CrossCoupledLc: {
      const std::string vb = emit_local_bias(b);
      b.set_label(kRfOsc);
      ports.out2 = b.fresh_net("oscn");
      const std::string tail = b.fresh_net("tail");
      b.nmos(tail, vb, "gnd!");
      b.nmos(ports.out1, ports.out2, tail);  // cross-coupled pair
      b.nmos(ports.out2, ports.out1, tail);
      b.ind("vdd!", ports.out1, sz.inductance());
      b.ind("vdd!", ports.out2, sz.inductance());
      b.cap(ports.out1, ports.out2, sz.capacitance(50e-15, 1e-12));
      break;
    }
    case OscKind::ComplementaryLc: {
      ports.out2 = b.fresh_net("oscn");
      b.nmos(ports.out1, ports.out2, "gnd!");
      b.nmos(ports.out2, ports.out1, "gnd!");
      b.pmos(ports.out1, ports.out2, "vdd!");
      b.pmos(ports.out2, ports.out1, "vdd!");
      b.ind(ports.out1, ports.out2, sz.inductance());
      b.cap(ports.out1, ports.out2, sz.capacitance(50e-15, 1e-12));
      break;
    }
    case OscKind::Ring3:
    case OscKind::Ring5: {
      const int stages = kind == OscKind::Ring3 ? 3 : 5;
      std::vector<std::string> nodes;
      nodes.push_back(ports.out1);
      for (int i = 1; i < stages; ++i) nodes.push_back(b.fresh_net("rg"));
      for (int i = 0; i < stages; ++i) {
        const std::string& in = nodes[static_cast<std::size_t>(i)];
        const std::string& out =
            nodes[static_cast<std::size_t>((i + 1) % stages)];
        b.nmos(out, in, "gnd!");
        b.pmos(out, in, "vdd!");
      }
      break;
    }
    case OscKind::Colpitts: {
      const std::string vb = emit_local_bias(b);
      b.set_label(kRfOsc);
      const std::string s = b.fresh_net("s");
      b.nmos(ports.out1, vb, s);
      b.ind("vdd!", ports.out1, sz.inductance());
      b.cap(ports.out1, s, sz.capacitance(100e-15, 1e-12));
      b.cap(s, "gnd!", sz.capacitance(100e-15, 1e-12));
      b.isrc(s, "gnd!", sz.bias_current());
      break;
    }
  }
  b.set_prefix("");
  return ports;
}

RfBlockPorts emit_bpf(CircuitBuilder& b, const std::string& prefix) {
  b.set_prefix(prefix);
  b.set_label(kRfBpf);
  Sizing& sz = b.sizing();
  RfBlockPorts ports;
  ports.in1 = b.fresh_net("bin");
  ports.in2 = b.fresh_net("bin");
  ports.out1 = b.fresh_net("bout");
  ports.out2 = b.fresh_net("bout");
  // Oscillator-like core...
  const std::string tail = b.fresh_net("tail");
  const std::string vb = emit_local_bias(b);
  b.set_label(kRfBpf);
  b.nmos(tail, vb, "gnd!");
  b.nmos(ports.out1, ports.out2, tail);
  b.nmos(ports.out2, ports.out1, tail);
  b.ind("vdd!", ports.out1, sz.inductance());
  b.ind("vdd!", ports.out2, sz.inductance());
  b.cap(ports.out1, ports.out2, sz.capacitance(50e-15, 1e-12));
  // ...plus the two injection (input) transistors that distinguish the
  // BPF from a free-running oscillator (paper §V-B).
  b.nmos(ports.out1, ports.in1, tail);
  b.nmos(ports.out2, ports.in2, tail);
  b.set_prefix("");
  return ports;
}

RfBlockPorts emit_buffer(CircuitBuilder& b, const std::string& prefix) {
  b.set_prefix(prefix);
  b.set_label(kRfBuf);
  RfBlockPorts ports;
  ports.in1 = b.fresh_net("bi");
  ports.out1 = b.fresh_net("bo");
  const std::string mid = b.fresh_net("bm");
  b.nmos(mid, ports.in1, "gnd!");
  b.pmos(mid, ports.in1, "vdd!");
  b.nmos(ports.out1, mid, "gnd!");
  b.pmos(ports.out1, mid, "vdd!");
  b.set_prefix("");
  return ports;
}

RfBlockPorts emit_inv_amp(CircuitBuilder& b, const std::string& prefix) {
  b.set_prefix(prefix);
  b.set_label(kRfInvAmp);
  Sizing& sz = b.sizing();
  RfBlockPorts ports;
  ports.in1 = b.fresh_net("ai");
  ports.out1 = b.fresh_net("ao");
  const std::string g = b.fresh_net("ag");
  b.cap(ports.in1, g, sz.capacitance());
  b.nmos(ports.out1, g, "gnd!");
  b.pmos(ports.out1, g, "vdd!");
  b.res(ports.out1, g, sz.resistance(50e3, 500e3));  // self-bias feedback
  b.set_prefix("");
  return ports;
}

LabeledCircuit generate_rf_block(const RfBlockOptions& opt, Rng& rng,
                                 const std::string& name) {
  CircuitBuilder b(name, rf_class_names(), rng);
  RfBlockPorts ports;
  switch (opt.block) {
    case kRfLna: ports = emit_lna(b, opt.lna, "lna/"); break;
    case kRfMixer: ports = emit_mixer(b, opt.mixer, "mix/"); break;
    case kRfOsc: ports = emit_oscillator(b, opt.osc, "osc/"); break;
    case kRfBpf: ports = emit_bpf(b, "bpf/"); break;
    case kRfBuf: ports = emit_buffer(b, "buf/"); break;
    case kRfInvAmp: ports = emit_inv_amp(b, "inv/"); break;
  }
  if (opt.port_labels) {
    if (opt.block == kRfLna) {
      b.port(ports.in1, spice::PortLabel::Antenna);
      if (!ports.in2.empty()) b.port(ports.in2, spice::PortLabel::Antenna);
    } else if (opt.block == kRfMixer) {
      b.port(ports.in2, spice::PortLabel::LocalOsc);
    }
    if (!ports.out1.empty()) b.port(ports.out1, spice::PortLabel::Output);
  }
  return b.finish();
}

LabeledCircuit generate_receiver(const ReceiverOptions& opt, Rng& rng,
                                 const std::string& name) {
  CircuitBuilder b(name, rf_class_names(), rng);
  Sizing& sz = b.sizing();

  RfBlockPorts lna = emit_lna(b, opt.lna, "lna0/");
  const std::string ant1 = lna.in1, ant2 = lna.in2;
  for (int s = 1; s < opt.lna_stages; ++s) {
    const RfBlockPorts next =
        emit_lna(b, opt.lna, "lna" + std::to_string(s) + "/");
    b.set_label(kRfLna);
    b.cap(lna.out1, next.in1, sz.capacitance(100e-15, 1e-12));
    if (!lna.out2.empty() && !next.in2.empty()) {
      b.cap(lna.out2, next.in2, sz.capacitance(100e-15, 1e-12));
    }
    lna.out1 = next.out1;
    lna.out2 = next.out2;
  }
  lna.in1 = ant1;
  lna.in2 = ant2;
  const RfBlockPorts osc = emit_oscillator(b, opt.osc, "osc/");

  // LO chain (optionally buffered).
  std::string lo = osc.out1;
  if (opt.lo_buffer) {
    const RfBlockPorts buf = emit_buffer(b, "lobuf/");
    b.set_label(kRfOsc);  // coupling cap hangs off the oscillator tank
    b.cap(osc.out1, buf.in1, sz.capacitance(100e-15, 1e-12));
    lo = buf.out1;
  }

  auto connect_mixer = [&](const std::string& prefix) {
    const RfBlockPorts mix = emit_mixer(b, opt.mixer, prefix);
    // AC-couple the LNA output into the mixer RF port and the LO into the
    // LO port. Coupling caps belong to the driving block's class.
    b.set_label(kRfLna);
    b.cap(lna.out1, mix.in1, sz.capacitance(100e-15, 1e-12));
    b.set_label(kRfOsc);
    b.cap(lo, mix.in2, sz.capacitance(100e-15, 1e-12));
    return mix;
  };

  const RfBlockPorts mix_i = connect_mixer("mixi/");
  RfBlockPorts mix_q;
  if (opt.iq) mix_q = connect_mixer("mixq/");

  if (opt.port_labels) {
    b.port(lna.in1, spice::PortLabel::Antenna);
    if (!lna.in2.empty()) b.port(lna.in2, spice::PortLabel::Antenna);
    b.port(osc.out1, spice::PortLabel::LocalOsc);
    if (!osc.out2.empty()) b.port(osc.out2, spice::PortLabel::LocalOsc);
    b.port(mix_i.out1, spice::PortLabel::Output);
    if (opt.iq) b.port(mix_q.out1, spice::PortLabel::Output);
  }
  return b.finish();
}

}  // namespace gana::datagen
