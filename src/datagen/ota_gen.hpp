// OTA-family circuit generator (DESIGN.md substitution for the paper's
// "OTA bias" dataset: 624 training circuits with signal/bias labels).
//
// Covers the topology families the paper's introduction names (telescopic,
// folded cascode, Miller-compensated, plus 5T, symmetrical, fully
// differential with CMFB, and class-AB output stages), each combinable
// with several bias-network styles and design-style variations.
#pragma once

#include <string>

#include "datagen/sizing.hpp"

namespace gana::datagen {

/// Class ids of the OTA dataset (2 labels, paper Table I).
enum OtaClass : int { kOtaSignal = 0, kOtaBias = 1 };

enum class OtaTopology {
  FiveT,             ///< 5-transistor single-ended OTA
  Telescopic,        ///< telescopic cascode (held out of training)
  FoldedCascode,     ///< folded cascode, PMOS input
  TwoStageMiller,    ///< 5T + common-source stage + RC compensation
  FullyDifferential, ///< fully differential with resistive CMFB
  Symmetrical,       ///< current-mirror (symmetrical) OTA
  ClassAb,           ///< two-stage with push-pull output
};

enum class BiasStyle {
  SimpleMirror,  ///< current reference + diode mirrors
  ResistorRef,   ///< resistor-defined reference current
  CascodeBias,   ///< stacked diode bias for cascode rails
  WideSwing,     ///< wide-swing cascode bias network
};

inline constexpr OtaTopology kAllOtaTopologies[] = {
    OtaTopology::FiveT,          OtaTopology::Telescopic,
    OtaTopology::FoldedCascode,  OtaTopology::TwoStageMiller,
    OtaTopology::FullyDifferential, OtaTopology::Symmetrical,
    OtaTopology::ClassAb,
};
inline constexpr BiasStyle kAllBiasStyles[] = {
    BiasStyle::SimpleMirror, BiasStyle::ResistorRef, BiasStyle::CascodeBias,
    BiasStyle::WideSwing,
};

[[nodiscard]] const char* to_string(OtaTopology t);
[[nodiscard]] const char* to_string(BiasStyle b);

struct OtaOptions {
  OtaTopology topology = OtaTopology::FiveT;
  BiasStyle bias = BiasStyle::SimpleMirror;
  bool pmos_input = false;     ///< complementary variant
  bool cascode_tail = false;   ///< stack the tail current source
  bool output_buffer = false;  ///< source-follower output buffer
  bool with_dummies = false;   ///< sprinkle layout dummies
  bool with_stacking = false;  ///< emit parallel device fingers
  bool bias_decap = false;     ///< decoupling caps on bias nets
  /// Switched-capacitor input sampling network (the paper's training OTAs
  /// include switched-cap structures, e.g. the CMF[SC] of Fig. 1).
  bool sc_input = false;
  bool load_caps = false;       ///< capacitive loads on the outputs
  bool input_coupling = false;  ///< series R + AC-coupling C at the inputs
  bool bias_startup = false;    ///< start-up branch in the bias network
  /// Emit .portlabel annotations (designers do not always provide them).
  bool port_labels = true;
};

/// Generates one labeled OTA circuit. Deterministic given the rng state.
LabeledCircuit generate_ota(const OtaOptions& options, Rng& rng,
                            const std::string& name);

}  // namespace gana::datagen
