// Dataset assembly matching the paper's Table I / Table II workloads.
//
//   Table I  (training):  OTA bias 624 circuits / 2 labels;
//                         RF data 608 circuits / 3 labels.
//   Table II (test):      OTA bias 168 circuits; SC filter 1; RF data 105
//                         receivers; phased array 1.
//
// Training and test sets are generated from disjoint seed spaces, and the
// telescopic OTA topology is excluded from training (the paper's SC
// filter testcase uses "a telescopic OTA not seen by the training set").
#pragma once

#include <vector>

#include "datagen/ota_gen.hpp"
#include "datagen/rf_gen.hpp"

namespace gana::datagen {

struct DatasetOptions {
  std::size_t circuits = 624;
  std::uint64_t seed = 1;
  /// Fraction of circuits carrying designer .portlabel annotations.
  double port_label_fraction = 0.7;
};

/// OTA-bias training/test circuits (2 classes). Telescopic topology is
/// excluded; all other topology x bias x variation combinations are
/// cycled deterministically.
std::vector<LabeledCircuit> make_ota_dataset(const DatasetOptions& options);

/// RF training circuits (labels lna/mixer/osc): a mix of stand-alone
/// blocks and small receivers.
std::vector<LabeledCircuit> make_rf_dataset(const DatasetOptions& options);

/// RF test receivers (paper: "105 different datasets that combine various
/// LNAs, mixers, and oscillators in a receiver"): full receivers only,
/// from a disjoint seed space.
std::vector<LabeledCircuit> make_rf_test_receivers(
    const DatasetOptions& options);

/// Aggregate statistics for Table I / Table II style reporting.
struct DatasetStats {
  std::size_t circuits = 0;
  std::size_t devices = 0;
  std::size_t nets = 0;  ///< distinct nets summed over circuits
  std::size_t labels = 0;

  [[nodiscard]] std::size_t nodes() const { return devices + nets; }
};

DatasetStats dataset_stats(const std::vector<LabeledCircuit>& circuits);

}  // namespace gana::datagen
