// Switched-capacitor filter testcase (paper §V-B, second test set).
//
// "The second testcase consists of a composite circuit, a switched
// capacitor filter, with an OTA. This is similar to the sample and hold
// circuit in Fig. 1(a) and contains 32 devices and 25 nets, including an
// OTA sub-block and switched capacitors. The telescopic OTA subcircuit
// used in this circuit is not seen by the training set."
#pragma once

#include "datagen/sizing.hpp"

namespace gana::datagen {

struct ScFilterOptions {
  int cap_banks = 2;       ///< switched-capacitor branches per side
  bool port_labels = true; ///< clock/input/output .portlabel annotations
};

/// Builds the SC filter around a telescopic OTA. Labels use the OTA
/// dataset classes: switches/caps and the OTA signal path are class
/// `ota` (0); the bias network is class `bias` (1).
LabeledCircuit generate_sc_filter(const ScFilterOptions& options, Rng& rng);

}  // namespace gana::datagen
