#include "datagen/sizing.hpp"

#include <cmath>

namespace gana::datagen {

double Sizing::log_uniform(double lo, double hi) {
  const double u = rng_->uniform(std::log(lo), std::log(hi));
  return std::exp(u);
}

double Sizing::mos_w(double lo, double hi) { return log_uniform(lo, hi); }
double Sizing::mos_l(double lo, double hi) { return log_uniform(lo, hi); }
double Sizing::resistance(double lo, double hi) {
  return log_uniform(lo, hi);
}
double Sizing::capacitance(double lo, double hi) {
  return log_uniform(lo, hi);
}
double Sizing::big_capacitance(double lo, double hi) {
  return log_uniform(lo, hi);
}
double Sizing::inductance(double lo, double hi) {
  return log_uniform(lo, hi);
}
double Sizing::bias_current(double lo, double hi) {
  return log_uniform(lo, hi);
}

CircuitBuilder::CircuitBuilder(std::string circuit_name,
                               std::vector<std::string> classes, Rng& rng)
    : rng_(&rng), sizing_(rng) {
  result_.name = std::move(circuit_name);
  result_.class_names = std::move(classes);
  result_.netlist.title = "* " + result_.name;
}

std::string CircuitBuilder::next_name(char letter) {
  const int id = counters_[letter]++;
  return prefix_ + std::string(1, letter) + std::to_string(id);
}

std::string CircuitBuilder::add_mos(spice::DeviceType type,
                                    const std::string& d,
                                    const std::string& g,
                                    const std::string& s, double w,
                                    double l) {
  spice::Device dev;
  dev.name = next_name('m');
  dev.type = type;
  dev.model = type == spice::DeviceType::Nmos ? "nmos" : "pmos";
  const std::string body =
      type == spice::DeviceType::Nmos ? "gnd!" : "vdd!";
  dev.pins = {d, g, s, body};
  dev.params["w"] = w > 0.0 ? w : sizing_.mos_w();
  dev.params["l"] = l > 0.0 ? l : sizing_.mos_l();
  result_.device_labels[dev.name] = label_;
  result_.netlist.devices.push_back(std::move(dev));
  return result_.netlist.devices.back().name;
}

std::string CircuitBuilder::nmos(const std::string& d, const std::string& g,
                                 const std::string& s, double w, double l) {
  return add_mos(spice::DeviceType::Nmos, d, g, s, w, l);
}

std::string CircuitBuilder::pmos(const std::string& d, const std::string& g,
                                 const std::string& s, double w, double l) {
  return add_mos(spice::DeviceType::Pmos, d, g, s, w, l);
}

std::string CircuitBuilder::add_two_pin(spice::DeviceType type, char letter,
                                        const std::string& a,
                                        const std::string& b, double value) {
  spice::Device dev;
  dev.name = next_name(letter);
  dev.type = type;
  dev.pins = {a, b};
  dev.value = value;
  result_.device_labels[dev.name] = label_;
  result_.netlist.devices.push_back(std::move(dev));
  return result_.netlist.devices.back().name;
}

std::string CircuitBuilder::res(const std::string& a, const std::string& b,
                                double value) {
  return add_two_pin(spice::DeviceType::Resistor, 'r', a, b, value);
}
std::string CircuitBuilder::cap(const std::string& a, const std::string& b,
                                double value) {
  return add_two_pin(spice::DeviceType::Capacitor, 'c', a, b, value);
}
std::string CircuitBuilder::ind(const std::string& a, const std::string& b,
                                double value) {
  return add_two_pin(spice::DeviceType::Inductor, 'l', a, b, value);
}
std::string CircuitBuilder::isrc(const std::string& p, const std::string& n,
                                 double value) {
  return add_two_pin(spice::DeviceType::ISource, 'i', p, n, value);
}
std::string CircuitBuilder::vsrc(const std::string& p, const std::string& n,
                                 double value) {
  return add_two_pin(spice::DeviceType::VSource, 'v', p, n, value);
}

void CircuitBuilder::port(const std::string& net, spice::PortLabel label) {
  result_.netlist.port_labels[net] = label;
}

std::string CircuitBuilder::fresh_net(const std::string& hint) {
  return prefix_ + hint + std::to_string(net_counter_++);
}

void CircuitBuilder::stack_parallel(int copies) {
  if (result_.netlist.devices.empty()) return;
  const spice::Device last = result_.netlist.devices.back();
  for (int i = 0; i < copies; ++i) {
    spice::Device dup = last;
    dup.name = last.name + "p" + std::to_string(i);
    result_.device_labels[dup.name] = result_.device_labels.at(last.name);
    result_.netlist.devices.push_back(std::move(dup));
  }
}

void CircuitBuilder::add_dummy() {
  // Find the most recent MOS card to mimic.
  for (auto it = result_.netlist.devices.rbegin();
       it != result_.netlist.devices.rend(); ++it) {
    if (!spice::is_mos(it->type)) continue;
    const bool n = it->type == spice::DeviceType::Nmos;
    const std::string rail = n ? "gnd!" : "vdd!";
    spice::Device dummy = *it;
    dummy.name = it->name + "d";
    dummy.pins = {rail, rail, rail, rail};
    result_.device_labels[dummy.name] = result_.device_labels.at(it->name);
    result_.netlist.devices.push_back(std::move(dummy));
    return;
  }
}

LabeledCircuit CircuitBuilder::finish() {
  result_.netlist.validate();
  return std::move(result_);
}

}  // namespace gana::datagen
