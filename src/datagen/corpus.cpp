#include "datagen/corpus.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "datagen/ota_gen.hpp"
#include "datagen/rf_gen.hpp"
#include "datagen/sc_filter.hpp"
#include "shard/manifest.hpp"
#include "spice/writer.hpp"
#include "util/rng.hpp"

namespace gana::datagen {
namespace {

/// splitmix64 finalizer: decorrelates (seed, index) pairs before they
/// reach the per-circuit Rng so neighbouring indices share no stream.
std::uint64_t mix(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::string circuit_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "c%07zu", index);
  return buf;
}

/// OTA variant chosen from the full topology/bias space (unlike the
/// training set, the corpus may include telescopic OTAs: this is an
/// inference workload, not a training one).
OtaOptions corpus_ota_variant(Rng& rng) {
  OtaOptions opt;
  opt.topology = kAllOtaTopologies[rng.index(std::size(kAllOtaTopologies))];
  opt.bias = kAllBiasStyles[rng.index(std::size(kAllBiasStyles))];
  opt.pmos_input = rng.chance(0.3) &&
                   (opt.topology == OtaTopology::FiveT ||
                    opt.topology == OtaTopology::Symmetrical);
  opt.cascode_tail = rng.chance(0.45);
  opt.output_buffer = rng.chance(0.45);
  opt.with_dummies = rng.chance(0.35);
  opt.with_stacking = rng.chance(0.3);
  opt.bias_decap = rng.chance(0.5);
  opt.sc_input = rng.chance(0.35);
  opt.load_caps = rng.chance(0.8);
  opt.input_coupling = rng.chance(0.55);
  opt.bias_startup = rng.chance(0.5);
  opt.port_labels = rng.chance(0.9);
  return opt;
}

ReceiverOptions corpus_receiver_variant(Rng& rng) {
  ReceiverOptions opt;
  opt.lna = kAllLnaKinds[rng.index(std::size(kAllLnaKinds))];
  opt.mixer = kAllMixerKinds[rng.index(std::size(kAllMixerKinds))];
  opt.osc = kAllOscKinds[rng.index(std::size(kAllOscKinds))];
  opt.lna_stages = rng.range(1, 2);
  opt.iq = rng.chance(0.4);
  opt.lo_buffer = rng.chance(0.4);
  opt.port_labels = rng.chance(0.9);
  return opt;
}

std::vector<std::string> corpus_headers(const CorpusOptions& options) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "gana corpus seed=%llu count=%zu ota=%.3f rf=%.3f per_dir=%zu",
                static_cast<unsigned long long>(options.seed), options.count,
                options.ota_fraction, options.rf_fraction,
                options.files_per_subdir);
  return {buf};
}

}  // namespace

std::string corpus_entry_name(const CorpusOptions& options,
                              std::size_t index) {
  const std::size_t per = options.files_per_subdir ? options.files_per_subdir
                                                   : 1;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%03zu/%s.sp", index / per,
                circuit_name(index).c_str());
  return buf;
}

std::string corpus_netlist_text(const CorpusOptions& options,
                                std::size_t index) {
  Rng rng(mix(options.seed, index));
  // Kind selection burns one uniform draw whatever the outcome, so the
  // per-kind option stream is independent of the fractions.
  const double pick = rng.uniform();
  LabeledCircuit circuit;
  if (pick < options.ota_fraction) {
    circuit = generate_ota(corpus_ota_variant(rng), rng, circuit_name(index));
  } else if (pick < options.ota_fraction + options.rf_fraction) {
    circuit =
        generate_receiver(corpus_receiver_variant(rng), rng,
                          circuit_name(index));
  } else {
    ScFilterOptions opt;
    opt.cap_banks = rng.range(1, 3);
    opt.port_labels = rng.chance(0.9);
    circuit = generate_sc_filter(opt, rng);
  }
  circuit.netlist.title = "* " + circuit_name(index);
  return spice::write_netlist(circuit.netlist);
}

Result<CorpusStats> write_corpus(const CorpusOptions& options) {
  namespace fs = std::filesystem;
  CorpusStats stats;
  stats.manifest_path = options.dir + "/manifest.txt";

  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return make_diag(DiagCode::IoError, Stage::Io,
                     "cannot create corpus directory: " + options.dir + " (" +
                         ec.message() + ")",
                     SourceLoc{options.dir, 0});
  }

  const std::vector<std::string> headers = corpus_headers(options);

  // A fresh corpus with matching provenance headers lets a re-run skip
  // every file that already exists (generation dominates bench setup).
  bool provenance_matches = false;
  {
    std::ifstream in(stats.manifest_path);
    std::string line;
    if (in && std::getline(in, line) && line == "# " + headers.front()) {
      provenance_matches = true;
    }
  }

  std::vector<std::string> entries;
  entries.reserve(options.count);
  std::string last_subdir;
  for (std::size_t i = 0; i < options.count; ++i) {
    std::string entry = corpus_entry_name(options, i);
    const std::string full = options.dir + "/" + entry;
    const std::string subdir = full.substr(0, full.find_last_of('/'));
    if (subdir != last_subdir) {
      fs::create_directories(subdir, ec);
      if (ec) {
        return make_diag(DiagCode::IoError, Stage::Io,
                         "cannot create corpus subdirectory: " + subdir +
                             " (" + ec.message() + ")",
                         SourceLoc{subdir, 0});
      }
      last_subdir = subdir;
    }
    if (provenance_matches && fs::exists(full, ec) && !ec) {
      ++stats.reused;
    } else {
      std::ofstream out(full, std::ios::binary | std::ios::trunc);
      out << corpus_netlist_text(options, i);
      out.close();
      if (!out) {
        return make_diag(DiagCode::IoError, Stage::Io,
                         "cannot write corpus netlist: " + full,
                         SourceLoc{full, 0});
      }
      ++stats.written;
    }
    entries.push_back(std::move(entry));
  }

  std::ofstream manifest(stats.manifest_path,
                         std::ios::binary | std::ios::trunc);
  manifest << shard::write_manifest(entries, headers);
  manifest.close();
  if (!manifest) {
    return make_diag(DiagCode::IoError, Stage::Io,
                     "cannot write corpus manifest: " + stats.manifest_path,
                     SourceLoc{stats.manifest_path, 0});
  }
  return stats;
}

}  // namespace gana::datagen
