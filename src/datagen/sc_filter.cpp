#include "datagen/sc_filter.hpp"

#include "datagen/ota_gen.hpp"

namespace gana::datagen {

LabeledCircuit generate_sc_filter(const ScFilterOptions& opt, Rng& rng) {
  CircuitBuilder b("sc_filter", {"ota", "bias"}, rng);
  Sizing& sz = b.sizing();

  // --- Bias network (class bias): reference + diodes for the telescopic
  // rails vbn, vbcn, vbcp, pb0.
  b.set_label(kOtaBias);
  b.set_prefix("bias/");
  b.isrc("vdd!", "vbn", sz.bias_current());
  b.nmos("vbn", "vbn", "gnd!");
  const std::string lad = b.fresh_net();
  b.isrc("vdd!", "vbcn", sz.bias_current());
  b.nmos("vbcn", "vbcn", lad);
  b.nmos(lad, lad, "gnd!");
  b.nmos("pb0", "vbn", "gnd!");
  b.pmos("pb0", "pb0", "vdd!");
  const std::string lad2 = b.fresh_net();
  b.nmos("vbcp", "vbn", "gnd!");
  b.pmos("vbcp", "vbcp", lad2);
  b.pmos(lad2, lad2, "vdd!");
  b.set_prefix("");

  // --- Telescopic OTA (class ota), held out of the training set.
  b.set_label(kOtaSignal);
  b.set_prefix("ota/");
  const std::string tail = b.fresh_net("tail");
  const std::string y1 = b.fresh_net("y"), y2 = b.fresh_net("y");
  const std::string z1 = b.fresh_net("z"), z2 = b.fresh_net("z");
  b.nmos(tail, "vbn", "gnd!");
  b.nmos(y1, "vinp", tail);
  b.nmos(y2, "vinn", tail);
  b.nmos("voutn", "vbcn", y1);
  b.nmos("voutp", "vbcn", y2);
  b.pmos("voutn", "vbcp", z1);
  b.pmos("voutp", "vbcp", z2);
  b.pmos(z1, "pb0", "vdd!");
  b.pmos(z2, "pb0", "vdd!");
  b.set_prefix("");

  // --- Switched-capacitor network (class ota: signal path). Per side and
  // per bank: input switch -> sampling cap -> transfer switch into the
  // OTA virtual ground, plus an integrating cap around the OTA.
  auto sc_branch = [&](const std::string& side_in, const std::string& vg,
                       const std::string& prefix) {
    b.set_prefix(prefix);
    for (int k = 0; k < opt.cap_banks; ++k) {
      const std::string top = b.fresh_net("t");
      const std::string bot = b.fresh_net("b");
      b.nmos(top, "ck1", side_in);               // sampling switch
      b.cap(top, bot, sz.capacitance(0.2e-12, 2e-12));
      b.nmos(bot, "ck1", "gnd!");                // reset switch
      b.nmos(bot, "ck2", vg);                    // transfer switch
    }
    b.set_prefix("");
  };
  b.set_label(kOtaSignal);
  sc_branch("sinp", "vinp", "scp/");
  sc_branch("sinn", "vinn", "scn/");
  // Integrating caps across the OTA.
  b.cap("vinp", "voutn", sz.capacitance(0.5e-12, 4e-12));
  b.cap("vinn", "voutp", sz.capacitance(0.5e-12, 4e-12));

  if (opt.port_labels) {
    b.port("sinp", spice::PortLabel::Input);
    b.port("sinn", spice::PortLabel::Input);
    b.port("voutp", spice::PortLabel::Output);
    b.port("voutn", spice::PortLabel::Output);
    b.port("ck1", spice::PortLabel::Clock);
    b.port("ck2", spice::PortLabel::Clock);
    b.port("vbn", spice::PortLabel::Bias);
    b.port("vbcn", spice::PortLabel::Bias);
    b.port("vbcp", spice::PortLabel::Bias);
    b.port("pb0", spice::PortLabel::Bias);
  }
  return b.finish();
}

}  // namespace gana::datagen
