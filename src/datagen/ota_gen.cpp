#include "datagen/ota_gen.hpp"

#include <set>

namespace gana::datagen {

const char* to_string(OtaTopology t) {
  switch (t) {
    case OtaTopology::FiveT: return "5t";
    case OtaTopology::Telescopic: return "telescopic";
    case OtaTopology::FoldedCascode: return "folded-cascode";
    case OtaTopology::TwoStageMiller: return "two-stage-miller";
    case OtaTopology::FullyDifferential: return "fully-differential";
    case OtaTopology::Symmetrical: return "symmetrical";
    case OtaTopology::ClassAb: return "class-ab";
  }
  return "?";
}

const char* to_string(BiasStyle b) {
  switch (b) {
    case BiasStyle::SimpleMirror: return "simple-mirror";
    case BiasStyle::ResistorRef: return "resistor-ref";
    case BiasStyle::CascodeBias: return "cascode-bias";
    case BiasStyle::WideSwing: return "wide-swing";
  }
  return "?";
}

namespace {

/// Which bias rails a topology consumes.
struct BiasNeeds {
  bool vbn = false;   ///< NMOS current-source gate
  bool vbp = false;   ///< PMOS current-source gate
  bool vbcn = false;  ///< NMOS cascode gate
  bool vbcp = false;  ///< PMOS cascode gate
};

/// Emits the bias network (class kOtaBias) that produces the requested
/// rails. Every style starts from a reference branch and mirrors it out.
void emit_bias(CircuitBuilder& b, const BiasNeeds& needs,
               const OtaOptions& opt) {
  b.set_label(kOtaBias);
  b.set_prefix("bias/");
  Sizing& sz = b.sizing();

  // Reference current into the NMOS diode that defines vbn.
  const std::string nref = "vbn";
  if (opt.bias == BiasStyle::ResistorRef) {
    const std::string mid = b.fresh_net();
    b.res("vdd!", mid, sz.resistance(10e3, 100e3));
    b.res(mid, nref, sz.resistance(1e3, 10e3));
  } else {
    b.isrc("vdd!", nref, sz.bias_current());
  }
  b.nmos(nref, nref, "gnd!");  // diode: vbn

  if (opt.bias == BiasStyle::CascodeBias || opt.bias == BiasStyle::WideSwing ||
      needs.vbcn) {
    // Stacked diode ladder for the NMOS cascode gate.
    const std::string lad = b.fresh_net();
    b.isrc("vdd!", "vbcn", sz.bias_current());
    b.nmos("vbcn", "vbcn", lad);
    b.nmos(lad, lad, "gnd!");
  }
  if (needs.vbp || opt.bias == BiasStyle::WideSwing) {
    // Mirror the reference up into a PMOS diode: vbp.
    b.nmos("pb0", "vbn", "gnd!");
    b.pmos("pb0", "pb0", "vdd!");  // diode at net pb0 == vbp
    // Use pb0 directly as vbp by aliasing through a named net.
    // (The diode's drain/gate net is the PMOS bias rail.)
  }
  if (needs.vbcp) {
    const std::string lad = b.fresh_net();
    b.nmos("vbcp", "vbn", "gnd!");
    b.pmos("vbcp", "vbcp", lad);
    b.pmos(lad, lad, "vdd!");
  }
  if (opt.bias_decap) {
    b.cap("vbn", "gnd!", sz.capacitance(1e-12, 5e-12));
    if (needs.vbp) b.cap("pb0", "vdd!", sz.capacitance(1e-12, 5e-12));
  }
  if (opt.bias_startup) {
    // Start-up branch: a leaker resistor kicks the reference via a switch
    // device whose gate watches the bias rail.
    const std::string kick = b.fresh_net("kick");
    b.res("vdd!", kick, sz.resistance(100e3, 500e3));
    b.nmos(kick, "vbn", "gnd!");
    b.nmos("vbn", kick, "gnd!");
  }
  if (opt.with_dummies) b.add_dummy();

  if (opt.port_labels) {
    b.port("vbn", spice::PortLabel::Bias);
    if (needs.vbcn) b.port("vbcn", spice::PortLabel::Bias);
    if (needs.vbp) b.port("pb0", spice::PortLabel::Bias);
    if (needs.vbcp) b.port("vbcp", spice::PortLabel::Bias);
  }
  b.set_prefix("");
  b.set_label(kOtaSignal);
}

/// Tail current source (possibly cascoded); returns the tail net.
std::string emit_tail(CircuitBuilder& b, bool pmos_side, bool cascode) {
  const std::string tail = b.fresh_net("tail");
  if (pmos_side) {
    if (cascode) {
      const std::string mid = b.fresh_net();
      b.pmos(tail, "vbcp", mid);
      b.pmos(mid, "pb0", "vdd!");
    } else {
      b.pmos(tail, "pb0", "vdd!");
    }
  } else {
    if (cascode) {
      const std::string mid = b.fresh_net();
      b.nmos(tail, "vbcn", mid);
      b.nmos(mid, "vbn", "gnd!");
    } else {
      b.nmos(tail, "vbn", "gnd!");
    }
  }
  return tail;
}

void emit_five_t(CircuitBuilder& b, const OtaOptions& opt) {
  const bool p = opt.pmos_input;
  const std::string tail = emit_tail(b, p, opt.cascode_tail);
  const std::string x = b.fresh_net("x");
  auto in_dev = [&](const std::string& d, const std::string& g,
                    const std::string& s) {
    return p ? b.pmos(d, g, s) : b.nmos(d, g, s);
  };
  auto load_dev = [&](const std::string& d, const std::string& g,
                      const std::string& s) {
    return p ? b.nmos(d, g, s) : b.pmos(d, g, s);
  };
  const std::string load_rail = p ? "gnd!" : "vdd!";
  in_dev(x, "vinp", tail);
  in_dev("vout", "vinn", tail);
  if (opt.with_stacking) b.stack_parallel(1);
  load_dev(x, x, load_rail);
  load_dev("vout", x, load_rail);
}

void emit_telescopic(CircuitBuilder& b, const OtaOptions& opt) {
  const std::string tail = emit_tail(b, false, opt.cascode_tail);
  const std::string y1 = b.fresh_net("y"), y2 = b.fresh_net("y");
  const std::string z1 = b.fresh_net("z"), z2 = b.fresh_net("z");
  b.nmos(y1, "vinp", tail);
  b.nmos(y2, "vinn", tail);
  b.nmos("voutn", "vbcn", y1);
  b.nmos("voutp", "vbcn", y2);
  b.pmos("voutn", "vbcp", z1);
  b.pmos("voutp", "vbcp", z2);
  b.pmos(z1, "pb0", "vdd!");
  b.pmos(z2, "pb0", "vdd!");
  if (opt.with_dummies) b.add_dummy();
}

void emit_folded_cascode(CircuitBuilder& b, const OtaOptions& opt) {
  const std::string tail = emit_tail(b, true, opt.cascode_tail);
  const std::string f1 = b.fresh_net("f"), f2 = b.fresh_net("f");
  const std::string c1 = b.fresh_net("c"), c2 = b.fresh_net("c");
  b.pmos(f1, "vinp", tail);
  b.pmos(f2, "vinn", tail);
  // Folding current sinks.
  b.nmos(f1, "vbn", "gnd!");
  b.nmos(f2, "vbn", "gnd!");
  // NMOS cascodes up to the outputs.
  b.nmos("voutn", "vbcn", f1);
  b.nmos("voutp", "vbcn", f2);
  // PMOS cascoded loads.
  b.pmos("voutn", "vbcp", c1);
  b.pmos("voutp", "vbcp", c2);
  b.pmos(c1, "pb0", "vdd!");
  b.pmos(c2, "pb0", "vdd!");
  if (opt.with_stacking) b.stack_parallel(1);
}

void emit_two_stage(CircuitBuilder& b, const OtaOptions& opt,
                    bool class_ab) {
  // First stage: 5T with internal output o1.
  const std::string tail = emit_tail(b, false, opt.cascode_tail);
  const std::string x = b.fresh_net("x");
  const std::string o1 = b.fresh_net("o1");
  b.nmos(x, "vinp", tail);
  b.nmos(o1, "vinn", tail);
  b.pmos(x, x, "vdd!");
  b.pmos(o1, x, "vdd!");
  // Second stage.
  if (class_ab) {
    // Push-pull: PMOS driven by o1, NMOS driven via a level-shift diode.
    const std::string sh = b.fresh_net("sh");
    b.pmos("vout", o1, "vdd!");
    b.nmos("vout", sh, "gnd!");
    b.nmos(sh, o1, "gnd!");
    b.isrc("vdd!", sh, b.sizing().bias_current());
  } else {
    b.pmos("vout", o1, "vdd!");
    b.nmos("vout", "vbn", "gnd!");
  }
  // Miller compensation RC across the second stage.
  const std::string mid = b.fresh_net("cc");
  b.res(o1, mid, b.sizing().resistance(1e3, 20e3));
  b.cap(mid, "vout", b.sizing().capacitance(0.5e-12, 5e-12));
  if (opt.with_dummies) b.add_dummy();
}

void emit_fully_differential(CircuitBuilder& b, const OtaOptions& opt) {
  const std::string tail = emit_tail(b, false, opt.cascode_tail);
  b.nmos("voutn", "vinp", tail);
  b.nmos("voutp", "vinn", tail);
  // PMOS loads controlled by the common-mode feedback voltage.
  b.pmos("voutn", "vcmfb", "vdd!");
  b.pmos("voutp", "vcmfb", "vdd!");
  // Resistive common-mode sense into an error amplifier.
  const std::string vcm = b.fresh_net("vcm");
  b.res("voutp", vcm, b.sizing().resistance(50e3, 200e3));
  b.res("voutn", vcm, b.sizing().resistance(50e3, 200e3));
  const std::string ctail = b.fresh_net("ctail");
  const std::string cx = b.fresh_net("cx");
  b.nmos(ctail, "vbn", "gnd!");
  b.nmos(cx, vcm, ctail);
  b.nmos("vcmfb", "vref", ctail);
  b.pmos(cx, cx, "vdd!");
  b.pmos("vcmfb", cx, "vdd!");
  if (opt.port_labels) b.port("vref", spice::PortLabel::Bias);
}

void emit_symmetrical(CircuitBuilder& b, const OtaOptions& opt) {
  const std::string tail = emit_tail(b, false, opt.cascode_tail);
  const std::string x1 = b.fresh_net("x"), x2 = b.fresh_net("x");
  const std::string o3 = b.fresh_net("o");
  b.nmos(x1, "vinp", tail);
  b.nmos(x2, "vinn", tail);
  // Diode-connected PMOS loads.
  b.pmos(x1, x1, "vdd!");
  b.pmos(x2, x2, "vdd!");
  // Mirror branches to the single-ended output.
  b.pmos(o3, x1, "vdd!");
  b.pmos("vout", x2, "vdd!");
  b.nmos(o3, o3, "gnd!");
  b.nmos("vout", o3, "gnd!");
  if (opt.with_stacking) b.stack_parallel(1);
}

}  // namespace

LabeledCircuit generate_ota(const OtaOptions& opt, Rng& rng,
                            const std::string& name) {
  CircuitBuilder b(name, {"ota", "bias"}, rng);
  b.set_label(kOtaSignal);

  BiasNeeds needs;
  needs.vbn = true;  // every topology has an NMOS-referred tail or sink
  switch (opt.topology) {
    case OtaTopology::Telescopic:
      needs.vbcn = needs.vbcp = needs.vbp = true;
      break;
    case OtaTopology::FoldedCascode:
      needs.vbcn = needs.vbcp = needs.vbp = true;
      break;
    default:
      needs.vbp = opt.pmos_input;
      needs.vbcn = opt.cascode_tail && !opt.pmos_input;
      needs.vbcp = opt.cascode_tail && opt.pmos_input;
      break;
  }
  emit_bias(b, needs, opt);

  switch (opt.topology) {
    case OtaTopology::FiveT: emit_five_t(b, opt); break;
    case OtaTopology::Telescopic: emit_telescopic(b, opt); break;
    case OtaTopology::FoldedCascode: emit_folded_cascode(b, opt); break;
    case OtaTopology::TwoStageMiller: emit_two_stage(b, opt, false); break;
    case OtaTopology::ClassAb: emit_two_stage(b, opt, true); break;
    case OtaTopology::FullyDifferential:
      emit_fully_differential(b, opt);
      break;
    case OtaTopology::Symmetrical: emit_symmetrical(b, opt); break;
  }

  const bool differential = opt.topology == OtaTopology::Telescopic ||
                            opt.topology == OtaTopology::FoldedCascode ||
                            opt.topology == OtaTopology::FullyDifferential;
  if (opt.output_buffer) {
    b.set_label(kOtaSignal);
    if (differential) {
      b.nmos("voutbufp", "voutp", "obufp");
      b.nmos("obufp", "vbn", "gnd!");
    } else {
      // NMOS source follower + current sink on the single-ended output.
      b.nmos("vdd!", "vout", "obuf");
      b.nmos("obuf", "vbn", "gnd!");
    }
  }

  if (opt.load_caps) {
    b.set_label(kOtaSignal);
    if (differential) {
      b.cap("voutp", "gnd!", b.sizing().capacitance(0.5e-12, 5e-12));
      b.cap("voutn", "gnd!", b.sizing().capacitance(0.5e-12, 5e-12));
    } else {
      b.cap("vout", "gnd!", b.sizing().capacitance(0.5e-12, 5e-12));
    }
  }

  if (opt.input_coupling) {
    // Series resistor + AC-coupling capacitor in front of each input.
    b.set_label(kOtaSignal);
    b.set_prefix("inrc/");
    for (const char* in : {"vinp", "vinn"}) {
      const std::string pad = std::string("pad_") + in;
      const std::string mid = b.fresh_net("m");
      b.res(pad, mid, b.sizing().resistance(100, 2e3));
      b.cap(mid, in, b.sizing().capacitance(1e-12, 10e-12));
      if (opt.port_labels) b.port(pad, spice::PortLabel::Input);
    }
    b.set_prefix("");
  }

  if (opt.sc_input) {
    // Switched-capacitor sampling network ahead of each input.
    b.set_label(kOtaSignal);
    b.set_prefix("sc/");
    for (const char* in : {"vinp", "vinn"}) {
      const std::string src = std::string("s") + in;
      const std::string top = b.fresh_net("t");
      b.nmos(top, "ck1", src);
      b.cap(top, in, b.sizing().capacitance(0.2e-12, 2e-12));
      b.nmos(in, "ck2", "gnd!");
    }
    b.set_prefix("");
    if (opt.port_labels) {
      b.port("ck1", spice::PortLabel::Clock);
      b.port("ck2", spice::PortLabel::Clock);
      b.port("svinp", spice::PortLabel::Input);
      b.port("svinn", spice::PortLabel::Input);
    }
  }

  if (opt.port_labels) {
    b.port("vinp", spice::PortLabel::Input);
    b.port("vinn", spice::PortLabel::Input);
    if (differential) {
      b.port("voutp", spice::PortLabel::Output);
      b.port("voutn", spice::PortLabel::Output);
    } else {
      b.port("vout", spice::PortLabel::Output);
    }
  }
  return b.finish();
}

}  // namespace gana::datagen
