// Phased-array receiver testcase (paper §V-B, fourth test set; after
// Meng & Harjani, ESSCIRC 2018 [25]).
//
// "The fourth and largest testcase consists of a phased array system
// containing a mixer, LNA, BPF, oscillator, VCO buffer (BUF) and
// inverter-based amplifier (INV) sub-blocks. The graph for the input
// netlist has 902 vertices (522 devices + 380 nets)."
//
// Channelized architecture: a shared wideband differential LNA feeds N
// channels; each channel band-pass filters the RF, mixes with a
// sub-harmonic injection-locked oscillator (buffered), and amplifies the
// IF with inverter-based amplifiers.
#pragma once

#include "datagen/sizing.hpp"

namespace gana::datagen {

struct PhasedArrayOptions {
  int channels = 7;        ///< frequency channels
  int lna_stages = 4;      ///< cascaded LNA gain stages
  int if_amps = 2;         ///< inverter amplifiers per channel IF
  bool iq_mixers = true;   ///< I/Q downconversion (two mixers per channel)
  bool port_labels = true; ///< antenna + LO annotations (Postprocessing II)
};

/// Builds the phased-array system with RF ground-truth classes
/// (lna/mixer/osc/bpf/buf/invamp).
LabeledCircuit generate_phased_array(const PhasedArrayOptions& options,
                                     Rng& rng);

}  // namespace gana::datagen
