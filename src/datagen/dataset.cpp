#include "datagen/dataset.hpp"

#include <set>

namespace gana::datagen {
namespace {

/// Deterministically cycles through OTA variation space, skipping the
/// held-out telescopic topology.
OtaOptions ota_variant(std::size_t index, Rng& rng, double label_fraction) {
  // Heavier topologies appear twice so the node-count distribution
  // approaches the paper's ~51 nodes/circuit.
  static constexpr OtaTopology kTrainTopologies[] = {
      OtaTopology::FiveT,           OtaTopology::FoldedCascode,
      OtaTopology::TwoStageMiller,  OtaTopology::FullyDifferential,
      OtaTopology::Symmetrical,     OtaTopology::ClassAb,
      OtaTopology::TwoStageMiller,  OtaTopology::FullyDifferential,
  };
  OtaOptions opt;
  opt.topology = kTrainTopologies[index % std::size(kTrainTopologies)];
  opt.bias = kAllBiasStyles[(index / 8) % std::size(kAllBiasStyles)];
  opt.pmos_input = rng.chance(0.3) &&
                   (opt.topology == OtaTopology::FiveT ||
                    opt.topology == OtaTopology::Symmetrical);
  opt.cascode_tail = rng.chance(0.45);
  opt.output_buffer = rng.chance(0.45);
  opt.with_dummies = rng.chance(0.35);
  opt.with_stacking = rng.chance(0.3);
  opt.bias_decap = rng.chance(0.5);
  opt.sc_input = rng.chance(0.35);
  opt.load_caps = rng.chance(0.8);
  opt.input_coupling = rng.chance(0.55);
  opt.bias_startup = rng.chance(0.5);
  opt.port_labels = rng.chance(label_fraction);
  return opt;
}

}  // namespace

std::vector<LabeledCircuit> make_ota_dataset(const DatasetOptions& options) {
  std::vector<LabeledCircuit> out;
  out.reserve(options.circuits);
  Rng rng(options.seed * 0x5851f42d4c957f2dull + 0x14057b7ef767814full);
  for (std::size_t i = 0; i < options.circuits; ++i) {
    const OtaOptions opt = ota_variant(i, rng, options.port_label_fraction);
    out.push_back(
        generate_ota(opt, rng, "ota_" + std::to_string(options.seed) + "_" +
                                   std::to_string(i)));
  }
  return out;
}

std::vector<LabeledCircuit> make_rf_dataset(const DatasetOptions& options) {
  std::vector<LabeledCircuit> out;
  out.reserve(options.circuits);
  Rng rng(options.seed * 0x9e3779b97f4a7c15ull + 0xd1b54a32d192ed03ull);
  for (std::size_t i = 0; i < options.circuits; ++i) {
    const std::string name =
        "rf_" + std::to_string(options.seed) + "_" + std::to_string(i);
    // Alternate stand-alone blocks (only the three trained classes) and
    // receivers so the GCN sees both isolated and composed structures.
    if (i % 2 == 0) {
      RfBlockOptions opt;
      const int which = static_cast<int>(i / 2) % 3;
      opt.block = static_cast<RfClass>(which);
      opt.lna = kAllLnaKinds[rng.index(std::size(kAllLnaKinds))];
      opt.mixer = kAllMixerKinds[rng.index(std::size(kAllMixerKinds))];
      opt.osc = kAllOscKinds[rng.index(std::size(kAllOscKinds))];
      opt.port_labels = rng.chance(options.port_label_fraction);
      out.push_back(generate_rf_block(opt, rng, name));
    } else {
      ReceiverOptions opt;
      opt.lna = kAllLnaKinds[rng.index(std::size(kAllLnaKinds))];
      opt.mixer = kAllMixerKinds[rng.index(std::size(kAllMixerKinds))];
      opt.osc = kAllOscKinds[rng.index(std::size(kAllOscKinds))];
      opt.lna_stages = rng.range(1, 3);  // cascaded front ends occur too
      opt.iq = rng.chance(0.2);
      opt.lo_buffer = false;  // buffers are not a training class
      opt.port_labels = rng.chance(options.port_label_fraction);
      out.push_back(generate_receiver(opt, rng, name));
    }
  }
  return out;
}

std::vector<LabeledCircuit> make_rf_test_receivers(
    const DatasetOptions& options) {
  std::vector<LabeledCircuit> out;
  out.reserve(options.circuits);
  Rng rng(options.seed * 0xbf58476d1ce4e5b9ull + 0x94d049bb133111ebull);
  for (std::size_t i = 0; i < options.circuits; ++i) {
    ReceiverOptions opt;
    // Cycle through all architecture combinations (4 x 3 x 5 = 60), so the
    // 105 test receivers cover every combination at least once with
    // different sizing.
    opt.lna = kAllLnaKinds[i % std::size(kAllLnaKinds)];
    opt.mixer = kAllMixerKinds[(i / 4) % std::size(kAllMixerKinds)];
    opt.osc = kAllOscKinds[(i / 12) % std::size(kAllOscKinds)];
    opt.lna_stages = 1 + static_cast<int>(i % 2);
    opt.iq = rng.chance(0.4);
    opt.lo_buffer = false;
    opt.port_labels = true;  // test benches provide antenna/LO labels
    out.push_back(generate_receiver(
        opt, rng,
        "rftest_" + std::to_string(options.seed) + "_" + std::to_string(i)));
  }
  return out;
}

DatasetStats dataset_stats(const std::vector<LabeledCircuit>& circuits) {
  DatasetStats stats;
  stats.circuits = circuits.size();
  std::set<int> classes;
  for (const auto& c : circuits) {
    stats.devices += c.netlist.devices.size();
    stats.nets += c.netlist.nets().size();
    for (const auto& [dev, cls] : c.device_labels) {
      (void)dev;
      classes.insert(cls);
    }
  }
  stats.labels = classes.size();
  return stats;
}

}  // namespace gana::datagen
