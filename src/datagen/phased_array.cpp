#include "datagen/phased_array.hpp"

#include "datagen/rf_gen.hpp"

namespace gana::datagen {

LabeledCircuit generate_phased_array(const PhasedArrayOptions& opt,
                                     Rng& rng) {
  CircuitBuilder b("phased_array", rf_class_names(), rng);
  Sizing& sz = b.sizing();

  // --- Shared wideband differential LNA, possibly multi-stage.
  RfBlockPorts lna =
      emit_lna(b, LnaKind::Differential, "lna0/");
  const std::string antp = lna.in1, antn = lna.in2;
  for (int s = 1; s < opt.lna_stages; ++s) {
    const RfBlockPorts next =
        emit_lna(b, LnaKind::Differential, "lna" + std::to_string(s) + "/");
    b.set_label(kRfLna);
    b.cap(lna.out1, next.in1, sz.capacitance(100e-15, 1e-12));
    b.cap(lna.out2, next.in2, sz.capacitance(100e-15, 1e-12));
    lna.out1 = next.out1;
    lna.out2 = next.out2;
  }

  std::vector<std::string> lo_ports;
  std::vector<std::string> if_ports;

  for (int ch = 0; ch < opt.channels; ++ch) {
    const std::string cp = "ch" + std::to_string(ch) + "/";

    // Channel band-select filter driven by the shared LNA. Coupling caps
    // take the class of the block whose channel nets they hang off (the
    // CCC-attachment convention).
    const RfBlockPorts bpf = emit_bpf(b, cp + "bpf/");
    b.set_label(kRfLna);
    b.cap(lna.out1, bpf.in1, sz.capacitance(100e-15, 1e-12));
    b.cap(lna.out2, bpf.in2, sz.capacitance(100e-15, 1e-12));

    // Sub-harmonic channel oscillator with an *input buffer* on its
    // injection port (the stand-alone primitive case of Postprocessing I)
    // and an output buffer driving the mixer LO.
    const RfBlockPorts inbuf = emit_buffer(b, cp + "ibuf/");
    const RfBlockPorts osc =
        emit_oscillator(b, OscKind::CrossCoupledLc, cp + "osc/");
    b.set_label(kRfOsc);  // injection cap hangs off the tank
    b.cap(inbuf.out1, osc.out2, sz.capacitance(50e-15, 500e-15));
    const RfBlockPorts lobuf = emit_buffer(b, cp + "lobuf/");
    b.set_label(kRfOsc);  // hangs off the oscillator tank
    b.cap(osc.out1, lobuf.in1, sz.capacitance(100e-15, 1e-12));

    // Gilbert mixer(s): RF from the BPF, LO from the buffered oscillator
    // (I/Q downconversion uses a second quadrature mixer).
    auto hook_mixer = [&](const std::string& prefix) {
      const RfBlockPorts mix = emit_mixer(b, MixerKind::Gilbert, prefix);
      b.set_label(kRfBpf);
      b.cap(bpf.out1, mix.in1, sz.capacitance(100e-15, 1e-12));
      b.set_label(kRfBuf);
      b.cap(lobuf.out1, mix.in2, sz.capacitance(100e-15, 1e-12));
      return mix;
    };
    const RfBlockPorts mix = hook_mixer(cp + "mixi/");
    if (opt.iq_mixers) hook_mixer(cp + "mixq/");

    // IF chain: inverter-based amplifiers.
    std::string if_net = mix.out1;
    for (int a = 0; a < opt.if_amps; ++a) {
      const RfBlockPorts amp =
          emit_inv_amp(b, cp + "ifamp" + std::to_string(a) + "/");
      // The first coupling cap hangs off the mixer's IF net; later ones
      // off the previous amplifier's output.
      b.set_label(a == 0 ? kRfMixer : kRfInvAmp);
      b.cap(if_net, amp.in1, sz.capacitance(0.5e-12, 2e-12));
      if_net = amp.out1;
    }
    lo_ports.push_back(osc.out1);
    lo_ports.push_back(inbuf.in1);
    if_ports.push_back(if_net);
  }

  if (opt.port_labels) {
    b.port(antp, spice::PortLabel::Antenna);
    b.port(antn, spice::PortLabel::Antenna);
    for (const auto& lo : lo_ports) b.port(lo, spice::PortLabel::LocalOsc);
    for (const auto& ifo : if_ports) b.port(ifo, spice::PortLabel::Output);
  }
  return b.finish();
}

}  // namespace gana::datagen
