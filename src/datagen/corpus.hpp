// Corpus-scale netlist generation for the sharded batch driver.
//
// Emits a parameterized, seeded corpus of netlist files (OTA / RF
// receiver / switched-capacitor filter mix) plus a manifest listing
// them, so bench/sharding and gana-shard runs are self-contained: no
// checked-in 100k-file tree, just `gana_shard --datagen` with a seed.
//
// Every circuit is a pure function of (seed, index): generation seeds a
// fresh Rng per index, so circuit i's bytes do not depend on how many
// circuits precede it, which subdirectory it lands in, or whether the
// corpus is written by one process or many. The manifest's '#' headers
// record seed and count, letting a re-run detect a stale corpus without
// opening any netlist.
#pragma once

#include <cstdint>
#include <string>

#include "util/diag.hpp"

namespace gana::datagen {

struct CorpusOptions {
  std::size_t count = 100000;   ///< circuits to emit
  std::uint64_t seed = 1;       ///< root seed; circuit i uses f(seed, i)
  std::string dir;              ///< output directory (created if absent)
  /// Netlists per subdirectory (dir/NNN/cNNNNNNN.sp); bounds directory
  /// fan-out so a 100k corpus does not melt readdir.
  std::size_t files_per_subdir = 1000;
  double ota_fraction = 0.6;    ///< OTA-family share of the mix
  double rf_fraction = 0.3;     ///< RF receiver share (SC filter takes
                                ///< the remainder)
};

/// Manifest-relative path of circuit `index` (e.g. "012/c0012345.sp").
[[nodiscard]] std::string corpus_entry_name(const CorpusOptions& options,
                                            std::size_t index);

/// Netlist text of circuit `index`: deterministic in (options.seed,
/// index) alone.
[[nodiscard]] std::string corpus_netlist_text(const CorpusOptions& options,
                                              std::size_t index);

struct CorpusStats {
  std::size_t written = 0;    ///< netlist files written this run
  std::size_t reused = 0;     ///< circuits already on disk (fresh corpus)
  std::string manifest_path;  ///< options.dir + "/manifest.txt"
};

/// Writes the corpus under options.dir and its manifest to
/// options.dir + "/manifest.txt". Idempotent and resumable: when the
/// existing manifest's headers already record the same seed/count/mix,
/// only missing netlist files are rewritten; any mismatch regenerates
/// everything.
[[nodiscard]] Result<CorpusStats> write_corpus(const CorpusOptions& options);

}  // namespace gana::datagen
