#include "linalg/kernels.hpp"

namespace gana {

const char* simd_isa_name() {
#if defined(GANA_SIMD_AVX2)
  return "avx2";
#elif defined(GANA_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

namespace {

const char* simd_kernel_name() {
#if defined(GANA_SIMD_AVX2)
  return "simd-avx2";
#elif defined(GANA_SIMD_NEON)
  return "simd-neon";
#else
  return "simd-scalar";
#endif
}

}  // namespace

const std::vector<MatmulKernelInfo>& registered_matmul_kernels() {
  static const std::vector<MatmulKernelInfo> kernels = {
      {MatmulKernel::Reference, "reference"},
      {MatmulKernel::Unrolled, "unrolled"},
      {MatmulKernel::Simd, simd_kernel_name()},
  };
  return kernels;
}

const std::vector<SpmmKernelInfo>& registered_spmm_kernels() {
  static const std::vector<SpmmKernelInfo> kernels = {
      {SpmmKernel::Reference, "reference"},
      {SpmmKernel::Simd, simd_kernel_name()},
  };
  return kernels;
}

}  // namespace gana
