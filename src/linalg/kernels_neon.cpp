// NEON matmul/spmm kernels (aarch64 builds only).
//
// Structure mirrors kernels_avx2.cpp with 2-double lanes. CMake forces
// -ffp-contract=off on this translation unit (and on the scalar kernel
// units) because aarch64 has baseline FMA: without it the compiler
// would contract the scalar tails' mul+add into fmadd and break bit
// identity with the separate vmulq/vaddq vector bodies and with the
// x86 builds. vfmaq_f64 is deliberately never used.
#include "linalg/kernels.hpp"

#if defined(GANA_SIMD_NEON)

#include <arm_neon.h>

namespace gana::linalg {

namespace {

inline void axpy_row_neon(double* crow, const double* brow, double aik,
                          std::size_t n) {
  if (aik == 0.0) return;
  const float64x2_t va = vdupq_n_f64(aik);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t c = vld1q_f64(crow + j);
    const float64x2_t b = vld1q_f64(brow + j);
    vst1q_f64(crow + j, vaddq_f64(c, vmulq_f64(va, b)));
  }
  for (; j < n; ++j) crow[j] += aik * brow[j];
}

}  // namespace

void matmul_rows_neon(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_ptr(i);
    double* crow = c.row_ptr(i);
    std::size_t k = 0;
    for (; k + 4 <= kk; k += 4) {
      const double a0 = arow[k], a1 = arow[k + 1];
      const double a2 = arow[k + 2], a3 = arow[k + 3];
      if (a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0) {
        const double* b0 = b.row_ptr(k);
        const double* b1 = b.row_ptr(k + 1);
        const double* b2 = b.row_ptr(k + 2);
        const double* b3 = b.row_ptr(k + 3);
        const float64x2_t va0 = vdupq_n_f64(a0);
        const float64x2_t va1 = vdupq_n_f64(a1);
        const float64x2_t va2 = vdupq_n_f64(a2);
        const float64x2_t va3 = vdupq_n_f64(a3);
        std::size_t j = 0;
        for (; j + 2 <= n; j += 2) {
          float64x2_t t = vld1q_f64(crow + j);
          t = vaddq_f64(t, vmulq_f64(va0, vld1q_f64(b0 + j)));
          t = vaddq_f64(t, vmulq_f64(va1, vld1q_f64(b1 + j)));
          t = vaddq_f64(t, vmulq_f64(va2, vld1q_f64(b2 + j)));
          t = vaddq_f64(t, vmulq_f64(va3, vld1q_f64(b3 + j)));
          vst1q_f64(crow + j, t);
        }
        for (; j < n; ++j) {
          double t = crow[j];
          t += a0 * b0[j];
          t += a1 * b1[j];
          t += a2 * b2[j];
          t += a3 * b3[j];
          crow[j] = t;
        }
        continue;
      }
      for (std::size_t q = k; q < k + 4; ++q) {
        axpy_row_neon(crow, b.row_ptr(q), arow[q], n);
      }
    }
    for (; k < kk; ++k) {
      axpy_row_neon(crow, b.row_ptr(k), arow[k], n);
    }
  }
}

void spmm_rows_neon(const std::size_t* row_ptr, const std::size_t* col_idx,
                    const double* values, std::size_t begin, std::size_t end,
                    const Matrix& x, Matrix& y) {
  const std::size_t xc = x.cols();
  for (std::size_t r = begin; r < end; ++r) {
    double* yrow = y.row_ptr(r);
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const double v = values[k];
      const double* xrow = x.row_ptr(col_idx[k]);
      const float64x2_t vv = vdupq_n_f64(v);
      std::size_t j = 0;
      for (; j + 2 <= xc; j += 2) {
        const float64x2_t yv = vld1q_f64(yrow + j);
        const float64x2_t xv = vld1q_f64(xrow + j);
        vst1q_f64(yrow + j, vaddq_f64(yv, vmulq_f64(vv, xv)));
      }
      for (; j < xc; ++j) yrow[j] += v * xrow[j];
    }
  }
}

}  // namespace gana::linalg

#endif  // GANA_SIMD_NEON
