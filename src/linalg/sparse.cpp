#include "linalg/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "linalg/kernels.hpp"
#include "util/diag.hpp"
#include "util/perf.hpp"
#include "util/thread_pool.hpp"

namespace gana {
namespace {

/// Flop threshold below which the parallel spmm path is not worth the
/// task-dispatch overhead (roughly one L2 cache of work).
constexpr std::size_t kParallelSpmmMinWork = 1u << 15;

/// Rows per parallel task; fixed so chunk boundaries (and therefore any
/// floating-point behavior) never depend on the thread count.
constexpr std::size_t kSpmmRowGrain = 64;

SpmmKernel g_spmm_kernel = SpmmKernel::Simd;

}  // namespace

void set_spmm_kernel(SpmmKernel kernel) { g_spmm_kernel = kernel; }

SpmmKernel spmm_kernel() { return g_spmm_kernel; }

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> triplets) {
  // Range validation must survive -DNDEBUG: a bad triplet that only an
  // assert would catch silently corrupts the CSR arrays (col out of
  // range) or drops entries (row out of range) in release builds.
  for (const Triplet& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      throw DiagError(make_diag(
          DiagCode::Internal, Stage::GraphBuild,
          "sparse triplet (" + std::to_string(t.row) + ", " +
              std::to_string(t.col) + ") outside " + std::to_string(rows) +
              "x" + std::to_string(cols) + " matrix"));
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    while (i < triplets.size() && triplets[i].row == r) {
      double v = triplets[i].value;
      const std::size_t c = triplets[i].col;
      ++i;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;  // sum duplicates
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
    }
    m.row_ptr_[r + 1] = m.values_.size();
  }
  assert(i == triplets.size());  // guaranteed by the range check above
  return m;
}

SparseMatrix SparseMatrix::identity(std::size_t n) {
  std::vector<Triplet> t;
  t.reserve(n);
  for (std::size_t i = 0; i < n; ++i) t.push_back({i, i, 1.0});
  return from_triplets(n, n, std::move(t));
}

std::vector<double> SparseMatrix::multiply(
    const std::vector<double>& x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s += values_[k] * x[col_idx_[k]];
    }
    y[r] = s;
  }
  return y;
}

Matrix SparseMatrix::multiply(const Matrix& x) const {
  Matrix y;
  multiply_into(x, y);
  return y;
}

void SparseMatrix::multiply_into(const Matrix& x, Matrix& y) const {
  assert(x.rows() == cols_);
  assert(&y != &x);
  y.resize(rows_, x.cols());
  perf::count_spmm(2ull * nnz() * x.cols());
  // Row-partitioned kernel: each task owns a disjoint output row range,
  // and every row's accumulation runs in the same order as the
  // sequential loop, so the product is bit-identical at any thread
  // count and under any registered kernel. Workers of an outer pool
  // (e.g. the batch runner) keep the sequential path to avoid nested
  // oversubscription.
  auto rows_kernel = [this, &x, &y](std::size_t begin, std::size_t end) {
    if (g_spmm_kernel == SpmmKernel::Simd) {
#if defined(GANA_SIMD_AVX2)
      linalg::spmm_rows_avx2(row_ptr_.data(), col_idx_.data(), values_.data(),
                             begin, end, x, y);
      return;
#elif defined(GANA_SIMD_NEON)
      linalg::spmm_rows_neon(row_ptr_.data(), col_idx_.data(), values_.data(),
                             begin, end, x, y);
      return;
#endif
      // Fallback builds: Simd aliases the reference loop below.
    }
    const std::size_t xc = x.cols();
    for (std::size_t r = begin; r < end; ++r) {
      double* yrow = y.row_ptr(r);
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const double v = values_[k];
        const double* xrow = x.row_ptr(col_idx_[k]);
        for (std::size_t j = 0; j < xc; ++j) yrow[j] += v * xrow[j];
      }
    }
  };
  ThreadPool* pool = compute_pool();
  const bool parallel = pool != nullptr && !ThreadPool::inside_worker() &&
                        nnz() * x.cols() >= kParallelSpmmMinWork &&
                        rows_ > kSpmmRowGrain;
  if (parallel) {
    parallel_for(pool, rows_, kSpmmRowGrain, rows_kernel);
  } else {
    rows_kernel(0, rows_);
  }
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

SparseMatrix SparseMatrix::scale_add_identity(double a, double b) const {
  assert(rows_ == cols_);
  std::vector<Triplet> t;
  t.reserve(nnz() + rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      t.push_back({r, col_idx_[k], a * values_[k]});
    }
    t.push_back({r, r, b});
  }
  return from_triplets(rows_, cols_, std::move(t));
}

SparseMatrix SparseMatrix::transposed() const {
  std::vector<Triplet> t;
  t.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      t.push_back({col_idx_[k], r, values_[k]});
    }
  }
  return from_triplets(cols_, rows_, std::move(t));
}

SparseMatrix SparseMatrix::pruned(double eps) const {
  std::vector<Triplet> t;
  t.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (std::abs(values_[k]) > eps) {
        t.push_back({r, col_idx_[k], values_[k]});
      }
    }
  }
  return from_triplets(rows_, cols_, std::move(t));
}

std::vector<double> SparseMatrix::row_sums() const {
  std::vector<double> s(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s[r] += values_[k];
    }
  }
  return s;
}

}  // namespace gana
