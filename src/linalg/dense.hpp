// Dense row-major matrix type used by the GCN layers.
//
// This is the numerical substrate the paper delegates to TensorFlow/scikit;
// here it is implemented from scratch (see DESIGN.md, substitutions).
#pragma once

#include <cstddef>
#include <vector>

namespace gana {

class Rng;

/// Dense row-major matrix of doubles.
///
/// Invariant: data().size() == rows() * cols().
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  [[nodiscard]] std::vector<double>& data() { return data_; }

  [[nodiscard]] double* row_ptr(std::size_t r) { return &data_[r * cols_]; }
  [[nodiscard]] const double* row_ptr(std::size_t r) const {
    return &data_[r * cols_];
  }

  void fill(double v);
  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  /// Glorot/Xavier-uniform initialization, as used for GCN weights.
  static Matrix glorot(std::size_t rows, std::size_t cols, Rng& rng);

  /// Normal(0, sigma) initialization.
  static Matrix randn(std::size_t rows, std::size_t cols, double sigma,
                      Rng& rng);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Dimensions must agree (A.cols == B.rows).
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B.
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T.
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// Transposed copy.
Matrix transpose(const Matrix& a);

/// Sum of squares of all entries.
double frobenius_sq(const Matrix& a);

/// Horizontal concatenation [A | B]; row counts must match.
Matrix hcat(const Matrix& a, const Matrix& b);

}  // namespace gana
