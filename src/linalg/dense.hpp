// Dense row-major matrix type used by the GCN layers.
//
// This is the numerical substrate the paper delegates to TensorFlow/scikit;
// here it is implemented from scratch (see DESIGN.md, substitutions).
#pragma once

#include <cstddef>
#include <vector>

#include "util/perf.hpp"

namespace gana {

class Rng;

/// Read-only view of a matrix's elements. Mirrors the parts of the
/// `const std::vector<double>&` surface the codebase uses (iteration,
/// indexing, `.data()`, element-wise `==`), so `Matrix::data()` can hand
/// out a view whether the matrix owns its storage or borrows it from a
/// memory-mapped artifact.
class ConstSpan {
 public:
  ConstSpan(const double* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] const double* begin() const { return data_; }
  [[nodiscard]] const double* end() const { return data_ + size_; }
  [[nodiscard]] const double* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  double operator[](std::size_t i) const { return data_[i]; }

 private:
  const double* data_;
  std::size_t size_;
};

/// Mutable counterpart of ConstSpan, returned by the non-const
/// `Matrix::data()` (which materializes owned storage first).
class MutSpan {
 public:
  MutSpan(double* data, std::size_t size) : data_(data), size_(size) {}

  operator ConstSpan() const { return {data_, size_}; }  // NOLINT

  [[nodiscard]] double* begin() const { return data_; }
  [[nodiscard]] double* end() const { return data_ + size_; }
  [[nodiscard]] double* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  double& operator[](std::size_t i) const { return data_[i]; }

 private:
  double* data_;
  std::size_t size_;
};

/// Element-wise comparison with `std::vector<double>` semantics (double
/// `==`, not approximate). The bitwise-identity tests compare spans of
/// values produced by deterministic kernels, where element equality and
/// bit equality coincide.
[[nodiscard]] bool operator==(ConstSpan a, ConstSpan b);
[[nodiscard]] inline bool operator!=(ConstSpan a, ConstSpan b) {
  return !(a == b);
}

/// Dense row-major matrix of doubles.
///
/// Invariant: data().size() == rows() * cols().
///
/// Heap discipline: the sized constructor and any `resize`/`copy_from`
/// that outgrows the current capacity count one allocation in the perf
/// counters. The inference fast path routes every buffer through
/// `resize`/`copy_from` on reused workspace matrices, so steady-state
/// inference performs (and reports) zero allocations.
///
/// Storage is normally owned, but a matrix can also *borrow* read-only
/// element storage (`Matrix::borrow`) -- the zero-copy path for weight
/// tensors inside a memory-mapped model artifact. A borrowed matrix is
/// fully usable through the const API without copying; the first
/// mutating access materializes an owned copy (copy-on-write), so the
/// semantics never differ from an owned matrix. The borrowed pointer's
/// storage must outlive every borrowing matrix (see
/// `GcnModel::retain_storage`). Copying a borrowed matrix produces
/// another borrow of the same storage.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    if (!data_.empty()) {
      perf::count_matrix_alloc(data_.size() * sizeof(double));
    }
  }

  /// Non-owning rows x cols view over `data` (row-major, 8-byte
  /// aligned, rows*cols doubles). No allocation, no copy.
  [[nodiscard]] static Matrix borrow(const double* data, std::size_t rows,
                                     std::size_t cols);

  [[nodiscard]] bool borrowed() const { return view_ != nullptr; }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return rows_ * cols_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  double& operator()(std::size_t r, std::size_t c) {
    ensure_owned();
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return ptr()[r * cols_ + c];
  }

  [[nodiscard]] ConstSpan data() const { return {ptr(), size()}; }
  [[nodiscard]] MutSpan data() {
    ensure_owned();
    return {data_.data(), data_.size()};
  }

  [[nodiscard]] double* row_ptr(std::size_t r) {
    ensure_owned();
    return &data_[r * cols_];
  }
  [[nodiscard]] const double* row_ptr(std::size_t r) const {
    return ptr() + r * cols_;
  }

  void fill(double v);

  /// Reshapes to rows x cols with every entry zeroed, reusing the
  /// existing heap buffer whenever its capacity suffices (the workspace
  /// reuse contract of the inference fast path).
  void resize(std::size_t rows, std::size_t cols);

  /// Becomes a copy of `src`, reusing the existing buffer when possible.
  void copy_from(const Matrix& src);

  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  /// Glorot/Xavier-uniform initialization, as used for GCN weights.
  static Matrix glorot(std::size_t rows, std::size_t cols, Rng& rng);

  /// Normal(0, sigma) initialization.
  static Matrix randn(std::size_t rows, std::size_t cols, double sigma,
                      Rng& rng);

 private:
  [[nodiscard]] const double* ptr() const {
    return view_ != nullptr ? view_ : data_.data();
  }
  /// Copy-on-write: materializes owned storage before a mutable access.
  void ensure_owned() {
    if (view_ != nullptr) materialize();
  }
  void materialize();

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;              ///< owned storage (view_ == null)
  const double* view_ = nullptr;          ///< borrowed storage, else null
};

/// Dense-product kernel selection.
///
/// Every kernel performs the exact same sequence of IEEE operations per
/// output element -- each c(i,j) accumulates a(i,k)*b(k,j) over strictly
/// increasing k, one rounded multiply and one rounded add at a time, and
/// multiplications by an exact zero a(i,k) are skipped -- so their
/// results are bit-identical (linalg_test and kernel_equivalence_test
/// pin this). `Reference` is the original loop, kept as the correctness
/// oracle and as the baseline the inference bench measures the fast path
/// against; `Unrolled` processes four k-rows per pass to cut c-row
/// load/store traffic; `Simd` is the explicitly vectorized kernel the
/// build compiled in (AVX2 on x86-64, NEON on aarch64, the unrolled
/// scalar loop elsewhere -- see linalg/kernels.hpp) and is the default.
enum class MatmulKernel {
  Reference,  ///< original scalar ikj loop (oracle)
  Unrolled,   ///< 4-way k-unrolled scalar ikj loop
  Simd,       ///< compile-time dispatched AVX2/NEON/scalar (default)
};

/// Process-global kernel switch. Not synchronized: set it only while no
/// product is running (bench/test setup), never mid-batch.
void set_matmul_kernel(MatmulKernel kernel);
[[nodiscard]] MatmulKernel matmul_kernel();

/// C = A * B. Dimensions must agree (A.cols == B.rows).
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A * B into a caller-owned buffer (resized; capacity reused).
/// Bit-identical to `matmul` -- same kernel, same accumulation order.
/// `c` must not alias `a` or `b`.
void matmul_into(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A^T * B.
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T.
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// Transposed copy.
Matrix transpose(const Matrix& a);

/// Sum of squares of all entries.
double frobenius_sq(const Matrix& a);

/// Horizontal concatenation [A | B]; row counts must match.
Matrix hcat(const Matrix& a, const Matrix& b);

/// [A | B] into a caller-owned buffer; `c` must not alias `a` or `b`.
void hcat_into(const Matrix& a, const Matrix& b, Matrix& c);

}  // namespace gana
