// Kernel registry and ISA-specific entry points for the dense/sparse
// product kernels.
//
// Dispatch model (DESIGN.md §10): the instruction set a kernel may use
// is decided at *compile time* -- CMake compiles `kernels_avx2.cpp`
// with -mavx2 on x86-64 hosts (and defines GANA_SIMD_AVX2), compiles
// `kernels_neon.cpp` into real code on aarch64 hosts (GANA_SIMD_NEON),
// and otherwise the `Simd` kernel id resolves to the scalar unrolled
// loop. There is no cpuid probing at run time: the binary targets the
// build host, and every kernel id stays runtime-selectable through
// `set_matmul_kernel` / `set_spmm_kernel` so tests and benches can pit
// any kernel against the Reference oracle.
//
// Bit-identity contract: every registered kernel performs, per output
// element, the exact same sequence of IEEE mul/add operations as the
// Reference kernel (accumulation over strictly increasing k, one
// rounded multiply and one rounded add per term, no FMA contraction,
// no reassociation across lanes), so outputs are bitwise equal --
// including signed zeros and Inf/NaN propagation. Pinned for every
// registered kernel by tests/kernel_equivalence_test.cpp.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense.hpp"
#include "linalg/sparse.hpp"

namespace gana {

/// One registered dense-product kernel; `name` identifies the ISA the
/// Simd id resolved to at compile time ("simd-avx2", "simd-neon",
/// "simd-scalar").
struct MatmulKernelInfo {
  MatmulKernel id;
  const char* name;
};

/// One registered sparse-times-dense kernel.
struct SpmmKernelInfo {
  SpmmKernel id;
  const char* name;
};

/// Every kernel selectable on this build, Reference first. Tests
/// iterate this list so a build host without AVX2/NEON still verifies
/// everything it can actually run.
[[nodiscard]] const std::vector<MatmulKernelInfo>& registered_matmul_kernels();
[[nodiscard]] const std::vector<SpmmKernelInfo>& registered_spmm_kernels();

/// The ISA the Simd kernel ids compiled down to: "avx2", "neon", or
/// "scalar" (fallback build).
[[nodiscard]] const char* simd_isa_name();

namespace linalg {

#if defined(GANA_SIMD_AVX2)
/// AVX2 matmul row kernel: accumulates C += A*B over pre-zeroed C.
/// Mirrors the unrolled scalar loop's structure (4-way k groups, zero
/// groups fall back to per-k skip semantics) with the j loop vectorized
/// four doubles wide using separate mul/add (never FMA).
void matmul_rows_avx2(const Matrix& a, const Matrix& b, Matrix& c);

/// AVX2 spmm row-range kernel over raw CSR arrays; accumulation order
/// per output row matches the reference loop (strictly increasing k).
void spmm_rows_avx2(const std::size_t* row_ptr, const std::size_t* col_idx,
                    const double* values, std::size_t begin, std::size_t end,
                    const Matrix& x, Matrix& y);
#endif

#if defined(GANA_SIMD_NEON)
/// NEON (aarch64) counterparts of the AVX2 kernels; two doubles per
/// lane, separate vmul/vadd (never vfma).
void matmul_rows_neon(const Matrix& a, const Matrix& b, Matrix& c);
void spmm_rows_neon(const std::size_t* row_ptr, const std::size_t* col_idx,
                    const double* values, std::size_t begin, std::size_t end,
                    const Matrix& x, Matrix& y);
#endif

}  // namespace linalg
}  // namespace gana
