// AVX2 matmul/spmm kernels (x86-64 builds only).
//
// This translation unit is the only one compiled with -mavx2; CMake
// additionally forces -mno-fma -ffp-contract=off here so the scalar
// tail loops round exactly like the reference kernel (one multiply,
// one add per term -- never a fused multiply-add). The vector bodies
// use _mm256_mul_pd + _mm256_add_pd for the same reason.
//
// Bit-identity with the Reference kernel holds per output element:
// lanes only parallelize the j (column) dimension, which is embarrassed
// -- each c(i,j) (resp. y(r,j)) still accumulates its terms in strictly
// increasing k order, one rounded mul and one rounded add at a time,
// and a(i,k) == 0.0 terms are skipped with exactly the reference's
// comparison. Signed zeros and Inf/NaN therefore propagate identically
// (pinned by tests/kernel_equivalence_test.cpp) -- with one carve-out:
// when an accumulator that is already NaN absorbs a second, different
// NaN (e.g. an Inf-Inf indefinite meeting a propagated input NaN), IEEE
// leaves *which* NaN survives to the implementation, x86 picks the
// first instruction operand, and the compiler is free to commute the
// operands of a commutative + at will (it lowers these intrinsics to
// plain vector +). NaN identity in multi-NaN chains is therefore a
// codegen accident on both sides of the comparison, and the equivalence
// tests compare NaNs as a class instead of by payload. The pipeline
// itself never exercises this: require_finite rejects non-finite
// features and probabilities on both sides of every matmul.
#include "linalg/kernels.hpp"

#if defined(GANA_SIMD_AVX2)

#include <immintrin.h>

#include <vector>

namespace gana::linalg {

// Register-blocked layout: tiles of 4 output rows x 8 columns (two
// 4-wide vectors), with k innermost and the 8 accumulators held in
// registers for the whole k loop. Rationale: without FMA the add in
// each element's accumulation chain has ~4-cycle latency, so a kernel
// with one running vector per element chain stalls on it; eight
// *independent* chains (4 rows x 2 vectors) keep the multiply/add
// ports busy instead.
//
// The 8-wide column panels are processed j-outermost over a *packed*
// copy of B[:, j..j+8): the panel's k*8 doubles are copied once into a
// contiguous thread-local buffer and every row tile then streams it
// sequentially. For the tall-thin shapes the ChebConv layers feed this
// kernel (m of a few tens, k in the hundreds), the unpacked layout
// re-walks all of B once per 4-row tile in n-strided 64-byte touches --
// with m = 15 rows that is 4 strided sweeps per panel and most of each
// cache line unused; the packed panel is 8 * k doubles that stay
// resident across tiles. Packing is a pure data movement: the per-
// element arithmetic is untouched (strictly increasing k, one rounded
// mul + one rounded add per term, a(i,k) == 0.0 terms skipped per row
// exactly like the reference), so bit-identity is preserved.
void matmul_rows_avx2(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  thread_local std::vector<double> packed;
  if (n >= 8 && packed.size() < kk * 8) packed.resize(kk * 8);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    double* p = packed.data();
    for (std::size_t k = 0; k < kk; ++k) {
      const double* bk = b.row_ptr(k) + j;
      _mm256_storeu_pd(p + k * 8, _mm256_loadu_pd(bk));
      _mm256_storeu_pd(p + k * 8 + 4, _mm256_loadu_pd(bk + 4));
    }
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const double* a0 = a.row_ptr(i + 0);
      const double* a1 = a.row_ptr(i + 1);
      const double* a2 = a.row_ptr(i + 2);
      const double* a3 = a.row_ptr(i + 3);
      double* c0 = c.row_ptr(i + 0);
      double* c1 = c.row_ptr(i + 1);
      double* c2 = c.row_ptr(i + 2);
      double* c3 = c.row_ptr(i + 3);
      __m256d s00 = _mm256_loadu_pd(c0 + j);
      __m256d s01 = _mm256_loadu_pd(c0 + j + 4);
      __m256d s10 = _mm256_loadu_pd(c1 + j);
      __m256d s11 = _mm256_loadu_pd(c1 + j + 4);
      __m256d s20 = _mm256_loadu_pd(c2 + j);
      __m256d s21 = _mm256_loadu_pd(c2 + j + 4);
      __m256d s30 = _mm256_loadu_pd(c3 + j);
      __m256d s31 = _mm256_loadu_pd(c3 + j + 4);
      for (std::size_t k = 0; k < kk; ++k) {
        const __m256d bv0 = _mm256_loadu_pd(p + k * 8);
        const __m256d bv1 = _mm256_loadu_pd(p + k * 8 + 4);
        if (a0[k] != 0.0) {
          const __m256d v = _mm256_set1_pd(a0[k]);
          s00 = _mm256_add_pd(s00, _mm256_mul_pd(v, bv0));
          s01 = _mm256_add_pd(s01, _mm256_mul_pd(v, bv1));
        }
        if (a1[k] != 0.0) {
          const __m256d v = _mm256_set1_pd(a1[k]);
          s10 = _mm256_add_pd(s10, _mm256_mul_pd(v, bv0));
          s11 = _mm256_add_pd(s11, _mm256_mul_pd(v, bv1));
        }
        if (a2[k] != 0.0) {
          const __m256d v = _mm256_set1_pd(a2[k]);
          s20 = _mm256_add_pd(s20, _mm256_mul_pd(v, bv0));
          s21 = _mm256_add_pd(s21, _mm256_mul_pd(v, bv1));
        }
        if (a3[k] != 0.0) {
          const __m256d v = _mm256_set1_pd(a3[k]);
          s30 = _mm256_add_pd(s30, _mm256_mul_pd(v, bv0));
          s31 = _mm256_add_pd(s31, _mm256_mul_pd(v, bv1));
        }
      }
      _mm256_storeu_pd(c0 + j, s00);
      _mm256_storeu_pd(c0 + j + 4, s01);
      _mm256_storeu_pd(c1 + j, s10);
      _mm256_storeu_pd(c1 + j + 4, s11);
      _mm256_storeu_pd(c2 + j, s20);
      _mm256_storeu_pd(c2 + j + 4, s21);
      _mm256_storeu_pd(c3 + j, s30);
      _mm256_storeu_pd(c3 + j + 4, s31);
    }
    for (; i < m; ++i) {
      const double* ar = a.row_ptr(i);
      double* cr = c.row_ptr(i);
      __m256d s0 = _mm256_loadu_pd(cr + j);
      __m256d s1 = _mm256_loadu_pd(cr + j + 4);
      for (std::size_t k = 0; k < kk; ++k) {
        if (ar[k] == 0.0) continue;
        const __m256d v = _mm256_set1_pd(ar[k]);
        s0 = _mm256_add_pd(s0, _mm256_mul_pd(v, _mm256_loadu_pd(p + k * 8)));
        s1 = _mm256_add_pd(s1,
                           _mm256_mul_pd(v, _mm256_loadu_pd(p + k * 8 + 4)));
      }
      _mm256_storeu_pd(cr + j, s0);
      _mm256_storeu_pd(cr + j + 4, s1);
    }
  }
  if (j >= n) return;
  // Column tail (n % 8): row-tiled directly over B, as before packing.
  const std::size_t jtail = j;
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* a0 = a.row_ptr(i + 0);
    const double* a1 = a.row_ptr(i + 1);
    const double* a2 = a.row_ptr(i + 2);
    const double* a3 = a.row_ptr(i + 3);
    double* c0 = c.row_ptr(i + 0);
    double* c1 = c.row_ptr(i + 1);
    double* c2 = c.row_ptr(i + 2);
    double* c3 = c.row_ptr(i + 3);
    j = jtail;
    for (; j + 4 <= n; j += 4) {
      __m256d s0 = _mm256_loadu_pd(c0 + j);
      __m256d s1 = _mm256_loadu_pd(c1 + j);
      __m256d s2 = _mm256_loadu_pd(c2 + j);
      __m256d s3 = _mm256_loadu_pd(c3 + j);
      for (std::size_t k = 0; k < kk; ++k) {
        const __m256d bv = _mm256_loadu_pd(b.row_ptr(k) + j);
        if (a0[k] != 0.0) {
          s0 = _mm256_add_pd(s0, _mm256_mul_pd(_mm256_set1_pd(a0[k]), bv));
        }
        if (a1[k] != 0.0) {
          s1 = _mm256_add_pd(s1, _mm256_mul_pd(_mm256_set1_pd(a1[k]), bv));
        }
        if (a2[k] != 0.0) {
          s2 = _mm256_add_pd(s2, _mm256_mul_pd(_mm256_set1_pd(a2[k]), bv));
        }
        if (a3[k] != 0.0) {
          s3 = _mm256_add_pd(s3, _mm256_mul_pd(_mm256_set1_pd(a3[k]), bv));
        }
      }
      _mm256_storeu_pd(c0 + j, s0);
      _mm256_storeu_pd(c1 + j, s1);
      _mm256_storeu_pd(c2 + j, s2);
      _mm256_storeu_pd(c3 + j, s3);
    }
    for (; j < n; ++j) {
      double s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
      for (std::size_t k = 0; k < kk; ++k) {
        const double bkj = b.row_ptr(k)[j];
        if (a0[k] != 0.0) s0 += a0[k] * bkj;
        if (a1[k] != 0.0) s1 += a1[k] * bkj;
        if (a2[k] != 0.0) s2 += a2[k] * bkj;
        if (a3[k] != 0.0) s3 += a3[k] * bkj;
      }
      c0[j] = s0;
      c1[j] = s1;
      c2[j] = s2;
      c3[j] = s3;
    }
  }
  // Remainder rows (< 4) of the column tail.
  for (; i < m; ++i) {
    const double* ar = a.row_ptr(i);
    double* cr = c.row_ptr(i);
    j = jtail;
    for (; j + 4 <= n; j += 4) {
      __m256d s = _mm256_loadu_pd(cr + j);
      for (std::size_t k = 0; k < kk; ++k) {
        if (ar[k] == 0.0) continue;
        s = _mm256_add_pd(s, _mm256_mul_pd(_mm256_set1_pd(ar[k]),
                                           _mm256_loadu_pd(b.row_ptr(k) + j)));
      }
      _mm256_storeu_pd(cr + j, s);
    }
    for (; j < n; ++j) {
      double s = cr[j];
      for (std::size_t k = 0; k < kk; ++k) {
        if (ar[k] != 0.0) s += ar[k] * b.row_ptr(k)[j];
      }
      cr[j] = s;
    }
  }
}

void spmm_rows_avx2(const std::size_t* row_ptr, const std::size_t* col_idx,
                    const double* values, std::size_t begin, std::size_t end,
                    const Matrix& x, Matrix& y) {
  const std::size_t xc = x.cols();
  for (std::size_t r = begin; r < end; ++r) {
    double* yrow = y.row_ptr(r);
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      // No zero-skip here: the reference spmm loop processes every
      // stored value, including explicit zeros.
      const double v = values[k];
      const double* xrow = x.row_ptr(col_idx[k]);
      const __m256d vv = _mm256_set1_pd(v);
      std::size_t j = 0;
      for (; j + 4 <= xc; j += 4) {
        const __m256d yv = _mm256_loadu_pd(yrow + j);
        const __m256d xv = _mm256_loadu_pd(xrow + j);
        _mm256_storeu_pd(yrow + j, _mm256_add_pd(yv, _mm256_mul_pd(vv, xv)));
      }
      for (; j < xc; ++j) yrow[j] += v * xrow[j];
    }
  }
}

}  // namespace gana::linalg

#endif  // GANA_SIMD_AVX2
