// Largest-eigenvalue estimation for symmetric sparse matrices.
//
// The paper scales the Laplacian by λ_max (Eq. 3), "computed inexpensively
// using the Lanczos algorithm"; this module provides exactly that.
#pragma once

#include "linalg/sparse.hpp"

namespace gana {

class Rng;

/// Estimates the largest eigenvalue of a symmetric matrix using the
/// Lanczos iteration with full reorthogonalization on a small Krylov
/// basis. `steps` bounds the Krylov dimension.
///
/// Returns 0 for empty matrices. The estimate is a lower bound that
/// converges quickly for Laplacians; callers that need a strict upper
/// bound (Chebyshev scaling) should multiply by a small safety factor or
/// use `lambda_max_upper_bound`.
double lanczos_lambda_max(const SparseMatrix& a, Rng& rng, int steps = 32);

/// Cheap strict upper bound on the spectral radius via Gershgorin discs.
double lambda_max_upper_bound(const SparseMatrix& a);

}  // namespace gana
