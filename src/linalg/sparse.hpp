// Compressed sparse row (CSR) matrices for graph operators.
//
// The scaled Laplacian L̂ of each circuit graph is stored in CSR form and
// the Chebyshev recurrence of Eq. (5) in the paper reduces to repeated
// sparse-times-dense products (spmm).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense.hpp"

namespace gana {

/// Sparse-times-dense kernel selection, mirroring MatmulKernel: every
/// kernel accumulates each output row over strictly increasing nonzero
/// index with separate rounded mul/add, so results are bit-identical
/// (kernel_equivalence_test pins this). `Simd` resolves at compile time
/// to AVX2/NEON/the scalar loop (linalg/kernels.hpp) and is the default.
enum class SpmmKernel {
  Reference,  ///< original scalar per-row loop (oracle)
  Simd,       ///< compile-time dispatched AVX2/NEON/scalar (default)
};

/// Process-global kernel switch; same discipline as set_matmul_kernel
/// (bench/test setup only, never mid-batch).
void set_spmm_kernel(SpmmKernel kernel);
[[nodiscard]] SpmmKernel spmm_kernel();

/// One nonzero entry; used to assemble CSR matrices.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Square or rectangular CSR matrix of doubles.
///
/// Invariants: row_ptr.size() == rows()+1, row_ptr.front() == 0,
/// row_ptr.back() == nnz(), columns within each row are strictly
/// increasing.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds from triplets; duplicate (row, col) entries are summed and
  /// resulting zeros are kept (callers may prune via `pruned()`).
  /// Throws `DiagError` (DiagCode::Internal, Stage::GraphBuild) on any
  /// triplet with row >= rows or col >= cols -- enforced in every build
  /// mode, because in release builds an out-of-range triplet would
  /// otherwise silently corrupt the CSR arrays or drop entries.
  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    std::vector<Triplet> triplets);

  /// Identity matrix of size n.
  static SparseMatrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_idx() const {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] std::vector<double>& values() { return values_; }

  /// y = A x (vector form).
  [[nodiscard]] std::vector<double> multiply(
      const std::vector<double>& x) const;

  /// Y = A X (dense multi-column form); X.rows() must equal cols().
  [[nodiscard]] Matrix multiply(const Matrix& x) const;

  /// Y = A X into a caller-owned buffer (resized; capacity reused), so
  /// steady-state spmm performs zero heap allocations. Bit-identical to
  /// `multiply` -- same kernel, same per-row accumulation order, same
  /// parallel-dispatch decision. `y` must not alias `x`.
  void multiply_into(const Matrix& x, Matrix& y) const;

  /// Returns entry (r, c), 0 if absent. O(log deg) per lookup.
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Returns a*this + b*I (square matrices only).
  [[nodiscard]] SparseMatrix scale_add_identity(double a, double b) const;

  /// Transposed copy.
  [[nodiscard]] SparseMatrix transposed() const;

  /// Copy without explicitly stored zeros below `eps` magnitude.
  [[nodiscard]] SparseMatrix pruned(double eps = 0.0) const;

  /// Row sums (degree vector when this is an adjacency matrix).
  [[nodiscard]] std::vector<double> row_sums() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_ = {0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace gana
