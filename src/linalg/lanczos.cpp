#include "linalg/lanczos.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace gana {
namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// Largest eigenvalue of a symmetric tridiagonal matrix via bisection on
/// the Sturm sequence sign count.
double tridiag_lambda_max(const std::vector<double>& alpha,
                          const std::vector<double>& beta) {
  const std::size_t m = alpha.size();
  if (m == 0) return 0.0;
  // Gershgorin bounds for the tridiagonal matrix.
  double lo = alpha[0], hi = alpha[0];
  for (std::size_t i = 0; i < m; ++i) {
    double r = 0.0;
    if (i > 0) r += std::abs(beta[i - 1]);
    if (i + 1 < m) r += std::abs(beta[i]);
    lo = std::min(lo, alpha[i] - r);
    hi = std::max(hi, alpha[i] + r);
  }
  // Count of eigenvalues < x via Sturm sequence.
  auto count_below = [&](double x) {
    int count = 0;
    double d = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double b2 = (i > 0) ? beta[i - 1] * beta[i - 1] : 0.0;
      d = alpha[i] - x - (d != 0.0 ? b2 / d : b2 / 1e-300);
      if (d < 0.0) ++count;
    }
    return count;
  };
  // Find x such that all m eigenvalues are below it, i.e. the largest one.
  for (int it = 0; it < 200 && hi - lo > 1e-12 * std::max(1.0, std::abs(hi));
       ++it) {
    const double mid = 0.5 * (lo + hi);
    if (count_below(mid) >= static_cast<int>(m)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace

double lanczos_lambda_max(const SparseMatrix& a, Rng& rng, int steps) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  if (n == 0) return 0.0;
  if (n == 1) return a.at(0, 0);

  const int m = std::min<int>(steps, static_cast<int>(n));
  std::vector<std::vector<double>> basis;
  std::vector<double> alpha, beta;

  std::vector<double> v(n);
  for (double& x : v) x = rng.normal();
  const double nv = norm(v);
  for (double& x : v) x /= nv;
  basis.push_back(v);

  for (int j = 0; j < m; ++j) {
    std::vector<double> w = a.multiply(basis.back());
    const double aj = dot(w, basis.back());
    alpha.push_back(aj);
    axpy(-aj, basis.back(), w);
    if (j > 0) axpy(-beta.back(), basis[basis.size() - 2], w);
    // Full reorthogonalization: cheap for the small Krylov bases used here
    // and it keeps the iteration stable on graphs with repeated eigenvalues.
    for (const auto& q : basis) axpy(-dot(w, q), q, w);
    const double bj = norm(w);
    if (bj < 1e-12) break;  // invariant subspace found; estimate is exact
    beta.push_back(bj);
    for (double& x : w) x /= bj;
    basis.push_back(std::move(w));
  }
  if (!beta.empty() && beta.size() == alpha.size()) beta.pop_back();
  return tridiag_lambda_max(alpha, beta);
}

double lambda_max_upper_bound(const SparseMatrix& a) {
  assert(a.rows() == a.cols());
  double bound = 0.0;
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vals = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double center = 0.0, radius = 0.0;
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (ci[k] == r) {
        center = vals[k];
      } else {
        radius += std::abs(vals[k]);
      }
    }
    bound = std::max(bound, center + radius);
  }
  return bound;
}

}  // namespace gana
