#include "linalg/dense.hpp"

#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace gana {

void Matrix::fill(double v) {
  for (double& x : data_) x = v;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::glorot(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& x : m.data()) x = rng.uniform(-limit, limit);
  return m;
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, double sigma,
                     Rng& rng) {
  Matrix m(rows, cols);
  for (double& x : m.data()) x = rng.normal(0.0, sigma);
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  // ikj loop order keeps the inner loop sequential over both B and C rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_ptr(i);
    double* crow = c.row_ptr(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row_ptr(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row_ptr(k);
    const double* brow = b.row_ptr(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.row_ptr(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_ptr(i);
    double* crow = c.row_ptr(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row_ptr(j);
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += arow[k] * brow[k];
      crow[j] = s;
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

double frobenius_sq(const Matrix& a) {
  double s = 0.0;
  for (double x : a.data()) s += x * x;
  return s;
}

Matrix hcat(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.rows(), a.cols() + b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) c(i, j) = a(i, j);
    for (std::size_t j = 0; j < b.cols(); ++j) c(i, a.cols() + j) = b(i, j);
  }
  return c;
}

}  // namespace gana
