#include "linalg/dense.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/kernels.hpp"
#include "util/rng.hpp"

namespace gana {

bool operator==(ConstSpan a, ConstSpan b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

Matrix Matrix::borrow(const double* data, std::size_t rows,
                      std::size_t cols) {
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  if (rows * cols != 0) m.view_ = data;
  return m;
}

void Matrix::materialize() {
  const std::size_t n = rows_ * cols_;
  if (n > data_.capacity()) {
    perf::count_matrix_alloc(n * sizeof(double));
  }
  data_.assign(view_, view_ + n);
  view_ = nullptr;
}

void Matrix::fill(double v) {
  // Contents are discarded wholesale, so a borrow detaches without the
  // materializing copy.
  if (view_ != nullptr) {
    view_ = nullptr;
    if (size() > data_.capacity()) {
      perf::count_matrix_alloc(size() * sizeof(double));
    }
    data_.assign(size(), v);
    return;
  }
  for (double& x : data_) x = v;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  view_ = nullptr;  // contents discarded; no need to materialize
  const std::size_t n = rows * cols;
  if (n > data_.capacity()) {
    perf::count_matrix_alloc(n * sizeof(double));
  }
  data_.assign(n, 0.0);
  rows_ = rows;
  cols_ = cols;
}

void Matrix::copy_from(const Matrix& src) {
  view_ = nullptr;  // contents discarded; no need to materialize
  const std::size_t n = src.size();
  if (n > data_.capacity()) {
    perf::count_matrix_alloc(n * sizeof(double));
  }
  data_.resize(n);
  const double* s = src.ptr();
  std::copy(s, s + n, data_.begin());
  rows_ = src.rows_;
  cols_ = src.cols_;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  ensure_owned();
  const double* o = other.ptr();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  ensure_owned();
  const double* o = other.ptr();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  ensure_owned();
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::glorot(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& x : m.data()) x = rng.uniform(-limit, limit);
  return m;
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, double sigma,
                     Rng& rng) {
  Matrix m(rows, cols);
  for (double& x : m.data()) x = rng.normal(0.0, sigma);
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_into(a, b, c);
  return c;
}

namespace {

/// Original scalar ikj product. The bit-identity oracle for the unrolled
/// kernel, and the pre-fast-path baseline bench/gcn_inference measures
/// against. ikj keeps the inner loop sequential over both B and C rows.
void matmul_rows_reference(const Matrix& a, const Matrix& b, Matrix& c) {
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_ptr(i);
    double* crow = c.row_ptr(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row_ptr(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
}

/// 4-way k-unrolled ikj product. Bit-identical to the reference by
/// construction: each c(i,j) still accumulates over strictly increasing
/// k one rounded add at a time (no reassociation, and no FMA contraction
/// on targets without hardware FMA), zero a(i,k) still skip their add.
/// Groups containing a zero fall back to the scalar loop so the skip
/// semantics match exactly; all-nonzero groups (the common case against
/// dense weight matrices) keep the accumulator in a register across four
/// B rows, quartering the c-row load/store traffic that bounds the
/// reference kernel on the small matrices GCN inference produces.
void matmul_rows_unrolled(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_ptr(i);
    double* crow = c.row_ptr(i);
    std::size_t k = 0;
    for (; k + 4 <= kk; k += 4) {
      const double a0 = arow[k], a1 = arow[k + 1];
      const double a2 = arow[k + 2], a3 = arow[k + 3];
      if (a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0) {
        const double* b0 = b.row_ptr(k);
        const double* b1 = b.row_ptr(k + 1);
        const double* b2 = b.row_ptr(k + 2);
        const double* b3 = b.row_ptr(k + 3);
        for (std::size_t j = 0; j < n; ++j) {
          double t = crow[j];
          t += a0 * b0[j];
          t += a1 * b1[j];
          t += a2 * b2[j];
          t += a3 * b3[j];
          crow[j] = t;
        }
        continue;
      }
      for (std::size_t q = k; q < k + 4; ++q) {
        const double aiq = arow[q];
        if (aiq == 0.0) continue;
        const double* brow = b.row_ptr(q);
        for (std::size_t j = 0; j < n; ++j) crow[j] += aiq * brow[j];
      }
    }
    for (; k < kk; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row_ptr(k);
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

/// The Simd id resolved at compile time (linalg/kernels.hpp): the
/// explicitly vectorized kernel when the build carries one, otherwise
/// the unrolled scalar loop.
void matmul_rows_simd(const Matrix& a, const Matrix& b, Matrix& c) {
#if defined(GANA_SIMD_AVX2)
  linalg::matmul_rows_avx2(a, b, c);
#elif defined(GANA_SIMD_NEON)
  linalg::matmul_rows_neon(a, b, c);
#else
  matmul_rows_unrolled(a, b, c);
#endif
}

MatmulKernel g_matmul_kernel = MatmulKernel::Simd;

}  // namespace

void set_matmul_kernel(MatmulKernel kernel) { g_matmul_kernel = kernel; }

MatmulKernel matmul_kernel() { return g_matmul_kernel; }

void matmul_into(const Matrix& a, const Matrix& b, Matrix& c) {
  assert(a.cols() == b.rows());
  assert(&c != &a && &c != &b);
  c.resize(a.rows(), b.cols());
  perf::count_matmul(2ull * a.rows() * a.cols() * b.cols());
  switch (g_matmul_kernel) {
    case MatmulKernel::Reference:
      matmul_rows_reference(a, b, c);
      break;
    case MatmulKernel::Unrolled:
      matmul_rows_unrolled(a, b, c);
      break;
    case MatmulKernel::Simd:
      matmul_rows_simd(a, b, c);
      break;
  }
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row_ptr(k);
    const double* brow = b.row_ptr(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.row_ptr(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_ptr(i);
    double* crow = c.row_ptr(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row_ptr(j);
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += arow[k] * brow[k];
      crow[j] = s;
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

double frobenius_sq(const Matrix& a) {
  double s = 0.0;
  for (double x : a.data()) s += x * x;
  return s;
}

Matrix hcat(const Matrix& a, const Matrix& b) {
  Matrix c;
  hcat_into(a, b, c);
  return c;
}

void hcat_into(const Matrix& a, const Matrix& b, Matrix& c) {
  assert(a.rows() == b.rows());
  assert(&c != &a && &c != &b);
  c.resize(a.rows(), a.cols() + b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) c(i, j) = a(i, j);
    for (std::size_t j = 0; j < b.cols(); ++j) c(i, a.cols() + j) = b(i, j);
  }
}

}  // namespace gana
