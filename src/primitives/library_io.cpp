#include "primitives/library_io.hpp"

#include <fstream>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "graph/builder.hpp"
#include "util/artifact.hpp"
#include "util/strings.hpp"

namespace gana::primitives {

namespace {

constexpr const char* kTextMagic = "gana-primlib-v1";
constexpr const char* kSpecsSection = "specs";

Diag library_diag(DiagCode code, const std::string& name, std::size_t line,
                  std::string message) {
  Diag d = make_diag(code, Stage::Io, std::move(message));
  d.loc.file = name;
  d.loc.line = line;
  return d;
}

const std::vector<constraints::Kind>& all_constraint_kinds() {
  using constraints::Kind;
  static const std::vector<Kind> kinds = {
      Kind::Symmetry,  Kind::Matching,      Kind::CommonCentroid,
      Kind::Proximity, Kind::GuardRing,     Kind::MinWireLength,
      Kind::SymmetricNets,
  };
  return kinds;
}

std::optional<constraints::Kind> kind_from_string(const std::string& name) {
  for (constraints::Kind k : all_constraint_kinds()) {
    if (name == constraints::to_string(k)) return k;
  }
  return std::nullopt;
}

/// Net names flagged forbid_rail, recovered from the compiled graph --
/// the inverse of the non_rail_nets argument to PrimitiveLibrary::add.
std::vector<std::string> non_rail_nets_of(const PrimitiveSpec& spec) {
  std::vector<std::string> nets;
  for (std::size_t v = 0; v < spec.graph.vertex_count(); ++v) {
    if (v < spec.forbid_rail.size() && spec.forbid_rail[v] &&
        spec.graph.vertex(v).kind == graph::VertexKind::Net) {
      nets.push_back(spec.graph.vertex(v).name);
    }
  }
  return nets;
}

}  // namespace

void save_library_text(const PrimitiveLibrary& lib, std::ostream& out) {
  out << kTextMagic << "\n";
  for (std::size_t i = 0; i < lib.size(); ++i) {
    const PrimitiveSpec& spec = lib.spec(i);
    out << "primitive " << spec.name << " " << spec.display_name << " "
        << spec.priority << "\n";
    const auto non_rail = non_rail_nets_of(spec);
    if (!non_rail.empty()) {
      out << "non-rail";
      for (const auto& n : non_rail) out << " " << n;
      out << "\n";
    }
    for (const auto& t : spec.constraint_templates) {
      out << "constraint " << constraints::to_string(t.kind);
      if (t.members_are_nets) out << " nets";
      for (const auto& m : t.members) out << " " << m;
      out << "\n";
    }
    out << "spice\n";
    // The stored SPICE source, stripped of leading/trailing blank lines
    // so save(load(x)) is byte-stable.
    std::istringstream body(spec.spice);
    std::vector<std::string> lines;
    for (std::string line; std::getline(body, line);) {
      lines.push_back(line);
    }
    std::size_t first = 0, last = lines.size();
    while (first < last && trim(lines[first]).empty()) ++first;
    while (last > first && trim(lines[last - 1]).empty()) --last;
    for (std::size_t li = first; li < last; ++li) out << lines[li] << "\n";
    out << "endspice\n";
  }
}

Result<bool> save_library_text_file(const PrimitiveLibrary& lib,
                                    const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    return library_diag(DiagCode::IoError, path, 0, "cannot write " + path);
  }
  save_library_text(lib, f);
  return true;
}

Result<PrimitiveLibrary> load_library_text(std::istream& in,
                                           const std::string& name) {
  std::string line;
  std::size_t lineno = 0;
  const auto fail = [&](DiagCode code, std::string message) {
    return library_diag(code, name, lineno, std::move(message));
  };

  if (!std::getline(in, line) || trim(line) != kTextMagic) {
    lineno = 1;
    return fail(DiagCode::FormatError,
                "not a gana primitive library (bad magic)");
  }
  lineno = 1;

  PrimitiveLibrary lib;
  // Pending stanza fields, flushed by compile() at the next `primitive`
  // header or EOF.
  bool have_pending = false;
  std::string p_name, p_display;
  int p_priority = 0;
  std::size_t p_line = 0;
  std::vector<ConstraintTemplate> p_templates;
  std::vector<std::string> p_non_rail;
  std::string p_spice;
  bool saw_spice = false;

  const auto compile = [&]() -> std::optional<Diag> {
    if (!have_pending) return std::nullopt;
    if (!saw_spice) {
      return library_diag(DiagCode::FormatError, name, p_line,
                          "primitive '" + p_name + "' has no spice body");
    }
    try {
      lib.add(p_name, p_display, p_spice, p_priority, std::move(p_templates),
              std::move(p_non_rail));
    } catch (const DiagError& e) {
      Diag d = e.diag();
      if (!d.loc.known()) {
        d.loc.file = name;
        d.loc.line = p_line;
      }
      return d;
    }
    have_pending = false;
    saw_spice = false;
    p_templates.clear();
    p_non_rail.clear();
    p_spice.clear();
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed{trim(line)};
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream tokens(trimmed);
    std::string word;
    tokens >> word;
    if (word == "primitive") {
      if (auto d = compile()) return *d;
      have_pending = true;
      p_line = lineno;
      if (!(tokens >> p_name >> p_display >> p_priority)) {
        return fail(DiagCode::SyntaxError,
                    "expected: primitive <name> <display> <priority>");
      }
    } else if (word == "non-rail") {
      if (!have_pending) {
        return fail(DiagCode::SyntaxError,
                    "'non-rail' outside a primitive stanza");
      }
      for (std::string net; tokens >> net;) p_non_rail.push_back(net);
    } else if (word == "constraint") {
      if (!have_pending) {
        return fail(DiagCode::SyntaxError,
                    "'constraint' outside a primitive stanza");
      }
      std::string kind_name;
      if (!(tokens >> kind_name)) {
        return fail(DiagCode::SyntaxError, "constraint without a kind");
      }
      const auto kind = kind_from_string(kind_name);
      if (!kind) {
        return fail(DiagCode::BadValue,
                    "unknown constraint kind '" + kind_name + "'");
      }
      ConstraintTemplate t;
      t.kind = *kind;
      std::string member;
      if (tokens >> member) {
        if (member == "nets") {
          t.members_are_nets = true;
        } else {
          t.members.push_back(member);
        }
        while (tokens >> member) t.members.push_back(member);
      }
      p_templates.push_back(std::move(t));
    } else if (word == "spice") {
      if (!have_pending) {
        return fail(DiagCode::SyntaxError,
                    "'spice' outside a primitive stanza");
      }
      bool terminated = false;
      while (std::getline(in, line)) {
        ++lineno;
        if (trim(line) == "endspice") {
          terminated = true;
          break;
        }
        p_spice += line;
        p_spice += "\n";
      }
      if (!terminated) {
        return fail(DiagCode::FormatError,
                    "unterminated spice body (missing 'endspice')");
      }
      saw_spice = true;
    } else {
      return fail(DiagCode::SyntaxError,
                  "unknown library directive '" + word + "'");
    }
  }
  if (auto d = compile()) return *d;
  return lib;
}

Result<PrimitiveLibrary> load_library_text_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    return library_diag(DiagCode::IoError, path, 0, "cannot read " + path);
  }
  return load_library_text(f, path);
}

// ---------------------------------------------------------------------------
// Binary library artifact
// ---------------------------------------------------------------------------

namespace {

void encode_flags(util::ByteWriter& w, const std::vector<bool>& flags) {
  w.u32(static_cast<std::uint32_t>(flags.size()));
  for (bool f : flags) w.u8(f ? 1 : 0);
}

std::vector<bool> decode_flags(util::ByteReader& r) {
  const std::uint32_t n = r.u32();
  if (r.remaining() < n) return {};  // latched by the next read
  std::vector<bool> flags(n);
  for (std::uint32_t i = 0; i < n; ++i) flags[i] = r.u8() != 0;
  return flags;
}

void encode_spec(util::ByteWriter& w, const PrimitiveSpec& spec) {
  w.str(spec.name);
  w.str(spec.display_name);
  w.u32(static_cast<std::uint32_t>(spec.priority));
  w.str(spec.spice);
  w.u32(static_cast<std::uint32_t>(spec.constraint_templates.size()));
  for (const auto& t : spec.constraint_templates) {
    w.u8(static_cast<std::uint8_t>(t.kind));
    w.u8(t.members_are_nets ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(t.members.size()));
    for (const auto& m : t.members) w.str(m);
  }
  w.u32(static_cast<std::uint32_t>(spec.ports.size()));
  for (const auto& p : spec.ports) w.str(p);
  w.u32(static_cast<std::uint32_t>(spec.netlist.devices.size()));
  for (const auto& d : spec.netlist.devices) {
    w.str(d.name);
    w.u8(static_cast<std::uint8_t>(d.type));
    w.str(d.model);
    w.u32(static_cast<std::uint32_t>(d.pins.size()));
    for (const auto& pin : d.pins) w.str(pin);
    w.f64(d.value);
    w.u32(static_cast<std::uint32_t>(d.params.size()));
    for (const auto& [key, value] : d.params) {
      w.str(key);
      w.f64(value);
    }
    w.u32(static_cast<std::uint32_t>(d.hier_depth));
    w.u64(d.src_line);
  }
  encode_flags(w, spec.strict_degree);
  encode_flags(w, spec.forbid_rail);
}

Result<std::unique_ptr<PrimitiveSpec>> decode_spec(util::ByteReader& r,
                                                   const std::string& name) {
  const auto fail = [&](std::string message) {
    return library_diag(DiagCode::FormatError, name, 0, std::move(message));
  };
  auto spec = std::make_unique<PrimitiveSpec>();
  spec->name = r.str();
  spec->display_name = r.str();
  spec->priority = static_cast<int>(r.u32());
  spec->spice = r.str();
  const std::uint32_t template_count = r.u32();
  if (r.remaining() < template_count) {
    return fail("library artifact: malformed constraint templates");
  }
  for (std::uint32_t i = 0; i < template_count; ++i) {
    ConstraintTemplate t;
    const std::uint8_t kind = r.u8();
    if (kind >= all_constraint_kinds().size()) {
      return fail("library artifact: bad constraint kind " +
                  std::to_string(kind));
    }
    t.kind = static_cast<constraints::Kind>(kind);
    t.members_are_nets = r.u8() != 0;
    const std::uint32_t member_count = r.u32();
    if (r.remaining() < member_count) {
      return fail("library artifact: malformed constraint members");
    }
    for (std::uint32_t j = 0; j < member_count; ++j) {
      t.members.push_back(r.str());
    }
    spec->constraint_templates.push_back(std::move(t));
  }
  const std::uint32_t port_count = r.u32();
  if (r.remaining() < port_count) {
    return fail("library artifact: malformed port list");
  }
  for (std::uint32_t i = 0; i < port_count; ++i) {
    spec->ports.push_back(r.str());
  }
  const std::uint32_t device_count = r.u32();
  if (r.remaining() < device_count) {
    return fail("library artifact: malformed device list");
  }
  spec->netlist.title = spec->name;
  for (std::uint32_t i = 0; i < device_count; ++i) {
    spice::Device d;
    d.name = r.str();
    d.type = static_cast<spice::DeviceType>(r.u8());
    if (static_cast<std::uint8_t>(d.type) >
        static_cast<std::uint8_t>(spice::DeviceType::ISource)) {
      return fail("library artifact: bad device type");
    }
    d.model = r.str();
    const std::uint32_t pin_count = r.u32();
    if (r.remaining() < pin_count) {
      return fail("library artifact: malformed pin list");
    }
    for (std::uint32_t j = 0; j < pin_count; ++j) d.pins.push_back(r.str());
    d.value = r.f64();
    const std::uint32_t param_count = r.u32();
    if (r.remaining() < param_count) {
      return fail("library artifact: malformed device params");
    }
    for (std::uint32_t j = 0; j < param_count; ++j) {
      const std::string key = r.str();
      d.params[key] = r.f64();
    }
    d.hier_depth = static_cast<int>(r.u32());
    d.src_line = r.u64();
    spec->netlist.devices.push_back(std::move(d));
  }
  spec->strict_degree = decode_flags(r);
  spec->forbid_rail = decode_flags(r);
  if (!r.ok()) return fail("library artifact: truncated spec");

  // Rebuild the compiled pattern graph deterministically from the
  // stored device list -- no SPICE parsing on this path.
  try {
    spec->netlist.validate();
    spec->graph = graph::build_graph(spec->netlist);
  } catch (const DiagError& e) {
    Diag d = e.diag();
    if (!d.loc.known()) d.loc.file = name;
    return d;
  }
  if (spec->strict_degree.size() != spec->graph.vertex_count() ||
      spec->forbid_rail.size() != spec->graph.vertex_count()) {
    return fail("library artifact: strictness flag count mismatch");
  }
  return spec;
}

}  // namespace

Result<bool> save_library_artifact(const PrimitiveLibrary& lib,
                                   const std::string& path) {
  util::ByteWriter specs;
  specs.u32(static_cast<std::uint32_t>(lib.size()));
  for (std::size_t i = 0; i < lib.size(); ++i) {
    encode_spec(specs, lib.spec(i));
  }
  util::ArtifactWriter writer;
  writer.add_section(kSpecsSection, specs.take());
  return writer.write(path, util::ArtifactKind::PrimitiveLibrary,
                      library_fingerprint(lib));
}

Result<PrimitiveLibrary> load_library_artifact(const std::string& path) {
  auto opened =
      util::ArtifactReader::open(path, util::ArtifactKind::PrimitiveLibrary);
  if (!opened.ok()) return opened.diag();
  const util::ArtifactReader reader = opened.take();
  auto specs_section = reader.require(kSpecsSection);
  if (!specs_section.ok()) return specs_section.diag();

  util::ByteReader r(specs_section.value());
  const std::uint32_t spec_count = r.u32();
  if (!r.ok() || r.remaining() < spec_count) {
    return library_diag(DiagCode::FormatError, path, 0,
                        "library artifact: malformed spec count");
  }
  PrimitiveLibrary lib;
  for (std::uint32_t i = 0; i < spec_count; ++i) {
    auto spec = decode_spec(r, path);
    if (!spec.ok()) return spec.diag();
    try {
      lib.add_spec(spec.take());
    } catch (const DiagError& e) {
      Diag d = e.diag();
      if (!d.loc.known()) d.loc.file = path;
      return d;
    }
  }
  if (library_fingerprint(lib) != reader.fingerprint()) {
    return library_diag(
        DiagCode::FormatError, path, 0,
        "library artifact: fingerprint mismatch (header does not match "
        "decoded specs)");
  }
  return lib;
}

Result<PrimitiveLibrary> load_library_any(const std::string& path) {
  if (path == "standard") return PrimitiveLibrary::standard();
  if (util::file_looks_like_artifact(path)) {
    return load_library_artifact(path);
  }
  return load_library_text_file(path);
}

}  // namespace gana::primitives
