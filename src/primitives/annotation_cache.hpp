// Primitive-annotation cache keyed by a canonical structural hash.
//
// A 64-copy batch of one OTA cell runs 64 identical VF2 sweeps without
// this cache: the accepted primitive set is a function of the circuit
// *structure* (vertex kinds, device types, net roles, labeled edges),
// the library, and the annotation options -- never of device names or
// sizings. Equal `graph::structural_hash` values imply identically
// *indexed* structure (same vertex order), so a cached record of vertex
// indices transfers verbatim between the copies; only the name-bearing
// parts of a PrimitiveInstance (constraint members, tags) are
// re-instantiated against each circuit's own names.
//
// The cached record is therefore binding-level: per accepted instance,
// the library index, the covered element vertices, and the pattern
// net/device name -> target vertex maps. Instantiation from the record
// is pure and cheap (string assembly only).
//
// Same discipline as gcn::SamplePrepCache: lock-sharded probes
// (util/sharded_cache.hpp) so parallel workers only contend when their
// keys land on the same shard, computation happens outside any lock, and
// when two workers race on one miss the first insert wins -- both
// computed identical records, so duplicated work never means divergent
// results. Cache hits can never change an output (pinned by the
// cache-on/off determinism tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sharded_cache.hpp"

namespace gana::primitives {

/// One accepted primitive occurrence, reduced to what survives across
/// structurally identical circuits: indices and pattern-local names.
struct CachedInstance {
  std::size_t library_index = 0;
  /// Covered target element vertex ids, sorted.
  std::vector<std::size_t> elements;
  /// Pattern net name -> target net vertex id.
  std::vector<std::pair<std::string, std::size_t>> net_binding;
  /// Pattern device name -> target element vertex id.
  std::vector<std::pair<std::string, std::size_t>> device_binding;
};

/// The full (possibly truncated) annotation of one structure.
struct CachedAnnotation {
  std::vector<CachedInstance> instances;
  /// Whether the VF2 sweep that produced this record hit a budget; a
  /// property of the annotation itself, so it is reported on every hit
  /// (unlike the work counters, which are zero on a hit).
  bool truncated = false;
};

class AnnotationCache {
 public:
  using Stats = ShardedCache<CachedAnnotation>::Stats;

  AnnotationCache() = default;
  /// Bounds the cache to roughly `capacity` entries total (0 =
  /// unbounded); at capacity each shard FIFO-evicts its oldest entry.
  /// Eviction only costs recomputation -- results stay bit-identical.
  explicit AnnotationCache(std::size_t capacity)
      : cache_(per_shard_capacity_for(capacity)) {}

  /// Cached annotation for `key`, or nullptr (counts a hit/miss).
  [[nodiscard]] std::shared_ptr<const CachedAnnotation> find(
      std::uint64_t key);

  /// Inserts `ann` for `key`; returns the winning entry (the existing
  /// one if another worker inserted first).
  std::shared_ptr<const CachedAnnotation> insert(
      std::uint64_t key, std::shared_ptr<const CachedAnnotation> ann);

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  ShardedCache<CachedAnnotation> cache_;
};

}  // namespace gana::primitives
