// Primitive-library persistence: a text format for authoring and a
// binary artifact for fast worker startup.
//
// The text format ("gana-primlib-v1") is the editable source of truth:
// one `primitive` stanza per entry carrying the display name, priority,
// non-rail nets, constraint templates, and the SPICE pattern body.
// Loading it compiles every pattern through the same
// `PrimitiveLibrary::add` path the built-in library uses; duplicate
// pattern names are rejected with a structured DuplicateName Diag
// instead of last-write-wins.
//
// The binary artifact (util/artifact container, kind PrimitiveLibrary)
// stores the *compiled* form -- devices, ports, strictness flags --
// decoded straight out of the mapping with no SPICE parsing, which is
// what makes shard-worker startup cheap. The header fingerprint is
// `library_fingerprint`, re-derived after load, so a mismatched or
// corrupt library can never be served.
#pragma once

#include <iosfwd>
#include <string>

#include "primitives/library.hpp"
#include "util/diag.hpp"

namespace gana::primitives {

/// Writes the editable text form. Non-rail nets are recovered from each
/// spec's forbid_rail flags, so save(load(x)) is stable.
void save_library_text(const PrimitiveLibrary& lib, std::ostream& out);
[[nodiscard]] Result<bool> save_library_text_file(const PrimitiveLibrary& lib,
                                                  const std::string& path);

/// Parses the text form; `name` labels diagnostics. Malformed stanzas,
/// bad SPICE bodies, and duplicate primitive names come back as
/// structured Diags.
[[nodiscard]] Result<PrimitiveLibrary> load_library_text(
    std::istream& in, const std::string& name = "<stream>");
[[nodiscard]] Result<PrimitiveLibrary> load_library_text_file(
    const std::string& path);

/// Writes the compiled binary artifact (`gana_shard --pack-library`).
[[nodiscard]] Result<bool> save_library_artifact(const PrimitiveLibrary& lib,
                                                 const std::string& path);

/// Maps and decodes a binary artifact: no SPICE parsing, pattern graphs
/// rebuilt deterministically from the stored device lists. Corrupt,
/// truncated, or fingerprint-mismatched files are rejected with
/// IoError/FormatError Diags.
[[nodiscard]] Result<PrimitiveLibrary> load_library_artifact(
    const std::string& path);

/// Loads either format, sniffing the artifact magic. The string
/// "standard" loads the built-in library (the `--load-library` default
/// spelling in the CLIs).
[[nodiscard]] Result<PrimitiveLibrary> load_library_any(
    const std::string& path);

}  // namespace gana::primitives
