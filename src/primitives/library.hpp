// The primitive template library (paper §IV).
//
// "We populate a library of 21 basic primitives that are building blocks
// for larger sub-blocks. The primitives are specified as SPICE netlists,
// enabling a user to easily add new primitives to the library."
//
// Each entry is compiled once into a labeled bipartite pattern graph
// (paper §II-C) that the VF2 annotator searches for.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "graph/circuit_graph.hpp"
#include "isomorph/vf2.hpp"
#include "primitives/constraint.hpp"
#include "spice/netlist.hpp"

namespace gana::primitives {

/// Constraint template: like constraints::Constraint but members refer to
/// the device names (or, for net-level constraints such as SymmetricNets,
/// the net names) inside the primitive's SPICE definition; they are
/// rebound to the matched target at annotation time.
struct ConstraintTemplate {
  constraints::Kind kind;
  std::vector<std::string> members;  ///< primitive-local device/net names
  bool members_are_nets = false;     ///< resolve through the net binding
};

/// One compiled library entry.
struct PrimitiveSpec {
  std::string name;          ///< identifier, e.g. "cm_n2"
  std::string display_name;  ///< paper-style label, e.g. "CM-N(2)"
  std::string spice;         ///< the SPICE source it was compiled from
  int priority = 0;          ///< higher matches first (bigger/rarer first)
  std::vector<ConstraintTemplate> constraint_templates;

  // Compiled form:
  spice::Netlist netlist;           ///< flat body of the subckt
  graph::CircuitGraph graph;        ///< pattern graph
  std::vector<bool> strict_degree;  ///< internal-net strictness flags
  std::vector<bool> forbid_rail;    ///< nets that must not bind a rail
  std::vector<std::string> ports;

  [[nodiscard]] iso::Pattern pattern() const {
    return {&graph, strict_degree, forbid_rail};
  }
  [[nodiscard]] std::size_t element_count() const {
    return graph.element_count();
  }
};

/// Immutable library of compiled primitive patterns.
class PrimitiveLibrary {
 public:
  /// Builds the default 21-primitive library of the paper's Table/Fig. 1
  /// vocabulary: differential pairs, current mirrors (simple, multi-output,
  /// cascode), cross-coupled pairs, single-device stages (CS/CG/SF),
  /// transmission gate, inverter and buffer, RC compensation, LC tank,
  /// and a resistive voltage divider.
  static PrimitiveLibrary standard();

  /// Empty library; add entries with add().
  PrimitiveLibrary() = default;

  /// Compiles a primitive from SPICE text containing exactly one .subckt
  /// definition; throws spice::NetlistError on malformed input or a
  /// duplicate primitive name (DiagCode::DuplicateName -- names are the
  /// library's identity, so last-write-wins would be ambiguous).
  /// `non_rail_nets` lists pattern net names that must not bind to a
  /// supply/ground rail in the target.
  void add(const std::string& name, const std::string& display_name,
           const std::string& spice_text, int priority,
           std::vector<ConstraintTemplate> constraint_templates = {},
           std::vector<std::string> non_rail_nets = {});

  /// Inserts an already-compiled spec (the parse-free path the binary
  /// artifact loader uses). Throws spice::NetlistError on a duplicate
  /// name, like add().
  void add_spec(std::unique_ptr<PrimitiveSpec> spec);

  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] const PrimitiveSpec& spec(std::size_t i) const {
    return *specs_[i];
  }
  [[nodiscard]] const PrimitiveSpec* find(const std::string& name) const;

  /// Indices sorted by descending priority (annotation order).
  [[nodiscard]] std::vector<std::size_t> priority_order() const;

 private:
  // unique_ptr keeps PrimitiveSpec addresses stable across add() calls.
  std::vector<std::unique_ptr<PrimitiveSpec>> specs_;
};

/// Content hash of a library: per-spec pattern structural hashes and
/// priorities in priority order (the same folding annotation_cache_key
/// applies), plus names and display names. Stamped into the library
/// artifact header and re-derived on load, so a corrupt or regenerated
/// library can never be mistaken for the one that was packed.
[[nodiscard]] std::uint64_t library_fingerprint(const PrimitiveLibrary& lib);

}  // namespace gana::primitives
