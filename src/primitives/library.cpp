#include "primitives/library.hpp"

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/structural_hash.hpp"
#include "spice/parser.hpp"

namespace gana::constraints {

const char* to_string(Kind k) {
  switch (k) {
    case Kind::Symmetry: return "symmetry";
    case Kind::Matching: return "matching";
    case Kind::CommonCentroid: return "common-centroid";
    case Kind::Proximity: return "proximity";
    case Kind::GuardRing: return "guard-ring";
    case Kind::MinWireLength: return "min-wire-length";
    case Kind::SymmetricNets: return "symmetric-nets";
  }
  return "?";
}

std::string to_string(const Constraint& c) {
  std::string out = to_string(c.kind);
  out += "{";
  for (std::size_t i = 0; i < c.members.size(); ++i) {
    if (i) out += ", ";
    out += c.members[i];
  }
  out += "}";
  if (!c.tag.empty()) out += " " + c.tag;
  return out;
}

}  // namespace gana::constraints

namespace gana::primitives {

void PrimitiveLibrary::add_spec(std::unique_ptr<PrimitiveSpec> spec) {
  if (find(spec->name) != nullptr) {
    throw spice::NetlistError(make_diag(
        DiagCode::DuplicateName, Stage::Validate,
        "duplicate primitive '" + spec->name + "' in library"));
  }
  specs_.push_back(std::move(spec));
}

void PrimitiveLibrary::add(const std::string& name,
                           const std::string& display_name,
                           const std::string& spice_text, int priority,
                           std::vector<ConstraintTemplate> templates,
                           std::vector<std::string> non_rail_nets) {
  auto spec = std::make_unique<PrimitiveSpec>();
  spec->name = name;
  spec->display_name = display_name;
  spec->spice = spice_text;
  spec->priority = priority;
  spec->constraint_templates = std::move(templates);

  const spice::Netlist parsed = spice::parse_netlist(spice_text);
  if (parsed.subckts.size() != 1) {
    throw spice::NetlistError("primitive " + name +
                              " must contain exactly one .subckt");
  }
  const spice::SubcktDef& def = parsed.subckts.begin()->second;
  if (!def.instances.empty()) {
    throw spice::NetlistError("primitive " + name +
                              " must be flat (no X cards)");
  }
  spec->ports = def.ports;
  spec->netlist.title = name;
  spec->netlist.devices = def.devices;
  spec->netlist.validate();

  spec->graph = graph::build_graph(spec->netlist);
  // Internal (non-port, non-rail) nets must match target nets of equal
  // degree: a primitive's private node cannot have extra fanout.
  spec->strict_degree.assign(spec->graph.vertex_count(), false);
  for (std::size_t v = 0; v < spec->graph.vertex_count(); ++v) {
    const auto& vert = spec->graph.vertex(v);
    if (vert.kind != graph::VertexKind::Net) continue;
    if (vert.role == graph::NetRole::Supply ||
        vert.role == graph::NetRole::Ground) {
      continue;
    }
    const bool is_port = std::find(def.ports.begin(), def.ports.end(),
                                   vert.name) != def.ports.end();
    spec->strict_degree[v] = !is_port;
  }
  spec->forbid_rail.assign(spec->graph.vertex_count(), false);
  for (std::size_t v = 0; v < spec->graph.vertex_count(); ++v) {
    const auto& vert = spec->graph.vertex(v);
    if (vert.kind != graph::VertexKind::Net) continue;
    if (std::find(non_rail_nets.begin(), non_rail_nets.end(), vert.name) !=
        non_rail_nets.end()) {
      spec->forbid_rail[v] = true;
    }
  }
  add_spec(std::move(spec));
}

const PrimitiveSpec* PrimitiveLibrary::find(const std::string& name) const {
  for (const auto& s : specs_) {
    if (s->name == name) return s.get();
  }
  return nullptr;
}

std::vector<std::size_t> PrimitiveLibrary::priority_order() const {
  std::vector<std::size_t> order(specs_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return specs_[a]->priority > specs_[b]->priority;
                   });
  return order;
}

std::uint64_t library_fingerprint(const PrimitiveLibrary& lib) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = graph::hash_combine(h, lib.size());
  const auto fold_string = [&](const std::string& s) {
    h = graph::hash_combine(h, s.size());
    for (char c : s) {
      h = graph::hash_combine(h, static_cast<std::uint64_t>(
                                     static_cast<unsigned char>(c)));
    }
  };
  for (std::size_t li : lib.priority_order()) {
    const PrimitiveSpec& spec = lib.spec(li);
    fold_string(spec.name);
    fold_string(spec.display_name);
    h = graph::hash_combine(h, graph::structural_hash(spec.graph));
    h = graph::hash_combine(h, static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(spec.priority)));
  }
  return h;
}

PrimitiveLibrary PrimitiveLibrary::standard() {
  using constraints::Kind;
  PrimitiveLibrary lib;

  // --- 4-device structures (highest priority) ---
  lib.add("buf", "BUF", R"(
.subckt buf in out
m0 mid in gnd! gnd! nmos
m1 mid in vdd! vdd! pmos
m2 out mid gnd! gnd! nmos
m3 out mid vdd! vdd! pmos
.ends
)",
          90, {{Kind::Matching, {"m0", "m2"}}, {Kind::Matching, {"m1", "m3"}}});

  lib.add("ccm_n", "CCM-N", R"(
.subckt ccm_n iin iout s
m2 iin iin x0 gnd! nmos
m0 x0 x0 s gnd! nmos
m3 iout iin x1 gnd! nmos
m1 x1 x0 s gnd! nmos
.ends
)",
          88, {{Kind::Matching, {"m0", "m1"}}, {Kind::Matching, {"m2", "m3"}}});

  lib.add("ccm_p", "CCM-P", R"(
.subckt ccm_p iin iout s
m2 iin iin x0 vdd! pmos
m0 x0 x0 s vdd! pmos
m3 iout iin x1 vdd! pmos
m1 x1 x0 s vdd! pmos
.ends
)",
          88, {{Kind::Matching, {"m0", "m1"}}, {Kind::Matching, {"m2", "m3"}}});

  // --- 3-device structures ---
  lib.add("cm_n3", "CM-N(3)", R"(
.subckt cm_n3 iin out1 out2 s
m0 iin iin s gnd! nmos
m1 out1 iin s gnd! nmos
m2 out2 iin s gnd! nmos
.ends
)",
          80, {{Kind::Matching, {"m0", "m1", "m2"}}});

  lib.add("cm_p3", "CM-P(3)", R"(
.subckt cm_p3 iin out1 out2 s
m0 iin iin s vdd! pmos
m1 out1 iin s vdd! pmos
m2 out2 iin s vdd! pmos
.ends
)",
          80, {{Kind::Matching, {"m0", "m1", "m2"}}});

  // --- 2-device structures ---
  lib.add("tg", "TG", R"(
.subckt tg a b clk clkb
m0 a clk b gnd! nmos
m1 a clkb b vdd! pmos
.ends
)",
          70, {});

  lib.add("inv", "INV", R"(
.subckt inv in out
m0 out in gnd! gnd! nmos
m1 out in vdd! vdd! pmos
.ends
)",
          68, {});

  lib.add("cp_n", "CP-N", R"(
.subckt cp_n a b s
m0 a b s gnd! nmos
m1 b a s gnd! nmos
.ends
)",
          66,
          {{Kind::Symmetry, {"m0", "m1"}},
           {Kind::Matching, {"m0", "m1"}},
           {Kind::SymmetricNets, {"a", "b"}, /*members_are_nets=*/true}});

  lib.add("cp_p", "CP-P", R"(
.subckt cp_p a b s
m0 a b s vdd! pmos
m1 b a s vdd! pmos
.ends
)",
          66,
          {{Kind::Symmetry, {"m0", "m1"}},
           {Kind::Matching, {"m0", "m1"}},
           {Kind::SymmetricNets, {"a", "b"}, /*members_are_nets=*/true}});

  lib.add("dp_n", "DP-N", R"(
.subckt dp_n inp inn outp outn tail
m0 outp inp tail gnd! nmos
m1 outn inn tail gnd! nmos
.ends
)",
          64,
          {{Kind::Symmetry, {"m0", "m1"}},
           {Kind::Matching, {"m0", "m1"}},
           {Kind::SymmetricNets, {"inp", "inn"}, /*members_are_nets=*/true},
           {Kind::SymmetricNets, {"outp", "outn"}, /*members_are_nets=*/true}},
          {"inp", "inn", "outp", "outn", "tail"});

  lib.add("dp_p", "DP-P", R"(
.subckt dp_p inp inn outp outn tail
m0 outp inp tail vdd! pmos
m1 outn inn tail vdd! pmos
.ends
)",
          64,
          {{Kind::Symmetry, {"m0", "m1"}},
           {Kind::Matching, {"m0", "m1"}},
           {Kind::SymmetricNets, {"inp", "inn"}, /*members_are_nets=*/true},
           {Kind::SymmetricNets, {"outp", "outn"}, /*members_are_nets=*/true}},
          {"inp", "inn", "outp", "outn", "tail"});

  lib.add("cm_n2", "CM-N(2)", R"(
.subckt cm_n2 iin out s
m0 iin iin s gnd! nmos
m1 out iin s gnd! nmos
.ends
)",
          60, {{Kind::Matching, {"m0", "m1"}}});

  lib.add("cm_p2", "CM-P(2)", R"(
.subckt cm_p2 iin out s
m0 iin iin s vdd! pmos
m1 out iin s vdd! pmos
.ends
)",
          60, {{Kind::Matching, {"m0", "m1"}}});

  lib.add("cc_rc", "CC-[RC]", R"(
.subckt cc_rc a b
r0 a x 1k
c0 x b 1p
.ends
)",
          55, {});

  lib.add("lc_tank", "LC-TANK", R"(
.subckt lc_tank a b
l0 a b 1n
c0 a b 1p
.ends
)",
          55, {{Kind::Symmetry, {"l0", "c0"}}});

  lib.add("vr_rd", "VR[RD]", R"(
.subckt vr_rd mid
r0 vdd! mid 10k
r1 mid gnd! 10k
.ends
)",
          54, {{Kind::Matching, {"r0", "r1"}}});

  // --- single-device stages (lowest priority; claimed last) ---
  lib.add("sf_n", "SF-N", R"(
.subckt sf_n in out
m0 vdd! in out gnd! nmos
.ends
)",
          30, {}, {"in", "out"});

  lib.add("sf_p", "SF-P", R"(
.subckt sf_p in out
m0 gnd! in out vdd! pmos
.ends
)",
          30, {}, {"in", "out"});

  lib.add("cg_n", "CG-N", R"(
.subckt cg_n in out vb
m0 out vb in gnd! nmos
.ends
)",
          25, {}, {"in", "out"});

  lib.add("cg_p", "CG-P", R"(
.subckt cg_p in out vb
m0 out vb in vdd! pmos
.ends
)",
          25, {}, {"in", "out"});

  // Diode-connected current references (paper Fig. 1: CR-N[V]); matched
  // after mirrors, so only unpaired diodes become references.
  lib.add("cr_n", "CR-N[V]", R"(
.subckt cr_n vb s
m0 vb vb s gnd! nmos
.ends
)",
          22, {}, {"vb"});

  lib.add("cr_p", "CR-P[V]", R"(
.subckt cr_p vb s
m0 vb vb s vdd! pmos
.ends
)",
          22, {}, {"vb"});

  lib.add("cs_n", "CS-Amp-N", R"(
.subckt cs_n in out
m0 out in gnd! gnd! nmos
.ends
)",
          20, {}, {"in", "out"});

  lib.add("cs_p", "CS-Amp-P", R"(
.subckt cs_p in out
m0 out in vdd! vdd! pmos
.ends
)",
          20, {}, {"in", "out"});

  return lib;
}

}  // namespace gana::primitives
