#include "primitives/annotator.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <memory>
#include <set>
#include <utility>

#include "graph/structural_hash.hpp"
#include "isomorph/candidate_index.hpp"
#include "isomorph/vf2.hpp"
#include "util/deadline.hpp"
#include "util/perf.hpp"
#include "util/thread_pool.hpp"

namespace gana::primitives {

using graph::CircuitGraph;
using graph::VertexKind;

PatternMatchList match_library_pattern(const PrimitiveSpec& spec,
                                       const CircuitGraph& g,
                                       const iso::CandidateIndex& index,
                                       const iso::MatchOptions& match_options) {
  PatternMatchList out;
  if (!index.profile().admits(iso::count_profile(spec.graph))) {
    out.skipped = true;
    return out;
  }
  out.matches = iso::find_subgraph_matches(spec.pattern(), g, match_options,
                                           &out.stats, &index);
  // Canonical acceptance order: sort by element key (ties, possible only
  // with dedup off, broken by the full map) so greedy acceptance cannot
  // depend on the engine's enumeration order.
  std::vector<std::size_t> idx(out.matches.size());
  std::vector<std::vector<std::size_t>> keys(out.matches.size());
  for (std::size_t i = 0; i < out.matches.size(); ++i) {
    idx[i] = i;
    keys[i] = out.matches[i].element_key(spec.graph);
  }
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return out.matches[a].map < out.matches[b].map;
  });
  std::vector<iso::Match> sorted;
  sorted.reserve(out.matches.size());
  for (std::size_t i : idx) sorted.push_back(std::move(out.matches[i]));
  out.matches = std::move(sorted);
  return out;
}

namespace {

/// Runs the matching stage for every pattern (in parallel when a pool is
/// attached), then merges the per-pattern lists sequentially in library
/// priority order with the same greedy acceptance the one-pattern-at-a-
/// time sweep used. Fills the work counters of `outcome`.
CachedAnnotation compute_annotation(const CircuitGraph& g,
                                    const PrimitiveLibrary& library,
                                    const AnnotateOptions& options,
                                    AnnotateOutcome& outcome) {
  const std::vector<std::size_t> order = library.priority_order();
  const iso::CandidateIndex index(g);

  std::vector<PatternMatchList> results(order.size());
  ThreadPool* pool = options.pool;
  const bool parallel = pool != nullptr && pool->size() > 1 &&
                        order.size() > 1 && !ThreadPool::inside_worker();
  if (parallel) {
    std::vector<std::future<PatternMatchList>> futures;
    futures.reserve(order.size());
    // Re-install the submitting thread's request context (deadline,
    // fault key) inside each pattern task: the per-1024-states deadline
    // check in VF2 reads a thread_local, which pool workers would
    // otherwise not see. An expired deadline then aborts every pattern
    // task, not just the ones running on the submitting thread.
    const RequestContext* ctx = current_request_context();
    for (std::size_t li : order) {
      const PrimitiveSpec& spec = library.spec(li);
      futures.push_back(pool->submit([&spec, &g, &index, &options, ctx] {
        ScopedRequestContext scope(ctx);
        return match_library_pattern(spec, g, index, options.match);
      }));
    }
    // Drain every future even if one throws: the tasks reference stack
    // locals (`index`), so none may outlive this scope.
    std::exception_ptr err;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      try {
        results[i] = pool->wait(futures[i]);
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
  } else {
    for (std::size_t i = 0; i < order.size(); ++i) {
      results[i] =
          match_library_pattern(library.spec(order[i]), g, index, options.match);
    }
  }

  return accept_pattern_matches(g, library, order, results, options, outcome);
}

}  // namespace

CachedAnnotation accept_pattern_matches(const CircuitGraph& g,
                                        const PrimitiveLibrary& library,
                                        const std::vector<std::size_t>& order,
                                        const std::vector<PatternMatchList>& results,
                                        const AnnotateOptions& options,
                                        AnnotateOutcome& outcome) {
  std::set<std::size_t> filter(options.element_filter.begin(),
                               options.element_filter.end());
  auto in_scope = [&](std::size_t v) {
    return filter.empty() || filter.count(v) > 0;
  };
  std::vector<bool> claimed(g.vertex_count(), false);

  CachedAnnotation ann;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t li = order[i];
    const PrimitiveSpec& spec = library.spec(li);
    const PatternMatchList& r = results[i];
    if (r.skipped) {
      ++outcome.patterns_skipped;
      continue;
    }
    outcome.truncated = outcome.truncated || r.stats.truncated;
    outcome.vf2_states += r.stats.states;
    outcome.sig_rejections += r.stats.sig_rejections;
    for (const auto& m : r.matches) {
      // Collect matched target elements; reject if out of scope or
      // already claimed by a higher-priority primitive.
      std::vector<std::size_t> elements;
      bool ok = true;
      for (std::size_t pv = 0; pv < m.map.size(); ++pv) {
        if (spec.graph.vertex(pv).kind != VertexKind::Element) continue;
        const std::size_t tv = m.map[pv];
        if (!in_scope(tv) || (!options.allow_overlap && claimed[tv])) {
          ok = false;
          break;
        }
        elements.push_back(tv);
      }
      if (!ok) continue;

      CachedInstance inst;
      inst.library_index = li;
      inst.elements = std::move(elements);
      std::sort(inst.elements.begin(), inst.elements.end());
      for (std::size_t pv = 0; pv < m.map.size(); ++pv) {
        const auto& pvert = spec.graph.vertex(pv);
        if (pvert.kind == VertexKind::Net) {
          inst.net_binding.emplace_back(pvert.name, m.map[pv]);
        } else {
          inst.device_binding.emplace_back(pvert.name, m.map[pv]);
        }
      }
      if (!options.allow_overlap) {
        for (std::size_t tv : inst.elements) claimed[tv] = true;
      }
      ann.instances.push_back(std::move(inst));
    }
  }
  if (outcome.patterns_skipped != 0) {
    perf::count_vf2_pattern_skips(outcome.patterns_skipped);
  }
  ann.truncated = outcome.truncated;
  return ann;
}

void instantiate_annotation(const CircuitGraph& g,
                            const PrimitiveLibrary& library,
                            const CachedAnnotation& ann,
                            std::vector<PrimitiveInstance>& out) {
  out.reserve(ann.instances.size());
  for (const CachedInstance& ci : ann.instances) {
    const PrimitiveSpec& spec = library.spec(ci.library_index);
    PrimitiveInstance inst;
    inst.type = spec.name;
    inst.display_name = spec.display_name;
    inst.library_index = ci.library_index;
    inst.elements = ci.elements;
    for (const auto& [pname, tv] : ci.net_binding) {
      inst.net_binding[pname] = tv;
    }
    std::map<std::string, std::string> device_name_map;
    for (const auto& [pname, tv] : ci.device_binding) {
      device_name_map[pname] = g.vertex(tv).name;
    }
    for (const auto& tmpl : spec.constraint_templates) {
      constraints::Constraint c;
      c.kind = tmpl.kind;
      for (const auto& member : tmpl.members) {
        if (tmpl.members_are_nets) {
          auto it = inst.net_binding.find(member);
          if (it != inst.net_binding.end()) {
            c.members.push_back(g.vertex(it->second).name);
          }
        } else {
          auto it = device_name_map.find(member);
          if (it != device_name_map.end()) c.members.push_back(it->second);
        }
      }
      c.tag = spec.name + "@" + std::to_string(out.size());
      inst.constraints.push_back(std::move(c));
    }
    out.push_back(std::move(inst));
  }
}

std::uint64_t annotation_cache_key(const CircuitGraph& g,
                                   const PrimitiveLibrary& library,
                                   const AnnotateOptions& options) {
  std::uint64_t h = graph::structural_hash(g);
  h = graph::hash_combine(h, library.size());
  for (std::size_t li : library.priority_order()) {
    const PrimitiveSpec& spec = library.spec(li);
    h = graph::hash_combine(h, graph::structural_hash(spec.graph));
    h = graph::hash_combine(
        h, static_cast<std::uint64_t>(static_cast<std::int64_t>(spec.priority)));
  }
  h = graph::hash_combine(h, options.allow_overlap ? 1 : 0);
  std::vector<std::size_t> filter = options.element_filter;
  std::sort(filter.begin(), filter.end());
  h = graph::hash_combine(h, filter.size());
  for (std::size_t v : filter) h = graph::hash_combine(h, v);
  h = graph::hash_combine(h, options.match.max_matches);
  h = graph::hash_combine(h, options.match.max_states);
  h = graph::hash_combine(h, options.match.dedup_by_elements ? 1 : 0);
  h = graph::hash_combine(h, static_cast<std::uint64_t>(options.match.engine));
  return h;
}

AnnotateOutcome annotate_primitives_guarded(const CircuitGraph& g,
                                            const PrimitiveLibrary& library,
                                            const AnnotateOptions& options) {
  AnnotateOutcome outcome;
  // Wall-clock truncation points are machine-dependent; never share them.
  const bool cacheable =
      options.cache != nullptr && options.match.max_seconds == 0.0;
  std::uint64_t key = 0;
  std::shared_ptr<const CachedAnnotation> ann;
  if (cacheable) {
    key = annotation_cache_key(g, library, options);
    ann = options.cache->find(key);
  }
  if (ann != nullptr) {
    outcome.cache_hit = true;
    outcome.truncated = ann->truncated;
  } else {
    auto fresh = std::make_shared<CachedAnnotation>(
        compute_annotation(g, library, options, outcome));
    // On an insert race the first entry wins; both workers computed
    // identical records, so instantiating from either is equivalent.
    ann = cacheable ? options.cache->insert(key, std::move(fresh))
                    : std::move(fresh);
  }
  instantiate_annotation(g, library, *ann, outcome.primitives);
  return outcome;
}

std::vector<PrimitiveInstance> annotate_primitives(
    const CircuitGraph& g, const PrimitiveLibrary& library,
    const AnnotateOptions& options) {
  return annotate_primitives_guarded(g, library, options).primitives;
}

std::vector<std::size_t> unclaimed_elements(
    const CircuitGraph& g, const std::vector<PrimitiveInstance>& found) {
  std::vector<bool> claimed(g.vertex_count(), false);
  for (const auto& inst : found) {
    for (std::size_t v : inst.elements) claimed[v] = true;
  }
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (g.vertex(v).kind == VertexKind::Element && !claimed[v]) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace gana::primitives
