#include "primitives/annotator.hpp"

#include <algorithm>
#include <set>

#include "isomorph/vf2.hpp"

namespace gana::primitives {

using graph::CircuitGraph;
using graph::VertexKind;

AnnotateOutcome annotate_primitives_guarded(const CircuitGraph& g,
                                            const PrimitiveLibrary& library,
                                            const AnnotateOptions& options) {
  AnnotateOutcome outcome;
  std::vector<PrimitiveInstance>& out = outcome.primitives;
  std::vector<bool> claimed(g.vertex_count(), false);
  std::set<std::size_t> filter(options.element_filter.begin(),
                               options.element_filter.end());
  auto in_scope = [&](std::size_t v) {
    return filter.empty() || filter.count(v) > 0;
  };

  for (std::size_t li : library.priority_order()) {
    const PrimitiveSpec& spec = library.spec(li);
    iso::MatchStats stats;
    const auto matches =
        iso::find_subgraph_matches(spec.pattern(), g, options.match, &stats);
    outcome.truncated = outcome.truncated || stats.truncated;
    outcome.vf2_states += stats.states;
    for (const auto& m : matches) {
      // Collect matched target elements; reject if out of scope or
      // already claimed by a higher-priority primitive.
      std::vector<std::size_t> elements;
      bool ok = true;
      for (std::size_t pv = 0; pv < m.map.size(); ++pv) {
        if (spec.graph.vertex(pv).kind != VertexKind::Element) continue;
        const std::size_t tv = m.map[pv];
        if (!in_scope(tv) || (!options.allow_overlap && claimed[tv])) {
          ok = false;
          break;
        }
        elements.push_back(tv);
      }
      if (!ok) continue;

      PrimitiveInstance inst;
      inst.type = spec.name;
      inst.display_name = spec.display_name;
      inst.library_index = li;
      inst.elements = elements;
      std::sort(inst.elements.begin(), inst.elements.end());

      // Record net bindings and build the pattern-device -> target-device
      // name map for constraint instantiation.
      std::map<std::string, std::string> device_name_map;
      for (std::size_t pv = 0; pv < m.map.size(); ++pv) {
        const auto& pvert = spec.graph.vertex(pv);
        if (pvert.kind == VertexKind::Net) {
          inst.net_binding[pvert.name] = m.map[pv];
        } else {
          device_name_map[pvert.name] = g.vertex(m.map[pv]).name;
        }
      }
      for (const auto& tmpl : spec.constraint_templates) {
        constraints::Constraint c;
        c.kind = tmpl.kind;
        for (const auto& member : tmpl.members) {
          if (tmpl.members_are_nets) {
            auto it = inst.net_binding.find(member);
            if (it != inst.net_binding.end()) {
              c.members.push_back(g.vertex(it->second).name);
            }
          } else {
            auto it = device_name_map.find(member);
            if (it != device_name_map.end()) c.members.push_back(it->second);
          }
        }
        c.tag = spec.name + "@" + std::to_string(out.size());
        inst.constraints.push_back(std::move(c));
      }

      if (!options.allow_overlap) {
        for (std::size_t tv : inst.elements) claimed[tv] = true;
      }
      out.push_back(std::move(inst));
    }
  }
  return outcome;
}

std::vector<PrimitiveInstance> annotate_primitives(
    const CircuitGraph& g, const PrimitiveLibrary& library,
    const AnnotateOptions& options) {
  return annotate_primitives_guarded(g, library, options).primitives;
}

std::vector<std::size_t> unclaimed_elements(
    const CircuitGraph& g, const std::vector<PrimitiveInstance>& found) {
  std::vector<bool> claimed(g.vertex_count(), false);
  for (const auto& inst : found) {
    for (std::size_t v : inst.elements) claimed[v] = true;
  }
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (g.vertex(v).kind == VertexKind::Element && !claimed[v]) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace gana::primitives
