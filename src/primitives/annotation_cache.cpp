#include "primitives/annotation_cache.hpp"

#include "util/perf.hpp"

namespace gana::primitives {

std::shared_ptr<const CachedAnnotation> AnnotationCache::find(
    std::uint64_t key) {
  std::shared_ptr<const CachedAnnotation> ann = cache_.find(key);
  if (ann == nullptr) {
    perf::count_annotation_cache_miss();
  } else {
    perf::count_annotation_cache_hit();
  }
  return ann;
}

std::shared_ptr<const CachedAnnotation> AnnotationCache::insert(
    std::uint64_t key, std::shared_ptr<const CachedAnnotation> ann) {
  return cache_.insert(key, std::move(ann));
}

AnnotationCache::Stats AnnotationCache::stats() const { return cache_.stats(); }

void AnnotationCache::clear() { cache_.clear(); }

}  // namespace gana::primitives
