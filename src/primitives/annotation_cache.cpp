#include "primitives/annotation_cache.hpp"

#include "util/perf.hpp"

namespace gana::primitives {

std::shared_ptr<const CachedAnnotation> AnnotationCache::find(
    std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    perf::count_annotation_cache_miss();
    return nullptr;
  }
  ++hits_;
  perf::count_annotation_cache_hit();
  return it->second;
}

std::shared_ptr<const CachedAnnotation> AnnotationCache::insert(
    std::uint64_t key, std::shared_ptr<const CachedAnnotation> ann) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map_.try_emplace(key, std::move(ann));
  return it->second;
}

AnnotationCache::Stats AnnotationCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {hits_, misses_, map_.size()};
}

void AnnotationCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace gana::primitives
