// Primitive annotation: exact subgraph matching against the library
// (paper §IV-A) plus constraint instantiation (§IV-B).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "graph/circuit_graph.hpp"
#include "isomorph/vf2.hpp"
#include "primitives/constraint.hpp"
#include "primitives/library.hpp"

namespace gana::primitives {

/// One recognized primitive occurrence in a circuit graph.
struct PrimitiveInstance {
  std::string type;          ///< library name, e.g. "cm_n2"
  std::string display_name;  ///< e.g. "CM-N(2)"
  std::size_t library_index = 0;
  /// Target element vertex ids covered by this instance, sorted.
  std::vector<std::size_t> elements;
  /// Pattern net name -> target net vertex id (ports and internal nets).
  std::map<std::string, std::size_t> net_binding;
  /// Constraints instantiated from the library templates, with members
  /// rebound to target device names.
  std::vector<constraints::Constraint> constraints;
};

struct AnnotateOptions {
  /// When false (default) each element belongs to at most one primitive;
  /// matches are accepted greedily in library priority order.
  bool allow_overlap = false;
  /// Restrict annotation to these element vertex ids (empty = all).
  std::vector<std::size_t> element_filter;
  /// Per-pattern VF2 resource budget. On adversarial graphs the search
  /// truncates deterministically instead of hanging; the outcome reports
  /// it so callers can surface a partial-annotation warning.
  iso::MatchOptions match;
};

/// Primitive annotation plus the resource outcome of the VF2 sweeps.
struct AnnotateOutcome {
  std::vector<PrimitiveInstance> primitives;
  /// True when at least one library pattern's search hit its budget; the
  /// primitive list is then a (deterministic) partial annotation.
  bool truncated = false;
  /// Total VF2 states explored across all library patterns.
  std::size_t vf2_states = 0;
};

/// Finds all primitive instances in `g`. Deterministic: library priority
/// order, then VF2 enumeration order; budget truncation points depend
/// only on the inputs.
AnnotateOutcome annotate_primitives_guarded(
    const graph::CircuitGraph& g, const PrimitiveLibrary& library,
    const AnnotateOptions& options = {});

/// Convenience wrapper discarding the resource outcome.
std::vector<PrimitiveInstance> annotate_primitives(
    const graph::CircuitGraph& g, const PrimitiveLibrary& library,
    const AnnotateOptions& options = {});

/// Elements of `g` not covered by any instance in `found`.
std::vector<std::size_t> unclaimed_elements(
    const graph::CircuitGraph& g,
    const std::vector<PrimitiveInstance>& found);

}  // namespace gana::primitives
