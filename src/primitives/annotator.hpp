// Primitive annotation: exact subgraph matching against the library
// (paper §IV-A) plus constraint instantiation (§IV-B).
//
// The sweep over library patterns is accelerated three ways, none of
// which may change the accepted primitive set:
//  * a per-circuit iso::CandidateIndex is built once and shared across
//    all patterns (and worker threads);
//  * a counting filter skips patterns whose device-type/edge-label/rail
//    requirements the circuit cannot meet (a sound necessary condition,
//    see candidate_index.hpp);
//  * with a ThreadPool attached, patterns are matched in parallel and
//    the per-pattern match lists are merged sequentially in canonical
//    (library priority, element-key) order, so greedy acceptance is
//    bit-identical to the sequential sweep at any thread count.
// An optional AnnotationCache keyed by the circuit's structural hash
// lets structurally identical circuits (batch copies of one cell) pay
// for a single sweep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/circuit_graph.hpp"
#include "isomorph/candidate_index.hpp"
#include "isomorph/vf2.hpp"
#include "primitives/annotation_cache.hpp"
#include "primitives/constraint.hpp"
#include "primitives/library.hpp"

namespace gana {
class ThreadPool;
}

namespace gana::primitives {

/// One recognized primitive occurrence in a circuit graph.
struct PrimitiveInstance {
  std::string type;          ///< library name, e.g. "cm_n2"
  std::string display_name;  ///< e.g. "CM-N(2)"
  std::size_t library_index = 0;
  /// Target element vertex ids covered by this instance, sorted.
  std::vector<std::size_t> elements;
  /// Pattern net name -> target net vertex id (ports and internal nets).
  std::map<std::string, std::size_t> net_binding;
  /// Constraints instantiated from the library templates, with members
  /// rebound to target device names.
  std::vector<constraints::Constraint> constraints;
};

struct AnnotateOptions {
  /// When false (default) each element belongs to at most one primitive;
  /// matches are accepted greedily in library priority order.
  bool allow_overlap = false;
  /// Restrict annotation to these element vertex ids (empty = all).
  std::vector<std::size_t> element_filter;
  /// Per-pattern VF2 resource budget. On adversarial graphs the search
  /// truncates deterministically instead of hanging; the outcome reports
  /// it so callers can surface a partial-annotation warning.
  iso::MatchOptions match;
  /// When non-null (and the calling thread is not already a pool
  /// worker), library patterns are matched in parallel on this pool.
  /// Never affects results: acceptance runs on the merged lists in the
  /// same canonical order the sequential sweep uses. Not owned.
  ThreadPool* pool = nullptr;
  /// When non-null, annotations are shared across structurally identical
  /// circuits through this cache. Ignored when `match.max_seconds` is
  /// set (wall-clock truncation points are machine-dependent, so such
  /// results must not be shared). Not owned.
  AnnotationCache* cache = nullptr;
};

/// Primitive annotation plus the resource outcome of the VF2 sweeps.
/// The work counters (`vf2_states`, `sig_rejections`,
/// `patterns_skipped`) describe work done by *this call*: on a cache
/// hit they are zero, while `truncated` still reports the cached
/// annotation's flag (it is a property of the result, not of the call).
struct AnnotateOutcome {
  std::vector<PrimitiveInstance> primitives;
  /// True when at least one library pattern's search hit its budget; the
  /// primitive list is then a (deterministic) partial annotation.
  bool truncated = false;
  /// Total VF2 states explored across all library patterns.
  std::size_t vf2_states = 0;
  /// Candidates rejected by the signature lookahead (Indexed engine).
  std::size_t sig_rejections = 0;
  /// Library patterns skipped by the counting filter.
  std::size_t patterns_skipped = 0;
  /// True when the annotation was served from `options.cache`.
  bool cache_hit = false;
};

/// Finds all primitive instances in `g`. Deterministic: library priority
/// order, then canonical element-key order within each pattern; budget
/// truncation points depend only on the inputs (and the chosen engine),
/// never on thread count or cache state.
AnnotateOutcome annotate_primitives_guarded(
    const graph::CircuitGraph& g, const PrimitiveLibrary& library,
    const AnnotateOptions& options = {});

/// Convenience wrapper discarding the resource outcome.
std::vector<PrimitiveInstance> annotate_primitives(
    const graph::CircuitGraph& g, const PrimitiveLibrary& library,
    const AnnotateOptions& options = {});

/// Elements of `g` not covered by any instance in `found`.
std::vector<std::size_t> unclaimed_elements(
    const graph::CircuitGraph& g,
    const std::vector<PrimitiveInstance>& found);

/// Matching-stage result for one library pattern. Produced read-only
/// from (spec, g, index), so patterns can run on any thread.
struct PatternMatchList {
  std::vector<iso::Match> matches;  ///< sorted by (element key, map)
  iso::MatchStats stats;
  bool skipped = false;  ///< cut by the counting filter
};

/// Runs the matching stage for one library pattern against `g`:
/// counting filter, VF2 enumeration, then the canonical
/// (element-key, map) sort greedy acceptance relies on. Exposed for the
/// incremental session engine, which substitutes per-region cached
/// match lists for some patterns and must feed the shared acceptance
/// pass lists with exactly this ordering.
PatternMatchList match_library_pattern(const PrimitiveSpec& spec,
                                       const graph::CircuitGraph& g,
                                       const iso::CandidateIndex& index,
                                       const iso::MatchOptions& match_options);

/// Greedy acceptance over per-pattern match lists: walks `order`
/// (library priority order, `lists` parallel to it) and accepts matches
/// first-come within each list, skipping elements already claimed (or
/// outside `options.element_filter`). Fills the work counters of
/// `outcome` from the per-list stats. This is the sequencing that makes
/// the sweep deterministic -- every matching strategy (sequential,
/// pattern-parallel, per-region cached) funnels through it.
CachedAnnotation accept_pattern_matches(const graph::CircuitGraph& g,
                                        const PrimitiveLibrary& library,
                                        const std::vector<std::size_t>& order,
                                        const std::vector<PatternMatchList>& lists,
                                        const AnnotateOptions& options,
                                        AnnotateOutcome& outcome);

/// Expands binding-level records into full PrimitiveInstances against
/// this circuit's names. Pure string assembly; this is all a cache hit
/// pays for.
void instantiate_annotation(const graph::CircuitGraph& g,
                            const PrimitiveLibrary& library,
                            const CachedAnnotation& ann,
                            std::vector<PrimitiveInstance>& out);

/// The AnnotationCache key for annotating `g` against `library` under
/// `options`: the circuit's structural hash folded with a library
/// fingerprint (per-spec pattern structural hashes and priorities, in
/// priority order) and every option that can change the accepted set
/// (overlap mode, element filter, VF2 budgets, engine). Thread count and
/// cache attachment are deliberately excluded -- they never change
/// results. Exposed for tests.
[[nodiscard]] std::uint64_t annotation_cache_key(
    const graph::CircuitGraph& g, const PrimitiveLibrary& library,
    const AnnotateOptions& options);

}  // namespace gana::primitives
