// Layout constraint records (paper §III-C, §IV-B).
//
// Recognized structures carry geometric constraints: a differential pair
// demands symmetry/matching, capacitor arrays demand common-centroid
// placement, RF blocks demand guard rings and antenna proximity. The
// primitive library attaches these templates at match time; hierarchy
// construction propagates and merges them (common symmetry axes).
#pragma once

#include <string>
#include <vector>

namespace gana::constraints {

enum class Kind {
  Symmetry,        ///< mirror placement of two devices about an axis
  Matching,        ///< identical device geometry/orientation
  CommonCentroid,  ///< interdigitated common-centroid array
  Proximity,       ///< keep close to a named port (e.g. the antenna)
  GuardRing,       ///< isolation ring around the block
  MinWireLength,   ///< parasitic-sensitive nets (wireless circuits)
  SymmetricNets,   ///< route the two named nets as mirror images
};

[[nodiscard]] const char* to_string(Kind k);

/// One constraint over named devices/blocks.
struct Constraint {
  Kind kind = Kind::Matching;
  /// Device or block names the constraint applies to. For Symmetry the
  /// first two entries are the mirrored pair; a self-symmetric device may
  /// appear once.
  std::vector<std::string> members;
  /// Axis identifier for Symmetry (symmetry axes with equal ids merge
  /// during propagation); free-form annotation otherwise.
  std::string tag;
};

/// Pretty-printer, e.g. "symmetry{m0, m1} axis=dp0".
std::string to_string(const Constraint& c);

}  // namespace gana::constraints
