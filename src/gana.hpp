// GANA: Graph Convolutional Network Based Automated Netlist Annotation
// for Analog Circuits -- umbrella header.
//
// Reproduction of Kunal et al., DATE 2020. See README.md / DESIGN.md.
//
// Typical usage:
//
//   auto circuits = gana::datagen::make_ota_dataset({.circuits = 624});
//   auto samples  = gana::core::make_gcn_samples(circuits, 0, 1);
//   gana::gcn::GcnModel model({.num_classes = 2});
//   gana::gcn::train(model, train, val, {});
//   gana::core::Annotator annotator(&model, {"ota", "bias"});
//   auto result = annotator.annotate(some_netlist, "my_circuit");
//   std::cout << gana::core::to_string(result.hierarchy);
#pragma once

#include "core/batch_runner.hpp"  // IWYU pragma: export
#include "core/constraints.hpp"   // IWYU pragma: export
#include "core/export.hpp"        // IWYU pragma: export
#include "core/features.hpp"      // IWYU pragma: export
#include "core/hierarchy.hpp"     // IWYU pragma: export
#include "core/pipeline.hpp"      // IWYU pragma: export
#include "core/postprocess.hpp"   // IWYU pragma: export
#include "datagen/dataset.hpp"    // IWYU pragma: export
#include "datagen/extras.hpp"     // IWYU pragma: export
#include "datagen/ota_gen.hpp"    // IWYU pragma: export
#include "datagen/phased_array.hpp"  // IWYU pragma: export
#include "datagen/rf_gen.hpp"     // IWYU pragma: export
#include "datagen/sc_filter.hpp"  // IWYU pragma: export
#include "gcn/metrics.hpp"        // IWYU pragma: export
#include "gcn/model.hpp"          // IWYU pragma: export
#include "gcn/serialize.hpp"      // IWYU pragma: export
#include "gcn/trainer.hpp"        // IWYU pragma: export
#include "graph/builder.hpp"      // IWYU pragma: export
#include "graph/ccc.hpp"          // IWYU pragma: export
#include "graph/laplacian.hpp"    // IWYU pragma: export
#include "incremental/session.hpp"  // IWYU pragma: export
#include "isomorph/equivalence.hpp"  // IWYU pragma: export
#include "isomorph/vf2.hpp"       // IWYU pragma: export
#include "layout/placer.hpp"      // IWYU pragma: export
#include "layout/svg.hpp"         // IWYU pragma: export
#include "primitives/annotator.hpp"  // IWYU pragma: export
#include "primitives/library.hpp"    // IWYU pragma: export
#include "spice/flatten.hpp"      // IWYU pragma: export
#include "spice/parser.hpp"       // IWYU pragma: export
#include "spice/preprocess.hpp"   // IWYU pragma: export
#include "spice/writer.hpp"       // IWYU pragma: export
