// SPICE netlist emission (round-tripping support).
#pragma once

#include <string>

#include "spice/netlist.hpp"

namespace gana::spice {

/// Renders a netlist back to SPICE text. The output parses back to an
/// equivalent netlist (same devices, nets, subckts, labels).
std::string write_netlist(const Netlist& netlist);

}  // namespace gana::spice
