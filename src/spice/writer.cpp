#include "spice/writer.hpp"

#include <sstream>

namespace gana::spice {
namespace {

char card_letter(DeviceType t) {
  switch (t) {
    case DeviceType::Nmos:
    case DeviceType::Pmos: return 'm';
    case DeviceType::Resistor: return 'r';
    case DeviceType::Capacitor: return 'c';
    case DeviceType::Inductor: return 'l';
    case DeviceType::VSource: return 'v';
    case DeviceType::ISource: return 'i';
  }
  return 'x';
}

void write_device(std::ostringstream& out, const Device& d) {
  // SPICE derives the card type from the first letter of the name;
  // flattened/prefixed names ("bias/i0") need the canonical letter
  // restored so the output parses back.
  const char letter = card_letter(d.type);
  if (d.name.empty() || d.name.front() != letter) out << letter;
  out << d.name;
  for (const auto& p : d.pins) out << ' ' << p;
  if (is_mos(d.type)) {
    out << ' ' << (d.model.empty() ? to_string(d.type) : d.model);
  } else {
    out << ' ' << d.value;
  }
  for (const auto& [k, v] : d.params) out << ' ' << k << '=' << v;
  out << '\n';
}

void write_instance(std::ostringstream& out, const Instance& inst) {
  out << inst.name;
  for (const auto& n : inst.nets) out << ' ' << n;
  out << ' ' << inst.subckt << '\n';
}

}  // namespace

std::string write_netlist(const Netlist& netlist) {
  std::ostringstream out;
  out << (netlist.title.empty() ? "* gana netlist" : netlist.title) << '\n';
  if (!netlist.globals.empty()) {
    out << ".global";
    for (const auto& g : netlist.globals) out << ' ' << g;
    out << '\n';
  }
  for (const auto& [net, label] : netlist.port_labels) {
    out << ".portlabel " << net << ' ' << to_string(label) << '\n';
  }
  for (const auto& [name, def] : netlist.subckts) {
    out << ".subckt " << name;
    for (const auto& p : def.ports) out << ' ' << p;
    out << '\n';
    for (const auto& d : def.devices) write_device(out, d);
    for (const auto& i : def.instances) write_instance(out, i);
    out << ".ends\n";
  }
  for (const auto& d : netlist.devices) write_device(out, d);
  for (const auto& i : netlist.instances) write_instance(out, i);
  out << ".end\n";
  return out.str();
}

}  // namespace gana::spice
