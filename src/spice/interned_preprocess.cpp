// Id-space preprocessing (see interned.hpp for the contract).
//
// Mirrors preprocess.cpp pass for pass. Two ordering rules carried over
// from the Reference implementation are load-bearing for bit-identical
// output:
//  * merge_series visits internal nets in net-NAME order (the Reference
//    iterates Netlist::connectivity(), a std::map keyed by name), so the
//    id-space pass sorts candidate net ids by their interned bytes;
//  * merge_parallel only relies on key EQUALITY (the Reference keeps the
//    first device per key and never iterates its key map), so canonical
//    drain/source ordering by id is equivalent to ordering by name.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "spice/interned.hpp"

namespace gana::spice {
namespace {

/// splitmix64-style mixing for the parallel-merge hash key.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h += 0x9e3779b97f4a7c15ull + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

/// Connection key for parallel-merge: devices with equal keys are
/// electrically parallel. MOS drain/source are interchangeable, so the
/// (d, s) pair is ordered canonically (by id; equality-equivalent to the
/// Reference's by-name ordering).
struct ParallelKey {
  DeviceType type = DeviceType::Nmos;
  SymbolId model = kNoSymbol;
  std::array<SymbolId, 4> pins{kNoSymbol, kNoSymbol, kNoSymbol, kNoSymbol};

  bool operator==(const ParallelKey& o) const {
    return type == o.type && model == o.model && pins == o.pins;
  }
};

struct ParallelKeyHash {
  std::size_t operator()(const ParallelKey& k) const {
    std::uint64_t h = static_cast<std::uint64_t>(k.type);
    h = mix(h, static_cast<std::uint64_t>(k.model));
    for (const SymbolId p : k.pins) {
      h = mix(h, static_cast<std::uint64_t>(p));
    }
    return static_cast<std::size_t>(h);
  }
};

ParallelKey parallel_key(const InternedDevice& d) {
  ParallelKey key;
  key.type = d.type;
  key.model = d.model;
  if (is_mos(d.type)) {
    SymbolId a = d.pins[kDrain], b = d.pins[kSource];
    if (a > b) std::swap(a, b);
    key.pins = {a, d.pins[kGate], b, d.pins[kBody]};
  } else {
    SymbolId a = d.pins[0], b = d.pins[1];
    if (a > b) std::swap(a, b);
    key.pins[0] = a;
    key.pins[1] = b;
  }
  return key;
}

class InternedPreprocessor {
 public:
  InternedPreprocessor(InternedNetlist& netlist,
                       const PreprocessOptions& options)
      : netlist_(netlist), options_(options), rails_(netlist.syms) {
    m_key_ = netlist_.syms.intern("m");
    l_key_ = netlist_.syms.intern("l");
    for (const auto& [net, label] : netlist_.port_labels) {
      (void)label;
      protected_.insert(net);
    }
    for (const SymbolId g : netlist_.globals) protected_.insert(g);
  }

  PreprocessReport run() {
    if (!netlist_.is_flat()) {
      throw NetlistError(make_diag(DiagCode::NotFlat, Stage::Preprocess,
                                   "preprocess requires a flattened netlist"));
    }
    bool changed = true;
    while (changed) {
      changed = false;
      if (options_.remove_decaps) changed |= remove_decaps_pass();
      if (options_.remove_dummies) changed |= remove_dummies_pass();
      if (options_.merge_parallel) changed |= merge_parallel_pass();
      if (options_.merge_series) changed |= merge_series_pass();
    }
    netlist_.syms.flush_stats();
    return std::move(report_);
  }

 private:
  [[nodiscard]] std::string name_of(SymbolId id) const {
    return std::string(netlist_.syms.name(id));
  }

  bool is_dummy_mos(const InternedDevice& d) {
    if (!is_mos(d.type)) return false;
    const auto& p = d.pins;
    // Shorted channel: source tied to drain.
    if (p[kDrain] == p[kSource]) return true;
    // All channel terminals parked on rails (classic fill dummy).
    if (rails_.rail(p[kDrain]) && rails_.rail(p[kGate]) &&
        rails_.rail(p[kSource])) {
      return true;
    }
    // Gate tied to its own source (device permanently off) with drain on a
    // rail: edge dummy.
    if (p[kGate] == p[kSource] && rails_.rail(p[kDrain])) return true;
    return false;
  }

  bool is_decap(const InternedDevice& d) {
    if (d.type != DeviceType::Capacitor) return false;
    const auto& p = d.pins;
    if (p[0] == p[1]) return true;
    return rails_.rail(p[0]) && rails_.rail(p[1]);
  }

  template <typename Pred>
  bool remove_if_pass(Pred pred, bool decap) {
    auto& devs = netlist_.devices;
    const std::size_t before = devs.size();
    std::vector<InternedDevice> kept;
    kept.reserve(devs.size());
    for (auto& d : devs) {
      if (pred(d)) {
        report_.alias[name_of(d.name)] = "";
      } else {
        kept.push_back(std::move(d));
      }
    }
    devs = std::move(kept);
    const std::size_t removed = before - devs.size();
    (decap ? report_.removed_decaps : report_.removed_dummies) += removed;
    return removed > 0;
  }

  bool remove_decaps_pass() {
    return remove_if_pass([&](const InternedDevice& d) { return is_decap(d); },
                          true);
  }
  bool remove_dummies_pass() {
    return remove_if_pass(
        [&](const InternedDevice& d) { return is_dummy_mos(d); }, false);
  }

  bool merge_parallel_pass() {
    auto& devs = netlist_.devices;
    std::unordered_map<ParallelKey, std::size_t, ParallelKeyHash> first_by_key;
    std::vector<bool> drop(devs.size(), false);
    bool changed = false;
    for (std::size_t i = 0; i < devs.size(); ++i) {
      auto [it, inserted] = first_by_key.emplace(parallel_key(devs[i]), i);
      if (inserted) continue;
      InternedDevice& keep = devs[it->second];
      keep.param(m_key_) = multiplicity(keep) + multiplicity(devs[i]);
      if (keep.type == DeviceType::Capacitor ||
          keep.type == DeviceType::ISource) {
        keep.value += devs[i].value;  // parallel caps/currents add
      }
      report_.alias[name_of(devs[i].name)] = name_of(keep.name);
      drop[i] = true;
      ++report_.merged_parallel;
      changed = true;
    }
    if (changed) erase_marked(drop);
    return changed;
  }

  [[nodiscard]] double multiplicity(const InternedDevice& d) const {
    const double* m = d.find_param(m_key_);
    return m == nullptr ? 1.0 : *m;
  }

  bool merge_series_pass() {
    auto& devs = netlist_.devices;
    // net id -> (device index, pin index), in device/pin order -- the
    // same touch lists Netlist::connectivity() builds.
    std::unordered_map<SymbolId,
                       std::vector<std::pair<std::size_t, std::size_t>>>
        conn;
    for (std::size_t di = 0; di < devs.size(); ++di) {
      const auto& pins = devs[di].pins;
      for (std::size_t pi = 0; pi < pins.size(); ++pi) {
        conn[pins[pi]].push_back({di, pi});
      }
    }
    // The Reference iterates a std::map keyed by net NAME; merges mutate
    // device pins as the loop runs, so the visit order is observable.
    // Sort the candidate net ids by their interned bytes to match.
    std::vector<SymbolId> nets;
    nets.reserve(conn.size());
    for (const auto& [net, touches] : conn) {
      (void)touches;
      nets.push_back(net);
    }
    std::sort(nets.begin(), nets.end(), [&](SymbolId a, SymbolId b) {
      return netlist_.syms.name(a) < netlist_.syms.name(b);
    });

    std::vector<bool> drop(devs.size(), false);
    bool changed = false;
    for (const SymbolId net : nets) {
      const auto& touches = conn[net];
      if (touches.size() != 2) continue;  // internal node only
      if (rails_.rail(net) || protected_.count(net) != 0) continue;
      const auto [di, pi] = touches[0];
      const auto [dj, pj] = touches[1];
      if (di == dj || drop[di] || drop[dj]) continue;
      InternedDevice& a = devs[di];
      InternedDevice& b = devs[dj];
      if (a.type != b.type) continue;

      if (is_mos(a.type)) {
        // Series stack: the shared net is a channel terminal of both, the
        // gates are tied together, and the bodies match.
        const bool a_chan = (pi == kDrain || pi == kSource);
        const bool b_chan = (pj == kDrain || pj == kSource);
        if (!a_chan || !b_chan) continue;
        if (a.pins[kGate] != b.pins[kGate]) continue;
        if (a.pins[kBody] != b.pins[kBody]) continue;
        if (a.model != b.model) continue;
        // Outer terminals replace the merged channel.
        const std::size_t b_other = (pj == kDrain) ? kSource : kDrain;
        a.pins[pi] = b.pins[b_other];
        // Stacked devices emulate a longer channel.
        double* al = find_param_mut(a, l_key_);
        const double* bl = b.find_param(l_key_);
        if (al != nullptr && bl != nullptr) *al += *bl;
        report_.alias[name_of(b.name)] = name_of(a.name);
        drop[dj] = true;
        ++report_.merged_series;
        changed = true;
      } else if (a.type == DeviceType::Resistor) {
        a.pins[pi] = b.pins[1 - pj];
        a.value += b.value;
        report_.alias[name_of(b.name)] = name_of(a.name);
        drop[dj] = true;
        ++report_.merged_series;
        changed = true;
      }
    }
    if (changed) erase_marked(drop);
    return changed;
  }

  static double* find_param_mut(InternedDevice& d, SymbolId key) {
    for (auto& p : d.params) {
      if (p.key == key) return &p.value;
    }
    return nullptr;
  }

  void erase_marked(const std::vector<bool>& drop) {
    auto& devs = netlist_.devices;
    std::vector<InternedDevice> kept;
    kept.reserve(devs.size());
    for (std::size_t i = 0; i < devs.size(); ++i) {
      if (!drop[i]) kept.push_back(std::move(devs[i]));
    }
    devs = std::move(kept);
  }

  InternedNetlist& netlist_;
  const PreprocessOptions& options_;
  PreprocessReport report_;
  NetClassCache rails_;
  std::unordered_set<SymbolId> protected_;
  SymbolId m_key_ = kNoSymbol;
  SymbolId l_key_ = kNoSymbol;
};

}  // namespace

PreprocessReport preprocess_interned(InternedNetlist& netlist,
                                     const PreprocessOptions& options) {
  return InternedPreprocessor(netlist, options).run();
}

}  // namespace gana::spice
