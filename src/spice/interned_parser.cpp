// Zero-copy parser fast path (see interned.hpp for the contract).
//
// The Reference parser (parser.cpp) copies every line out of an
// istringstream and every token out of every line. This implementation
// makes exactly one pass-sized allocation -- a lower-cased copy of the
// whole input -- and lexes `std::string_view` tokens straight out of it.
// Logical lines are sequences of physical-line segments (the Reference
// joins continuations with ' ', so no token ever spans a segment
// boundary); the only tokens that need materialization are the rare
// "w = 1u" -> "w=1u" merges, which land in a small side buffer.
//
// Every acceptance, rejection, message, and source location must match
// parser.cpp byte-for-byte; when editing one file, mirror the other.
#include <cctype>
#include <cmath>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "spice/interned.hpp"
#include "spice/number.hpp"
#include "spice/parser.hpp"
#include "util/deadline.hpp"
#include "util/perf.hpp"
#include "util/strings.hpp"

namespace gana::spice {
namespace {

/// std::isspace in the C locale, without the per-char function call.
bool is_space(char c) {
  switch (c) {
    case ' ': case '\t': case '\n': case '\v': case '\f': case '\r':
      return true;
    default:
      return false;
  }
}

bool is_param_token(std::string_view t) {
  return t.find('=') != std::string_view::npos;
}

/// One logical line: `count` physical-line segments starting at
/// `first` in the shared segment pool. Continuation segments keep their
/// leading '+' (it reads as the ' ' the Reference join inserts).
struct Logical {
  std::size_t number = 0;       ///< 1-based first physical line
  std::uint32_t first = 0;      ///< index into the segment pool
  std::uint32_t count = 0;
  std::size_t joined_size = 0;  ///< length of the Reference joined text
};

class InternedParser {
 public:
  InternedParser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  InternedNetlist run() {
    perf::count_parse_bytes(text_.size());
    // Same per-request deadline / fault-injection site as the Reference
    // parser (parser.cpp), so both front ends abort at the same points.
    checkpoint(Stage::Parse);
    split_lines();
    std::size_t i = 0;
    // Only the physically-first line can be a title (SPICE convention);
    // anything later that fails to parse is an error, not a title.
    if (!lines_.empty() && lines_[0].number == 1) {
      const std::string joined = join_logical(lines_[0]);
      if (!detail::looks_like_card(joined)) {
        netlist_.title = joined;
        i = 1;
      }
    }
    // First pass: collect .model cards so device typing is order-independent.
    for (std::size_t j = i; j < lines_.size(); ++j) {
      // Cheap gate: only dot-directives can be .model cards, so the
      // prescan never tokenizes device lines.
      if (segs_[lines_[j].first].front() != '.') continue;
      tokenize(lines_[j], tokens_);
      if (tokens_.size() >= 3 && tokens_[0] == ".model") {
        if (tokens_[2] == "pmos") set_model(tokens_[1], DeviceType::Pmos);
        if (tokens_[2] == "nmos") set_model(tokens_[1], DeviceType::Nmos);
      }
    }
    for (; i < lines_.size(); ++i) {
      if ((i & 255u) == 0) check_deadline(Stage::Parse);
      parse_card(lines_[i]);
    }
    if (cur_ != kNoScope) {
      throw ParseError(make_diag(
          DiagCode::SyntaxError, Stage::Parse,
          "unterminated .subckt " +
              std::string(netlist_.syms.name(netlist_.subckts[cur_].name)),
          loc(netlist_.subckts[cur_].src_line)));
    }
    validate_interned(netlist_, options_.source);
    netlist_.syms.flush_stats();
    return std::move(netlist_);
  }

 private:
  static constexpr std::size_t kNoScope = static_cast<std::size_t>(-1);

  [[nodiscard]] SourceLoc loc(std::size_t line_number) const {
    return SourceLoc{options_.source, line_number};
  }

  [[noreturn]] void fail(const Logical& line, DiagCode code,
                         const std::string& what) const {
    std::string shown = join_logical(line);
    if (shown.size() > 120) shown = shown.substr(0, 117) + "...";
    throw ParseError(make_diag(code, Stage::Parse, what + " [" + shown + "]",
                               loc(line.number)));
  }

  [[noreturn]] void fail_limit(std::size_t line_number,
                               const std::string& what) const {
    throw ParseError(make_diag(DiagCode::LimitExceeded, Stage::Parse, what,
                               loc(line_number)));
  }

  /// The logical-line text exactly as the Reference parser holds it:
  /// segments joined with ' ', continuation '+' dropped. Cold path --
  /// only titles and error messages ever materialize it.
  [[nodiscard]] std::string join_logical(const Logical& line) const {
    std::string out{segs_[line.first]};
    for (std::uint32_t s = 1; s < line.count; ++s) {
      std::string_view seg = segs_[line.first + s];
      out.push_back(' ');
      out.append(seg.data() + 1, seg.size() - 1);
    }
    return out;
  }

  /// Splits the lower-cased buffer into comment-stripped, trimmed
  /// logical-line segments, applying the same input-size guards (with
  /// the same messages) as the Reference split_lines.
  void split_lines() {
    const ParseLimits& lim = options_.limits;
    if (lim.max_input_bytes != 0 && text_.size() > lim.max_input_bytes) {
      fail_limit(0, "input is " + std::to_string(text_.size()) +
                        " bytes, limit " + std::to_string(lim.max_input_bytes));
    }
    // The single fast-path allocation: one lower-cased copy of the whole
    // input that every token view points into.
    buf_.resize(text_.size());
    for (std::size_t i = 0; i < text_.size(); ++i) {
      buf_[i] = static_cast<char>(
          std::tolower(static_cast<unsigned char>(text_[i])));
    }
    perf::count_frontend_alloc();

    const std::string_view buf{buf_};
    std::size_t lineno = 0;
    std::size_t pos = 0;
    while (pos < buf.size()) {
      std::size_t nl = buf.find('\n', pos);
      if (nl == std::string_view::npos) nl = buf.size();
      std::string_view raw = buf.substr(pos, nl - pos);
      pos = nl + 1;
      ++lineno;
      if (lim.max_lines != 0 && lineno > lim.max_lines) {
        fail_limit(lineno, "more than " + std::to_string(lim.max_lines) +
                               " lines of input");
      }
      if (lim.max_line_length != 0 && raw.size() > lim.max_line_length) {
        fail_limit(lineno, "line is " + std::to_string(raw.size()) +
                               " bytes, limit " +
                               std::to_string(lim.max_line_length));
      }
      // Strip inline comments ('$' or ';' to end of line).
      const auto cpos = raw.find_first_of("$;");
      if (cpos != std::string_view::npos) raw = raw.substr(0, cpos);
      const std::string_view s = trim(raw);
      if (s.empty()) continue;
      if (s.front() == '*') continue;  // full-line comment
      if (s.front() == '+') {
        if (lines_.empty()) {
          throw ParseError(make_diag(DiagCode::SyntaxError, Stage::Parse,
                                     "continuation with no preceding card",
                                     loc(lineno)));
        }
        Logical& prev = lines_.back();
        if (lim.max_logical_line_length != 0 &&
            prev.joined_size + s.size() > lim.max_logical_line_length) {
          fail_limit(lineno, "continuation chain exceeds " +
                                 std::to_string(lim.max_logical_line_length) +
                                 " bytes");
        }
        segs_.push_back(s);
        ++prev.count;
        prev.joined_size += s.size();  // '+' -> ' ', so length is unchanged
      } else {
        Logical line;
        line.number = lineno;
        line.first = static_cast<std::uint32_t>(segs_.size());
        line.count = 1;
        line.joined_size = s.size();
        segs_.push_back(s);
        lines_.push_back(line);
      }
    }
  }

  /// split_ws across the logical line's segments; tokens are views into
  /// the lower-cased buffer.
  void tokenize(const Logical& line, std::vector<std::string_view>& out) const {
    out.clear();
    for (std::uint32_t s = 0; s < line.count; ++s) {
      std::string_view seg = segs_[line.first + s];
      if (s > 0) seg.remove_prefix(1);  // the '+' joins as a space
      std::size_t i = 0;
      while (i < seg.size()) {
        while (i < seg.size() && is_space(seg[i])) ++i;
        std::size_t j = i;
        while (j < seg.size() && !is_space(seg[j])) ++j;
        if (j > i) out.push_back(seg.substr(i, j - i));
        i = j;
      }
    }
  }

  /// normalize_param_tokens on views: the same merge rules as the
  /// Reference ("w", "=", "1u" / "w=", "1u" / "w", "=1u" -> "w=1u").
  /// Merged tokens have no contiguous source bytes, so they materialize
  /// into `merged_` (cleared per card; interning copies what survives).
  void normalize_tokens(std::vector<std::string_view>& t) {
    norm_.clear();
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i] == "=" && !norm_.empty() && i + 1 < t.size()) {
        ++i;
        merged_.emplace_back(std::string(norm_.back()) + "=" +
                             std::string(t[i]));
        norm_.back() = merged_.back();
      } else if (ends_with(t[i], "=") && i + 1 < t.size()) {
        std::string merged{t[i]};
        ++i;
        merged += t[i];
        merged_.push_back(std::move(merged));
        norm_.push_back(merged_.back());
      } else if (starts_with(t[i], "=") && !norm_.empty()) {
        merged_.emplace_back(std::string(norm_.back()) + std::string(t[i]));
        norm_.back() = merged_.back();
      } else {
        norm_.push_back(t[i]);
      }
    }
    t.swap(norm_);
  }

  void set_model(std::string_view name, DeviceType type) {
    auto it = models_.find(name);
    if (it != models_.end()) {
      it->second = type;
    } else {
      models_.emplace(std::string(name), type);
    }
  }

  DeviceType mos_type_from_model(std::string_view model,
                                 const Logical& line) const {
    auto it = models_.find(model);
    if (it != models_.end()) return it->second;
    // Heuristic fallback on the model name, as used by common PDKs.
    if (model.find("pmos") != std::string_view::npos ||
        model.find("pch") != std::string_view::npos ||
        model.find("pfet") != std::string_view::npos ||
        starts_with(model, "p")) {
      return DeviceType::Pmos;
    }
    if (model.find("nmos") != std::string_view::npos ||
        model.find("nch") != std::string_view::npos ||
        model.find("nfet") != std::string_view::npos ||
        starts_with(model, "n")) {
      return DeviceType::Nmos;
    }
    fail(line, DiagCode::BadValue,
         "cannot infer NMOS/PMOS from model '" + std::string(model) + "'");
  }

  void parse_card(const Logical& line) {
    merged_.clear();
    tokenize(line, tokens_);
    normalize_tokens(tokens_);
    const std::vector<std::string_view>& t = tokens_;
    if (t.empty()) return;
    const std::string_view head = t[0];

    if (head.front() == '.') {
      parse_directive(line, t);
      return;
    }
    switch (head.front()) {
      case 'm': parse_mos(line, t); break;
      case 'r': parse_two_pin(line, t, DeviceType::Resistor); break;
      case 'c': parse_two_pin(line, t, DeviceType::Capacitor); break;
      case 'l': parse_two_pin(line, t, DeviceType::Inductor); break;
      case 'v': parse_source(line, t, DeviceType::VSource); break;
      case 'i': parse_source(line, t, DeviceType::ISource); break;
      case 'x': parse_instance(line, t); break;
      default:
        fail(line, DiagCode::SyntaxError,
             "unrecognized card '" + std::string(head) + "'");
    }
  }

  void parse_directive(const Logical& line,
                       const std::vector<std::string_view>& t) {
    const std::string_view d = t[0];
    if (d == ".subckt") {
      if (cur_ != kNoScope) {
        fail(line, DiagCode::SyntaxError,
             "nested .subckt definitions are not supported");
      }
      if (t.size() < 2) {
        fail(line, DiagCode::SyntaxError, ".subckt needs a name");
      }
      InternedSubckt def;
      def.name = netlist_.syms.intern(t[1]);
      def.src_line = line.number;
      for (std::size_t i = 2; i < t.size(); ++i) {
        if (is_param_token(t[i])) break;  // parameter defaults: ignored
        def.ports.push_back(netlist_.syms.intern(t[i]));
      }
      if (netlist_.find_subckt(def.name) != InternedNetlist::npos) {
        fail(line, DiagCode::DuplicateName,
             "duplicate subckt " + std::string(t[1]));
      }
      cur_ = netlist_.subckts.size();
      netlist_.subckts.push_back(std::move(def));
    } else if (d == ".ends") {
      if (cur_ == kNoScope) {
        fail(line, DiagCode::SyntaxError, ".ends without .subckt");
      }
      cur_ = kNoScope;
    } else if (d == ".global") {
      for (std::size_t i = 1; i < t.size(); ++i) {
        const SymbolId id = netlist_.syms.intern(t[i]);
        bool present = false;
        for (const SymbolId g : netlist_.globals) present |= (g == id);
        if (!present) netlist_.globals.push_back(id);
      }
    } else if (d == ".portlabel") {
      if (t.size() < 3) {
        fail(line, DiagCode::SyntaxError, ".portlabel needs <net> <label>");
      }
      auto label = port_label_from_string(std::string(t[2]));
      if (!label) {
        fail(line, DiagCode::BadValue,
             "unknown port label '" + std::string(t[2]) + "'");
      }
      const SymbolId net = netlist_.syms.intern(t[1]);
      bool found = false;
      for (auto& [id, l] : netlist_.port_labels) {
        if (id == net) {
          l = *label;
          found = true;
        }
      }
      if (!found) netlist_.port_labels.emplace_back(net, *label);
    } else if (d == ".param") {
      // .param name=value [name=value ...]; values may reference
      // previously defined parameters.
      for (std::size_t i = 1; i < t.size(); ++i) {
        std::string_view key, value;
        if (!split_kv(t[i], key, value) || key.empty()) {
          fail(line, DiagCode::SyntaxError,
               "malformed .param entry '" + std::string(t[i]) + "'");
        }
        const auto v = resolve_value(value);
        if (!v) {
          fail(line, DiagCode::BadValue,
               "unresolvable .param value '" + std::string(t[i]) + "'");
        }
        check_finite(*v, line, t[i]);
        auto it = params_.find(key);
        if (it != params_.end()) {
          it->second = *v;
        } else {
          params_.emplace(std::string(key), *v);
        }
      }
    } else if (d == ".model" || d == ".end" ||
               d == ".option" || d == ".options" || d == ".temp" ||
               d == ".include" || d == ".lib" || d == ".op" || d == ".tran" ||
               d == ".ac" || d == ".dc") {
      // Simulation/bookkeeping directives are irrelevant to recognition.
    } else {
      fail(line, DiagCode::UnknownDirective,
           "unsupported directive '" + std::string(d) + "'");
    }
  }

  std::vector<InternedDevice>& device_sink() {
    return cur_ != kNoScope ? netlist_.subckts[cur_].devices
                            : netlist_.devices;
  }
  std::vector<InternedInstance>& instance_sink() {
    return cur_ != kNoScope ? netlist_.subckts[cur_].instances
                            : netlist_.instances;
  }

  /// "key=value" with exactly one '=': mirrors the Reference's
  /// `split(t, '=').size() == 2` acceptance without building strings.
  static bool split_kv(std::string_view t, std::string_view& key,
                       std::string_view& value) {
    const auto eq = t.find('=');
    if (eq == std::string_view::npos) return false;
    if (t.find('=', eq + 1) != std::string_view::npos) return false;
    key = t.substr(0, eq);
    value = t.substr(eq + 1);
    return true;
  }

  /// Numeric literal, or a name defined by a prior .param, or a literal
  /// wrapped in quotes/braces ("{2*w}" is NOT evaluated -- expressions
  /// beyond direct references are unsupported).
  std::optional<double> resolve_value(std::string_view token) const {
    if (auto v = parse_number(token)) return v;
    std::string_view name = token;
    if (name.size() >= 2 && ((name.front() == '\'' && name.back() == '\'') ||
                             (name.front() == '{' && name.back() == '}'))) {
      name = name.substr(1, name.size() - 2);
    }
    auto it = params_.find(name);
    if (it != params_.end()) return it->second;
    return std::nullopt;
  }

  /// Rejects overflowed literals like 1e999 right at the card: a single
  /// Inf would otherwise propagate through features into every GCN
  /// activation of the circuit.
  void check_finite(double v, const Logical& line,
                    std::string_view token) const {
    if (!std::isfinite(v)) {
      fail(line, DiagCode::NonFinite,
           "non-finite value '" + std::string(token) + "'");
    }
  }

  void parse_params(const std::vector<std::string_view>& t, std::size_t from,
                    const Logical& line, InternedDevice& dev) {
    for (std::size_t i = from; i < t.size(); ++i) {
      if (!is_param_token(t[i])) {
        fail(line, DiagCode::SyntaxError,
             "unexpected token '" + std::string(t[i]) + "'");
      }
      std::string_view key, value;
      if (!split_kv(t[i], key, value) || key.empty()) {
        fail(line, DiagCode::SyntaxError,
             "malformed parameter '" + std::string(t[i]) + "'");
      }
      auto v = resolve_value(value);
      if (!v) {
        fail(line, DiagCode::BadValue,
             "non-numeric parameter value '" + std::string(t[i]) + "'");
      }
      check_finite(*v, line, t[i]);
      dev.param(netlist_.syms.intern(key)) = *v;
    }
  }

  void parse_mos(const Logical& line, const std::vector<std::string_view>& t) {
    // Mname d g s b model [params...]
    if (t.size() < 6) {
      fail(line, DiagCode::SyntaxError,
           "MOS card needs name, 4 nets, and a model");
    }
    InternedDevice dev;
    dev.name = netlist_.syms.intern(t[0]);
    dev.src_line = line.number;
    for (std::size_t p = 1; p <= 4; ++p) {
      dev.pins.push_back(netlist_.syms.intern(t[p]));
    }
    if (is_param_token(t[5])) {
      fail(line, DiagCode::SyntaxError, "MOS card is missing its model name");
    }
    dev.model = netlist_.syms.intern(t[5]);
    dev.type = mos_type_from_model(t[5], line);
    parse_params(t, 6, line, dev);
    device_sink().push_back(std::move(dev));
  }

  void parse_two_pin(const Logical& line,
                     const std::vector<std::string_view>& t, DeviceType type) {
    // Rname n1 n2 value [params...]
    if (t.size() < 4) {
      fail(line, DiagCode::SyntaxError,
           "passive card needs name, 2 nets, value");
    }
    InternedDevice dev;
    dev.name = netlist_.syms.intern(t[0]);
    dev.type = type;
    dev.src_line = line.number;
    dev.pins.push_back(netlist_.syms.intern(t[1]));
    dev.pins.push_back(netlist_.syms.intern(t[2]));
    auto v = resolve_value(t[3]);
    if (!v) {
      fail(line, DiagCode::BadValue, "bad value '" + std::string(t[3]) + "'");
    }
    check_finite(*v, line, t[3]);
    dev.value = *v;
    parse_params(t, 4, line, dev);
    device_sink().push_back(std::move(dev));
  }

  void parse_source(const Logical& line,
                    const std::vector<std::string_view>& t, DeviceType type) {
    // Vname n+ n- [dc] value  |  Vname n+ n-
    if (t.size() < 3) {
      fail(line, DiagCode::SyntaxError, "source card needs name and 2 nets");
    }
    InternedDevice dev;
    dev.name = netlist_.syms.intern(t[0]);
    dev.type = type;
    dev.src_line = line.number;
    dev.pins.push_back(netlist_.syms.intern(t[1]));
    dev.pins.push_back(netlist_.syms.intern(t[2]));
    std::size_t i = 3;
    if (i < t.size() && t[i] == "dc") ++i;
    if (i < t.size() && !is_param_token(t[i])) {
      auto v = parse_number(t[i]);
      if (!v) {
        fail(line, DiagCode::BadValue,
             "bad source value '" + std::string(t[i]) + "'");
      }
      check_finite(*v, line, t[i]);
      dev.value = *v;
      ++i;
    }
    parse_params(t, i, line, dev);
    device_sink().push_back(std::move(dev));
  }

  void parse_instance(const Logical& line,
                      const std::vector<std::string_view>& t) {
    // Xname net1 ... netN subcktname [params...]
    if (t.size() < 3) {
      fail(line, DiagCode::SyntaxError, "instance card needs nets and a subckt");
    }
    InternedInstance inst;
    inst.name = netlist_.syms.intern(t[0]);
    inst.src_line = line.number;
    std::size_t end = t.size();
    while (end > 1 && is_param_token(t[end - 1])) --end;  // drop params
    if (end < 3) {
      fail(line, DiagCode::SyntaxError,
           "instance card needs at least one net");
    }
    inst.subckt = netlist_.syms.intern(t[end - 1]);
    inst.nets.reserve(end - 2);
    for (std::size_t i = 1; i < end - 1; ++i) {
      inst.nets.push_back(netlist_.syms.intern(t[i]));
    }
    instance_sink().push_back(std::move(inst));
  }

  std::string_view text_;
  const ParseOptions& options_;
  std::string buf_;                     ///< lower-cased whole-input copy
  std::vector<std::string_view> segs_;  ///< physical-line segment pool
  std::vector<Logical> lines_;
  std::vector<std::string_view> tokens_;  ///< reused per card
  std::vector<std::string_view> norm_;    ///< normalize_tokens scratch
  std::deque<std::string> merged_;        ///< storage for merged param tokens
  InternedNetlist netlist_;
  std::size_t cur_ = kNoScope;  ///< index of the open .subckt, if any
  std::map<std::string, DeviceType, std::less<>> models_;
  std::map<std::string, double, std::less<>> params_;  ///< .param definitions
};

}  // namespace

InternedNetlist parse_netlist_interned(std::string_view text,
                                       const ParseOptions& options) {
  return InternedParser(text, options).run();
}

InternedNetlist parse_netlist_file_interned(const std::string& path,
                                            const ParseLimits& limits) {
  const std::string text = read_netlist_text(path, limits);
  ParseOptions options;
  options.source = path;
  options.limits = limits;
  return parse_netlist_interned(text, options);
}

}  // namespace gana::spice
