#include "spice/symbol_table.hpp"

#include <cstring>

#include "util/perf.hpp"

namespace gana::spice {
namespace {

constexpr std::size_t kInitialBuckets = 256;  // power of two
constexpr std::size_t kChunkBytes = 64u << 10;

/// Word-at-a-time mix (murmur-style finalizer) over the name bytes; the
/// same function everywhere so cached hashes stay comparable across
/// rehashes. The hash only places buckets -- ids are assigned in
/// first-intern order and compared by bytes, so the choice of hash can
/// never change an id assignment.
std::uint64_t hash_name(std::string_view s) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ s.size();
  std::size_t i = 0;
  for (; i + 8 <= s.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, s.data() + i, 8);
    h = (h ^ w) * 0xff51afd7ed558ccdull;
    h ^= h >> 33;
  }
  if (i < s.size()) {
    std::uint64_t w = 0;
    std::memcpy(&w, s.data() + i, s.size() - i);
    h = (h ^ w) * 0xff51afd7ed558ccdull;
    h ^= h >> 33;
  }
  return h;
}

}  // namespace

SymbolTable::SymbolTable() : buckets_(kInitialBuckets, kNoSymbol) {
  bucket_hash_.resize(kInitialBuckets, 0);
}

std::string_view SymbolTable::arena_store(std::string_view name) {
  if (name.size() > chunk_cap_ - chunk_used_) {
    const std::size_t cap = name.size() > kChunkBytes ? name.size()
                                                      : kChunkBytes;
    // for_overwrite: bytes are memcpy'd below before they are ever read,
    // so value-initializing (zeroing) the chunk would be pure overhead.
    chunks_.push_back(std::make_unique_for_overwrite<char[]>(cap));
    chunk_used_ = 0;
    chunk_cap_ = cap;
    perf::count_frontend_alloc();
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, name.data(), name.size());
  chunk_used_ += name.size();
  arena_bytes_ += name.size();
  return {dst, name.size()};
}

void SymbolTable::rehash(std::size_t new_buckets) {
  std::vector<SymbolId> buckets(new_buckets, kNoSymbol);
  std::vector<std::uint64_t> hashes(new_buckets, 0);
  const std::size_t mask = new_buckets - 1;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const SymbolId id = buckets_[b];
    if (id == kNoSymbol) continue;
    std::size_t slot = bucket_hash_[b] & mask;
    while (buckets[slot] != kNoSymbol) slot = (slot + 1) & mask;
    buckets[slot] = id;
    hashes[slot] = bucket_hash_[b];
  }
  buckets_ = std::move(buckets);
  bucket_hash_ = std::move(hashes);
  perf::count_frontend_alloc();
}

SymbolId SymbolTable::intern(std::string_view name) {
  const std::uint64_t h = hash_name(name);
  const std::size_t mask = buckets_.size() - 1;
  std::size_t slot = h & mask;
  while (buckets_[slot] != kNoSymbol) {
    if (bucket_hash_[slot] == h && spans_[buckets_[slot]] == name) {
      ++hits_;
      return buckets_[slot];
    }
    slot = (slot + 1) & mask;
  }
  ++misses_;
  const SymbolId id = static_cast<SymbolId>(spans_.size());
  spans_.push_back(arena_store(name));
  buckets_[slot] = id;
  bucket_hash_[slot] = h;
  // 0.7 load factor: 10 * size > 7 * buckets.
  if (10 * spans_.size() > 7 * buckets_.size()) {
    rehash(buckets_.size() * 2);
  }
  return id;
}

SymbolId SymbolTable::find(std::string_view name) const {
  const std::uint64_t h = hash_name(name);
  const std::size_t mask = buckets_.size() - 1;
  std::size_t slot = h & mask;
  while (buckets_[slot] != kNoSymbol) {
    if (bucket_hash_[slot] == h && spans_[buckets_[slot]] == name) {
      return buckets_[slot];
    }
    slot = (slot + 1) & mask;
  }
  return kNoSymbol;
}

void SymbolTable::flush_stats() {
  perf::count_intern(hits_, misses_);
  hits_ = 0;
  misses_ = 0;
}

}  // namespace gana::spice
