// Object model for transistor-level SPICE netlists.
//
// This is the input representation of the GANA flow (paper §II-B): the
// user supplies a SPICE netlist for the design and SPICE netlists for the
// primitive template library.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/diag.hpp"

namespace gana::spice {

/// Element types at the lowest level of the hierarchy (paper §II-A).
enum class DeviceType {
  Nmos,
  Pmos,
  Resistor,
  Capacitor,
  Inductor,
  VSource,  ///< voltage source / voltage reference
  ISource,  ///< current source / current reference
};

[[nodiscard]] const char* to_string(DeviceType t);

/// True for NMOS/PMOS.
[[nodiscard]] bool is_mos(DeviceType t);

/// True for R/C/L.
[[nodiscard]] bool is_passive(DeviceType t);

/// Designer/testbench-provided port semantics, used by the featurizer
/// (5 net-type features) and by Postprocessing II (paper §V-A: "the
/// antenna at the LNA port and the oscillating signal at the oscillator
/// port are used to correct LNA/oscillator misclassifications").
enum class PortLabel {
  None,
  Input,
  Output,
  Bias,
  Clock,
  Antenna,   ///< RF input from the antenna (implies Input)
  LocalOsc,  ///< oscillating input, e.g. a mixer's LO port (implies Input)
};

[[nodiscard]] const char* to_string(PortLabel l);
[[nodiscard]] std::optional<PortLabel> port_label_from_string(
    const std::string& s);

/// MOS terminal indices within Device::pins.
enum MosPin : std::size_t { kDrain = 0, kGate = 1, kSource = 2, kBody = 3 };

/// One element card (M/R/C/L/V/I).
struct Device {
  std::string name;
  DeviceType type = DeviceType::Nmos;
  std::string model;              ///< model name for MOS, empty otherwise
  std::vector<std::string> pins;  ///< MOS: d g s b; others: 2 pins
  double value = 0.0;             ///< R/C/L/V/I principal value
  std::map<std::string, double> params;  ///< w=, l=, m=, ...
  int hier_depth = 0;  ///< original hierarchy depth before flattening
  std::size_t src_line = 0;  ///< 1-based source line, 0 = synthetic

  /// Multiplicity (parallel copies folded by preprocessing), param "m".
  [[nodiscard]] double multiplicity() const {
    auto it = params.find("m");
    return it == params.end() ? 1.0 : it->second;
  }
};

/// A subcircuit instantiation (X card).
struct Instance {
  std::string name;
  std::string subckt;             ///< definition name
  std::vector<std::string> nets;  ///< actual nets bound to the def's ports
  std::size_t src_line = 0;       ///< 1-based source line, 0 = synthetic
};

/// A .subckt definition.
struct SubcktDef {
  std::string name;
  std::vector<std::string> ports;
  std::vector<Device> devices;
  std::vector<Instance> instances;
  std::size_t src_line = 0;  ///< 1-based source line, 0 = synthetic
};

/// Error type for malformed netlists. Carries a structured `gana::Diag`
/// (via the layer-neutral `gana::DiagError` base) so batch callers can
/// recover the error code, pipeline stage, and netlist source location
/// without parsing the message.
class NetlistError : public DiagError {
 public:
  explicit NetlistError(Diag diag) : DiagError(std::move(diag)) {}

  /// Legacy constructor for unstructured throws; synthesizes a Diag.
  explicit NetlistError(const std::string& what,
                        DiagCode code = DiagCode::Internal,
                        Stage stage = Stage::Validate)
      : NetlistError(make_diag(code, stage, what)) {}
};

/// A full netlist: top-level devices/instances plus subcircuit definitions.
struct Netlist {
  std::string title;
  std::vector<Device> devices;
  std::vector<Instance> instances;
  std::map<std::string, SubcktDef> subckts;
  std::map<std::string, PortLabel> port_labels;  ///< net name -> label
  std::set<std::string> globals;                 ///< .global nets

  /// Nets referenced by top-level devices/instances, sorted.
  [[nodiscard]] std::vector<std::string> nets() const;

  /// Number of top-level devices (instances not expanded).
  [[nodiscard]] std::size_t device_count() const { return devices.size(); }

  /// True if there are no unexpanded subcircuit instances anywhere.
  [[nodiscard]] bool is_flat() const;

  /// net -> list of (device index, pin index) over top-level devices.
  [[nodiscard]] std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>>
  connectivity() const;

  /// Non-throwing validation: nullopt when well-formed, otherwise a Diag
  /// describing the first violation (undefined subckt reference, wrong
  /// pin count, empty/duplicate names, non-finite device value), located
  /// at the offending card's source line within `source` when known.
  [[nodiscard]] std::optional<Diag> check(const std::string& source = {}) const;

  /// Throws NetlistError on the first violation found by `check`.
  void validate(const std::string& source = {}) const;
};

/// True if the net name denotes a power supply (vdd!, vcc, avdd, ...).
[[nodiscard]] bool is_supply_net(const std::string& net);

/// True if the net name denotes ground (0, gnd!, vss, ...).
[[nodiscard]] bool is_ground_net(const std::string& net);

}  // namespace gana::spice
