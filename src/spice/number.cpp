#include "spice/number.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

namespace gana::spice {
namespace {

/// Unit words that may legally trail a number (after the optional scale
/// suffix): "10pF", "2kohm", "1.2v", "0.18um". Anything else -- in
/// particular a second scale letter, as in "1.5kk" -- is a malformed
/// literal and must not be silently accepted.
bool is_unit_word(std::string_view rest) {
  return rest.empty() || rest == "f" || rest == "h" || rest == "v" ||
         rest == "a" || rest == "s" || rest == "m" || rest == "ohm" ||
         rest == "ohms" || rest == "hz" || rest == "farad" || rest == "henry";
}

}  // namespace

std::optional<double> parse_number(std::string_view token) {
  if (token.empty()) return std::nullopt;
  // strtod needs a NUL-terminated buffer; `token` may be a view into the
  // middle of a larger netlist buffer, so copy (and lower-case) it into a
  // small stack buffer instead of scanning past its end.
  char stack_buf[64];
  std::string heap_buf;
  char* buf = stack_buf;
  if (token.size() >= sizeof(stack_buf)) {
    heap_buf.resize(token.size() + 1);
    buf = heap_buf.data();
  }
  for (std::size_t i = 0; i < token.size(); ++i) {
    buf[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(token[i])));
  }
  buf[token.size()] = '\0';

  char* end = nullptr;
  const double base = std::strtod(buf, &end);
  if (end == buf) return std::nullopt;  // no numeric prefix at all

  std::string_view rest(end, token.size() - static_cast<std::size_t>(end - buf));
  double scale = 1.0;
  if (!rest.empty()) {
    if (rest.substr(0, 3) == "meg") {
      scale = 1e6;
      rest.remove_prefix(3);
    } else {
      bool consumed = true;
      switch (rest.front()) {
        case 't': scale = 1e12; break;
        case 'g': scale = 1e9; break;
        case 'x': scale = 1e6; break;
        case 'k': scale = 1e3; break;
        case 'm': scale = 1e-3; break;
        case 'u': scale = 1e-6; break;
        case 'n': scale = 1e-9; break;
        case 'p': scale = 1e-12; break;
        case 'f': scale = 1e-15; break;
        default: consumed = false; break;  // unit letters like "v", "ohm"
      }
      if (consumed) rest.remove_prefix(1);
    }
  }
  if (!is_unit_word(rest)) return std::nullopt;  // e.g. "1.5kk"
  return base * scale;
}

}  // namespace gana::spice
