#include "spice/number.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

#include "util/strings.hpp"

namespace gana::spice {

std::optional<double> parse_number(std::string_view token) {
  if (token.empty()) return std::nullopt;
  const std::string s = to_lower(token);
  const char* begin = s.c_str();
  char* end = nullptr;
  const double base = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;  // no numeric prefix at all

  std::string_view rest(end);
  double scale = 1.0;
  if (!rest.empty()) {
    if (starts_with(rest, "meg")) {
      scale = 1e6;
    } else {
      switch (rest.front()) {
        case 't': scale = 1e12; break;
        case 'g': scale = 1e9; break;
        case 'x': scale = 1e6; break;
        case 'k': scale = 1e3; break;
        case 'm': scale = 1e-3; break;
        case 'u': scale = 1e-6; break;
        case 'n': scale = 1e-9; break;
        case 'p': scale = 1e-12; break;
        case 'f': scale = 1e-15; break;
        default: scale = 1.0; break;  // unit letters like "v", "a", "ohm"
      }
    }
  }
  return base * scale;
}

}  // namespace gana::spice
