// Netlist flattening (paper §II-B, "Netlist flattening").
//
// Designer-specified hierarchies are expanded away so that recognition is
// independent of per-designer hierarchy styles. Instance-scoped names are
// prefixed with the instance path ("xamp/m1"); global and supply/ground
// nets keep their names.
#pragma once

#include "spice/netlist.hpp"

namespace gana::spice {

/// Separator between instance path components in flattened names.
inline constexpr char kHierSeparator = '/';

/// Returns a flat copy of `netlist`: no instances remain, every device is
/// top-level, and Device::hier_depth records the original nesting depth.
///
/// Throws NetlistError on undefined subcircuit references, on recursive
/// (cyclic) subcircuit instantiation -- the diagnostic's notes list the
/// offending instantiation chain -- and on nesting beyond a fixed depth
/// budget. `source` names the netlist in diagnostics.
Netlist flatten(const Netlist& netlist, const std::string& source = {});

/// Non-throwing variant: structural hazards come back as a Diag.
[[nodiscard]] Result<Netlist> flatten_result(const Netlist& netlist,
                                             const std::string& source = {});

}  // namespace gana::spice
