// Netlist flattening (paper §II-B, "Netlist flattening").
//
// Designer-specified hierarchies are expanded away so that recognition is
// independent of per-designer hierarchy styles. Instance-scoped names are
// prefixed with the instance path ("xamp/m1"); global and supply/ground
// nets keep their names.
#pragma once

#include "spice/netlist.hpp"

namespace gana::spice {

/// Separator between instance path components in flattened names.
inline constexpr char kHierSeparator = '/';

/// Returns a flat copy of `netlist`: no instances remain, every device is
/// top-level, and Device::hier_depth records the original nesting depth.
///
/// Throws NetlistError on recursive subcircuit definitions or undefined
/// subcircuit references.
Netlist flatten(const Netlist& netlist);

}  // namespace gana::spice
