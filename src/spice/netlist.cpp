#include "spice/netlist.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace gana::spice {

const char* to_string(DeviceType t) {
  switch (t) {
    case DeviceType::Nmos: return "nmos";
    case DeviceType::Pmos: return "pmos";
    case DeviceType::Resistor: return "res";
    case DeviceType::Capacitor: return "cap";
    case DeviceType::Inductor: return "ind";
    case DeviceType::VSource: return "vsrc";
    case DeviceType::ISource: return "isrc";
  }
  return "?";
}

bool is_mos(DeviceType t) {
  return t == DeviceType::Nmos || t == DeviceType::Pmos;
}

bool is_passive(DeviceType t) {
  return t == DeviceType::Resistor || t == DeviceType::Capacitor ||
         t == DeviceType::Inductor;
}

const char* to_string(PortLabel l) {
  switch (l) {
    case PortLabel::None: return "none";
    case PortLabel::Input: return "input";
    case PortLabel::Output: return "output";
    case PortLabel::Bias: return "bias";
    case PortLabel::Clock: return "clock";
    case PortLabel::Antenna: return "antenna";
    case PortLabel::LocalOsc: return "lo";
  }
  return "?";
}

std::optional<PortLabel> port_label_from_string(const std::string& s) {
  const std::string l = to_lower(s);
  if (l == "none") return PortLabel::None;
  if (l == "input" || l == "in") return PortLabel::Input;
  if (l == "output" || l == "out") return PortLabel::Output;
  if (l == "bias") return PortLabel::Bias;
  if (l == "clock" || l == "clk") return PortLabel::Clock;
  if (l == "antenna" || l == "ant") return PortLabel::Antenna;
  if (l == "lo" || l == "osc") return PortLabel::LocalOsc;
  return std::nullopt;
}

std::vector<std::string> Netlist::nets() const {
  std::set<std::string> s;
  for (const auto& d : devices) {
    for (const auto& p : d.pins) s.insert(p);
  }
  for (const auto& i : instances) {
    for (const auto& n : i.nets) s.insert(n);
  }
  return {s.begin(), s.end()};
}

bool Netlist::is_flat() const { return instances.empty(); }

std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>>
Netlist::connectivity() const {
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>> m;
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const auto& pins = devices[di].pins;
    for (std::size_t pi = 0; pi < pins.size(); ++pi) {
      m[pins[pi]].push_back({di, pi});
    }
  }
  return m;
}

namespace {

/// Diag at the card's recorded source line, stage Validate.
Diag at(const std::string& source, std::size_t line, DiagCode code,
        std::string message) {
  return make_diag(code, Stage::Validate, std::move(message),
                   SourceLoc{source, line});
}

bool all_finite(const Device& d) {
  if (!std::isfinite(d.value)) return false;
  for (const auto& [key, v] : d.params) {
    (void)key;
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::optional<Diag> check_devices(const std::vector<Device>& devices,
                                  const std::string& scope,
                                  const std::string& source) {
  for (const auto& d : devices) {
    if (d.name.empty()) {
      return at(source, d.src_line, DiagCode::EmptyName,
                "unnamed device in " + scope);
    }
    const std::size_t expected = is_mos(d.type) ? 4 : 2;
    if (d.pins.size() != expected) {
      return at(source, d.src_line, DiagCode::BadPinCount,
                "device " + d.name + " in " + scope + " has " +
                    std::to_string(d.pins.size()) + " pins, expected " +
                    std::to_string(expected));
    }
    for (const auto& p : d.pins) {
      if (p.empty()) {
        return at(source, d.src_line, DiagCode::EmptyName,
                  "device " + d.name + " in " + scope +
                      " has an empty net name");
      }
    }
    // Inf/NaN values would silently poison the feature matrix and every
    // downstream GCN activation; reject them at the model boundary.
    if (!all_finite(d)) {
      return at(source, d.src_line, DiagCode::NonFinite,
                "device " + d.name + " in " + scope +
                    " has a non-finite value or parameter");
    }
  }
  return std::nullopt;
}

// Devices and subckt instances share one per-scope namespace: a repeated
// name would silently alias two elements after flattening (prefixes are
// built from instance paths), so reject it up front.
std::optional<Diag> check_unique_names(const std::vector<Device>& devices,
                                       const std::vector<Instance>& instances,
                                       const std::string& scope,
                                       const std::string& source) {
  std::set<std::string> seen;
  for (const auto& d : devices) {
    if (!seen.insert(d.name).second) {
      return at(source, d.src_line, DiagCode::DuplicateName,
                "duplicate device name " + d.name + " in " + scope);
    }
  }
  for (const auto& i : instances) {
    if (!seen.insert(i.name).second) {
      return at(source, i.src_line, DiagCode::DuplicateName,
                "duplicate instance name " + i.name + " in " + scope);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Diag> Netlist::check(const std::string& source) const {
  if (auto d = check_devices(devices, "top level", source)) return d;
  if (auto d = check_unique_names(devices, instances, "top level", source)) {
    return d;
  }
  auto check_instances =
      [&](const std::vector<Instance>& insts,
          const std::string& scope) -> std::optional<Diag> {
    for (const auto& inst : insts) {
      auto it = subckts.find(inst.subckt);
      if (it == subckts.end()) {
        return at(source, inst.src_line, DiagCode::UndefinedSubckt,
                  "instance " + inst.name + " in " + scope +
                      " references undefined subckt " + inst.subckt);
      }
      if (it->second.ports.size() != inst.nets.size()) {
        return at(source, inst.src_line, DiagCode::PortMismatch,
                  "instance " + inst.name + " in " + scope + " binds " +
                      std::to_string(inst.nets.size()) + " nets to subckt " +
                      inst.subckt + " with " +
                      std::to_string(it->second.ports.size()) + " ports");
      }
    }
    return std::nullopt;
  };
  if (auto d = check_instances(instances, "top level")) return d;
  for (const auto& [name, def] : subckts) {
    const std::string scope = "subckt " + name;
    if (auto d = check_devices(def.devices, scope, source)) return d;
    if (auto d = check_unique_names(def.devices, def.instances, scope, source)) {
      return d;
    }
    if (auto d = check_instances(def.instances, scope)) return d;
  }
  return std::nullopt;
}

void Netlist::validate(const std::string& source) const {
  if (auto d = check(source)) throw NetlistError(std::move(*d));
}

bool is_supply_net(const std::string& net) {
  const std::string l = to_lower(net);
  return starts_with(l, "vdd") || starts_with(l, "vcc") ||
         starts_with(l, "avdd") || starts_with(l, "dvdd") ||
         starts_with(l, "vpwr");
}

bool is_ground_net(const std::string& net) {
  const std::string l = to_lower(net);
  return l == "0" || starts_with(l, "gnd") || starts_with(l, "vss") ||
         starts_with(l, "agnd") || starts_with(l, "dgnd") ||
         starts_with(l, "vgnd");
}

}  // namespace gana::spice
