#include "spice/netlist.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace gana::spice {

const char* to_string(DeviceType t) {
  switch (t) {
    case DeviceType::Nmos: return "nmos";
    case DeviceType::Pmos: return "pmos";
    case DeviceType::Resistor: return "res";
    case DeviceType::Capacitor: return "cap";
    case DeviceType::Inductor: return "ind";
    case DeviceType::VSource: return "vsrc";
    case DeviceType::ISource: return "isrc";
  }
  return "?";
}

bool is_mos(DeviceType t) {
  return t == DeviceType::Nmos || t == DeviceType::Pmos;
}

bool is_passive(DeviceType t) {
  return t == DeviceType::Resistor || t == DeviceType::Capacitor ||
         t == DeviceType::Inductor;
}

const char* to_string(PortLabel l) {
  switch (l) {
    case PortLabel::None: return "none";
    case PortLabel::Input: return "input";
    case PortLabel::Output: return "output";
    case PortLabel::Bias: return "bias";
    case PortLabel::Clock: return "clock";
    case PortLabel::Antenna: return "antenna";
    case PortLabel::LocalOsc: return "lo";
  }
  return "?";
}

std::optional<PortLabel> port_label_from_string(const std::string& s) {
  const std::string l = to_lower(s);
  if (l == "none") return PortLabel::None;
  if (l == "input" || l == "in") return PortLabel::Input;
  if (l == "output" || l == "out") return PortLabel::Output;
  if (l == "bias") return PortLabel::Bias;
  if (l == "clock" || l == "clk") return PortLabel::Clock;
  if (l == "antenna" || l == "ant") return PortLabel::Antenna;
  if (l == "lo" || l == "osc") return PortLabel::LocalOsc;
  return std::nullopt;
}

std::vector<std::string> Netlist::nets() const {
  std::set<std::string> s;
  for (const auto& d : devices) {
    for (const auto& p : d.pins) s.insert(p);
  }
  for (const auto& i : instances) {
    for (const auto& n : i.nets) s.insert(n);
  }
  return {s.begin(), s.end()};
}

bool Netlist::is_flat() const { return instances.empty(); }

std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>>
Netlist::connectivity() const {
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>> m;
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const auto& pins = devices[di].pins;
    for (std::size_t pi = 0; pi < pins.size(); ++pi) {
      m[pins[pi]].push_back({di, pi});
    }
  }
  return m;
}

namespace {

void validate_devices(const std::vector<Device>& devices,
                      const std::string& scope) {
  for (const auto& d : devices) {
    if (d.name.empty()) {
      throw NetlistError("unnamed device in " + scope);
    }
    const std::size_t expected = is_mos(d.type) ? 4 : 2;
    if (d.pins.size() != expected) {
      throw NetlistError("device " + d.name + " in " + scope + " has " +
                         std::to_string(d.pins.size()) + " pins, expected " +
                         std::to_string(expected));
    }
    for (const auto& p : d.pins) {
      if (p.empty()) {
        throw NetlistError("device " + d.name + " in " + scope +
                           " has an empty net name");
      }
    }
  }
}

// Devices and subckt instances share one per-scope namespace: a repeated
// name would silently alias two elements after flattening (prefixes are
// built from instance paths), so reject it up front.
void validate_unique_names(const std::vector<Device>& devices,
                           const std::vector<Instance>& instances,
                           const std::string& scope) {
  std::set<std::string> seen;
  for (const auto& d : devices) {
    if (!seen.insert(d.name).second) {
      throw NetlistError("duplicate device name " + d.name + " in " + scope);
    }
  }
  for (const auto& i : instances) {
    if (!seen.insert(i.name).second) {
      throw NetlistError("duplicate instance name " + i.name + " in " + scope);
    }
  }
}

}  // namespace

void Netlist::validate() const {
  validate_devices(devices, "top level");
  validate_unique_names(devices, instances, "top level");
  auto check_instances = [&](const std::vector<Instance>& insts,
                             const std::string& scope) {
    for (const auto& inst : insts) {
      auto it = subckts.find(inst.subckt);
      if (it == subckts.end()) {
        throw NetlistError("instance " + inst.name + " in " + scope +
                           " references undefined subckt " + inst.subckt);
      }
      if (it->second.ports.size() != inst.nets.size()) {
        throw NetlistError("instance " + inst.name + " in " + scope +
                           " binds " + std::to_string(inst.nets.size()) +
                           " nets to subckt " + inst.subckt + " with " +
                           std::to_string(it->second.ports.size()) +
                           " ports");
      }
    }
  };
  check_instances(instances, "top level");
  for (const auto& [name, def] : subckts) {
    validate_devices(def.devices, "subckt " + name);
    validate_unique_names(def.devices, def.instances, "subckt " + name);
    check_instances(def.instances, "subckt " + name);
  }
}

bool is_supply_net(const std::string& net) {
  const std::string l = to_lower(net);
  return starts_with(l, "vdd") || starts_with(l, "vcc") ||
         starts_with(l, "avdd") || starts_with(l, "dvdd") ||
         starts_with(l, "vpwr");
}

bool is_ground_net(const std::string& net) {
  const std::string l = to_lower(net);
  return l == "0" || starts_with(l, "gnd") || starts_with(l, "vss") ||
         starts_with(l, "agnd") || starts_with(l, "dgnd") ||
         starts_with(l, "vgnd");
}

}  // namespace gana::spice
