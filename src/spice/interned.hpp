// Id-space netlist representation: the interned front-end fast path.
//
// `InternedNetlist` mirrors `Netlist` with every name replaced by a
// dense `SymbolId` into an owned `SymbolTable`, pins stored inline, and
// parameters as a small flat vector instead of `std::map`. The hot
// front-end stages -- parse, flatten, preprocess, graph build -- operate
// entirely in id space; names are materialized back into the string
// `Netlist` only at the boundary (`materialize_netlist`).
//
// Equivalence contract: for every input on which the legacy string path
// (the Reference implementation: `parse_netlist`, `flatten`,
// `preprocess`, `graph::build_graph(const Netlist&)`) succeeds, the
// interned path produces a bit-identical flattened `Netlist`,
// `PreprocessReport`, and `CircuitGraph` -- same device order, same
// bytes, same vertex/edge ids. Inputs the Reference path rejects are
// rejected with the same DiagCode at the same source line. The contract
// is pinned by tests/frontend_test.cpp and bench/frontend.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "spice/netlist.hpp"
#include "spice/parser.hpp"
#include "spice/preprocess.hpp"
#include "spice/symbol_table.hpp"

namespace gana::spice {

/// One `key=value` device parameter; keys are interned names.
struct InternedParam {
  SymbolId key = kNoSymbol;
  double value = 0.0;
};

/// Inline pin storage: MOS devices have 4 pins, everything else 2, so
/// a fixed array avoids one heap allocation per device.
struct PinArray {
  std::array<SymbolId, 4> ids{kNoSymbol, kNoSymbol, kNoSymbol, kNoSymbol};
  std::uint8_t count = 0;

  [[nodiscard]] std::size_t size() const { return count; }
  [[nodiscard]] SymbolId operator[](std::size_t i) const { return ids[i]; }
  SymbolId& operator[](std::size_t i) { return ids[i]; }
  void push_back(SymbolId id) { ids[count++] = id; }
};

/// Element card in id space; field-for-field parallel to `Device`.
struct InternedDevice {
  SymbolId name = kNoSymbol;
  DeviceType type = DeviceType::Nmos;
  SymbolId model = kNoSymbol;  ///< kNoSymbol when the model name is empty
  PinArray pins;
  double value = 0.0;
  /// Insertion-ordered; at most a handful of entries, so linear scans
  /// beat any map. Materialization sorts by key name via std::map.
  std::vector<InternedParam> params;
  int hier_depth = 0;
  std::size_t src_line = 0;

  [[nodiscard]] const double* find_param(SymbolId key) const {
    for (const auto& p : params) {
      if (p.key == key) return &p.value;
    }
    return nullptr;
  }
  double& param(SymbolId key) {
    for (auto& p : params) {
      if (p.key == key) return p.value;
    }
    params.push_back({key, 0.0});
    return params.back().value;
  }
};

/// Subcircuit instantiation in id space.
struct InternedInstance {
  SymbolId name = kNoSymbol;
  SymbolId subckt = kNoSymbol;
  std::vector<SymbolId> nets;
  std::size_t src_line = 0;
};

/// .subckt definition in id space.
struct InternedSubckt {
  SymbolId name = kNoSymbol;
  std::vector<SymbolId> ports;
  std::vector<InternedDevice> devices;
  std::vector<InternedInstance> instances;
  std::size_t src_line = 0;
};

/// A full netlist in id space, owning its symbol table. Movable only
/// (the table's arena is not copyable); stages hand the value through
/// `parse_netlist_interned` -> `flatten_interned` -> `preprocess_interned`
/// -> `graph::build_graph` / `materialize_netlist`.
struct InternedNetlist {
  std::string title;
  std::vector<InternedDevice> devices;
  std::vector<InternedInstance> instances;
  std::vector<InternedSubckt> subckts;  ///< definition order (parse order)
  std::vector<std::pair<SymbolId, PortLabel>> port_labels;  ///< insertion order
  std::vector<SymbolId> globals;                            ///< insertion order
  SymbolTable syms;

  [[nodiscard]] bool is_flat() const { return instances.empty(); }
  [[nodiscard]] std::string_view name(SymbolId id) const {
    return syms.name(id);
  }
  /// Definition index for a subckt name, or npos.
  [[nodiscard]] std::size_t find_subckt(SymbolId name) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Converts a string netlist into id space, interning every name once.
/// The inverse of `materialize_netlist` (round-trips exactly).
[[nodiscard]] InternedNetlist intern_netlist(const Netlist& netlist);

/// Materializes the string `Netlist` at the front-end boundary. Device
/// order is preserved; params/subckts/port_labels/globals land in their
/// sorted containers exactly as the Reference path produces them.
[[nodiscard]] Netlist materialize_netlist(const InternedNetlist& netlist);

/// Id-space equivalent of `Netlist::validate`: checks the same
/// invariants in the same order and throws a NetlistError carrying the
/// same Diag the Reference path would produce. Names are materialized
/// only for the error message.
void validate_interned(const InternedNetlist& netlist,
                       const std::string& source = {});

/// Zero-copy parser fast path: lexes `std::string_view` tokens out of
/// one lowercased whole-file buffer (a single allocation) instead of a
/// string per token. Accepts and rejects exactly what `parse_netlist`
/// does (same DiagCode, same line).
[[nodiscard]] InternedNetlist parse_netlist_interned(
    std::string_view text, const ParseOptions& options = {});

/// File variant; shares `read_netlist_text` with the Reference path so
/// the file is read exactly once, with the size limit checked up front.
[[nodiscard]] InternedNetlist parse_netlist_file_interned(
    const std::string& path, const ParseLimits& limits = {});

/// Id-space hierarchy expansion: all instance-path prefixing happens in
/// the symbol table's arena; behavior (and failure Diags) match
/// `flatten`. Takes the netlist by value -- the symbol table moves into
/// the flattened result and is extended with the prefixed names.
[[nodiscard]] InternedNetlist flatten_interned(InternedNetlist netlist,
                                               const std::string& source = {});

/// Id-space preprocessing: parallel/series merging and dummy/decap
/// removal on ids, with net iteration ordered by name so the merge
/// sequence (and therefore the surviving devices, values, and aliases)
/// is bit-identical to `preprocess`.
PreprocessReport preprocess_interned(InternedNetlist& netlist,
                                     const PreprocessOptions& options = {});

/// Per-symbol classification used by flatten/preprocess/graph-build so
/// `is_supply_net`/`is_ground_net` run once per distinct name instead of
/// once per reference. Lazily grown; safe to query any id of `syms`.
class NetClassCache {
 public:
  explicit NetClassCache(const SymbolTable& syms) : syms_(&syms) {}

  [[nodiscard]] bool supply(SymbolId id) { return flags(id) & kSupply; }
  [[nodiscard]] bool ground(SymbolId id) { return flags(id) & kGround; }
  [[nodiscard]] bool rail(SymbolId id) {
    return flags(id) & (kSupply | kGround);
  }

 private:
  static constexpr std::uint8_t kKnown = 1, kSupply = 2, kGround = 4;
  std::uint8_t flags(SymbolId id);

  const SymbolTable* syms_;
  std::vector<std::uint8_t> flags_;
};

}  // namespace gana::spice
