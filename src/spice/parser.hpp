// SPICE netlist parser.
//
// Supports the subset needed by the GANA flow: device cards M/R/C/L/V/I,
// subcircuit definitions and instantiations, `.global`, `.model`, line
// continuations, comments, and a `.portlabel <net> <label>` extension for
// the designer-provided port annotations used by Postprocessing II.
//
// Every rejection carries a structured `gana::Diag` (code, stage, source
// file and 1-based line number). The throwing entry points raise
// ParseError; the `_result` variants return `Result<Netlist>` and never
// throw on malformed input.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "spice/netlist.hpp"

namespace gana::spice {

/// Thrown on malformed input; `diag()` has the source location.
class ParseError : public NetlistError {
 public:
  explicit ParseError(Diag diag) : NetlistError(std::move(diag)) {}
  explicit ParseError(const std::string& what)
      : NetlistError(what, DiagCode::SyntaxError, Stage::Parse) {}
};

/// Guards against adversarial inputs (AI-extracted or generated netlists
/// can be arbitrarily malformed): oversized files, unbounded single
/// lines, or pathological continuation chains are rejected with
/// DiagCode::LimitExceeded instead of being chewed through. Zero
/// disables an individual limit.
struct ParseLimits {
  std::size_t max_input_bytes = 64u << 20;  ///< 64 MiB of netlist text
  std::size_t max_line_length = 1u << 16;   ///< one physical line, bytes
  std::size_t max_logical_line_length = 1u << 20;  ///< after continuations
  std::size_t max_lines = 4u << 20;         ///< physical line count
};

struct ParseOptions {
  /// Source name used in diagnostics ("<input>" when empty).
  std::string source;
  ParseLimits limits;
};

/// Reads a netlist file into one in-memory buffer with a single read,
/// checking `limits.max_input_bytes` against the file size up front (so
/// an oversized file is rejected before its bytes are pulled in).
/// Throws ParseError with DiagCode::IoError when the file cannot be
/// opened, DiagCode::LimitExceeded when it is too large. Shared by the
/// Reference and interned parser entry points.
std::string read_netlist_text(const std::string& path,
                              const ParseLimits& limits = {});

/// The read step of read_netlist_text, split out for testability: pulls
/// exactly `probed_size` bytes (the pre-read tellg probe) from `in` and
/// verifies the file still matches the probe -- a short read (file
/// shrank; the buffer would carry a NUL-padded torn prefix) or trailing
/// bytes (file grew; the buffer would carry a truncated prefix) throw
/// ParseError with DiagCode::IoError naming `path`.
std::string read_probed_text(std::istream& in, std::size_t probed_size,
                             const std::string& path);

/// Parses a complete netlist from text. Case-insensitive; the first line
/// is treated as a title only if it does not look like a card or
/// directive (so library snippets without titles also parse).
Netlist parse_netlist(std::string_view text, const ParseOptions& options = {});

/// Parses a netlist from a file on disk; diagnostics cite the path.
Netlist parse_netlist_file(const std::string& path,
                           const ParseLimits& limits = {});

/// Non-throwing variants: malformed input (or an unreadable file) comes
/// back as a Diag instead of an exception.
[[nodiscard]] Result<Netlist> parse_netlist_result(
    std::string_view text, const ParseOptions& options = {});
[[nodiscard]] Result<Netlist> parse_netlist_file_result(
    const std::string& path, const ParseLimits& limits = {});

namespace detail {

/// True if a normalized (trimmed, lower-cased) logical line is a device,
/// instance, or directive card rather than free-form title prose. Shared
/// between the Reference and interned parsers so both apply the same
/// title heuristic.
[[nodiscard]] bool looks_like_card(const std::string& line);

}  // namespace detail

}  // namespace gana::spice
