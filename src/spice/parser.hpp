// SPICE netlist parser.
//
// Supports the subset needed by the GANA flow: device cards M/R/C/L/V/I,
// subcircuit definitions and instantiations, `.global`, `.model`, line
// continuations, comments, and a `.portlabel <net> <label>` extension for
// the designer-provided port annotations used by Postprocessing II.
#pragma once

#include <string>
#include <string_view>

#include "spice/netlist.hpp"

namespace gana::spice {

/// Thrown on malformed input; message includes the 1-based line number.
class ParseError : public NetlistError {
 public:
  using NetlistError::NetlistError;
};

/// Parses a complete netlist from text. Case-insensitive; the first line
/// is treated as a title only if it does not look like a card or
/// directive (so library snippets without titles also parse).
Netlist parse_netlist(std::string_view text);

/// Parses a netlist from a file on disk.
Netlist parse_netlist_file(const std::string& path);

}  // namespace gana::spice
