// SPICE numeric literal parsing ("2.5k", "10MEG", "0.5u", "1e-12").
#pragma once

#include <optional>
#include <string_view>

namespace gana::spice {

/// Parses a SPICE number with optional engineering suffix.
///
/// Recognized suffixes (case-insensitive): t, g, meg, x, k, m, u, n, p, f.
/// A known unit word may follow the suffix, as in SPICE ("10pF" ==
/// 10e-12, "2kohm" == 2e3, "1.2V" == 1.2). Returns std::nullopt if no
/// leading number exists or if unrecognized characters trail the literal
/// ("1.5kk" is rejected, not silently read as 1.5k). Safe on views into
/// a larger buffer: never reads past `token`.
std::optional<double> parse_number(std::string_view token);

}  // namespace gana::spice
