// SPICE numeric literal parsing ("2.5k", "10MEG", "0.5u", "1e-12").
#pragma once

#include <optional>
#include <string_view>

namespace gana::spice {

/// Parses a SPICE number with optional engineering suffix.
///
/// Recognized suffixes (case-insensitive): t, g, meg, x, k, m, u, n, p, f.
/// Trailing unit letters after the suffix are ignored, as in SPICE
/// ("10pF" == 10e-12). Returns std::nullopt if no leading number exists.
std::optional<double> parse_number(std::string_view token);

}  // namespace gana::spice
