// Append-only string interner for the netlist front end.
//
// Every name the front end touches (device, net, model, subckt, port,
// parameter key) is mapped to a dense 32-bit `SymbolId` on first sight;
// all further comparisons, map keys, and set memberships in the hot
// parse -> flatten -> preprocess -> graph-build path operate on ids.
// String bytes live in a chunked arena, so a resolved `std::string_view`
// stays valid for the lifetime of the table no matter how many symbols
// are interned afterwards.
//
// Determinism: ids are assigned in first-intern order and nothing is
// ever removed, so two tables fed the same name sequence are identical
// (same ids, same bytes) -- the property the batch runner's bit-identical
// guarantee rests on.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace gana::spice {

/// Dense handle for an interned name; ids count up from zero in
/// first-intern order.
using SymbolId = std::uint32_t;

/// Sentinel for "no name" (e.g. the model of a non-MOS device).
inline constexpr SymbolId kNoSymbol = static_cast<SymbolId>(-1);

class SymbolTable {
 public:
  SymbolTable();
  SymbolTable(SymbolTable&&) noexcept = default;
  SymbolTable& operator=(SymbolTable&&) noexcept = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id of `name`, interning it on first sight. Interning
  /// never invalidates previously returned ids or views.
  SymbolId intern(std::string_view name);

  /// Id of `name` if already interned, kNoSymbol otherwise. Never
  /// mutates the table.
  [[nodiscard]] SymbolId find(std::string_view name) const;

  /// Bytes of an interned symbol; stable for the table's lifetime.
  [[nodiscard]] std::string_view name(SymbolId id) const {
    return spans_[id];
  }

  /// Number of distinct symbols interned so far.
  [[nodiscard]] std::size_t size() const { return spans_.size(); }

  /// Total string bytes held by the arena (diagnostics only).
  [[nodiscard]] std::size_t arena_bytes() const { return arena_bytes_; }

  /// Lookup statistics since construction (also mirrored into the
  /// process-wide perf counters by flush_stats()).
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  /// Publishes accumulated hit/miss counts to util/perf.hpp and resets
  /// the local tally. Called by the front end once per region (a parse,
  /// a flatten), never per lookup.
  void flush_stats();

 private:
  /// Copies `name` into the arena and returns a stable view.
  std::string_view arena_store(std::string_view name);
  void rehash(std::size_t new_buckets);

  // Open-addressing table of symbol ids; kNoSymbol marks an empty slot.
  // Power-of-two size, linear probing, max load factor 0.7.
  std::vector<SymbolId> buckets_;
  std::vector<std::uint64_t> bucket_hash_;  ///< cached hash per occupied slot
  std::vector<std::string_view> spans_;     ///< id -> bytes, append-only
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t chunk_used_ = 0;
  std::size_t chunk_cap_ = 0;
  std::size_t arena_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace gana::spice
