#include "spice/preprocess.hpp"

#include <algorithm>
#include <array>
#include <set>

namespace gana::spice {
namespace {

bool is_rail(const std::string& net) {
  return is_supply_net(net) || is_ground_net(net);
}

/// Connection key for parallel-merge: devices with equal keys are
/// electrically parallel. MOS drain/source are interchangeable, so the
/// (d, s) pair is ordered canonically.
std::string parallel_key(const Device& d) {
  std::string key = std::string(to_string(d.type)) + "|" + d.model + "|";
  if (is_mos(d.type)) {
    std::string a = d.pins[kDrain], b = d.pins[kSource];
    if (a > b) std::swap(a, b);
    key += a + "," + d.pins[kGate] + "," + b + "," + d.pins[kBody];
  } else {
    std::string a = d.pins[0], b = d.pins[1];
    if (a > b) std::swap(a, b);
    key += a + "," + b;
  }
  return key;
}

bool is_dummy_mos(const Device& d) {
  if (!is_mos(d.type)) return false;
  const auto& p = d.pins;
  // Shorted channel: source tied to drain.
  if (p[kDrain] == p[kSource]) return true;
  // All channel terminals parked on rails (classic fill dummy).
  if (is_rail(p[kDrain]) && is_rail(p[kGate]) && is_rail(p[kSource])) {
    return true;
  }
  // Gate tied to its own source (device permanently off) with drain on a
  // rail: edge dummy.
  if (p[kGate] == p[kSource] && is_rail(p[kDrain])) return true;
  return false;
}

bool is_decap(const Device& d) {
  if (d.type != DeviceType::Capacitor) return false;
  const auto& p = d.pins;
  if (p[0] == p[1]) return true;
  return is_rail(p[0]) && is_rail(p[1]);
}

/// Nets that must not be eliminated by series merging.
std::set<std::string> protected_nets(const Netlist& n) {
  std::set<std::string> keep;
  for (const auto& [net, label] : n.port_labels) {
    (void)label;
    keep.insert(net);
  }
  for (const auto& g : n.globals) keep.insert(g);
  return keep;
}

class Preprocessor {
 public:
  Preprocessor(Netlist& netlist, const PreprocessOptions& options)
      : netlist_(netlist), options_(options) {}

  PreprocessReport run() {
    if (!netlist_.is_flat()) {
      throw NetlistError(make_diag(DiagCode::NotFlat, Stage::Preprocess,
                                   "preprocess requires a flattened netlist"));
    }
    bool changed = true;
    while (changed) {
      changed = false;
      if (options_.remove_decaps) changed |= remove_if_pass(&is_decap, true);
      if (options_.remove_dummies) {
        changed |= remove_if_pass(&is_dummy_mos, false);
      }
      if (options_.merge_parallel) changed |= merge_parallel_pass();
      if (options_.merge_series) changed |= merge_series_pass();
    }
    return std::move(report_);
  }

 private:
  bool remove_if_pass(bool (*pred)(const Device&), bool decap) {
    auto& devs = netlist_.devices;
    const std::size_t before = devs.size();
    for (const auto& d : devs) {
      if (pred(d)) report_.alias[d.name] = "";
    }
    devs.erase(std::remove_if(devs.begin(), devs.end(), pred), devs.end());
    const std::size_t removed = before - devs.size();
    (decap ? report_.removed_decaps : report_.removed_dummies) += removed;
    return removed > 0;
  }

  bool merge_parallel_pass() {
    auto& devs = netlist_.devices;
    std::map<std::string, std::size_t> first_by_key;
    std::vector<bool> drop(devs.size(), false);
    bool changed = false;
    for (std::size_t i = 0; i < devs.size(); ++i) {
      const std::string key = parallel_key(devs[i]);
      auto [it, inserted] = first_by_key.emplace(key, i);
      if (inserted) continue;
      Device& keep = devs[it->second];
      keep.params["m"] = keep.multiplicity() + devs[i].multiplicity();
      if (keep.type == DeviceType::Capacitor ||
          keep.type == DeviceType::ISource) {
        keep.value += devs[i].value;  // parallel caps/currents add
      }
      report_.alias[devs[i].name] = keep.name;
      drop[i] = true;
      ++report_.merged_parallel;
      changed = true;
    }
    if (changed) erase_marked(drop);
    return changed;
  }

  bool merge_series_pass() {
    auto& devs = netlist_.devices;
    const auto conn = netlist_.connectivity();
    const auto keep_nets = protected_nets(netlist_);
    std::vector<bool> drop(devs.size(), false);
    bool changed = false;

    for (const auto& [net, touches] : conn) {
      if (touches.size() != 2) continue;           // internal node only
      if (is_rail(net) || keep_nets.count(net)) continue;
      const auto [di, pi] = touches[0];
      const auto [dj, pj] = touches[1];
      if (di == dj || drop[di] || drop[dj]) continue;
      Device& a = devs[di];
      Device& b = devs[dj];
      if (a.type != b.type) continue;

      if (is_mos(a.type)) {
        // Series stack: the shared net is a channel terminal of both, the
        // gates are tied together, and the bodies match.
        const bool a_chan = (pi == kDrain || pi == kSource);
        const bool b_chan = (pj == kDrain || pj == kSource);
        if (!a_chan || !b_chan) continue;
        if (a.pins[kGate] != b.pins[kGate]) continue;
        if (a.pins[kBody] != b.pins[kBody]) continue;
        if (a.model != b.model) continue;
        // Outer terminals replace the merged channel.
        const std::size_t a_other = (pi == kDrain) ? kSource : kDrain;
        const std::size_t b_other = (pj == kDrain) ? kSource : kDrain;
        a.pins[pi] = b.pins[b_other];
        // Stacked devices emulate a longer channel.
        auto al = a.params.find("l");
        auto bl = b.params.find("l");
        if (al != a.params.end() && bl != b.params.end()) {
          al->second += bl->second;
        }
        (void)a_other;
        report_.alias[b.name] = a.name;
        drop[dj] = true;
        ++report_.merged_series;
        changed = true;
      } else if (a.type == DeviceType::Resistor) {
        a.pins[pi] = b.pins[1 - pj];
        a.value += b.value;
        report_.alias[b.name] = a.name;
        drop[dj] = true;
        ++report_.merged_series;
        changed = true;
      }
    }
    if (changed) erase_marked(drop);
    return changed;
  }

  void erase_marked(const std::vector<bool>& drop) {
    auto& devs = netlist_.devices;
    std::vector<Device> kept;
    kept.reserve(devs.size());
    for (std::size_t i = 0; i < devs.size(); ++i) {
      if (!drop[i]) kept.push_back(std::move(devs[i]));
    }
    devs = std::move(kept);
  }

  Netlist& netlist_;
  const PreprocessOptions& options_;
  PreprocessReport report_;
};

}  // namespace

PreprocessReport preprocess(Netlist& netlist,
                            const PreprocessOptions& options) {
  return Preprocessor(netlist, options).run();
}

}  // namespace gana::spice
