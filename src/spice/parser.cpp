#include "spice/parser.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "spice/number.hpp"
#include "util/deadline.hpp"
#include "util/perf.hpp"
#include "util/strings.hpp"

namespace gana::spice {

namespace detail {

bool looks_like_card(const std::string& s) {
  if (s.empty()) return false;
  const char c = s.front();
  if (c == '.') return true;
  // A device/instance card: recognized leading letter and the minimum
  // token count for that card type (so prose titles like "my amplifier"
  // are not mistaken for MOS cards).
  const std::size_t tokens = split_ws(s).size();
  switch (c) {
    case 'm': return tokens >= 6;
    case 'r':
    case 'c':
    case 'l': return tokens >= 4;
    case 'v':
    case 'i':
    case 'x': return tokens >= 3;
    default: return false;
  }
}

}  // namespace detail

namespace {

using detail::looks_like_card;

struct Line {
  std::string text;
  std::size_t number;  // 1-based line number of the first physical line
};

/// Splits "key=value" tokens; tolerates spaces around '=' having been
/// collapsed by tokenization ("w = 1u" arrives as "w", "=", "1u").
std::vector<std::string> normalize_param_tokens(std::vector<std::string> t) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] == "=" && !out.empty() && i + 1 < t.size()) {
      ++i;
      out.back() += "=" + t[i];
    } else if (ends_with(t[i], "=") && i + 1 < t.size()) {
      std::string merged = t[i];
      ++i;
      merged += t[i];
      out.push_back(std::move(merged));
    } else if (starts_with(t[i], "=") && !out.empty()) {
      out.back() += t[i];
    } else {
      out.push_back(t[i]);
    }
  }
  return out;
}

bool is_param_token(const std::string& t) {
  return t.find('=') != std::string::npos;
}

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  Netlist run() {
    perf::count_parse_bytes(text_.size());
    // Per-request deadline / fault-injection site at parse entry; the
    // loop below re-checks the deadline every 256 logical lines so a
    // huge input cannot overstay its budget by a whole parse.
    checkpoint(Stage::Parse);
    split_lines();
    std::size_t i = 0;
    // Only the physically-first line can be a title (SPICE convention);
    // anything later that fails to parse is an error, not a title.
    if (!lines_.empty() && lines_[0].number == 1 &&
        !looks_like_card(lines_[0].text)) {
      netlist_.title = lines_[0].text;
      i = 1;
    }
    // First pass: collect .model cards so device typing is order-independent.
    for (std::size_t j = i; j < lines_.size(); ++j) {
      const auto tokens = split_ws(lines_[j].text);
      if (!tokens.empty() && tokens[0] == ".model" && tokens.size() >= 3) {
        if (tokens[2] == "pmos") models_[tokens[1]] = DeviceType::Pmos;
        if (tokens[2] == "nmos") models_[tokens[1]] = DeviceType::Nmos;
      }
    }
    for (; i < lines_.size(); ++i) {
      if ((i & 255u) == 0) check_deadline(Stage::Parse);
      parse_card(lines_[i]);
    }
    if (current_subckt_ != nullptr) {
      throw ParseError(make_diag(
          DiagCode::SyntaxError, Stage::Parse,
          "unterminated .subckt " + current_subckt_->name,
          loc(current_subckt_->src_line)));
    }
    netlist_.validate(options_.source);
    return std::move(netlist_);
  }

 private:
  [[nodiscard]] SourceLoc loc(std::size_t line_number) const {
    return SourceLoc{options_.source, line_number};
  }

  [[noreturn]] void fail(const Line& line, DiagCode code,
                         const std::string& what) const {
    std::string shown = line.text;
    if (shown.size() > 120) shown = shown.substr(0, 117) + "...";
    throw ParseError(make_diag(code, Stage::Parse,
                               what + " [" + shown + "]", loc(line.number)));
  }

  [[noreturn]] void fail_limit(std::size_t line_number,
                               const std::string& what) const {
    throw ParseError(make_diag(DiagCode::LimitExceeded, Stage::Parse, what,
                               loc(line_number)));
  }

  /// Joins continuation lines, strips comments, lower-cases, and applies
  /// the input-size guards.
  void split_lines() {
    const ParseLimits& lim = options_.limits;
    if (lim.max_input_bytes != 0 && text_.size() > lim.max_input_bytes) {
      fail_limit(0, "input is " + std::to_string(text_.size()) +
                        " bytes, limit " + std::to_string(lim.max_input_bytes));
    }
    std::size_t lineno = 0;
    std::istringstream in{std::string(text_)};
    std::string raw;
    while (std::getline(in, raw)) {
      ++lineno;
      if (lim.max_lines != 0 && lineno > lim.max_lines) {
        fail_limit(lineno, "more than " + std::to_string(lim.max_lines) +
                               " lines of input");
      }
      if (lim.max_line_length != 0 && raw.size() > lim.max_line_length) {
        fail_limit(lineno, "line is " + std::to_string(raw.size()) +
                               " bytes, limit " +
                               std::to_string(lim.max_line_length));
      }
      // Strip inline comments ('$' or ';' to end of line).
      for (const char marker : {'$', ';'}) {
        auto pos = raw.find(marker);
        if (pos != std::string::npos) raw.erase(pos);
      }
      std::string s{trim(raw)};
      if (s.empty()) continue;
      if (s.front() == '*') continue;  // full-line comment
      s = to_lower(s);
      if (s.front() == '+') {
        if (lines_.empty()) {
          throw ParseError(make_diag(DiagCode::SyntaxError, Stage::Parse,
                                     "continuation with no preceding card",
                                     loc(lineno)));
        }
        Line& prev = lines_.back();
        if (lim.max_logical_line_length != 0 &&
            prev.text.size() + s.size() > lim.max_logical_line_length) {
          fail_limit(lineno, "continuation chain exceeds " +
                                 std::to_string(lim.max_logical_line_length) +
                                 " bytes");
        }
        prev.text.push_back(' ');
        prev.text.append(s, 1, std::string::npos);
      } else {
        lines_.push_back({std::move(s), lineno});
      }
    }
  }

  DeviceType mos_type_from_model(const std::string& model,
                                 const Line& line) const {
    auto it = models_.find(model);
    if (it != models_.end()) return it->second;
    // Heuristic fallback on the model name, as used by common PDKs.
    if (model.find("pmos") != std::string::npos ||
        model.find("pch") != std::string::npos ||
        model.find("pfet") != std::string::npos || starts_with(model, "p")) {
      return DeviceType::Pmos;
    }
    if (model.find("nmos") != std::string::npos ||
        model.find("nch") != std::string::npos ||
        model.find("nfet") != std::string::npos || starts_with(model, "n")) {
      return DeviceType::Nmos;
    }
    fail(line, DiagCode::BadValue,
         "cannot infer NMOS/PMOS from model '" + model + "'");
  }

  void parse_card(const Line& line) {
    auto tokens = normalize_param_tokens(split_ws(line.text));
    if (tokens.empty()) return;
    const std::string& head = tokens[0];

    if (head.front() == '.') {
      parse_directive(line, tokens);
      return;
    }
    switch (head.front()) {
      case 'm': parse_mos(line, tokens); break;
      case 'r': parse_two_pin(line, tokens, DeviceType::Resistor); break;
      case 'c': parse_two_pin(line, tokens, DeviceType::Capacitor); break;
      case 'l': parse_two_pin(line, tokens, DeviceType::Inductor); break;
      case 'v': parse_source(line, tokens, DeviceType::VSource); break;
      case 'i': parse_source(line, tokens, DeviceType::ISource); break;
      case 'x': parse_instance(line, tokens); break;
      default:
        fail(line, DiagCode::SyntaxError, "unrecognized card '" + head + "'");
    }
  }

  void parse_directive(const Line& line, const std::vector<std::string>& t) {
    const std::string& d = t[0];
    if (d == ".subckt") {
      if (current_subckt_ != nullptr) {
        fail(line, DiagCode::SyntaxError,
             "nested .subckt definitions are not supported");
      }
      if (t.size() < 2) fail(line, DiagCode::SyntaxError, ".subckt needs a name");
      SubcktDef def;
      def.name = t[1];
      def.src_line = line.number;
      for (std::size_t i = 2; i < t.size(); ++i) {
        if (is_param_token(t[i])) break;  // parameter defaults: ignored
        def.ports.push_back(t[i]);
      }
      auto [it, inserted] = netlist_.subckts.emplace(def.name, std::move(def));
      if (!inserted) {
        fail(line, DiagCode::DuplicateName, "duplicate subckt " + t[1]);
      }
      current_subckt_ = &it->second;
    } else if (d == ".ends") {
      if (current_subckt_ == nullptr) {
        fail(line, DiagCode::SyntaxError, ".ends without .subckt");
      }
      current_subckt_ = nullptr;
    } else if (d == ".global") {
      for (std::size_t i = 1; i < t.size(); ++i) netlist_.globals.insert(t[i]);
    } else if (d == ".portlabel") {
      if (t.size() < 3) {
        fail(line, DiagCode::SyntaxError, ".portlabel needs <net> <label>");
      }
      auto label = port_label_from_string(t[2]);
      if (!label) {
        fail(line, DiagCode::BadValue, "unknown port label '" + t[2] + "'");
      }
      netlist_.port_labels[t[1]] = *label;
    } else if (d == ".param") {
      // .param name=value [name=value ...]; values may reference
      // previously defined parameters.
      for (std::size_t i = 1; i < t.size(); ++i) {
        const auto kv = split(t[i], '=');
        if (kv.size() != 2 || kv[0].empty()) {
          fail(line, DiagCode::SyntaxError,
               "malformed .param entry '" + t[i] + "'");
        }
        const auto v = resolve_value(kv[1]);
        if (!v) {
          fail(line, DiagCode::BadValue,
               "unresolvable .param value '" + t[i] + "'");
        }
        check_finite(*v, line, t[i]);
        params_[kv[0]] = *v;
      }
    } else if (d == ".model" || d == ".end" ||
               d == ".option" || d == ".options" || d == ".temp" ||
               d == ".include" || d == ".lib" || d == ".op" || d == ".tran" ||
               d == ".ac" || d == ".dc") {
      // Simulation/bookkeeping directives are irrelevant to recognition.
    } else {
      fail(line, DiagCode::UnknownDirective,
           "unsupported directive '" + d + "'");
    }
  }

  std::vector<Device>& device_sink() {
    return current_subckt_ ? current_subckt_->devices : netlist_.devices;
  }
  std::vector<Instance>& instance_sink() {
    return current_subckt_ ? current_subckt_->instances : netlist_.instances;
  }

  /// Numeric literal, or a name defined by a prior .param, or a literal
  /// wrapped in quotes/braces ("{2*w}" is NOT evaluated -- expressions
  /// beyond direct references are unsupported).
  std::optional<double> resolve_value(const std::string& token) const {
    if (auto v = parse_number(token)) return v;
    std::string name = token;
    if (name.size() >= 2 && ((name.front() == '\'' && name.back() == '\'') ||
                             (name.front() == '{' && name.back() == '}'))) {
      name = name.substr(1, name.size() - 2);
    }
    auto it = params_.find(name);
    if (it != params_.end()) return it->second;
    return std::nullopt;
  }

  /// Rejects overflowed literals like 1e999 right at the card: a single
  /// Inf would otherwise propagate through features into every GCN
  /// activation of the circuit.
  void check_finite(double v, const Line& line,
                    const std::string& token) const {
    if (!std::isfinite(v)) {
      fail(line, DiagCode::NonFinite, "non-finite value '" + token + "'");
    }
  }

  void parse_params(const std::vector<std::string>& t, std::size_t from,
                    const Line& line, Device& dev) {
    for (std::size_t i = from; i < t.size(); ++i) {
      if (!is_param_token(t[i])) {
        fail(line, DiagCode::SyntaxError, "unexpected token '" + t[i] + "'");
      }
      const auto kv = split(t[i], '=');
      if (kv.size() != 2 || kv[0].empty()) {
        fail(line, DiagCode::SyntaxError,
             "malformed parameter '" + t[i] + "'");
      }
      auto v = resolve_value(kv[1]);
      if (!v) {
        fail(line, DiagCode::BadValue,
             "non-numeric parameter value '" + t[i] + "'");
      }
      check_finite(*v, line, t[i]);
      dev.params[kv[0]] = *v;
    }
  }

  void parse_mos(const Line& line, const std::vector<std::string>& t) {
    // Mname d g s b model [params...]
    if (t.size() < 6) {
      fail(line, DiagCode::SyntaxError,
           "MOS card needs name, 4 nets, and a model");
    }
    Device dev;
    dev.name = t[0];
    dev.src_line = line.number;
    dev.pins = {t[1], t[2], t[3], t[4]};
    dev.model = t[5];
    if (is_param_token(dev.model)) {
      fail(line, DiagCode::SyntaxError, "MOS card is missing its model name");
    }
    dev.type = mos_type_from_model(dev.model, line);
    parse_params(t, 6, line, dev);
    device_sink().push_back(std::move(dev));
  }

  void parse_two_pin(const Line& line, const std::vector<std::string>& t,
                     DeviceType type) {
    // Rname n1 n2 value [params...]
    if (t.size() < 4) {
      fail(line, DiagCode::SyntaxError,
           "passive card needs name, 2 nets, value");
    }
    Device dev;
    dev.name = t[0];
    dev.type = type;
    dev.src_line = line.number;
    dev.pins = {t[1], t[2]};
    auto v = resolve_value(t[3]);
    if (!v) fail(line, DiagCode::BadValue, "bad value '" + t[3] + "'");
    check_finite(*v, line, t[3]);
    dev.value = *v;
    parse_params(t, 4, line, dev);
    device_sink().push_back(std::move(dev));
  }

  void parse_source(const Line& line, const std::vector<std::string>& t,
                    DeviceType type) {
    // Vname n+ n- [dc] value  |  Vname n+ n-
    if (t.size() < 3) {
      fail(line, DiagCode::SyntaxError, "source card needs name and 2 nets");
    }
    Device dev;
    dev.name = t[0];
    dev.type = type;
    dev.src_line = line.number;
    dev.pins = {t[1], t[2]};
    std::size_t i = 3;
    if (i < t.size() && t[i] == "dc") ++i;
    if (i < t.size() && !is_param_token(t[i])) {
      auto v = parse_number(t[i]);
      if (!v) {
        fail(line, DiagCode::BadValue, "bad source value '" + t[i] + "'");
      }
      check_finite(*v, line, t[i]);
      dev.value = *v;
      ++i;
    }
    parse_params(t, i, line, dev);
    device_sink().push_back(std::move(dev));
  }

  void parse_instance(const Line& line, const std::vector<std::string>& t) {
    // Xname net1 ... netN subcktname [params...]
    if (t.size() < 3) {
      fail(line, DiagCode::SyntaxError, "instance card needs nets and a subckt");
    }
    Instance inst;
    inst.name = t[0];
    inst.src_line = line.number;
    std::size_t end = t.size();
    while (end > 1 && is_param_token(t[end - 1])) --end;  // drop params
    if (end < 3) {
      fail(line, DiagCode::SyntaxError,
           "instance card needs at least one net");
    }
    inst.subckt = t[end - 1];
    inst.nets.assign(t.begin() + 1, t.begin() + static_cast<std::ptrdiff_t>(end - 1));
    instance_sink().push_back(std::move(inst));
  }

  std::string_view text_;
  const ParseOptions& options_;
  std::vector<Line> lines_;
  Netlist netlist_;
  SubcktDef* current_subckt_ = nullptr;
  std::map<std::string, DeviceType> models_;
  std::map<std::string, double> params_;  ///< .param definitions
};

}  // namespace

Netlist parse_netlist(std::string_view text, const ParseOptions& options) {
  return Parser(text, options).run();
}

std::string read_netlist_text(const std::string& path,
                              const ParseLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ParseError(make_diag(DiagCode::IoError, Stage::Io,
                               "cannot open file: " + path,
                               SourceLoc{path, 0}));
  }
  in.seekg(0, std::ios::end);
  const auto size_pos = in.tellg();
  if (size_pos < 0) {
    throw ParseError(make_diag(DiagCode::IoError, Stage::Io,
                               "cannot determine size of file: " + path,
                               SourceLoc{path, 0}));
  }
  const std::size_t size = static_cast<std::size_t>(size_pos);
  // Same rejection the parser itself would issue, but before a single
  // byte of an oversized file has been read into memory.
  if (limits.max_input_bytes != 0 && size > limits.max_input_bytes) {
    throw ParseError(make_diag(
        DiagCode::LimitExceeded, Stage::Parse,
        "input is " + std::to_string(size) + " bytes, limit " +
            std::to_string(limits.max_input_bytes),
        SourceLoc{path, 0}));
  }
  in.seekg(0, std::ios::beg);
  return read_probed_text(in, size, path);
}

std::string read_probed_text(std::istream& in, std::size_t probed_size,
                             const std::string& path) {
  std::string text(probed_size, '\0');
  in.read(text.data(), static_cast<std::streamsize>(probed_size));
  const std::size_t got = static_cast<std::size_t>(std::max<std::streamsize>(
      in.gcount(), 0));
  if (in.bad() || (got != probed_size && !in.eof())) {
    throw ParseError(make_diag(DiagCode::IoError, Stage::Io,
                               "cannot read file: " + path,
                               SourceLoc{path, 0}));
  }
  // The buffer was sized from a pre-read tellg probe; a file that
  // changes size between probe and read would otherwise be parsed as a
  // torn prefix (shrink -> short read padded with NULs, grow -> probed
  // prefix only). Verify the read delivered exactly the probed bytes
  // and that nothing trails them.
  if (got != probed_size) {
    throw ParseError(make_diag(
        DiagCode::IoError, Stage::Io,
        "file shrank while being read: " + path + " (expected " +
            std::to_string(probed_size) + " bytes, got " +
            std::to_string(got) + ")",
        SourceLoc{path, 0}));
  }
  in.clear();  // reading exactly to EOF may have latched eofbit
  if (in.peek() != std::istream::traits_type::eof()) {
    throw ParseError(make_diag(
        DiagCode::IoError, Stage::Io,
        "file grew while being read: " + path + " (trailing bytes after the " +
            std::to_string(probed_size) + "-byte size probe)",
        SourceLoc{path, 0}));
  }
  return text;
}

Netlist parse_netlist_file(const std::string& path, const ParseLimits& limits) {
  const std::string text = read_netlist_text(path, limits);
  ParseOptions options;
  options.source = path;
  options.limits = limits;
  return parse_netlist(text, options);
}

Result<Netlist> parse_netlist_result(std::string_view text,
                                     const ParseOptions& options) {
  try {
    return parse_netlist(text, options);
  } catch (const NetlistError& e) {
    return e.diag();
  } catch (const DiagError& e) {
    // Checkpoint aborts (expired deadline, injected fault) already carry
    // a structured Diag; pass it through rather than wrapping as
    // Internal.
    return e.diag();
  } catch (const std::exception& e) {
    return make_diag(DiagCode::Internal, Stage::Parse, e.what(),
                     SourceLoc{options.source, 0});
  }
}

Result<Netlist> parse_netlist_file_result(const std::string& path,
                                          const ParseLimits& limits) {
  try {
    return parse_netlist_file(path, limits);
  } catch (const NetlistError& e) {
    return e.diag();
  } catch (const DiagError& e) {
    return e.diag();
  } catch (const std::exception& e) {
    return make_diag(DiagCode::Internal, Stage::Parse, e.what(),
                     SourceLoc{path, 0});
  }
}

}  // namespace gana::spice
