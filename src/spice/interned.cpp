#include "spice/interned.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace gana::spice {

std::size_t InternedNetlist::find_subckt(SymbolId name) const {
  for (std::size_t i = 0; i < subckts.size(); ++i) {
    if (subckts[i].name == name) return i;
  }
  return npos;
}

namespace {

InternedDevice intern_device(const Device& d, SymbolTable& syms) {
  InternedDevice out;
  out.name = syms.intern(d.name);
  out.type = d.type;
  out.model = d.model.empty() ? kNoSymbol : syms.intern(d.model);
  for (const auto& p : d.pins) out.pins.push_back(syms.intern(p));
  out.value = d.value;
  out.params.reserve(d.params.size());
  for (const auto& [k, v] : d.params) out.params.push_back({syms.intern(k), v});
  out.hier_depth = d.hier_depth;
  out.src_line = d.src_line;
  return out;
}

InternedInstance intern_instance(const Instance& i, SymbolTable& syms) {
  InternedInstance out;
  out.name = syms.intern(i.name);
  out.subckt = syms.intern(i.subckt);
  out.nets.reserve(i.nets.size());
  for (const auto& n : i.nets) out.nets.push_back(syms.intern(n));
  out.src_line = i.src_line;
  return out;
}

Device materialize_device(const InternedDevice& d, const SymbolTable& syms) {
  Device out;
  out.name = std::string(syms.name(d.name));
  out.type = d.type;
  if (d.model != kNoSymbol) out.model = std::string(syms.name(d.model));
  out.pins.reserve(d.pins.size());
  for (std::size_t i = 0; i < d.pins.size(); ++i) {
    out.pins.emplace_back(syms.name(d.pins[i]));
  }
  out.value = d.value;
  for (const auto& p : d.params) {
    out.params.emplace(std::string(syms.name(p.key)), p.value);
  }
  out.hier_depth = d.hier_depth;
  out.src_line = d.src_line;
  return out;
}

Instance materialize_instance(const InternedInstance& i,
                              const SymbolTable& syms) {
  Instance out;
  out.name = std::string(syms.name(i.name));
  out.subckt = std::string(syms.name(i.subckt));
  out.nets.reserve(i.nets.size());
  for (const SymbolId n : i.nets) out.nets.emplace_back(syms.name(n));
  out.src_line = i.src_line;
  return out;
}

}  // namespace

InternedNetlist intern_netlist(const Netlist& netlist) {
  InternedNetlist out;
  out.title = netlist.title;
  out.devices.reserve(netlist.devices.size());
  for (const auto& d : netlist.devices) {
    out.devices.push_back(intern_device(d, out.syms));
  }
  out.instances.reserve(netlist.instances.size());
  for (const auto& i : netlist.instances) {
    out.instances.push_back(intern_instance(i, out.syms));
  }
  out.subckts.reserve(netlist.subckts.size());
  for (const auto& [name, def] : netlist.subckts) {
    InternedSubckt s;
    s.name = out.syms.intern(name);
    s.ports.reserve(def.ports.size());
    for (const auto& p : def.ports) s.ports.push_back(out.syms.intern(p));
    s.devices.reserve(def.devices.size());
    for (const auto& d : def.devices) {
      s.devices.push_back(intern_device(d, out.syms));
    }
    s.instances.reserve(def.instances.size());
    for (const auto& i : def.instances) {
      s.instances.push_back(intern_instance(i, out.syms));
    }
    s.src_line = def.src_line;
    out.subckts.push_back(std::move(s));
  }
  for (const auto& [net, label] : netlist.port_labels) {
    out.port_labels.emplace_back(out.syms.intern(net), label);
  }
  for (const auto& g : netlist.globals) {
    out.globals.push_back(out.syms.intern(g));
  }
  out.syms.flush_stats();
  return out;
}

Netlist materialize_netlist(const InternedNetlist& netlist) {
  const SymbolTable& syms = netlist.syms;
  Netlist out;
  out.title = netlist.title;
  out.devices.reserve(netlist.devices.size());
  for (const auto& d : netlist.devices) {
    out.devices.push_back(materialize_device(d, syms));
  }
  out.instances.reserve(netlist.instances.size());
  for (const auto& i : netlist.instances) {
    out.instances.push_back(materialize_instance(i, syms));
  }
  for (const auto& s : netlist.subckts) {
    SubcktDef def;
    def.name = std::string(syms.name(s.name));
    def.ports.reserve(s.ports.size());
    for (const SymbolId p : s.ports) def.ports.emplace_back(syms.name(p));
    def.devices.reserve(s.devices.size());
    for (const auto& d : s.devices) {
      def.devices.push_back(materialize_device(d, syms));
    }
    def.instances.reserve(s.instances.size());
    for (const auto& i : s.instances) {
      def.instances.push_back(materialize_instance(i, syms));
    }
    def.src_line = s.src_line;
    out.subckts.emplace(def.name, std::move(def));
  }
  for (const auto& [net, label] : netlist.port_labels) {
    out.port_labels[std::string(syms.name(net))] = label;
  }
  for (const SymbolId g : netlist.globals) {
    out.globals.emplace(syms.name(g));
  }
  return out;
}

namespace {

/// Mirrors the helpers inside Netlist::check byte-for-byte so the
/// interned path fails with the exact Diag the Reference path produces.
Diag at(const std::string& source, std::size_t line, DiagCode code,
        std::string message) {
  return make_diag(code, Stage::Validate, std::move(message),
                   SourceLoc{source, line});
}

bool all_finite(const InternedDevice& d) {
  if (!std::isfinite(d.value)) return false;
  for (const auto& p : d.params) {
    if (!std::isfinite(p.value)) return false;
  }
  return true;
}

std::optional<Diag> check_devices(const std::vector<InternedDevice>& devices,
                                  const SymbolTable& syms,
                                  const std::string& scope,
                                  const std::string& source) {
  for (const auto& d : devices) {
    if (syms.name(d.name).empty()) {
      return at(source, d.src_line, DiagCode::EmptyName,
                "unnamed device in " + scope);
    }
    const std::size_t expected = is_mos(d.type) ? 4 : 2;
    if (d.pins.size() != expected) {
      return at(source, d.src_line, DiagCode::BadPinCount,
                "device " + std::string(syms.name(d.name)) + " in " + scope +
                    " has " + std::to_string(d.pins.size()) +
                    " pins, expected " + std::to_string(expected));
    }
    for (std::size_t i = 0; i < d.pins.size(); ++i) {
      if (syms.name(d.pins[i]).empty()) {
        return at(source, d.src_line, DiagCode::EmptyName,
                  "device " + std::string(syms.name(d.name)) + " in " + scope +
                      " has an empty net name");
      }
    }
    if (!all_finite(d)) {
      return at(source, d.src_line, DiagCode::NonFinite,
                "device " + std::string(syms.name(d.name)) + " in " + scope +
                    " has a non-finite value or parameter");
    }
  }
  return std::nullopt;
}

std::optional<Diag> check_unique_names(
    const std::vector<InternedDevice>& devices,
    const std::vector<InternedInstance>& instances, const SymbolTable& syms,
    const std::string& scope, const std::string& source) {
  std::unordered_set<SymbolId> seen;
  for (const auto& d : devices) {
    if (!seen.insert(d.name).second) {
      return at(source, d.src_line, DiagCode::DuplicateName,
                "duplicate device name " + std::string(syms.name(d.name)) +
                    " in " + scope);
    }
  }
  for (const auto& i : instances) {
    if (!seen.insert(i.name).second) {
      return at(source, i.src_line, DiagCode::DuplicateName,
                "duplicate instance name " + std::string(syms.name(i.name)) +
                    " in " + scope);
    }
  }
  return std::nullopt;
}

}  // namespace

void validate_interned(const InternedNetlist& netlist,
                       const std::string& source) {
  const SymbolTable& syms = netlist.syms;
  auto raise = [](std::optional<Diag> d) {
    if (d) throw NetlistError(std::move(*d));
  };
  raise(check_devices(netlist.devices, syms, "top level", source));
  raise(check_unique_names(netlist.devices, netlist.instances, syms,
                           "top level", source));
  auto check_instances = [&](const std::vector<InternedInstance>& insts,
                             const std::string& scope) {
    for (const auto& inst : insts) {
      const std::size_t def = netlist.find_subckt(inst.subckt);
      if (def == InternedNetlist::npos) {
        raise(at(source, inst.src_line, DiagCode::UndefinedSubckt,
                 "instance " + std::string(syms.name(inst.name)) + " in " +
                     scope + " references undefined subckt " +
                     std::string(syms.name(inst.subckt))));
      }
      if (netlist.subckts[def].ports.size() != inst.nets.size()) {
        raise(at(
            source, inst.src_line, DiagCode::PortMismatch,
            "instance " + std::string(syms.name(inst.name)) + " in " + scope +
                " binds " + std::to_string(inst.nets.size()) +
                " nets to subckt " + std::string(syms.name(inst.subckt)) +
                " with " + std::to_string(netlist.subckts[def].ports.size()) +
                " ports"));
      }
    }
  };
  check_instances(netlist.instances, "top level");
  // The Reference path iterates `Netlist::subckts`, a std::map, so
  // definitions are visited in name order -- replicate that order here
  // or the first reported violation could differ.
  std::vector<std::size_t> order(netlist.subckts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return syms.name(netlist.subckts[a].name) <
           syms.name(netlist.subckts[b].name);
  });
  for (const std::size_t i : order) {
    const InternedSubckt& def = netlist.subckts[i];
    const std::string scope = "subckt " + std::string(syms.name(def.name));
    raise(check_devices(def.devices, syms, scope, source));
    raise(check_unique_names(def.devices, def.instances, syms, scope, source));
    check_instances(def.instances, scope);
  }
}

std::uint8_t NetClassCache::flags(SymbolId id) {
  if (id >= flags_.size()) flags_.resize(syms_->size(), 0);
  std::uint8_t& f = flags_[id];
  if (!(f & kKnown)) {
    const std::string name(syms_->name(id));
    f = kKnown;
    if (is_supply_net(name)) f |= kSupply;
    if (is_ground_net(name)) f |= kGround;
  }
  return f;
}

}  // namespace gana::spice
