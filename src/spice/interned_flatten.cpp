// Id-space hierarchy expansion (see interned.hpp for the contract).
//
// Mirrors flatten.cpp exactly: same expansion order, same prefixing,
// same global/rail scoping rules, same failure Diags. All prefixed
// names are built once into a scratch string and interned into the
// netlist's own symbol table, whose arena the flattened result inherits.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "spice/flatten.hpp"
#include "spice/interned.hpp"

namespace gana::spice {
namespace {

class InternedFlattener {
 public:
  InternedFlattener(InternedNetlist& src, const std::string& source)
      : src_(src), source_(source), syms_(src.syms), rails_(src.syms) {
    for (const SymbolId g : src_.globals) globals_.insert(g);
    // Subckt definitions keyed by name id for O(1) instance expansion.
    for (std::size_t i = 0; i < src_.subckts.size(); ++i) {
      def_by_name_.emplace(src_.subckts[i].name, i);
    }
  }

  std::vector<InternedDevice> run() {
    std::vector<InternedDevice> out = src_.devices;
    out_ = &out;
    // Top-level instance nets are already in their final (top-level) form.
    for (const auto& inst : src_.instances) {
      expand(inst, /*depth=*/1);
    }
    return out;
  }

 private:
  /// Maps a net seen inside a subckt body to its flattened name: formal
  /// ports bind to the caller's nets; globals and supply/ground rails are
  /// never scoped; everything else gets the instance-path prefix.
  SymbolId map_net(SymbolId net, const std::string& prefix,
                   const std::vector<std::pair<SymbolId, SymbolId>>& net_map) {
    for (const auto& [formal, actual] : net_map) {
      if (formal == net) return actual;
    }
    if (globals_.count(net) != 0 || rails_.rail(net)) return net;
    return prefixed(prefix, net);
  }

  /// Interns "<prefix><name(id)>" via a reused scratch buffer.
  SymbolId prefixed(const std::string& prefix, SymbolId id) {
    scratch_.assign(prefix);
    scratch_.append(syms_.name(id));
    return syms_.intern(scratch_);
  }

  /// The active instantiation path, rendered one hop per note line:
  /// "x0 instantiates subckt a".
  [[nodiscard]] std::vector<std::string> chain_notes(
      const InternedInstance& last) const {
    std::vector<std::string> notes;
    for (const auto* inst : chain_) {
      notes.push_back(std::string(syms_.name(inst->name)) +
                      " instantiates subckt " +
                      std::string(syms_.name(inst->subckt)));
    }
    notes.push_back(std::string(syms_.name(last.name)) +
                    " instantiates subckt " +
                    std::string(syms_.name(last.subckt)) + " again -- cycle");
    return notes;
  }

  [[noreturn]] void fail(const InternedInstance& inst, DiagCode code,
                         std::string message,
                         std::vector<std::string> notes = {}) const {
    throw NetlistError(make_diag(code, Stage::Flatten, std::move(message),
                                 SourceLoc{source_, inst.src_line},
                                 std::move(notes)));
  }

  /// Expands an instance whose actual nets are already flattened names.
  void expand(const InternedInstance& inst, int depth) {
    auto def_it = def_by_name_.find(inst.subckt);
    if (def_it == def_by_name_.end()) {
      fail(inst, DiagCode::UndefinedSubckt,
           "undefined subckt " + std::string(syms_.name(inst.subckt)));
    }
    const InternedSubckt& def = src_.subckts[def_it->second];
    // A subckt on the active expansion path instantiating itself (directly
    // or through intermediates) would recurse forever; the depth budget is
    // only a backstop for absurdly deep but acyclic hierarchies.
    if (!active_.insert(def.name).second) {
      fail(inst, DiagCode::RecursiveSubckt,
           "recursive instantiation of subckt " +
               std::string(syms_.name(inst.subckt)),
           chain_notes(inst));
    }
    if (depth > kMaxDepth) {
      active_.erase(def.name);
      fail(inst, DiagCode::DepthExceeded,
           "subckt nesting exceeds depth " + std::to_string(kMaxDepth) +
               " at instance " + std::string(syms_.name(inst.name)));
    }
    if (def.ports.size() != inst.nets.size()) {
      active_.erase(def.name);
      fail(inst, DiagCode::PortMismatch,
           "port count mismatch instantiating " +
               std::string(syms_.name(inst.subckt)) + " (" +
               std::to_string(inst.nets.size()) + " nets, " +
               std::to_string(def.ports.size()) + " ports)");
    }
    chain_.push_back(&inst);

    const std::string prefix =
        std::string(syms_.name(inst.name)) + std::string(1, kHierSeparator);
    std::vector<std::pair<SymbolId, SymbolId>> net_map;
    net_map.reserve(def.ports.size());
    for (std::size_t i = 0; i < def.ports.size(); ++i) {
      net_map.emplace_back(def.ports[i], inst.nets[i]);
    }

    for (const auto& d : def.devices) {
      InternedDevice nd = d;
      nd.name = prefixed(prefix, d.name);
      nd.hier_depth = depth;
      for (std::size_t pi = 0; pi < nd.pins.size(); ++pi) {
        nd.pins[pi] = map_net(nd.pins[pi], prefix, net_map);
      }
      out_->push_back(std::move(nd));
    }
    for (const auto& child : def.instances) {
      InternedInstance bound = child;
      bound.name = prefixed(prefix, child.name);
      for (auto& n : bound.nets) {
        n = map_net(n, prefix, net_map);
      }
      expand(bound, depth + 1);
    }

    chain_.pop_back();
    active_.erase(def.name);
  }

  static constexpr int kMaxDepth = 64;

  InternedNetlist& src_;
  const std::string& source_;
  SymbolTable& syms_;
  NetClassCache rails_;
  std::vector<InternedDevice>* out_ = nullptr;
  std::unordered_set<SymbolId> globals_;
  std::unordered_map<SymbolId, std::size_t> def_by_name_;
  std::unordered_set<SymbolId> active_;  ///< subckts on the expansion path
  std::vector<const InternedInstance*> chain_;  ///< instances on the path
  std::string scratch_;
};

}  // namespace

InternedNetlist flatten_interned(InternedNetlist netlist,
                                 const std::string& source) {
  std::vector<InternedDevice> flat_devices =
      InternedFlattener(netlist, source).run();
  InternedNetlist out;
  out.title = std::move(netlist.title);
  out.port_labels = std::move(netlist.port_labels);
  out.globals = std::move(netlist.globals);
  out.devices = std::move(flat_devices);
  out.syms = std::move(netlist.syms);
  out.syms.flush_stats();
  validate_interned(out, source);
  return out;
}

}  // namespace gana::spice
