#include "spice/flatten.hpp"

#include <map>
#include <set>
#include <string>

namespace gana::spice {
namespace {

class Flattener {
 public:
  Flattener(const Netlist& src, const std::string& source)
      : src_(src), source_(source) {}

  Netlist run() {
    Netlist out;
    out.title = src_.title;
    out.port_labels = src_.port_labels;
    out.globals = src_.globals;
    out_ = &out;
    out.devices = src_.devices;
    // Top-level instance nets are already in their final (top-level) form.
    for (const auto& inst : src_.instances) {
      expand(inst, /*depth=*/1);
    }
    out.validate(source_);
    return out;
  }

 private:
  /// Maps a net seen inside a subckt body to its flattened name: formal
  /// ports bind to the caller's nets; globals and supply/ground rails are
  /// never scoped; everything else gets the instance-path prefix.
  std::string map_net(const std::string& net, const std::string& prefix,
                      const std::map<std::string, std::string>& net_map) const {
    auto it = net_map.find(net);
    if (it != net_map.end()) return it->second;
    if (src_.globals.count(net) || is_supply_net(net) || is_ground_net(net)) {
      return net;
    }
    return prefix + net;
  }

  /// The active instantiation path, rendered one hop per note line:
  /// "x0 instantiates subckt a".
  [[nodiscard]] std::vector<std::string> chain_notes(
      const Instance& last) const {
    std::vector<std::string> notes;
    for (const auto* inst : chain_) {
      notes.push_back(inst->name + " instantiates subckt " + inst->subckt);
    }
    notes.push_back(last.name + " instantiates subckt " + last.subckt +
                    " again -- cycle");
    return notes;
  }

  [[noreturn]] void fail(const Instance& inst, DiagCode code,
                         std::string message,
                         std::vector<std::string> notes = {}) const {
    throw NetlistError(make_diag(code, Stage::Flatten, std::move(message),
                                 SourceLoc{source_, inst.src_line},
                                 std::move(notes)));
  }

  /// Expands an instance whose actual nets are already flattened names.
  void expand(const Instance& inst, int depth) {
    auto def_it = src_.subckts.find(inst.subckt);
    if (def_it == src_.subckts.end()) {
      fail(inst, DiagCode::UndefinedSubckt,
           "undefined subckt " + inst.subckt);
    }
    const SubcktDef& def = def_it->second;
    // A subckt on the active expansion path instantiating itself (directly
    // or through intermediates) would recurse forever; the depth budget is
    // only a backstop for absurdly deep but acyclic hierarchies.
    if (!active_.insert(def.name).second) {
      fail(inst, DiagCode::RecursiveSubckt,
           "recursive instantiation of subckt " + inst.subckt,
           chain_notes(inst));
    }
    if (depth > kMaxDepth) {
      active_.erase(def.name);
      fail(inst, DiagCode::DepthExceeded,
           "subckt nesting exceeds depth " + std::to_string(kMaxDepth) +
               " at instance " + inst.name);
    }
    if (def.ports.size() != inst.nets.size()) {
      active_.erase(def.name);
      fail(inst, DiagCode::PortMismatch,
           "port count mismatch instantiating " + inst.subckt + " (" +
               std::to_string(inst.nets.size()) + " nets, " +
               std::to_string(def.ports.size()) + " ports)");
    }
    chain_.push_back(&inst);

    const std::string prefix = inst.name + std::string(1, kHierSeparator);
    std::map<std::string, std::string> net_map;
    for (std::size_t i = 0; i < def.ports.size(); ++i) {
      net_map[def.ports[i]] = inst.nets[i];
    }

    for (const auto& d : def.devices) {
      Device nd = d;
      nd.name = prefix + d.name;
      nd.hier_depth = depth;
      for (auto& pin : nd.pins) {
        pin = map_net(pin, prefix, net_map);
      }
      out_->devices.push_back(std::move(nd));
    }
    for (const auto& child : def.instances) {
      Instance bound = child;
      bound.name = prefix + child.name;
      for (auto& n : bound.nets) {
        n = map_net(n, prefix, net_map);
      }
      expand(bound, depth + 1);
    }

    chain_.pop_back();
    active_.erase(def.name);
  }

  static constexpr int kMaxDepth = 64;

  const Netlist& src_;
  const std::string& source_;
  Netlist* out_ = nullptr;
  std::set<std::string> active_;          ///< subckts on the expansion path
  std::vector<const Instance*> chain_;    ///< instances on the path, in order
};

}  // namespace

Netlist flatten(const Netlist& netlist, const std::string& source) {
  return Flattener(netlist, source).run();
}

Result<Netlist> flatten_result(const Netlist& netlist,
                               const std::string& source) {
  try {
    return flatten(netlist, source);
  } catch (const DiagError& e) {
    // Covers NetlistError plus checkpoint aborts (expired deadline,
    // injected fault) -- all already structured.
    return e.diag();
  } catch (const std::exception& e) {
    return make_diag(DiagCode::Internal, Stage::Flatten, e.what(),
                     SourceLoc{source, 0});
  }
}

}  // namespace gana::spice
