#include "spice/flatten.hpp"

#include <map>
#include <string>

namespace gana::spice {
namespace {

class Flattener {
 public:
  explicit Flattener(const Netlist& src) : src_(src) {}

  Netlist run() {
    Netlist out;
    out.title = src_.title;
    out.port_labels = src_.port_labels;
    out.globals = src_.globals;
    out_ = &out;
    out.devices = src_.devices;
    // Top-level instance nets are already in their final (top-level) form.
    for (const auto& inst : src_.instances) {
      expand(inst, /*depth=*/1);
    }
    out.validate();
    return out;
  }

 private:
  /// Maps a net seen inside a subckt body to its flattened name: formal
  /// ports bind to the caller's nets; globals and supply/ground rails are
  /// never scoped; everything else gets the instance-path prefix.
  std::string map_net(const std::string& net, const std::string& prefix,
                      const std::map<std::string, std::string>& net_map) const {
    auto it = net_map.find(net);
    if (it != net_map.end()) return it->second;
    if (src_.globals.count(net) || is_supply_net(net) || is_ground_net(net)) {
      return net;
    }
    return prefix + net;
  }

  /// Expands an instance whose actual nets are already flattened names.
  void expand(const Instance& inst, int depth) {
    if (depth > kMaxDepth) {
      throw NetlistError("subckt nesting exceeds depth " +
                         std::to_string(kMaxDepth) +
                         " (recursive definition?) at instance " + inst.name);
    }
    auto def_it = src_.subckts.find(inst.subckt);
    if (def_it == src_.subckts.end()) {
      throw NetlistError("undefined subckt " + inst.subckt);
    }
    const SubcktDef& def = def_it->second;
    if (def.ports.size() != inst.nets.size()) {
      throw NetlistError("port count mismatch instantiating " + inst.subckt);
    }

    const std::string prefix = inst.name + std::string(1, kHierSeparator);
    std::map<std::string, std::string> net_map;
    for (std::size_t i = 0; i < def.ports.size(); ++i) {
      net_map[def.ports[i]] = inst.nets[i];
    }

    for (const auto& d : def.devices) {
      Device nd = d;
      nd.name = prefix + d.name;
      nd.hier_depth = depth;
      for (auto& pin : nd.pins) {
        pin = map_net(pin, prefix, net_map);
      }
      out_->devices.push_back(std::move(nd));
    }
    for (const auto& child : def.instances) {
      Instance bound = child;
      bound.name = prefix + child.name;
      for (auto& n : bound.nets) {
        n = map_net(n, prefix, net_map);
      }
      expand(bound, depth + 1);
    }
  }

  static constexpr int kMaxDepth = 64;

  const Netlist& src_;
  Netlist* out_ = nullptr;
};

}  // namespace

Netlist flatten(const Netlist& netlist) { return Flattener(netlist).run(); }

}  // namespace gana::spice
