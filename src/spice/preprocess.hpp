// Recognition-oriented netlist preprocessing (paper §II-B).
//
// "Preprocessing also identifies netlist features that help performance
// but do not affect functionality (and can be disregarded during
// recognition), e.g., parallel transistors for sizing, series transistors
// for large transistor lengths, dummies, decaps."
//
// The operations here simplify a *flat* netlist for recognition only:
//  * parallel devices with identical connectivity fold into one card with
//    an increased multiplicity parameter `m`;
//  * series MOS stacks sharing a gate (and series resistors) collapse
//    through their internal node;
//  * dummy transistors and supply decoupling caps are dropped.
//
// Every removed device is recorded in `alias` (removed name -> surviving
// name, empty string when simply deleted) so ground-truth labels can be
// carried across preprocessing.
#pragma once

#include <map>
#include <string>

#include "spice/netlist.hpp"

namespace gana::spice {

/// What preprocessing did; see file comment.
struct PreprocessReport {
  std::size_t merged_parallel = 0;
  std::size_t merged_series = 0;
  std::size_t removed_dummies = 0;
  std::size_t removed_decaps = 0;
  /// removed device name -> surviving representative ("" if deleted).
  std::map<std::string, std::string> alias;

  [[nodiscard]] std::size_t total_removed() const {
    return merged_parallel + merged_series + removed_dummies + removed_decaps;
  }
};

/// Options controlling individual preprocessing passes.
struct PreprocessOptions {
  bool merge_parallel = true;
  bool merge_series = true;
  bool remove_dummies = true;
  bool remove_decaps = true;
};

/// Runs all enabled passes to a fixpoint on a flat netlist (throws
/// NetlistError if `netlist` still contains instances).
PreprocessReport preprocess(Netlist& netlist,
                            const PreprocessOptions& options = {});

}  // namespace gana::spice
