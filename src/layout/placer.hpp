// Hierarchical constraint-aware placement (paper Fig. 6 use case).
//
// "The hierarchies identified by our algorithm are used by the layout
// tool to construct layouts for primitives, which are assembled into
// layouts for larger blocks. The symmetry and proximity constraints
// detected at the primitive level are propagated to other levels of
// hierarchy, creating a common axis of symmetry for the entire layout."
//
// Placement strategy: primitives place their tiles in a row (mirrored
// about the row center when a Symmetry constraint binds a pair); blocks
// stack primitive rows about a common vertical axis; the system packs
// block outlines on shelves.
#pragma once

#include "core/hierarchy.hpp"
#include "layout/tiles.hpp"
#include "spice/netlist.hpp"

namespace gana::layout {

struct PlacerOptions {
  double spacing = 0.4;        ///< gap between tiles/rows (um)
  double block_spacing = 2.0;  ///< gap between blocks (um)
};

/// Places the hierarchy; device geometry is looked up from the flat
/// netlist (device name -> type/value).
Placement place_hierarchy(const core::HierarchyNode& root,
                          const spice::Netlist& flat,
                          const PlacerOptions& options = {});

/// Symmetry audit: every Symmetry constraint with two members must have
/// its tiles mirror-placed about the pair's common axis (within eps).
struct SymmetryCheck {
  std::size_t checked = 0;
  std::size_t violations = 0;
};
SymmetryCheck check_symmetry(const Placement& placement,
                             const core::HierarchyNode& root,
                             double eps = 1e-6);

/// Half-perimeter wirelength over all non-rail nets of the flat netlist.
double half_perimeter_wirelength(const Placement& placement,
                                 const spice::Netlist& flat);

}  // namespace gana::layout
