#include "layout/svg.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace gana::layout {
namespace {

const char* fill_for(const std::string& type) {
  if (type == "nmos") return "#4e79a7";
  if (type == "pmos") return "#59a14f";
  if (type == "res") return "#e15759";
  if (type == "cap") return "#76b7b2";
  if (type == "ind") return "#f28e2b";
  return "#bab0ac";
}

}  // namespace

std::string to_svg(const Placement& placement, double scale) {
  const Rect bb = placement.bounding_box();
  const double margin = 1.0;
  const double width = (bb.w + 2 * margin) * scale;
  const double height = (bb.h + 2 * margin) * scale;
  auto tx = [&](double x) { return (x - bb.x + margin) * scale; };
  // SVG y grows downward; flip so the layout's y grows upward.
  auto ty = [&](double y, double h) {
    return height - (y - bb.y + margin + h) * scale;
  };

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\">\n";
  out << "<rect x=\"0\" y=\"0\" width=\"" << width << "\" height=\""
      << height << "\" fill=\"#fafafa\"/>\n";

  // Block outlines.
  std::map<std::string, Rect> blocks;
  for (const auto& t : placement.tiles) {
    if (t.block.empty()) continue;
    auto [it, inserted] = blocks.emplace(t.block, t.rect);
    if (!inserted) {
      Rect& r = it->second;
      const double x1 = std::max(r.x + r.w, t.rect.x + t.rect.w);
      const double y1 = std::max(r.y + r.h, t.rect.y + t.rect.h);
      r.x = std::min(r.x, t.rect.x);
      r.y = std::min(r.y, t.rect.y);
      r.w = x1 - r.x;
      r.h = y1 - r.y;
    }
  }
  for (const auto& [name, r] : blocks) {
    out << "<rect x=\"" << tx(r.x) - 2 << "\" y=\"" << ty(r.y, r.h) - 2
        << "\" width=\"" << r.w * scale + 4 << "\" height=\""
        << r.h * scale + 4
        << "\" fill=\"none\" stroke=\"#888\" stroke-dasharray=\"4 2\"/>\n";
    out << "<text x=\"" << tx(r.x) << "\" y=\"" << ty(r.y, r.h) - 4
        << "\" font-size=\"" << scale * 0.8 << "\" fill=\"#555\">" << name
        << "</text>\n";
  }

  for (const auto& t : placement.tiles) {
    out << "<rect x=\"" << tx(t.rect.x) << "\" y=\""
        << ty(t.rect.y, t.rect.h) << "\" width=\"" << t.rect.w * scale
        << "\" height=\"" << t.rect.h * scale << "\" fill=\""
        << fill_for(t.type) << "\" stroke=\"#333\" stroke-width=\"0.5\">"
        << "<title>" << t.name << " (" << t.type << ")</title></rect>\n";
  }
  out << "</svg>\n";
  return out.str();
}

void write_svg(const Placement& placement, const std::string& path,
               double scale) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write " + path);
  f << to_svg(placement, scale);
}

}  // namespace gana::layout
