// SVG emission of placements (the repo's stand-in for paper Fig. 6).
#pragma once

#include <string>

#include "layout/tiles.hpp"

namespace gana::layout {

/// Renders the placement as an SVG document; tiles are colored by device
/// type and grouped/outlined by owning block.
std::string to_svg(const Placement& placement, double scale = 12.0);

/// Writes the SVG to a file; throws std::runtime_error on I/O failure.
void write_svg(const Placement& placement, const std::string& path,
               double scale = 12.0);

}  // namespace gana::layout
