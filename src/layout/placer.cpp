#include "layout/placer.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace gana::layout {

using core::HierarchyNode;

namespace {

struct DeviceInfo {
  spice::DeviceType type = spice::DeviceType::Nmos;
  double value = 0.0;
};

std::map<std::string, DeviceInfo> device_info(const spice::Netlist& flat) {
  std::map<std::string, DeviceInfo> info;
  for (const auto& d : flat.devices) {
    DeviceInfo di;
    di.type = d.type;
    di.value = d.value;
    if (spice::is_mos(d.type)) {
      auto w = d.params.find("w");
      if (w != d.params.end()) di.value = w->second;
    }
    info[d.name] = di;
  }
  return info;
}

/// Recursive placer: returns the subtree's tiles placed in a local frame
/// with the lower-left corner at (0, 0).
class HierPlacer {
 public:
  HierPlacer(const std::map<std::string, DeviceInfo>& info,
             const PlacerOptions& opt)
      : info_(info), opt_(opt) {}

  std::vector<Tile> place(const HierarchyNode& node,
                          const std::string& block_name) {
    switch (node.kind) {
      case HierarchyNode::Kind::Element:
        return {element_tile(node, block_name)};
      case HierarchyNode::Kind::Primitive:
        return place_primitive(node, block_name);
      case HierarchyNode::Kind::SubBlock:
        return place_rows(node, node.name);
      case HierarchyNode::Kind::System:
        return place_system(node);
    }
    return {};
  }

 private:
  Tile element_tile(const HierarchyNode& node,
                    const std::string& block_name) const {
    Tile t;
    t.name = node.name;
    t.type = node.type;
    t.block = block_name;
    auto it = info_.find(node.name);
    if (it != info_.end()) {
      t.rect = device_footprint(it->second.type, it->second.value);
    } else {
      t.rect = {0, 0, 1.0, 1.0};
    }
    return t;
  }

  /// Lay tiles left-to-right; symmetric pairs (from a Symmetry constraint)
  /// are emitted as the outermost mirrored pair of the row so that the
  /// pair is exactly symmetric about the row center.
  std::vector<Tile> place_primitive(const HierarchyNode& node,
                                    const std::string& block_name) {
    std::vector<Tile> tiles;
    tiles.reserve(node.children.size());
    for (const auto& child : node.children) {
      tiles.push_back(element_tile(child, block_name));
    }
    // Mirrored pair first and last (if constrained).
    std::vector<std::string> pair;
    for (const auto& c : node.constraints) {
      if (c.kind == constraints::Kind::Symmetry && c.members.size() >= 2) {
        pair = {c.members[0], c.members[1]};
        break;
      }
    }
    if (!pair.empty()) {
      auto by_name = [&](const std::string& n) {
        return std::find_if(tiles.begin(), tiles.end(),
                            [&](const Tile& t) { return t.name == n; });
      };
      auto a = by_name(pair[0]);
      if (a != tiles.end()) std::iter_swap(tiles.begin(), a);
      auto b = by_name(pair[1]);
      if (b != tiles.end()) std::iter_swap(tiles.end() - 1, b);
      // Matched pair gets identical outlines (Matching constraint).
      tiles.back().rect.w = tiles.front().rect.w;
      tiles.back().rect.h = tiles.front().rect.h;
    }
    double x = 0.0;
    for (auto& t : tiles) {
      t.rect.x = x;
      t.rect.y = 0.0;
      x += t.rect.w + opt_.spacing;
    }
    return tiles;
  }

  /// Stack each child's row bottom-up, centering rows about a common
  /// vertical axis.
  std::vector<Tile> place_rows(const HierarchyNode& node,
                               const std::string& block_name) {
    std::vector<std::vector<Tile>> rows;
    double max_width = 0.0;
    for (const auto& child : node.children) {
      auto row = place(child, block_name);
      if (row.empty()) continue;
      double w = 0.0, x0 = 1e300;
      for (const auto& t : row) {
        x0 = std::min(x0, t.rect.x);
        w = std::max(w, t.rect.x + t.rect.w);
      }
      max_width = std::max(max_width, w - x0);
      rows.push_back(std::move(row));
    }
    std::vector<Tile> out;
    double y = 0.0;
    const double axis = max_width / 2.0;
    for (auto& row : rows) {
      double x0 = 1e300, x1 = -1e300, h = 0.0;
      for (const auto& t : row) {
        x0 = std::min(x0, t.rect.x);
        x1 = std::max(x1, t.rect.x + t.rect.w);
        // Nested sub-blocks span multiple internal rows: use the full
        // vertical extent, not the tile height.
        h = std::max(h, t.rect.y + t.rect.h);
      }
      const double shift = axis - (x0 + x1) / 2.0;
      for (auto& t : row) {
        t.rect.x += shift;
        t.rect.y += y;
        out.push_back(std::move(t));
      }
      y += h + opt_.spacing;
    }
    return out;
  }

  /// Shelf-pack block outlines left-to-right, wrapping at a target width.
  std::vector<Tile> place_system(const HierarchyNode& node) {
    struct BlockOutline {
      std::vector<Tile> tiles;
      double w = 0.0, h = 0.0;
    };
    std::vector<BlockOutline> blocks;
    double total_area = 0.0;
    for (const auto& child : node.children) {
      BlockOutline b;
      b.tiles = place(child, child.kind == HierarchyNode::Kind::SubBlock
                                 ? child.name
                                 : std::string("standalone:") + child.name);
      if (b.tiles.empty()) continue;
      double x1 = 0.0, y1 = 0.0;
      for (const auto& t : b.tiles) {
        x1 = std::max(x1, t.rect.x + t.rect.w);
        y1 = std::max(y1, t.rect.y + t.rect.h);
      }
      b.w = x1;
      b.h = y1;
      total_area += b.w * b.h;
      blocks.push_back(std::move(b));
    }
    // Tallest blocks first onto shelves.
    std::stable_sort(blocks.begin(), blocks.end(),
                     [](const BlockOutline& a, const BlockOutline& b) {
                       return a.h > b.h;
                     });
    const double target_width = std::sqrt(total_area) * 1.3;
    std::vector<Tile> out;
    double shelf_y = 0.0, shelf_h = 0.0, x = 0.0;
    for (auto& b : blocks) {
      if (x > 0.0 && x + b.w > target_width) {
        shelf_y += shelf_h + opt_.block_spacing;
        shelf_h = 0.0;
        x = 0.0;
      }
      for (auto& t : b.tiles) {
        t.rect.x += x;
        t.rect.y += shelf_y;
        out.push_back(std::move(t));
      }
      x += b.w + opt_.block_spacing;
      shelf_h = std::max(shelf_h, b.h);
    }
    return out;
  }

  const std::map<std::string, DeviceInfo>& info_;
  const PlacerOptions& opt_;
};

void collect_symmetry(const HierarchyNode& node,
                      std::vector<const constraints::Constraint*>& out) {
  for (const auto& c : node.constraints) {
    if (c.kind == constraints::Kind::Symmetry && c.members.size() == 2) {
      out.push_back(&c);
    }
  }
  for (const auto& child : node.children) collect_symmetry(child, out);
}

}  // namespace

Placement place_hierarchy(const HierarchyNode& root,
                          const spice::Netlist& flat,
                          const PlacerOptions& options) {
  const auto info = device_info(flat);
  HierPlacer placer(info, options);
  Placement p;
  p.tiles = placer.place(root, "");
  return p;
}

SymmetryCheck check_symmetry(const Placement& placement,
                             const HierarchyNode& root, double eps) {
  std::vector<const constraints::Constraint*> pairs;
  collect_symmetry(root, pairs);
  SymmetryCheck check;
  for (const auto* c : pairs) {
    const Tile* a = placement.find(c->members[0]);
    const Tile* b = placement.find(c->members[1]);
    if (a == nullptr || b == nullptr) continue;
    ++check.checked;
    // Mirrored about their common axis: same y, same size; the x check is
    // that the midpoint of centers is equidistant (trivially true for two
    // tiles) plus equal sizes -- so verify same row and equal outlines.
    const bool same_row = std::abs(a->rect.y - b->rect.y) < eps;
    const bool same_size = std::abs(a->rect.w - b->rect.w) < eps &&
                           std::abs(a->rect.h - b->rect.h) < eps;
    if (!same_row || !same_size) ++check.violations;
  }
  return check;
}

double half_perimeter_wirelength(const Placement& placement,
                                 const spice::Netlist& flat) {
  std::map<std::string, const Tile*> tile_of;
  for (const auto& t : placement.tiles) tile_of[t.name] = &t;
  double hpwl = 0.0;
  for (const auto& [net, touches] : flat.connectivity()) {
    if (spice::is_supply_net(net) || spice::is_ground_net(net)) continue;
    double x0 = 1e300, x1 = -1e300, y0 = 1e300, y1 = -1e300;
    std::size_t found = 0;
    for (const auto& [di, pi] : touches) {
      (void)pi;
      auto it = tile_of.find(flat.devices[di].name);
      if (it == tile_of.end()) continue;
      ++found;
      x0 = std::min(x0, it->second->rect.cx());
      x1 = std::max(x1, it->second->rect.cx());
      y0 = std::min(y0, it->second->rect.cy());
      y1 = std::max(y1, it->second->rect.cy());
    }
    if (found >= 2) hpwl += (x1 - x0) + (y1 - y0);
  }
  return hpwl;
}

}  // namespace gana::layout
