#include "layout/tiles.hpp"

#include <algorithm>
#include <cmath>

namespace gana::layout {

Rect Placement::bounding_box() const {
  if (tiles.empty()) return {};
  double x0 = 1e300, y0 = 1e300, x1 = -1e300, y1 = -1e300;
  for (const auto& t : tiles) {
    x0 = std::min(x0, t.rect.x);
    y0 = std::min(y0, t.rect.y);
    x1 = std::max(x1, t.rect.x + t.rect.w);
    y1 = std::max(y1, t.rect.y + t.rect.h);
  }
  return {x0, y0, x1 - x0, y1 - y0};
}

std::size_t Placement::overlap_count() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    for (std::size_t j = i + 1; j < tiles.size(); ++j) {
      if (tiles[i].rect.overlaps(tiles[j].rect)) ++count;
    }
  }
  return count;
}

const Tile* Placement::find(const std::string& name) const {
  for (const auto& t : tiles) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

Rect device_footprint(spice::DeviceType type, double value) {
  using spice::DeviceType;
  switch (type) {
    case DeviceType::Nmos:
    case DeviceType::Pmos: {
      // Fold the gate width into fingers of ~2 um.
      const double w_um = std::max(value, 0.5e-6) * 1e6;
      const double fingers = std::clamp(std::ceil(w_um / 2.0), 1.0, 8.0);
      return {0, 0, 0.6 + 0.4 * fingers, 1.2};
    }
    case DeviceType::Resistor: {
      const double squares = std::clamp(std::log10(std::max(value, 1.0)), 1.0, 6.0);
      return {0, 0, 0.8, 1.0 + 0.6 * squares};
    }
    case DeviceType::Capacitor: {
      // MIM cap area ~ C; 2 fF/um^2.
      const double area = std::clamp(value / 2e-15, 1.0, 400.0);
      const double side = std::sqrt(area) * 0.35;
      return {0, 0, side, side};
    }
    case DeviceType::Inductor:
      return {0, 0, 8.0, 8.0};  // spiral inductors dominate RF area
    case DeviceType::VSource:
    case DeviceType::ISource:
      return {0, 0, 1.0, 1.0};
  }
  return {0, 0, 1.0, 1.0};
}

}  // namespace gana::layout
