// Geometric primitives for the layout use case (paper Fig. 6).
//
// Each element becomes a rectangular tile sized from its electrical
// parameters; primitives and blocks assemble tiles under the constraints
// detected during annotation.
#pragma once

#include <string>
#include <vector>

#include "graph/circuit_graph.hpp"

namespace gana::layout {

struct Rect {
  double x = 0.0, y = 0.0;  ///< lower-left corner
  double w = 0.0, h = 0.0;

  [[nodiscard]] double cx() const { return x + w / 2.0; }
  [[nodiscard]] double cy() const { return y + h / 2.0; }
  [[nodiscard]] double area() const { return w * h; }
  [[nodiscard]] bool overlaps(const Rect& o) const {
    return x < o.x + o.w && o.x < x + w && y < o.y + o.h && o.y < y + h;
  }
};

/// One placed device.
struct Tile {
  std::string name;  ///< device name
  std::string type;  ///< device type string ("nmos", "cap", ...)
  std::string block; ///< owning sub-block name ("" for stand-alone)
  Rect rect;
};

/// A complete placement.
struct Placement {
  std::vector<Tile> tiles;

  [[nodiscard]] Rect bounding_box() const;
  [[nodiscard]] double area() const { return bounding_box().area(); }
  [[nodiscard]] std::size_t overlap_count() const;
  [[nodiscard]] const Tile* find(const std::string& name) const;
};

/// Tile footprint for a device (microns): MOS width grows with W, caps
/// and inductors are large, resistors tall and thin.
Rect device_footprint(spice::DeviceType type, double value);

}  // namespace gana::layout
