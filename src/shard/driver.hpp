// Corpus-scale sharded batch driver (gana-shard).
//
// Annotates a manifest of netlists across worker *processes*:
//
//   manifest -> deterministic contiguous shards -> fork/exec one worker
//   per shard -> each worker streams per-netlist results and its perf
//   summary back over a pipe (the serve/protocol length-prefixed JSON
//   framing) -> the parent merges records in manifest order.
//
// Partitioning is a pure function of (entry count, shard count):
// contiguous ranges whose sizes differ by at most one, earlier shards
// taking the remainder. Contiguity keeps the merge a streaming
// in-order flush (shard k's records are a gap-free slice of the
// manifest) and makes "which worker owns netlist i" reproducible from
// the command line alone.
//
// Determinism contract: the merged per-netlist output is byte-identical
// at every shard count, including the in-process shards=1 path, because
//   * every path formats records through the same record_line();
//   * per-circuit sample streams derive from (root seed, structural
//     hash) -- never from slot index, shard index, or scheduling
//     (core::kDefaultSampleSeed invariant), so process boundaries
//     cannot shift any result;
//   * caches only memoize pure functions of structure, so per-process
//     cache instances cannot diverge from a single shared one.
// The sharding bench (bench/sharding.cpp) and the shard determinism
// tests pin this byte-for-byte.
//
// Failure semantics (keep-going): a worker that crashes, exits nonzero,
// or outlives its per-shard deadline never wedges the merge. Its
// missing netlists surface as structured Diags (DiagCode::WorkerFailed
// or DeadlineExceeded) in the merged output, and healthy shards are
// unaffected. Without keep-going the driver kills the remaining workers
// after the first failed record and marks unprocessed slots
// DiagCode::Skipped, mirroring BatchRunner's FailFast policy (which
// later slots are skipped is scheduling-dependent, exactly as there).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/batch_runner.hpp"
#include "shard/manifest.hpp"
#include "util/args.hpp"

namespace gana::shard {

/// Half-open slice [begin, end) of the manifest owned by one worker.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Deterministic contiguous partition: ranges cover [0, count) exactly,
/// sizes differ by at most one (earlier shards take the remainder), and
/// the result depends only on (count, shards). `shards` is clamped to
/// [1, count]; count == 0 yields no shards.
[[nodiscard]] std::vector<ShardRange> shard_partition(std::size_t count,
                                                      std::size_t shards);

/// Annotation settings shared by every worker (and the in-process
/// path); all of it is forwarded on the worker command line, so a shard
/// worker reconstructs the exact same pipeline the parent would run.
struct PipelineOptions {
  std::size_t jobs = 1;   ///< BatchRunner threads inside one worker
  std::uint64_t seed = core::kDefaultSampleSeed;
  std::string domain = "ota";     ///< class vocabulary: "ota" or "rf"
  bool caches = true;             ///< sample/annotation/inference caches
  std::size_t cache_capacity = 0; ///< per-cache entry bound (0 unbounded)
  double timeout_seconds = 0.0;   ///< per-netlist deadline (0 disables)
  /// Optional model path: text checkpoint or binary artifact (sniffed).
  std::string load_model;
  /// Optional primitive-library path (text or binary artifact, sniffed;
  /// "" or "standard" = the built-in library).
  std::string load_library;
};

/// How manifest slots are assigned to workers (fork mode only).
enum class Scheduler {
  /// PR 8 behavior: one contiguous shard_partition range per worker,
  /// fixed up front. Predictable ownership, but a skewed corpus leaves
  /// workers idle while the unlucky one drains its giant netlists.
  Static,
  /// Workers pull bounded index ranges from the parent on demand
  /// ("need-work" -> "grant" frames over the worker's stdin). Chunk
  /// size decays near the tail so stragglers stay balanced. Merged
  /// output is byte-identical to Static at every worker count (results
  /// are pure functions of the netlist, and the Merger emits manifest
  /// order regardless of which worker ran what).
  Stealing,
};

struct ShardOptions {
  /// Worker processes. 1 annotates in-process with no fork (the
  /// baseline the byte-identity guard compares against); >= 2 fork/exec
  /// one worker per shard.
  std::size_t shards = 1;
  PipelineOptions pipeline;
  /// Per-shard wall-clock deadline enforced by the parent (fork mode
  /// only): a worker still running past it is killed and its missing
  /// netlists get DeadlineExceeded diags. 0 disables.
  double shard_timeout_seconds = 0.0;
  /// false = fail fast: kill remaining workers after the first failed
  /// record; unprocessed slots come back DiagCode::Skipped.
  bool keep_going = false;
  /// Slot assignment policy for fork mode. Stealing is the default;
  /// Static keeps the PR 8 contiguous partition (bench baseline, and
  /// the predictable-ownership failure-semantics tests).
  Scheduler scheduler = Scheduler::Stealing;
  /// Binary to exec with --worker; "" uses /proc/self/exe. Test and
  /// bench drivers point this at the gana_shard binary.
  std::string worker_exe;
  /// Extra flags appended to every worker command line (test hooks such
  /// as --crash-after).
  std::vector<std::string> extra_worker_args;
};

/// One merged per-netlist outcome: the annotation JSON (double-encoded,
/// exactly core::annotation_to_json's bytes) or a structured Diag.
struct NetlistRecord {
  bool ok = false;
  std::string payload;       ///< annotation JSON document (ok only)
  std::optional<Diag> diag;  ///< present iff !ok
};

/// The merged output line for one manifest slot, newline-terminated.
/// Single formatting point for every execution path -- the whole
/// byte-identity guarantee funnels through here.
[[nodiscard]] std::string record_line(std::size_t index,
                                      const ManifestEntry& entry,
                                      const NetlistRecord& record);

/// Post-mortem of one shard.
struct ShardStatus {
  /// Static scheduler: the contiguous slice this worker owned.
  /// Stealing: {0,0} (ownership is the granted-chunk history instead).
  ShardRange range;
  int pid = -1;               ///< worker pid (-1 for the in-process path)
  int wait_status = 0;        ///< raw waitpid status (0 = clean exit)
  bool deadline_expired = false;  ///< parent killed it past the deadline
  bool killed_by_driver = false;  ///< fail-fast kill (not a worker fault)
  std::size_t results = 0;    ///< per-netlist frames received
  std::string perf_json;      ///< worker batch_timings_to_json summary
  /// Worker-reported artifact/model/library load time (seconds spent
  /// before the first netlist), from the summary frame. The bench sums
  /// this across workers to attribute fan-out loss to cold starts.
  double startup_seconds = 0.0;
  std::size_t steal_requests = 0;  ///< need-work frames (stealing only)
  std::size_t chunks_served = 0;   ///< grants this worker received
};

struct ShardRunStats {
  std::size_t total = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  double wall_seconds = 0.0;
  std::vector<ShardStatus> shards;
  /// Lowest-manifest-index failure (nullopt when every netlist
  /// annotated); drives the CLI exit code.
  std::optional<std::size_t> first_failure_index;
  std::optional<Diag> first_failure;
};

/// Runs the whole corpus, writing merged records to `out` in manifest
/// order (streamed: a record is written as soon as every earlier slot
/// has one). Returns a Diag only for driver-level faults (unreadable
/// manifest, fork/pipe failure); per-netlist and per-worker failures
/// are reported inside the stats and the merged records.
[[nodiscard]] Result<ShardRunStats> run_sharded(const std::string& manifest,
                                                const ShardOptions& options,
                                                std::ostream& out);

/// Per-slice outcome summary of annotate_slice.
struct SliceResult {
  std::size_t ok = 0;
  std::size_t failed = 0;
  core::BatchTimings timings;  ///< summed over the slice's chunks
  /// Model/library load + annotator construction time, paid once per
  /// SliceRunner (== once per worker process).
  double startup_seconds = 0.0;
};

/// The shared per-netlist machinery behind every execution path: one
/// warm Annotator (model, library, caches, BatchRunner) constructed
/// once, then `run` parses and annotates any number of manifest ranges
/// through it. The static worker runs one range; a stealing worker runs
/// one range per grant; the in-process path runs the whole manifest.
/// Splitting construction from execution is what lets the perf summary
/// attribute startup (artifact load) separately from annotation work.
class SliceRunner {
 public:
  SliceRunner() = default;
  SliceRunner(const SliceRunner&) = delete;
  SliceRunner& operator=(const SliceRunner&) = delete;
  ~SliceRunner();

  /// Loads the model/library and builds the annotator stack. Returns a
  /// Diag on unloadable artifacts. Must be called (successfully) before
  /// run(); the load time is reported by startup_seconds().
  [[nodiscard]] Result<bool> init(const PipelineOptions& options);

  [[nodiscard]] double startup_seconds() const { return startup_seconds_; }

  /// Annotates entries[range) in chunks, invoking `emit` once per slot
  /// in slice order. `emit` returning false aborts the slice (broken
  /// output pipe). Reusable: each call is independent, sharing the warm
  /// annotator and caches. The returned SliceResult covers this call
  /// only (startup_seconds is 0; read it from startup_seconds()).
  [[nodiscard]] Result<SliceResult> run(
      const std::vector<ManifestEntry>& entries, ShardRange range,
      const std::function<bool(std::size_t, const NetlistRecord&)>& emit);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  double startup_seconds_ = 0.0;
};

/// One-shot wrapper: init + run, returning the slice result with
/// startup_seconds filled in. Kept as the simple entry point for the
/// in-process path and existing callers.
[[nodiscard]] Result<SliceResult> annotate_slice(
    const std::vector<ManifestEntry>& entries, ShardRange range,
    const PipelineOptions& options,
    const std::function<bool(std::size_t, const NetlistRecord&)>& emit);

/// Worker-process entry (`gana_shard --worker ...`): annotates its
/// manifest slice and streams framed results to stdout. Returns the
/// process exit code (0 = slice completed; per-netlist failures are
/// reported in-band as records, not through the exit code).
[[nodiscard]] int worker_main(const Args& args);

}  // namespace gana::shard
