// Corpus manifest: the work list of the sharded batch driver.
//
// A manifest is a plain text file naming one netlist path per line.
// Blank lines and lines starting with '#' are ignored, so a generator
// can stamp provenance (seed, circuit count) into comment headers and a
// re-run can detect a stale corpus without parsing any netlist.
//
// Entries are kept VERBATIM in every downstream record ("path" in the
// merged output, circuit names in annotation payloads) so the merged
// bytes are independent of where the corpus directory happens to live;
// only file *opening* resolves relative entries against the manifest's
// own directory. That split is what lets the merge golden test pin
// exact output bytes against a temp-dir corpus.
#pragma once

#include <string>
#include <vector>

#include "util/diag.hpp"

namespace gana::shard {

/// One manifest entry: the verbatim line plus its resolved filesystem
/// path (identical for absolute entries).
struct ManifestEntry {
  std::string name;      ///< entry as written in the manifest
  std::string resolved;  ///< path to open (relative entries get the
                         ///< manifest directory prepended)
};

/// Parses a manifest file. Never throws: an unreadable file comes back
/// as a Stage::Io Diag. An empty manifest (no entries) is valid.
[[nodiscard]] Result<std::vector<ManifestEntry>> read_manifest(
    const std::string& path);

/// Parses manifest text; `manifest_dir` resolves relative entries ("" =
/// keep them relative to the process working directory).
[[nodiscard]] std::vector<ManifestEntry> parse_manifest(
    std::string_view text, const std::string& manifest_dir);

/// Renders entries (plus optional '#' header lines) back to manifest
/// text. `headers` entries should not contain newlines.
[[nodiscard]] std::string write_manifest(
    const std::vector<std::string>& entries,
    const std::vector<std::string>& headers = {});

}  // namespace gana::shard
