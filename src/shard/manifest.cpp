#include "shard/manifest.hpp"

#include <fstream>
#include <sstream>

namespace gana::shard {

namespace {

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return {};
  return path.substr(0, slash);
}

std::string trimmed(std::string_view line) {
  std::size_t b = 0;
  std::size_t e = line.size();
  while (b < e && (line[b] == ' ' || line[b] == '\t' || line[b] == '\r')) ++b;
  while (e > b && (line[e - 1] == ' ' || line[e - 1] == '\t' ||
                   line[e - 1] == '\r')) {
    --e;
  }
  return std::string(line.substr(b, e - b));
}

}  // namespace

std::vector<ManifestEntry> parse_manifest(std::string_view text,
                                          const std::string& manifest_dir) {
  std::vector<ManifestEntry> entries;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    const std::string line = trimmed(raw);
    if (!line.empty() && line.front() != '#') {
      ManifestEntry e;
      e.name = line;
      e.resolved = (!manifest_dir.empty() && line.front() != '/')
                       ? manifest_dir + "/" + line
                       : line;
      entries.push_back(std::move(e));
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return entries;
}

Result<std::vector<ManifestEntry>> read_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_diag(DiagCode::IoError, Stage::Io,
                     "cannot open manifest: " + path, SourceLoc{path, 0});
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return make_diag(DiagCode::IoError, Stage::Io,
                     "cannot read manifest: " + path, SourceLoc{path, 0});
  }
  return parse_manifest(buf.str(), dirname_of(path));
}

std::string write_manifest(const std::vector<std::string>& entries,
                           const std::vector<std::string>& headers) {
  std::string out;
  for (const std::string& h : headers) {
    out += "# ";
    out += h;
    out += "\n";
  }
  for (const std::string& e : entries) {
    out += e;
    out += "\n";
  }
  return out;
}

}  // namespace gana::shard
