#include "shard/driver.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "core/export.hpp"
#include "datagen/rf_gen.hpp"
#include "gcn/serialize.hpp"
#include "serve/protocol.hpp"
#include "spice/parser.hpp"
#include "util/json.hpp"
#include "util/perf.hpp"
#include "util/timer.hpp"

namespace gana::shard {

namespace {

/// Netlists per BatchRunner run inside a worker: large enough that the
/// pool amortizes dispatch, small enough that results stream back (and
/// worker memory stays bounded) on a 100k-netlist shard.
constexpr std::size_t kWorkerChunk = 256;

/// Reserved "index" value of the worker's trailing summary frame.
constexpr std::uint64_t kSummaryIndex = ~std::uint64_t{0} >> 11;  // 2^53-1

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Human-readable waitpid status ("exited with status 2", "killed by
/// signal 9 (Killed)").
std::string describe_wait_status(int status) {
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = strsignal(sig);
    return "killed by signal " + std::to_string(sig) +
           (name != nullptr ? " (" + std::string(name) + ")" : "");
  }
  return "stopped with wait status " + std::to_string(status);
}

std::vector<std::string> class_names_for(const std::string& domain) {
  if (domain == "rf") return datagen::rf_class_names();
  return {"ota", "bias"};
}

/// Streams records out in manifest order: a record is flushed the
/// moment every earlier slot has one, so parent memory is bounded by
/// shard skew, not corpus size.
class Merger {
 public:
  Merger(std::ostream& out, const std::vector<ManifestEntry>& entries)
      : out_(&out),
        entries_(&entries),
        pending_(entries.size()),
        recorded_(entries.size(), false) {}

  /// False when `index` is out of range or already recorded (a worker
  /// protocol violation).
  bool add(std::size_t index, NetlistRecord record) {
    if (index >= recorded_.size() || recorded_[index]) return false;
    recorded_[index] = true;
    if (record.ok) {
      ++ok_;
    } else {
      ++failed_;
      if (!first_failure_index_.has_value() || index < *first_failure_index_) {
        first_failure_index_ = index;
        first_failure_ = record.diag;
      }
    }
    pending_[index] =
        std::make_unique<NetlistRecord>(std::move(record));
    while (next_ < pending_.size() && pending_[next_] != nullptr) {
      *out_ << record_line(next_, (*entries_)[next_], *pending_[next_]);
      pending_[next_].reset();
      ++next_;
    }
    return true;
  }

  [[nodiscard]] bool has_record(std::size_t index) const {
    return index < recorded_.size() && recorded_[index];
  }
  [[nodiscard]] std::size_t ok_count() const { return ok_; }
  [[nodiscard]] std::size_t failed_count() const { return failed_; }
  [[nodiscard]] const std::optional<std::size_t>& first_failure_index() const {
    return first_failure_index_;
  }
  [[nodiscard]] const std::optional<Diag>& first_failure() const {
    return first_failure_;
  }

 private:
  std::ostream* out_;
  const std::vector<ManifestEntry>* entries_;
  std::vector<std::unique_ptr<NetlistRecord>> pending_;
  std::vector<bool> recorded_;
  std::size_t next_ = 0;
  std::size_t ok_ = 0;
  std::size_t failed_ = 0;
  std::optional<std::size_t> first_failure_index_;
  std::optional<Diag> first_failure_;
};

/// Payload of one worker->parent result frame.
std::string encode_result_payload(std::size_t index,
                                  const NetlistRecord& record) {
  json::Value v{std::vector<json::Member>{}};
  v.set("kind", json::Value("result"));
  v.set("index", json::Value(static_cast<std::uint64_t>(index)));
  v.set("ok", json::Value(record.ok));
  if (record.ok) {
    v.set("payload", json::Value(record.payload));
  } else if (record.diag.has_value()) {
    v.set("diag", serve::diag_to_json(*record.diag));
  }
  return json::dump(v);
}

std::string encode_summary_payload(std::size_t shard, const SliceResult& r,
                                   std::size_t jobs, std::size_t total) {
  json::Value v{std::vector<json::Member>{}};
  v.set("kind", json::Value("summary"));
  v.set("index", json::Value(kSummaryIndex));
  v.set("shard", json::Value(static_cast<std::uint64_t>(shard)));
  v.set("ok", json::Value(static_cast<std::uint64_t>(r.ok)));
  v.set("failed", json::Value(static_cast<std::uint64_t>(r.failed)));
  v.set("perf", json::Value(core::batch_timings_to_json(r.timings, jobs, r.ok,
                                                        total)));
  return json::dump(v);
}

std::optional<std::uint64_t> read_u53(const json::Value& obj,
                                      std::string_view key) {
  const json::Value* v = obj.get(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  const double d = v->as_double();
  if (!(d >= 0.0) || d > 9.007199254740992e15 ||
      d != static_cast<double>(static_cast<std::uint64_t>(d))) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(d);
}

}  // namespace

std::vector<ShardRange> shard_partition(std::size_t count, std::size_t shards) {
  std::vector<ShardRange> out;
  if (count == 0) return out;
  shards = std::clamp<std::size_t>(shards, 1, count);
  const std::size_t base = count / shards;
  const std::size_t rem = count % shards;
  out.reserve(shards);
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t len = base + (s < rem ? 1 : 0);
    out.push_back(ShardRange{begin, begin + len});
    begin += len;
  }
  return out;
}

std::string record_line(std::size_t index, const ManifestEntry& entry,
                        const NetlistRecord& record) {
  json::Value v{std::vector<json::Member>{}};
  v.set("index", json::Value(static_cast<std::uint64_t>(index)));
  v.set("path", json::Value(entry.name));
  v.set("ok", json::Value(record.ok));
  if (record.ok) {
    v.set("annotation", json::Value(record.payload));
  } else if (record.diag.has_value()) {
    v.set("diag", serve::diag_to_json(*record.diag));
  }
  return json::dump(v) + "\n";
}

Result<SliceResult> annotate_slice(
    const std::vector<ManifestEntry>& entries, ShardRange range,
    const PipelineOptions& options,
    const std::function<bool(std::size_t, const NetlistRecord&)>& emit) {
  range.begin = std::min(range.begin, entries.size());
  range.end = std::clamp(range.end, range.begin, entries.size());

  std::unique_ptr<gcn::GcnModel> model;
  if (!options.load_model.empty()) {
    try {
      model = std::make_unique<gcn::GcnModel>(
          gcn::load_model_file(options.load_model));
    } catch (const DiagError& e) {
      return e.diag();
    } catch (const std::exception& e) {
      return make_diag(DiagCode::IoError, Stage::Io,
                       "cannot load model: " + std::string(e.what()),
                       SourceLoc{options.load_model, 0});
    }
  }
  core::Annotator annotator(model.get(), class_names_for(options.domain));
  if (options.caches) {
    const std::size_t cap = options.cache_capacity;
    annotator.set_sample_cache(std::make_shared<gcn::SamplePrepCache>(cap));
    annotator.set_annotation_cache(
        std::make_shared<primitives::AnnotationCache>(cap));
    // After any model load: the inference cache captures the weights
    // fingerprint at attach time.
    annotator.set_inference_cache(std::make_shared<gcn::InferenceCache>(cap));
  }
  core::BatchOptions bopt;
  bopt.jobs = options.jobs;
  bopt.seed = options.seed;
  bopt.policy = core::FailurePolicy::CollectAll;
  bopt.timeout_seconds = options.timeout_seconds;
  core::BatchRunner runner(annotator, bopt);

  SliceResult slice;
  for (std::size_t chunk = range.begin; chunk < range.end;
       chunk += kWorkerChunk) {
    const std::size_t chunk_end = std::min(chunk + kWorkerChunk, range.end);
    // Parse the chunk's files. Parsing happens before the runner's
    // perf-counter window opens, so patch parse_bytes over it (same
    // accounting as annotate_netlist).
    const PerfSnapshot perf_at_parse = perf_snapshot();
    std::vector<NetlistRecord> records(chunk_end - chunk);
    std::vector<spice::Netlist> netlists;
    std::vector<std::string> names;
    std::vector<std::size_t> slot(chunk_end - chunk, SIZE_MAX);
    for (std::size_t i = chunk; i < chunk_end; ++i) {
      auto parsed = spice::parse_netlist_file_result(entries[i].resolved);
      if (parsed.ok()) {
        slot[i - chunk] = netlists.size();
        netlists.push_back(parsed.take());
        names.push_back(entries[i].name);
      } else {
        records[i - chunk].ok = false;
        records[i - chunk].diag = parsed.diag();
      }
    }
    const std::uint64_t input_parse_bytes =
        (perf_snapshot() - perf_at_parse).parse_bytes;

    core::BatchOutcome outcome = runner.run_isolated(netlists, names);
    outcome.timings.parse_bytes += input_parse_bytes;
    slice.timings += outcome.timings;
    for (std::size_t i = chunk; i < chunk_end; ++i) {
      NetlistRecord& rec = records[i - chunk];
      const std::size_t s = slot[i - chunk];
      if (s != SIZE_MAX) {
        const auto& r = outcome.outcomes[s];
        if (r.ok()) {
          rec.ok = true;
          rec.payload =
              core::annotation_to_json(r.value(), annotator.class_names());
        } else {
          rec.ok = false;
          rec.diag = r.diag();
        }
      }
      rec.ok ? ++slice.ok : ++slice.failed;
      if (!emit(i, rec)) {
        return make_diag(DiagCode::IoError, Stage::Batch,
                         "result sink rejected record " + std::to_string(i) +
                             " (broken pipe to the driver?)");
      }
    }
  }
  return slice;
}

int worker_main(const Args& args) {
  const std::string manifest = args.get("manifest");
  if (manifest.empty()) {
    std::fprintf(stderr, "gana-shard worker: --manifest is required\n");
    return 2;
  }
  auto entries = read_manifest(manifest);
  if (!entries.ok()) {
    std::fprintf(stderr, "gana-shard worker: %s\n",
                 entries.diag().render().c_str());
    return 2;
  }
  ShardRange range;
  range.begin = static_cast<std::size_t>(
      std::max<long long>(0, args.get_int("begin", 0)));
  range.end = static_cast<std::size_t>(
      std::max<long long>(0, args.get_int("end", 0)));
  const std::size_t shard_index = static_cast<std::size_t>(
      std::max<long long>(0, args.get_int("shard", 0)));

  PipelineOptions pipeline;
  pipeline.jobs = static_cast<std::size_t>(std::max(args.get_int("jobs", 1), 1));
  const std::string seed_str = args.get("seed");
  pipeline.seed = seed_str.empty()
                      ? core::kDefaultSampleSeed
                      : std::strtoull(seed_str.c_str(), nullptr, 10);
  pipeline.domain = args.get("domain", "ota");
  pipeline.caches = !args.has("no-caches");
  pipeline.cache_capacity = static_cast<std::size_t>(
      std::max(args.get_int("cache-capacity", 0), 0));
  pipeline.timeout_seconds = args.get_double("timeout-seconds", 0.0);
  pipeline.load_model = args.get("load-model");

  // Deterministic fault injection for the worker-failure tests: after
  // emitting N result frames, --crash-after dies exactly as a crashing
  // worker would and --stall-after hangs until the driver's per-shard
  // deadline kills the process.
  const int crash_after = args.get_int("crash-after", -1);
  const int stall_after = args.get_int("stall-after", -1);

  const int out_fd = STDOUT_FILENO;
  std::size_t emitted = 0;
  const auto emit = [&](std::size_t index, const NetlistRecord& rec) {
    if (crash_after >= 0 && emitted == static_cast<std::size_t>(crash_after)) {
      ::raise(SIGKILL);
    }
    if (stall_after >= 0 && emitted == static_cast<std::size_t>(stall_after)) {
      for (;;) ::pause();
    }
    const auto frame =
        serve::encode_frame(encode_result_payload(index, rec));
    if (!frame.has_value()) return false;
    ++emitted;
    return write_all(out_fd, frame->data(), frame->size());
  };

  auto slice = annotate_slice(entries.value(), range, pipeline, emit);
  if (!slice.ok()) {
    std::fprintf(stderr, "gana-shard worker: %s\n",
                 slice.diag().render().c_str());
    return 3;
  }
  const auto summary = serve::encode_frame(encode_summary_payload(
      shard_index, slice.value(), pipeline.jobs, range.size()));
  if (!summary.has_value() ||
      !write_all(out_fd, summary->data(), summary->size())) {
    std::fprintf(stderr, "gana-shard worker: cannot write summary frame\n");
    return 3;
  }
  return 0;
}

namespace {

/// Parent-side view of one live worker.
struct Worker {
  ShardStatus status;
  int pipe_fd = -1;
  serve::FrameDecoder decoder;
  bool eof = false;
  bool reaped = false;
  double deadline = 0.0;  ///< absolute now_seconds() deadline; 0 = none
};

std::string worker_exe_path(const ShardOptions& options) {
  if (!options.worker_exe.empty()) return options.worker_exe;
  return "/proc/self/exe";
}

std::vector<std::string> worker_argv(const ShardOptions& options,
                                     const std::string& manifest,
                                     const ShardRange& range,
                                     std::size_t shard_index) {
  const PipelineOptions& p = options.pipeline;
  std::vector<std::string> argv;
  argv.push_back(worker_exe_path(options));
  argv.push_back("--worker");
  argv.push_back("--manifest");
  argv.push_back(manifest);
  argv.push_back("--begin");
  argv.push_back(std::to_string(range.begin));
  argv.push_back("--end");
  argv.push_back(std::to_string(range.end));
  argv.push_back("--shard");
  argv.push_back(std::to_string(shard_index));
  argv.push_back("--jobs");
  argv.push_back(std::to_string(p.jobs));
  argv.push_back("--seed");
  argv.push_back(std::to_string(p.seed));
  argv.push_back("--domain");
  argv.push_back(p.domain);
  if (!p.caches) argv.push_back("--no-caches");
  if (p.cache_capacity != 0) {
    argv.push_back("--cache-capacity");
    argv.push_back(std::to_string(p.cache_capacity));
  }
  if (p.timeout_seconds > 0.0) {
    argv.push_back("--timeout-seconds");
    argv.push_back(std::to_string(p.timeout_seconds));
  }
  if (!p.load_model.empty()) {
    argv.push_back("--load-model");
    argv.push_back(p.load_model);
  }
  for (const std::string& a : options.extra_worker_args) argv.push_back(a);
  return argv;
}

/// fork/execs one worker with its stdout routed into a fresh pipe.
/// Returns the read end, or a Diag.
Result<int> spawn_worker(const std::vector<std::string>& argv, int* pid_out) {
  int pfd[2];
  if (::pipe2(pfd, O_CLOEXEC) != 0) {
    return make_diag(DiagCode::Internal, Stage::Batch,
                     "pipe2 failed: " + std::string(strerror(errno)));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pfd[0]);
    ::close(pfd[1]);
    return make_diag(DiagCode::Internal, Stage::Batch,
                     "fork failed: " + std::string(strerror(errno)));
  }
  if (pid == 0) {
    // Child: frames go to stdout; stderr stays shared for diagnostics.
    // dup2 clears CLOEXEC on the stdout copy; both original pipe fds
    // (and every sibling's read end) close across exec.
    ::dup2(pfd[1], STDOUT_FILENO);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    std::fprintf(stderr, "gana-shard: cannot exec %s: %s\n", cargv[0],
                 strerror(errno));
    ::_exit(127);
  }
  ::close(pfd[1]);
  *pid_out = static_cast<int>(pid);
  return pfd[0];
}

Diag missing_record_diag(const Worker& w, std::size_t shard_index,
                         const ManifestEntry& entry,
                         double shard_timeout_seconds) {
  if (w.status.deadline_expired) {
    return make_diag(
        DiagCode::DeadlineExceeded, Stage::Batch,
        "shard " + std::to_string(shard_index) + " exceeded its " +
            std::to_string(shard_timeout_seconds) +
            "-second deadline before annotating this netlist",
        SourceLoc{entry.name, 0});
  }
  if (w.status.killed_by_driver) {
    return make_diag(DiagCode::Skipped, Stage::Batch,
                     "skipped: fail-fast after an earlier failure",
                     SourceLoc{entry.name, 0});
  }
  return make_diag(
      DiagCode::WorkerFailed, Stage::Batch,
      "shard worker " + std::to_string(shard_index) + " " +
          describe_wait_status(w.status.wait_status) +
          " before annotating this netlist",
      SourceLoc{entry.name, 0});
}

}  // namespace

Result<ShardRunStats> run_sharded(const std::string& manifest,
                                  const ShardOptions& options,
                                  std::ostream& out) {
  auto manifest_entries = read_manifest(manifest);
  if (!manifest_entries.ok()) return manifest_entries.diag();
  const std::vector<ManifestEntry>& entries = manifest_entries.value();

  Timer wall;
  ShardRunStats stats;
  stats.total = entries.size();
  Merger merger(out, entries);

  const std::vector<ShardRange> partition =
      shard_partition(entries.size(), options.shards);

  if (partition.size() <= 1) {
    // In-process baseline: no fork, same per-netlist machinery. This is
    // the path the byte-identity guard measures fan-out against.
    ShardStatus status;
    status.range = partition.empty() ? ShardRange{} : partition.front();
    if (status.range.size() > 0) {
      bool failed_fast = false;
      const auto emit = [&](std::size_t index, const NetlistRecord& rec) {
        if (failed_fast) {
          NetlistRecord skipped;
          skipped.ok = false;
          skipped.diag = make_diag(DiagCode::Skipped, Stage::Batch,
                                   "skipped: fail-fast after an earlier "
                                   "failure",
                                   SourceLoc{entries[index].name, 0});
          merger.add(index, skipped);
          return true;
        }
        ++status.results;
        merger.add(index, rec);
        if (!rec.ok && !options.keep_going) failed_fast = true;
        return true;
      };
      auto slice =
          annotate_slice(entries, status.range, options.pipeline, emit);
      if (!slice.ok()) return slice.diag();
      status.perf_json = core::batch_timings_to_json(
          slice.value().timings, options.pipeline.jobs, slice.value().ok,
          status.range.size());
    }
    stats.shards.push_back(std::move(status));
  } else {
    std::vector<Worker> workers(partition.size());
    const double spawn_time = now_seconds();
    for (std::size_t s = 0; s < partition.size(); ++s) {
      Worker& w = workers[s];
      w.status.range = partition[s];
      if (options.shard_timeout_seconds > 0.0) {
        w.deadline = spawn_time + options.shard_timeout_seconds;
      }
      auto fd = spawn_worker(worker_argv(options, manifest, partition[s], s),
                             &w.status.pid);
      if (!fd.ok()) {
        // Abort cleanly: kill and reap what already started.
        for (Worker& prev : workers) {
          if (prev.status.pid > 0 && !prev.reaped) {
            ::kill(prev.status.pid, SIGKILL);
            ::waitpid(prev.status.pid, nullptr, 0);
            if (prev.pipe_fd >= 0) ::close(prev.pipe_fd);
          }
        }
        return fd.diag();
      }
      w.pipe_fd = fd.value();
    }

    auto kill_worker = [](Worker& w) {
      if (w.status.pid > 0 && !w.reaped && !w.eof) {
        ::kill(w.status.pid, SIGKILL);
      }
    };
    bool fail_fast_triggered = false;

    std::size_t live = workers.size();
    std::vector<char> buf(64 << 10);
    while (live > 0) {
      std::vector<pollfd> fds;
      std::vector<std::size_t> fd_shard;
      for (std::size_t s = 0; s < workers.size(); ++s) {
        if (!workers[s].eof) {
          fds.push_back(pollfd{workers[s].pipe_fd, POLLIN, 0});
          fd_shard.push_back(s);
        }
      }
      // Poll timeout: the nearest live deadline (if any).
      int timeout_ms = -1;
      const double now = now_seconds();
      for (std::size_t s = 0; s < workers.size(); ++s) {
        const Worker& w = workers[s];
        if (w.eof || w.deadline <= 0.0) continue;
        const double remain = std::max(0.0, w.deadline - now);
        const int ms = static_cast<int>(remain * 1000.0) + 1;
        if (timeout_ms < 0 || ms < timeout_ms) timeout_ms = ms;
      }
      const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
      if (ready < 0 && errno != EINTR) {
        return make_diag(DiagCode::Internal, Stage::Batch,
                         "poll failed: " + std::string(strerror(errno)));
      }
      // Enforce per-shard deadlines.
      if (options.shard_timeout_seconds > 0.0) {
        const double t = now_seconds();
        for (Worker& w : workers) {
          if (!w.eof && w.deadline > 0.0 && t >= w.deadline &&
              !w.status.deadline_expired) {
            w.status.deadline_expired = true;
            kill_worker(w);
          }
        }
      }
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        Worker& w = workers[fd_shard[i]];
        const ssize_t n = ::read(w.pipe_fd, buf.data(), buf.size());
        if (n < 0) {
          if (errno == EINTR || errno == EAGAIN) continue;
        }
        if (n > 0) {
          w.decoder.feed(buf.data(), static_cast<std::size_t>(n));
          while (auto payload = w.decoder.next()) {
            std::string error;
            const auto doc = json::parse(*payload, &error);
            const auto index =
                doc.has_value() ? read_u53(*doc, "index") : std::nullopt;
            if (!doc.has_value() || !index.has_value()) {
              // Protocol violation: treat the stream as dead; the
              // worker's remaining slots become WorkerFailed records.
              kill_worker(w);
              break;
            }
            if (*index == kSummaryIndex) {
              const json::Value* perf = doc->get("perf");
              if (perf != nullptr) w.status.perf_json = perf->as_string();
              continue;
            }
            NetlistRecord rec;
            rec.ok = doc->get("ok") != nullptr && doc->get("ok")->as_bool();
            if (rec.ok) {
              const json::Value* p = doc->get("payload");
              rec.payload = p != nullptr ? p->as_string() : "";
            } else {
              const json::Value* d = doc->get("diag");
              if (d != nullptr) rec.diag = serve::diag_from_json(*d);
              if (!rec.diag.has_value()) {
                rec.diag = make_diag(DiagCode::WorkerFailed, Stage::Batch,
                                     "worker reported an unreadable "
                                     "failure record");
              }
            }
            if (merger.add(*index, std::move(rec))) ++w.status.results;
            if (!options.keep_going && merger.failed_count() > 0 &&
                !fail_fast_triggered) {
              fail_fast_triggered = true;
              // Cancel every still-running worker (including this one);
              // slots without records come back Skipped.
              for (Worker& other : workers) {
                if (!other.eof && !other.status.deadline_expired) {
                  other.status.killed_by_driver = true;
                  kill_worker(other);
                }
              }
            }
          }
          if (w.decoder.error()) kill_worker(w);
        } else if (n == 0) {
          w.eof = true;
          ::close(w.pipe_fd);
          w.pipe_fd = -1;
          int status = 0;
          while (::waitpid(w.status.pid, &status, 0) < 0 && errno == EINTR) {
          }
          w.status.wait_status = status;
          w.reaped = true;
          --live;
        }
      }
    }

    for (std::size_t s = 0; s < workers.size(); ++s) {
      Worker& w = workers[s];
      // A worker that exited clean but skipped slots is still a worker
      // failure for those slots.
      for (std::size_t i = w.status.range.begin; i < w.status.range.end; ++i) {
        if (merger.has_record(i)) continue;
        NetlistRecord rec;
        rec.ok = false;
        rec.diag = missing_record_diag(w, s, entries[i],
                                       options.shard_timeout_seconds);
        merger.add(i, std::move(rec));
      }
      stats.shards.push_back(w.status);
    }
  }

  stats.ok = merger.ok_count();
  stats.failed = merger.failed_count();
  stats.first_failure_index = merger.first_failure_index();
  stats.first_failure = merger.first_failure();
  stats.wall_seconds = wall.seconds();
  return stats;
}

}  // namespace gana::shard
