#include "shard/driver.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "core/export.hpp"
#include "datagen/rf_gen.hpp"
#include "gcn/serialize.hpp"
#include "primitives/library_io.hpp"
#include "serve/protocol.hpp"
#include "spice/parser.hpp"
#include "util/json.hpp"
#include "util/perf.hpp"
#include "util/timer.hpp"

namespace gana::shard {

namespace {

/// Netlists per BatchRunner run inside a worker: large enough that the
/// pool amortizes dispatch, small enough that results stream back (and
/// worker memory stays bounded) on a 100k-netlist shard.
constexpr std::size_t kWorkerChunk = 256;

/// Largest index range one steal grant hands out. Grants are
/// remaining/(2*workers), so chunks decay toward 1 near the tail; the
/// cap bounds how much work a crashing worker can take down with it.
constexpr std::size_t kMaxStealChunk = 1024;

/// Reserved "index" value of the worker's trailing summary frame.
constexpr std::uint64_t kSummaryIndex = ~std::uint64_t{0} >> 11;  // 2^53-1

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Human-readable waitpid status ("exited with status 2", "killed by
/// signal 9 (Killed)").
std::string describe_wait_status(int status) {
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = strsignal(sig);
    return "killed by signal " + std::to_string(sig) +
           (name != nullptr ? " (" + std::string(name) + ")" : "");
  }
  return "stopped with wait status " + std::to_string(status);
}

std::vector<std::string> class_names_for(const std::string& domain) {
  if (domain == "rf") return datagen::rf_class_names();
  return {"ota", "bias"};
}

/// Streams records out in manifest order: a record is flushed the
/// moment every earlier slot has one, so parent memory is bounded by
/// shard skew, not corpus size.
class Merger {
 public:
  Merger(std::ostream& out, const std::vector<ManifestEntry>& entries)
      : out_(&out),
        entries_(&entries),
        pending_(entries.size()),
        recorded_(entries.size(), false) {}

  /// False when `index` is out of range or already recorded (a worker
  /// protocol violation).
  bool add(std::size_t index, NetlistRecord record) {
    if (index >= recorded_.size() || recorded_[index]) return false;
    recorded_[index] = true;
    if (record.ok) {
      ++ok_;
    } else {
      ++failed_;
      if (!first_failure_index_.has_value() || index < *first_failure_index_) {
        first_failure_index_ = index;
        first_failure_ = record.diag;
      }
    }
    pending_[index] =
        std::make_unique<NetlistRecord>(std::move(record));
    while (next_ < pending_.size() && pending_[next_] != nullptr) {
      *out_ << record_line(next_, (*entries_)[next_], *pending_[next_]);
      pending_[next_].reset();
      ++next_;
    }
    return true;
  }

  [[nodiscard]] bool has_record(std::size_t index) const {
    return index < recorded_.size() && recorded_[index];
  }
  [[nodiscard]] std::size_t ok_count() const { return ok_; }
  [[nodiscard]] std::size_t failed_count() const { return failed_; }
  [[nodiscard]] const std::optional<std::size_t>& first_failure_index() const {
    return first_failure_index_;
  }
  [[nodiscard]] const std::optional<Diag>& first_failure() const {
    return first_failure_;
  }

 private:
  std::ostream* out_;
  const std::vector<ManifestEntry>* entries_;
  std::vector<std::unique_ptr<NetlistRecord>> pending_;
  std::vector<bool> recorded_;
  std::size_t next_ = 0;
  std::size_t ok_ = 0;
  std::size_t failed_ = 0;
  std::optional<std::size_t> first_failure_index_;
  std::optional<Diag> first_failure_;
};

/// Payload of one worker->parent result frame.
std::string encode_result_payload(std::size_t index,
                                  const NetlistRecord& record) {
  json::Value v{std::vector<json::Member>{}};
  v.set("kind", json::Value("result"));
  v.set("index", json::Value(static_cast<std::uint64_t>(index)));
  v.set("ok", json::Value(record.ok));
  if (record.ok) {
    v.set("payload", json::Value(record.payload));
  } else if (record.diag.has_value()) {
    v.set("diag", serve::diag_to_json(*record.diag));
  }
  return json::dump(v);
}

std::string encode_summary_payload(std::size_t shard, const SliceResult& r,
                                   std::size_t jobs, std::size_t total) {
  json::Value v{std::vector<json::Member>{}};
  v.set("kind", json::Value("summary"));
  v.set("index", json::Value(kSummaryIndex));
  v.set("shard", json::Value(static_cast<std::uint64_t>(shard)));
  v.set("ok", json::Value(static_cast<std::uint64_t>(r.ok)));
  v.set("failed", json::Value(static_cast<std::uint64_t>(r.failed)));
  v.set("startup_seconds", json::Value(r.startup_seconds));
  v.set("perf", json::Value(core::batch_timings_to_json(r.timings, jobs, r.ok,
                                                        total)));
  return json::dump(v);
}

// Steal-protocol frames. Worker -> parent "need-work" rides the result
// pipe; parent -> worker "grant"/"done" comes back over the worker's
// stdin. Strict request-response with one outstanding request per
// worker, so neither side can fill a pipe while the other waits.
std::string encode_need_work_payload() {
  json::Value v{std::vector<json::Member>{}};
  v.set("kind", json::Value("need-work"));
  return json::dump(v);
}

std::string encode_grant_payload(std::size_t begin, std::size_t end) {
  json::Value v{std::vector<json::Member>{}};
  v.set("kind", json::Value("grant"));
  v.set("begin", json::Value(static_cast<std::uint64_t>(begin)));
  v.set("end", json::Value(static_cast<std::uint64_t>(end)));
  return json::dump(v);
}

std::string encode_done_payload() {
  json::Value v{std::vector<json::Member>{}};
  v.set("kind", json::Value("done"));
  return json::dump(v);
}

std::optional<std::uint64_t> read_u53(const json::Value& obj,
                                      std::string_view key) {
  const json::Value* v = obj.get(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  const double d = v->as_double();
  if (!(d >= 0.0) || d > 9.007199254740992e15 ||
      d != static_cast<double>(static_cast<std::uint64_t>(d))) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(d);
}

}  // namespace

std::vector<ShardRange> shard_partition(std::size_t count, std::size_t shards) {
  std::vector<ShardRange> out;
  if (count == 0) return out;
  shards = std::clamp<std::size_t>(shards, 1, count);
  const std::size_t base = count / shards;
  const std::size_t rem = count % shards;
  out.reserve(shards);
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t len = base + (s < rem ? 1 : 0);
    out.push_back(ShardRange{begin, begin + len});
    begin += len;
  }
  return out;
}

std::string record_line(std::size_t index, const ManifestEntry& entry,
                        const NetlistRecord& record) {
  json::Value v{std::vector<json::Member>{}};
  v.set("index", json::Value(static_cast<std::uint64_t>(index)));
  v.set("path", json::Value(entry.name));
  v.set("ok", json::Value(record.ok));
  if (record.ok) {
    v.set("annotation", json::Value(record.payload));
  } else if (record.diag.has_value()) {
    v.set("diag", serve::diag_to_json(*record.diag));
  }
  return json::dump(v) + "\n";
}

struct SliceRunner::Impl {
  std::unique_ptr<gcn::GcnModel> model;
  std::unique_ptr<core::Annotator> annotator;
  std::unique_ptr<core::BatchRunner> runner;
};

SliceRunner::~SliceRunner() = default;

Result<bool> SliceRunner::init(const PipelineOptions& options) {
  const double start = now_seconds();
  auto impl = std::make_unique<Impl>();
  if (!options.load_model.empty()) {
    auto model = gcn::load_model_any(options.load_model);
    if (!model.ok()) return model.diag();
    impl->model = std::make_unique<gcn::GcnModel>(model.take());
  }
  primitives::PrimitiveLibrary library;
  if (options.load_library.empty() || options.load_library == "standard") {
    library = primitives::PrimitiveLibrary::standard();
  } else {
    auto lib = primitives::load_library_any(options.load_library);
    if (!lib.ok()) return lib.diag();
    library = lib.take();
  }
  impl->annotator = std::make_unique<core::Annotator>(
      impl->model.get(), class_names_for(options.domain), std::move(library));
  if (options.caches) {
    const std::size_t cap = options.cache_capacity;
    impl->annotator->set_sample_cache(
        std::make_shared<gcn::SamplePrepCache>(cap));
    impl->annotator->set_annotation_cache(
        std::make_shared<primitives::AnnotationCache>(cap));
    // After any model load: the inference cache captures the weights
    // fingerprint at attach time.
    impl->annotator->set_inference_cache(
        std::make_shared<gcn::InferenceCache>(cap));
  }
  core::BatchOptions bopt;
  bopt.jobs = options.jobs;
  bopt.seed = options.seed;
  bopt.policy = core::FailurePolicy::CollectAll;
  bopt.timeout_seconds = options.timeout_seconds;
  impl->runner = std::make_unique<core::BatchRunner>(*impl->annotator, bopt);
  impl_ = std::move(impl);
  startup_seconds_ = now_seconds() - start;
  return true;
}

Result<SliceResult> SliceRunner::run(
    const std::vector<ManifestEntry>& entries, ShardRange range,
    const std::function<bool(std::size_t, const NetlistRecord&)>& emit) {
  if (impl_ == nullptr) {
    return make_diag(DiagCode::Internal, Stage::Batch,
                     "SliceRunner::run before a successful init");
  }
  range.begin = std::min(range.begin, entries.size());
  range.end = std::clamp(range.end, range.begin, entries.size());
  core::Annotator& annotator = *impl_->annotator;
  core::BatchRunner& runner = *impl_->runner;

  SliceResult slice;
  for (std::size_t chunk = range.begin; chunk < range.end;
       chunk += kWorkerChunk) {
    const std::size_t chunk_end = std::min(chunk + kWorkerChunk, range.end);
    // Parse the chunk's files. Parsing happens before the runner's
    // perf-counter window opens, so patch parse_bytes over it (same
    // accounting as annotate_netlist).
    const PerfSnapshot perf_at_parse = perf_snapshot();
    std::vector<NetlistRecord> records(chunk_end - chunk);
    std::vector<spice::Netlist> netlists;
    std::vector<std::string> names;
    std::vector<std::size_t> slot(chunk_end - chunk, SIZE_MAX);
    for (std::size_t i = chunk; i < chunk_end; ++i) {
      auto parsed = spice::parse_netlist_file_result(entries[i].resolved);
      if (parsed.ok()) {
        slot[i - chunk] = netlists.size();
        netlists.push_back(parsed.take());
        names.push_back(entries[i].name);
      } else {
        records[i - chunk].ok = false;
        records[i - chunk].diag = parsed.diag();
      }
    }
    const std::uint64_t input_parse_bytes =
        (perf_snapshot() - perf_at_parse).parse_bytes;

    core::BatchOutcome outcome = runner.run_isolated(netlists, names);
    outcome.timings.parse_bytes += input_parse_bytes;
    slice.timings += outcome.timings;
    for (std::size_t i = chunk; i < chunk_end; ++i) {
      NetlistRecord& rec = records[i - chunk];
      const std::size_t s = slot[i - chunk];
      if (s != SIZE_MAX) {
        const auto& r = outcome.outcomes[s];
        if (r.ok()) {
          rec.ok = true;
          rec.payload =
              core::annotation_to_json(r.value(), annotator.class_names());
        } else {
          rec.ok = false;
          rec.diag = r.diag();
        }
      }
      rec.ok ? ++slice.ok : ++slice.failed;
      if (!emit(i, rec)) {
        return make_diag(DiagCode::IoError, Stage::Batch,
                         "result sink rejected record " + std::to_string(i) +
                             " (broken pipe to the driver?)");
      }
    }
  }
  return slice;
}

Result<SliceResult> annotate_slice(
    const std::vector<ManifestEntry>& entries, ShardRange range,
    const PipelineOptions& options,
    const std::function<bool(std::size_t, const NetlistRecord&)>& emit) {
  SliceRunner runner;
  auto init = runner.init(options);
  if (!init.ok()) return init.diag();
  auto slice = runner.run(entries, range, emit);
  if (!slice.ok()) return slice.diag();
  SliceResult r = slice.take();
  r.startup_seconds = runner.startup_seconds();
  return r;
}

int worker_main(const Args& args) {
  const std::string manifest = args.get("manifest");
  if (manifest.empty()) {
    std::fprintf(stderr, "gana-shard worker: --manifest is required\n");
    return 2;
  }
  auto entries = read_manifest(manifest);
  if (!entries.ok()) {
    std::fprintf(stderr, "gana-shard worker: %s\n",
                 entries.diag().render().c_str());
    return 2;
  }
  ShardRange range;
  range.begin = static_cast<std::size_t>(
      std::max<long long>(0, args.get_int("begin", 0)));
  range.end = static_cast<std::size_t>(
      std::max<long long>(0, args.get_int("end", 0)));
  const std::size_t shard_index = static_cast<std::size_t>(
      std::max<long long>(0, args.get_int("shard", 0)));

  PipelineOptions pipeline;
  pipeline.jobs = static_cast<std::size_t>(std::max(args.get_int("jobs", 1), 1));
  const std::string seed_str = args.get("seed");
  pipeline.seed = seed_str.empty()
                      ? core::kDefaultSampleSeed
                      : std::strtoull(seed_str.c_str(), nullptr, 10);
  pipeline.domain = args.get("domain", "ota");
  pipeline.caches = !args.has("no-caches");
  pipeline.cache_capacity = static_cast<std::size_t>(
      std::max(args.get_int("cache-capacity", 0), 0));
  pipeline.timeout_seconds = args.get_double("timeout-seconds", 0.0);
  pipeline.load_model = args.get("load-model");
  pipeline.load_library = args.get("load-library");
  const bool steal = args.has("steal");

  // Deterministic fault injection for the worker-failure tests: after
  // emitting N result frames, --crash-after dies exactly as a crashing
  // worker would and --stall-after hangs until the driver's per-shard
  // deadline kills the process. Only result frames count, so the hooks
  // fire mid-grant under the stealing scheduler too.
  const int crash_after = args.get_int("crash-after", -1);
  const int stall_after = args.get_int("stall-after", -1);

  const int out_fd = STDOUT_FILENO;
  std::size_t emitted = 0;
  const auto emit = [&](std::size_t index, const NetlistRecord& rec) {
    if (crash_after >= 0 && emitted == static_cast<std::size_t>(crash_after)) {
      ::raise(SIGKILL);
    }
    if (stall_after >= 0 && emitted == static_cast<std::size_t>(stall_after)) {
      for (;;) ::pause();
    }
    const auto frame =
        serve::encode_frame(encode_result_payload(index, rec));
    if (!frame.has_value()) return false;
    ++emitted;
    return write_all(out_fd, frame->data(), frame->size());
  };

  SliceRunner runner;
  auto init = runner.init(pipeline);
  if (!init.ok()) {
    std::fprintf(stderr, "gana-shard worker: %s\n",
                 init.diag().render().c_str());
    return 3;
  }
  SliceResult total;
  total.startup_seconds = runner.startup_seconds();

  if (steal) {
    // Pull loop: request a range, run it, repeat until the parent says
    // done (or closes our stdin, which means the same thing).
    serve::FrameDecoder grants;
    std::vector<char> gbuf(4096);
    const auto next_grant = [&]() -> std::optional<std::string> {
      for (;;) {
        if (auto payload = grants.next()) return payload;
        if (grants.error()) return std::nullopt;
        const ssize_t n = ::read(STDIN_FILENO, gbuf.data(), gbuf.size());
        if (n < 0) {
          if (errno == EINTR) continue;
          return std::nullopt;
        }
        if (n == 0) return std::nullopt;
        grants.feed(gbuf.data(), static_cast<std::size_t>(n));
      }
    };
    for (;;) {
      const auto request = serve::encode_frame(encode_need_work_payload());
      if (!request.has_value() ||
          !write_all(out_fd, request->data(), request->size())) {
        std::fprintf(stderr,
                     "gana-shard worker: cannot write need-work frame\n");
        return 3;
      }
      const auto payload = next_grant();
      if (!payload.has_value()) break;  // parent gone: nothing left to pull
      std::string error;
      const auto doc = json::parse(*payload, &error);
      const json::Value* kind =
          doc.has_value() ? doc->get("kind") : nullptr;
      if (kind == nullptr) {
        std::fprintf(stderr, "gana-shard worker: malformed grant frame\n");
        return 3;
      }
      if (kind->as_string() == "done") break;
      const auto begin = read_u53(*doc, "begin");
      const auto end = read_u53(*doc, "end");
      if (kind->as_string() != "grant" || !begin.has_value() ||
          !end.has_value()) {
        std::fprintf(stderr, "gana-shard worker: malformed grant frame\n");
        return 3;
      }
      ShardRange granted{static_cast<std::size_t>(*begin),
                         static_cast<std::size_t>(*end)};
      auto slice = runner.run(entries.value(), granted, emit);
      if (!slice.ok()) {
        std::fprintf(stderr, "gana-shard worker: %s\n",
                     slice.diag().render().c_str());
        return 3;
      }
      total.ok += slice.value().ok;
      total.failed += slice.value().failed;
      total.timings += slice.value().timings;
    }
  } else {
    auto slice = runner.run(entries.value(), range, emit);
    if (!slice.ok()) {
      std::fprintf(stderr, "gana-shard worker: %s\n",
                   slice.diag().render().c_str());
      return 3;
    }
    total.ok = slice.value().ok;
    total.failed = slice.value().failed;
    total.timings = slice.value().timings;
  }

  const std::size_t processed = steal ? total.ok + total.failed : range.size();
  const auto summary = serve::encode_frame(
      encode_summary_payload(shard_index, total, pipeline.jobs, processed));
  if (!summary.has_value() ||
      !write_all(out_fd, summary->data(), summary->size())) {
    std::fprintf(stderr, "gana-shard worker: cannot write summary frame\n");
    return 3;
  }
  return 0;
}

namespace {

/// Parent-side view of one live worker.
struct Worker {
  ShardStatus status;
  int pipe_fd = -1;   ///< read end of the worker's result stream
  int stdin_fd = -1;  ///< write end of the grant channel (stealing only)
  serve::FrameDecoder decoder;
  bool eof = false;
  bool reaped = false;
  double deadline = 0.0;  ///< absolute now_seconds() deadline; 0 = none
  /// Every range granted to this worker, in grant order. Post-loop,
  /// granted slots without records become this worker's failure diags
  /// -- a granted range is never re-granted, so no slot is ever
  /// annotated twice (the Merger rejects duplicates as violations).
  std::vector<ShardRange> granted;
};

/// Grant writes hit the stdin pipe of workers that may have just died;
/// without this, the resulting SIGPIPE would kill the driver instead of
/// surfacing as a write error we can turn into worker-failure records.
struct SigpipeGuard {
  void (*old_handler)(int);
  SigpipeGuard() : old_handler(::signal(SIGPIPE, SIG_IGN)) {}
  ~SigpipeGuard() { ::signal(SIGPIPE, old_handler); }
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;
};

std::string worker_exe_path(const ShardOptions& options) {
  if (!options.worker_exe.empty()) return options.worker_exe;
  return "/proc/self/exe";
}

std::vector<std::string> worker_argv(const ShardOptions& options,
                                     const std::string& manifest,
                                     const ShardRange& range,
                                     std::size_t shard_index, bool steal) {
  const PipelineOptions& p = options.pipeline;
  std::vector<std::string> argv;
  argv.push_back(worker_exe_path(options));
  argv.push_back("--worker");
  argv.push_back("--manifest");
  argv.push_back(manifest);
  if (steal) {
    argv.push_back("--steal");
  } else {
    argv.push_back("--begin");
    argv.push_back(std::to_string(range.begin));
    argv.push_back("--end");
    argv.push_back(std::to_string(range.end));
  }
  argv.push_back("--shard");
  argv.push_back(std::to_string(shard_index));
  argv.push_back("--jobs");
  argv.push_back(std::to_string(p.jobs));
  argv.push_back("--seed");
  argv.push_back(std::to_string(p.seed));
  argv.push_back("--domain");
  argv.push_back(p.domain);
  if (!p.caches) argv.push_back("--no-caches");
  if (p.cache_capacity != 0) {
    argv.push_back("--cache-capacity");
    argv.push_back(std::to_string(p.cache_capacity));
  }
  if (p.timeout_seconds > 0.0) {
    argv.push_back("--timeout-seconds");
    argv.push_back(std::to_string(p.timeout_seconds));
  }
  if (!p.load_model.empty()) {
    argv.push_back("--load-model");
    argv.push_back(p.load_model);
  }
  if (!p.load_library.empty()) {
    argv.push_back("--load-library");
    argv.push_back(p.load_library);
  }
  for (const std::string& a : options.extra_worker_args) argv.push_back(a);
  return argv;
}

/// fork/execs one worker with its stdout routed into a fresh pipe.
/// When `stdin_out` is non-null (stealing), a second pipe becomes the
/// child's stdin and its write end lands in *stdin_out. Returns the
/// result-pipe read end, or a Diag.
Result<int> spawn_worker(const std::vector<std::string>& argv, int* pid_out,
                         int* stdin_out) {
  int pfd[2];
  if (::pipe2(pfd, O_CLOEXEC) != 0) {
    return make_diag(DiagCode::Internal, Stage::Batch,
                     "pipe2 failed: " + std::string(strerror(errno)));
  }
  int sfd[2] = {-1, -1};
  if (stdin_out != nullptr && ::pipe2(sfd, O_CLOEXEC) != 0) {
    ::close(pfd[0]);
    ::close(pfd[1]);
    return make_diag(DiagCode::Internal, Stage::Batch,
                     "pipe2 failed: " + std::string(strerror(errno)));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pfd[0]);
    ::close(pfd[1]);
    if (stdin_out != nullptr) {
      ::close(sfd[0]);
      ::close(sfd[1]);
    }
    return make_diag(DiagCode::Internal, Stage::Batch,
                     "fork failed: " + std::string(strerror(errno)));
  }
  if (pid == 0) {
    // Child: frames go to stdout; stderr stays shared for diagnostics.
    // dup2 clears CLOEXEC on the dup'd copies; the original pipe fds
    // (and every sibling's ends, grant pipes included) close across
    // exec, so a dead sibling cannot hold a grant channel open.
    ::dup2(pfd[1], STDOUT_FILENO);
    if (stdin_out != nullptr) ::dup2(sfd[0], STDIN_FILENO);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    std::fprintf(stderr, "gana-shard: cannot exec %s: %s\n", cargv[0],
                 strerror(errno));
    ::_exit(127);
  }
  ::close(pfd[1]);
  if (stdin_out != nullptr) {
    ::close(sfd[0]);
    *stdin_out = sfd[1];
  }
  *pid_out = static_cast<int>(pid);
  return pfd[0];
}

Diag missing_record_diag(const Worker& w, std::size_t shard_index,
                         const ManifestEntry& entry,
                         double shard_timeout_seconds) {
  if (w.status.deadline_expired) {
    return make_diag(
        DiagCode::DeadlineExceeded, Stage::Batch,
        "shard " + std::to_string(shard_index) + " exceeded its " +
            std::to_string(shard_timeout_seconds) +
            "-second deadline before annotating this netlist",
        SourceLoc{entry.name, 0});
  }
  if (w.status.killed_by_driver) {
    return make_diag(DiagCode::Skipped, Stage::Batch,
                     "skipped: fail-fast after an earlier failure",
                     SourceLoc{entry.name, 0});
  }
  return make_diag(
      DiagCode::WorkerFailed, Stage::Batch,
      "shard worker " + std::to_string(shard_index) + " " +
          describe_wait_status(w.status.wait_status) +
          " before annotating this netlist",
      SourceLoc{entry.name, 0});
}

}  // namespace

Result<ShardRunStats> run_sharded(const std::string& manifest,
                                  const ShardOptions& options,
                                  std::ostream& out) {
  auto manifest_entries = read_manifest(manifest);
  if (!manifest_entries.ok()) return manifest_entries.diag();
  const std::vector<ManifestEntry>& entries = manifest_entries.value();

  Timer wall;
  ShardRunStats stats;
  stats.total = entries.size();
  Merger merger(out, entries);

  const std::vector<ShardRange> partition =
      shard_partition(entries.size(), options.shards);

  if (partition.size() <= 1) {
    // In-process baseline: no fork, same per-netlist machinery. This is
    // the path the byte-identity guard measures fan-out against.
    ShardStatus status;
    status.range = partition.empty() ? ShardRange{} : partition.front();
    if (status.range.size() > 0) {
      bool failed_fast = false;
      const auto emit = [&](std::size_t index, const NetlistRecord& rec) {
        if (failed_fast) {
          NetlistRecord skipped;
          skipped.ok = false;
          skipped.diag = make_diag(DiagCode::Skipped, Stage::Batch,
                                   "skipped: fail-fast after an earlier "
                                   "failure",
                                   SourceLoc{entries[index].name, 0});
          merger.add(index, skipped);
          return true;
        }
        ++status.results;
        merger.add(index, rec);
        if (!rec.ok && !options.keep_going) failed_fast = true;
        return true;
      };
      auto slice =
          annotate_slice(entries, status.range, options.pipeline, emit);
      if (!slice.ok()) return slice.diag();
      status.startup_seconds = slice.value().startup_seconds;
      status.perf_json = core::batch_timings_to_json(
          slice.value().timings, options.pipeline.jobs, slice.value().ok,
          status.range.size());
    }
    stats.shards.push_back(std::move(status));
  } else {
    const bool stealing = options.scheduler == Scheduler::Stealing;
    SigpipeGuard sigpipe_guard;
    std::vector<Worker> workers(partition.size());
    const double spawn_time = now_seconds();
    for (std::size_t s = 0; s < partition.size(); ++s) {
      Worker& w = workers[s];
      if (!stealing) w.status.range = partition[s];
      if (options.shard_timeout_seconds > 0.0) {
        w.deadline = spawn_time + options.shard_timeout_seconds;
      }
      auto fd = spawn_worker(
          worker_argv(options, manifest, partition[s], s, stealing),
          &w.status.pid, stealing ? &w.stdin_fd : nullptr);
      if (!fd.ok()) {
        // Abort cleanly: kill and reap what already started.
        for (Worker& prev : workers) {
          if (prev.status.pid > 0 && !prev.reaped) {
            ::kill(prev.status.pid, SIGKILL);
            ::waitpid(prev.status.pid, nullptr, 0);
            if (prev.pipe_fd >= 0) ::close(prev.pipe_fd);
            if (prev.stdin_fd >= 0) ::close(prev.stdin_fd);
          }
        }
        return fd.diag();
      }
      w.pipe_fd = fd.value();
    }

    auto kill_worker = [](Worker& w) {
      if (w.status.pid > 0 && !w.reaped && !w.eof) {
        ::kill(w.status.pid, SIGKILL);
      }
    };
    bool fail_fast_triggered = false;

    // Head of the undispatched-slot queue (stealing only). Slots are
    // granted in manifest order, so [0, next_slot) is exactly the union
    // of all granted ranges and [next_slot, size) was never handed out.
    std::size_t next_slot = 0;
    const auto serve_grant = [&](Worker& w) {
      if (w.eof || w.stdin_fd < 0 || w.status.deadline_expired ||
          w.status.killed_by_driver) {
        return;
      }
      const bool grant = next_slot < entries.size() && !fail_fast_triggered;
      std::size_t end = next_slot;
      std::string payload;
      if (grant) {
        const std::size_t remaining = entries.size() - next_slot;
        const std::size_t chunk = std::clamp<std::size_t>(
            remaining / (2 * workers.size()), std::size_t{1}, kMaxStealChunk);
        end = next_slot + std::min(chunk, remaining);
        payload = encode_grant_payload(next_slot, end);
      } else {
        payload = encode_done_payload();
      }
      const auto frame = serve::encode_frame(payload);
      // A failed write means the worker died with a request in flight;
      // the slots were NOT consumed (next_slot is advanced only after a
      // successful write), so a live worker picks them up instead.
      if (!frame.has_value() ||
          !write_all(w.stdin_fd, frame->data(), frame->size())) {
        kill_worker(w);
        return;
      }
      if (grant) {
        w.granted.push_back(ShardRange{next_slot, end});
        ++w.status.chunks_served;
        next_slot = end;
      }
    };

    std::size_t live = workers.size();
    std::vector<char> buf(64 << 10);
    while (live > 0) {
      std::vector<pollfd> fds;
      std::vector<std::size_t> fd_shard;
      for (std::size_t s = 0; s < workers.size(); ++s) {
        if (!workers[s].eof) {
          fds.push_back(pollfd{workers[s].pipe_fd, POLLIN, 0});
          fd_shard.push_back(s);
        }
      }
      // Poll timeout: the nearest live deadline (if any).
      int timeout_ms = -1;
      const double now = now_seconds();
      for (std::size_t s = 0; s < workers.size(); ++s) {
        const Worker& w = workers[s];
        if (w.eof || w.deadline <= 0.0) continue;
        const double remain = std::max(0.0, w.deadline - now);
        const int ms = static_cast<int>(remain * 1000.0) + 1;
        if (timeout_ms < 0 || ms < timeout_ms) timeout_ms = ms;
      }
      const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
      if (ready < 0 && errno != EINTR) {
        return make_diag(DiagCode::Internal, Stage::Batch,
                         "poll failed: " + std::string(strerror(errno)));
      }
      // Enforce per-shard deadlines.
      if (options.shard_timeout_seconds > 0.0) {
        const double t = now_seconds();
        for (Worker& w : workers) {
          if (!w.eof && w.deadline > 0.0 && t >= w.deadline &&
              !w.status.deadline_expired) {
            w.status.deadline_expired = true;
            kill_worker(w);
          }
        }
      }
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        Worker& w = workers[fd_shard[i]];
        const ssize_t n = ::read(w.pipe_fd, buf.data(), buf.size());
        if (n < 0) {
          if (errno == EINTR || errno == EAGAIN) continue;
        }
        if (n > 0) {
          w.decoder.feed(buf.data(), static_cast<std::size_t>(n));
          while (auto payload = w.decoder.next()) {
            std::string error;
            const auto doc = json::parse(*payload, &error);
            const json::Value* kind =
                doc.has_value() ? doc->get("kind") : nullptr;
            if (kind != nullptr && kind->as_string() == "need-work") {
              if (!stealing) {
                // A static worker has no business stealing: protocol
                // violation, same treatment as a malformed frame.
                kill_worker(w);
                break;
              }
              ++w.status.steal_requests;
              serve_grant(w);
              continue;
            }
            const auto index =
                doc.has_value() ? read_u53(*doc, "index") : std::nullopt;
            if (!doc.has_value() || !index.has_value()) {
              // Protocol violation: treat the stream as dead; the
              // worker's remaining slots become WorkerFailed records.
              kill_worker(w);
              break;
            }
            if (*index == kSummaryIndex) {
              const json::Value* perf = doc->get("perf");
              if (perf != nullptr) w.status.perf_json = perf->as_string();
              const json::Value* st = doc->get("startup_seconds");
              if (st != nullptr) w.status.startup_seconds = st->as_double();
              continue;
            }
            NetlistRecord rec;
            rec.ok = doc->get("ok") != nullptr && doc->get("ok")->as_bool();
            if (rec.ok) {
              const json::Value* p = doc->get("payload");
              rec.payload = p != nullptr ? p->as_string() : "";
            } else {
              const json::Value* d = doc->get("diag");
              if (d != nullptr) rec.diag = serve::diag_from_json(*d);
              if (!rec.diag.has_value()) {
                rec.diag = make_diag(DiagCode::WorkerFailed, Stage::Batch,
                                     "worker reported an unreadable "
                                     "failure record");
              }
            }
            if (merger.add(*index, std::move(rec))) ++w.status.results;
            if (!options.keep_going && merger.failed_count() > 0 &&
                !fail_fast_triggered) {
              fail_fast_triggered = true;
              // Cancel every still-running worker (including this one);
              // slots without records come back Skipped.
              for (Worker& other : workers) {
                if (!other.eof && !other.status.deadline_expired) {
                  other.status.killed_by_driver = true;
                  kill_worker(other);
                }
              }
            }
          }
          if (w.decoder.error()) kill_worker(w);
        } else if (n == 0) {
          w.eof = true;
          ::close(w.pipe_fd);
          w.pipe_fd = -1;
          if (w.stdin_fd >= 0) {
            ::close(w.stdin_fd);
            w.stdin_fd = -1;
          }
          int status = 0;
          while (::waitpid(w.status.pid, &status, 0) < 0 && errno == EINTR) {
          }
          w.status.wait_status = status;
          w.reaped = true;
          --live;
        }
      }
    }

    for (std::size_t s = 0; s < workers.size(); ++s) {
      Worker& w = workers[s];
      // A worker that exited (or was killed) with granted-but-unrecorded
      // slots is a worker failure for exactly those slots. Static
      // ownership is the partition range; stealing ownership is the
      // grant history. Either way a slot belongs to at most one worker,
      // so nothing is lost or double-reported.
      const auto fail_missing = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          if (merger.has_record(i)) continue;
          NetlistRecord rec;
          rec.ok = false;
          rec.diag = missing_record_diag(w, s, entries[i],
                                         options.shard_timeout_seconds);
          merger.add(i, std::move(rec));
        }
      };
      fail_missing(w.status.range.begin, w.status.range.end);
      for (const ShardRange& g : w.granted) fail_missing(g.begin, g.end);
      stats.shards.push_back(w.status);
    }
    // Stealing only: slots never granted because every worker died (or
    // fail-fast cancelled the queue) still need records.
    for (std::size_t i = next_slot; stealing && i < entries.size(); ++i) {
      if (merger.has_record(i)) continue;
      NetlistRecord rec;
      rec.ok = false;
      rec.diag =
          fail_fast_triggered
              ? make_diag(DiagCode::Skipped, Stage::Batch,
                          "skipped: fail-fast after an earlier failure",
                          SourceLoc{entries[i].name, 0})
              : make_diag(DiagCode::WorkerFailed, Stage::Batch,
                          "every shard worker exited before this netlist "
                          "was granted",
                          SourceLoc{entries[i].name, 0});
      merger.add(i, std::move(rec));
    }
  }

  stats.ok = merger.ok_count();
  stats.failed = merger.failed_count();
  stats.first_failure_index = merger.first_failure_index();
  stats.first_failure = merger.first_failure();
  stats.wall_seconds = wall.seconds();
  return stats;
}

}  // namespace gana::shard
