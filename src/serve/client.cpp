#include "serve/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace gana::serve {

namespace {

using Clock = std::chrono::steady_clock;

Diag transport_diag(std::string message) {
  return make_diag(DiagCode::IoError, Stage::Serve, std::move(message));
}

double seconds_until(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

/// splitmix64 step -- the same generator the fault injector uses, chosen
/// here for the jitter stream so client behavior is a pure function of
/// (jitter_seed, attempt number).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Client::Client(ClientOptions options)
    : options_(std::move(options)),
      jitter_state_(mix64(options_.jitter_seed ^ 0x6a09e667f3bcc909ull)) {}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  decoder_ = FrameDecoder();  // a new connection starts a new stream
}

bool Client::ensure_connected(std::string* why) {
  if (fd_ >= 0) return true;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (why != nullptr) *why = "invalid socket path";
    return false;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (why != nullptr) *why = std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (why != nullptr) *why = std::strerror(errno);
    disconnect();
    return false;
  }
  return true;
}

double Client::jitter() {
  jitter_state_ = mix64(jitter_state_);
  return static_cast<double>(jitter_state_ >> 11) * 0x1.0p-53;
}

Result<Response> Client::round_trip(const Request& request,
                                    double budget_seconds) {
  std::string why;
  if (!ensure_connected(&why)) {
    return transport_diag("cannot connect to " + options_.socket_path + ": " +
                          why);
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(budget_seconds));

  const std::optional<std::string> frame =
      encode_frame(encode_request(request));
  if (!frame.has_value()) {
    return make_diag(DiagCode::LimitExceeded, Stage::Serve,
                     "request exceeds the frame size limit");
  }
  std::size_t off = 0;
  while (off < frame->size()) {
    const ssize_t n = ::send(fd_, frame->data() + off, frame->size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string sent_err = std::strerror(errno);
      disconnect();
      return transport_diag("send failed: " + sent_err);
    }
    off += static_cast<std::size_t>(n);
  }

  char buf[16384];
  while (true) {
    // Drain any frames already buffered before blocking again.
    while (std::optional<std::string> payload = decoder_.next()) {
      Result<Response> decoded = decode_response(*payload);
      if (!decoded.ok()) {
        disconnect();
        return decoded.diag();
      }
      if (decoded.value().id == request.id) return decoded;
      if (decoded.value().id == 0 && !decoded.value().ok) {
        // The server answers requests it cannot decode with id=0; on a
        // dedicated connection that can only mean it rejected what we
        // just sent, so surface the server's diag now instead of
        // burning the timeout waiting for a response that never comes.
        return decoded;
      }
      // A response for another id on a dedicated connection means the
      // stream is out of sync (e.g. a stale response after a timeout
      // abandoned its request); skip it and keep reading.
    }
    if (decoder_.error()) {
      disconnect();
      return transport_diag("response framing error: " +
                            decoder_.error_message());
    }
    const double remaining = seconds_until(deadline);
    if (remaining <= 0.0) {
      // The request may still complete server-side; this connection's
      // stream now holds an unconsumed response, so drop it.
      disconnect();
      return make_diag(DiagCode::DeadlineExceeded, Stage::Serve,
                       "no response within " +
                           std::to_string(budget_seconds) + "s");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int timeout_ms =
        static_cast<int>(std::ceil(std::min(remaining, 3600.0) * 1e3));
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      const std::string poll_err = std::strerror(errno);
      disconnect();
      return transport_diag("poll failed: " + poll_err);
    }
    if (rc == 0) continue;  // timeout recheck at the top of the loop
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      disconnect();
      return transport_diag("server closed the connection");
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

Result<Response> Client::call(const Request& request) {
  Request r = request;
  if (r.id == 0) r.id = next_id_++;
  double backoff = options_.backoff_initial_seconds;
  for (int attempt = 0;; ++attempt) {
    Result<Response> result = round_trip(r, options_.timeout_seconds);
    const bool overloaded = result.ok() && !result.value().ok &&
                            result.value().diag.has_value() &&
                            result.value().diag->code == DiagCode::Overloaded;
    if (!overloaded || attempt >= options_.max_retries) return result;
    // Full jitter: sleep uniform in [0, backoff], then double the cap.
    // Decorrelates retry storms across clients while the seeded stream
    // keeps any single client's trace reproducible.
    const double sleep_s = backoff * jitter();
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    backoff = std::min(backoff * 2.0, options_.backoff_max_seconds);
  }
}

Result<std::string> Client::annotate(const std::string& name,
                                     const std::string& netlist,
                                     double timeout_seconds) {
  Request r;
  r.kind = RequestKind::Annotate;
  r.name = name;
  r.netlist = netlist;
  r.timeout_seconds = timeout_seconds;
  Result<Response> result = call(r);
  if (!result.ok()) return result.diag();
  if (!result.value().ok) return *result.value().diag;
  return std::move(result.value().payload);
}

Result<std::string> Client::reannotate(const std::string& session,
                                       const std::string& name,
                                       const std::string& netlist,
                                       double timeout_seconds) {
  Request r;
  r.kind = RequestKind::Reannotate;
  r.session = session;
  r.name = name;
  r.netlist = netlist;
  r.timeout_seconds = timeout_seconds;
  Result<Response> result = call(r);
  if (!result.ok()) return result.diag();
  if (!result.value().ok) return *result.value().diag;
  return std::move(result.value().payload);
}

Result<std::string> Client::metrics() {
  Request r;
  r.kind = RequestKind::Metrics;
  Result<Response> result = call(r);
  if (!result.ok()) return result.diag();
  if (!result.value().ok) return *result.value().diag;
  return std::move(result.value().payload);
}

bool Client::ping() {
  Request r;
  r.kind = RequestKind::Ping;
  Result<Response> result = call(r);
  return result.ok() && result.value().ok;
}

bool Client::shutdown_server() {
  Request r;
  r.kind = RequestKind::Shutdown;
  Result<Response> result = call(r);
  return result.ok() && result.value().ok;
}

}  // namespace gana::serve
