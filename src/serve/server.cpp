#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>
#include <system_error>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/batch_runner.hpp"
#include "core/export.hpp"
#include "gcn/inference_cache.hpp"
#include "gcn/sample_cache.hpp"
#include "incremental/session.hpp"
#include "primitives/annotation_cache.hpp"
#include "spice/parser.hpp"
#include "util/deadline.hpp"
#include "util/timer.hpp"

namespace gana::serve {

/// Shared between the reader thread and pool tasks still answering this
/// connection's admitted requests: the fd stays open until the last
/// holder drops its reference, so a drained response is always written
/// before close().
struct Server::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Unblocks the reader thread (read() returns 0) without closing the
  /// fd -- in-flight responses still go out.
  void shut_read() { ::shutdown(fd, SHUT_RD); }

  /// Tears down both directions: the reader's read() and any in-flight
  /// send_all bail out promptly, while pool-task references still keep
  /// the fd number valid until the last one drops.
  void abort() {
    aborted.store(true, std::memory_order_release);
    ::shutdown(fd, SHUT_RDWR);
  }

  int fd;
  std::mutex write_mutex;
  std::atomic<bool> aborted{false};
  std::atomic<bool> counted_dropped{false};  ///< n_dropped_ charged once
};

/// One reannotation session. The mutex serializes reannotates of the
/// same session id (each call mutates the session's baseline); the
/// shared_ptr keeps a FIFO-shed session alive until its last in-flight
/// request answers.
struct Server::SessionEntry {
  explicit SessionEntry(const core::Annotator* annotator,
                        incremental::SessionOptions options)
      : session(annotator, options) {}
  std::mutex mutex;
  incremental::AnnotationSession session;
};

void Server::send_all(Connection& conn, std::string_view data) {
  // MSG_NOSIGNAL so a client that hung up mid-response costs an EPIPE,
  // not a process-wide SIGPIPE. MSG_DONTWAIT + poll(POLLOUT) keeps the
  // write bounded: a peer that submits requests but never reads its
  // responses fills the socket buffer, and an unbounded send() here
  // would wedge the calling worker forever (holding its in-flight slot
  // and hanging shutdown's drain). Instead the write gets
  // write_timeout_seconds of wall clock; past that the connection is
  // dropped. Polling in <=100ms slices also honors abort() quickly.
  const bool bounded = config_.write_timeout_seconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              bounded ? config_.write_timeout_seconds : 0.0));
  std::size_t off = 0;
  while (off < data.size()) {
    if (conn.aborted.load(std::memory_order_acquire)) return;
    const ssize_t n = ::send(conn.fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n >= 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return;  // peer gone
    int wait_ms = 100;
    if (bounded) {
      const double remaining =
          std::chrono::duration<double>(deadline -
                                        std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0.0) {
        mark_dropped(conn);  // hostile or hung peer: shed it, stay alive
        return;
      }
      wait_ms = std::min(
          wait_ms, static_cast<int>(remaining * 1e3) + 1);
    }
    pollfd pfd{conn.fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0 && errno != EINTR) return;
  }
}

void Server::mark_dropped(Connection& conn) {
  if (!conn.counted_dropped.exchange(true, std::memory_order_acq_rel)) {
    n_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  conn.abort();
}

Server::Server(core::Annotator& annotator, ServerConfig config)
    : annotator_(&annotator), config_(std::move(config)) {
  resolved_jobs_ = config_.jobs != 0
                       ? config_.jobs
                       : std::max<std::size_t>(
                             1, std::thread::hardware_concurrency());
  resolved_max_inflight_ = config_.max_inflight != 0 ? config_.max_inflight
                                                     : 2 * resolved_jobs_;
  resolved_max_sessions_ =
      config_.max_sessions != 0 ? config_.max_sessions : 8;
  // Graceful degradation: long-lived servers see unbounded distinct
  // structures; bounded caches trade recompute for bounded memory. Each
  // cache takes its own capacity when configured, the shared value
  // otherwise.
  annotator_->set_sample_cache(std::make_shared<gcn::SamplePrepCache>(
      config_.prep_cache_capacity.value_or(config_.cache_capacity)));
  annotator_->set_annotation_cache(
      std::make_shared<primitives::AnnotationCache>(
          config_.annotation_cache_capacity.value_or(
              config_.cache_capacity)));
  annotator_->set_inference_cache(std::make_shared<gcn::InferenceCache>(
      config_.inference_cache_capacity.value_or(config_.cache_capacity)));
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : shutdown_pipe_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    return false;
  };

  if (running_.load(std::memory_order_acquire)) return true;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "invalid socket path";
    return false;
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  if (::pipe(shutdown_pipe_) != 0) return fail("pipe");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  ::unlink(config_.socket_path.c_str());  // stale path from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind " + config_.socket_path);
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");

  pool_ = std::make_unique<ThreadPool>(resolved_jobs_);
  perf_at_start_ = perf_snapshot();
  started_at_ = std::chrono::steady_clock::now();
  draining_.store(false, std::memory_order_release);
  stopped_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this]() { accept_loop(); });
  return true;
}

void Server::request_shutdown() {
  // Async-signal-safe: one write to the self-pipe, nothing else. A full
  // pipe (EAGAIN) or a race with close just means shutdown was already
  // requested -- every outcome is idempotent.
  const int fd = shutdown_pipe_[1];
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

void Server::accept_loop() {
  while (true) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {shutdown_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // shutdown requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Transient resource exhaustion sheds this one connection, not
        // the server: count it, back off briefly, keep accepting.
        n_accept_failures_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // unrecoverable (EBADF/EINVAL): enter drain
    }
    n_connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>(client);
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      connections_.push_back(conn);
    }
    {
      std::lock_guard<std::mutex> lock(reader_mutex_);
      ++active_readers_;
    }
    try {
      std::thread([this, conn]() mutable {
        connection_loop(std::move(conn));
      }).detach();
    } catch (const std::system_error&) {
      // Out of threads: undo the bookkeeping and shed the connection.
      {
        std::lock_guard<std::mutex> lock(reader_mutex_);
        --active_readers_;
        reader_cv_.notify_all();
      }
      {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        connections_.pop_back();
      }
      n_accept_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Drain phase: refuse new connections, wake idle readers. Admitted
  // requests keep running; connection_loop and stop() finish the rest.
  draining_.store(true, std::memory_order_release);
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::lock_guard<std::mutex> lock(conn_mutex_);
  for (const auto& conn : connections_) conn->shut_read();
}

void Server::connection_loop(std::shared_ptr<Connection> conn) {
  FrameDecoder decoder(config_.max_frame_bytes);
  char buf[16384];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error, or SHUT_RD during drain
    decoder.feed(buf, static_cast<std::size_t>(n));
    while (std::optional<std::string> payload = decoder.next()) {
      handle_payload(conn, *payload);
    }
    if (decoder.error()) {
      // Framing is unrecoverable mid-stream; drop the connection rather
      // than guess at byte boundaries.
      mark_dropped(*conn);
      break;
    }
  }
  conn->shut_read();
  // Reap: remove this connection's entry so a long-lived daemon under
  // connection churn doesn't accumulate one open fd per dead client.
  // Pool tasks still answering admitted requests hold their own
  // references; the fd closes when the last one drops.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    const auto it = std::find(connections_.begin(), connections_.end(), conn);
    if (it != connections_.end()) connections_.erase(it);
  }
  conn.reset();
  // Final action on `this`: stop() may return -- and the Server be
  // destroyed -- the moment the count hits zero, so nothing may follow
  // the notify. Notifying under the lock keeps the waiter from racing
  // past before the decrement is fully published.
  std::lock_guard<std::mutex> lock(reader_mutex_);
  --active_readers_;
  reader_cv_.notify_all();
}

void Server::handle_payload(const std::shared_ptr<Connection>& conn,
                            const std::string& payload) {
  n_requests_.fetch_add(1, std::memory_order_relaxed);
  Result<Request> decoded = decode_request(payload);
  if (!decoded.ok()) {
    n_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    Response r;
    r.id = 0;  // the id, if any, was undecodable
    r.ok = false;
    r.diag = decoded.diag();
    send_response(conn, r);
    return;
  }
  Request request = decoded.take();
  switch (request.kind) {
    case RequestKind::Ping: {
      Response r;
      r.id = request.id;
      r.ok = true;
      send_response(conn, r);
      return;
    }
    case RequestKind::Metrics: {
      Response r;
      r.id = request.id;
      r.ok = true;
      r.payload = metrics_json();
      send_response(conn, r);
      return;
    }
    case RequestKind::Shutdown: {
      Response r;
      r.id = request.id;
      r.ok = true;
      send_response(conn, r);
      request_shutdown();
      return;
    }
    case RequestKind::Annotate:
    case RequestKind::Reannotate:
      break;  // pipeline work: admission-controlled below
  }

  // Admission control. fetch_add-then-check keeps the fast path one
  // atomic RMW; the shed path undoes its reservation before answering.
  // Draining counts as full: admitted work finishes, new work is shed.
  const std::size_t admitted =
      inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (admitted >= resolved_max_inflight_ ||
      draining_.load(std::memory_order_acquire)) {
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      drain_cv_.notify_all();
    }
    n_overloaded_.fetch_add(1, std::memory_order_relaxed);
    Response r;
    r.id = request.id;
    r.ok = false;
    r.diag = make_diag(
        DiagCode::Overloaded, Stage::Serve,
        draining_.load(std::memory_order_acquire)
            ? "server is draining; retry against a fresh instance"
            : std::to_string(resolved_max_inflight_) +
                  " requests already in flight; retry with backoff");
    send_response(conn, r);
    return;
  }

  pool_->submit([this, conn, request = std::move(request)]() mutable {
    run_annotate(conn, std::move(request));
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      drain_cv_.notify_all();
    }
  });
}

void Server::run_annotate(const std::shared_ptr<Connection>& conn,
                          Request request) {
  Response response;
  response.id = request.id;

  const double timeout = request.timeout_seconds > 0.0
                             ? request.timeout_seconds
                             : config_.default_timeout_seconds;
  const Deadline deadline = timeout > 0.0 ? Deadline::after_seconds(timeout)
                                          : Deadline();
  // The request context carries the deadline and the fault-injection
  // site key through parse -> prepare -> GCN -> VF2. Keying faults by
  // the client-chosen id is what makes soak failures reproducible.
  const RequestContext ctx{timeout > 0.0 ? &deadline : nullptr, request.id};
  ScopedRequestContext scope(&ctx);

  const std::string name = request.name.empty() ? "<request>" : request.name;
  try {
    spice::ParseOptions popt;
    popt.source = name;
    Result<spice::Netlist> parsed =
        spice::parse_netlist_result(request.netlist, popt);
    if (!parsed.ok()) {
      response.ok = false;
      response.diag = parsed.diag();
    } else {
      Result<core::AnnotateResult> outcome = make_diag(
          DiagCode::Internal, Stage::Serve, "request was never run");
      if (request.kind == RequestKind::Reannotate) {
        // Same seed, same exporter as the cold path: a warm reannotate
        // answers with exactly the bytes an annotate of this netlist
        // would. Requests within one session serialize on its mutex
        // (each call advances the session's baseline revision).
        const std::shared_ptr<SessionEntry> entry =
            checkout_session(request.session);
        std::lock_guard<std::mutex> lock(entry->mutex);
        outcome = entry->session.reannotate(parsed.value(), name);
      } else {
        outcome = annotator_->try_annotate(parsed.value(), name, config_.seed);
      }
      if (outcome.ok()) {
        response.ok = true;
        // Byte-for-byte the one-shot CLI's --json output: same function,
        // same class vocabulary -- the soak bit-identity contract.
        response.payload = core::annotation_to_json(
            outcome.value(), annotator_->class_names());
      } else {
        response.ok = false;
        response.diag = outcome.diag();
      }
    }
  } catch (const DiagError& e) {
    response.ok = false;
    response.diag = e.diag();
  } catch (const std::bad_alloc&) {
    response.ok = false;
    response.diag = make_diag(DiagCode::BudgetExhausted, Stage::Serve,
                              "out of memory while serving " + name);
  } catch (const std::exception& e) {
    response.ok = false;
    response.diag = make_diag(DiagCode::Internal, Stage::Serve,
                              std::string("unexpected exception: ") + e.what());
  }

  if (response.ok) {
    n_ok_.fetch_add(1, std::memory_order_relaxed);
  } else {
    note_failure(*response.diag);
  }
  send_response(conn, response);
}

std::shared_ptr<Server::SessionEntry> Server::checkout_session(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(session_mutex_);
  if (const auto it = sessions_.find(id); it != sessions_.end()) {
    return it->second;
  }
  // Shed oldest-created first (FIFO, not LRU: eviction order is a pure
  // function of creation order, never of request timing).
  while (sessions_.size() >= resolved_max_sessions_ &&
         !session_fifo_.empty()) {
    sessions_.erase(session_fifo_.front());
    session_fifo_.pop_front();
    n_sessions_shed_.fetch_add(1, std::memory_order_relaxed);
  }
  incremental::SessionOptions options;
  options.sample_seed = config_.seed;
  auto entry = std::make_shared<SessionEntry>(annotator_, options);
  sessions_.emplace(id, entry);
  session_fifo_.push_back(id);
  n_sessions_created_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

void Server::note_failure(const Diag& diag) {
  n_failed_.fetch_add(1, std::memory_order_relaxed);
  if (diag.code == DiagCode::DeadlineExceeded) {
    n_deadline_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::send_response(const std::shared_ptr<Connection>& conn,
                           const Response& response) {
  const std::optional<std::string> frame =
      encode_frame(encode_response(response), config_.max_frame_bytes);
  if (!frame.has_value()) {
    // Response larger than a frame allows (enormous annotation JSON):
    // replace it with a structured failure that always fits.
    Response overflow;
    overflow.id = response.id;
    overflow.ok = false;
    overflow.diag = make_diag(DiagCode::LimitExceeded, Stage::Serve,
                              "response exceeds the frame size limit");
    const std::optional<std::string> fallback =
        encode_frame(encode_response(overflow), config_.max_frame_bytes);
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (fallback.has_value()) send_all(*conn, *fallback);
    return;
  }
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  send_all(*conn, *frame);  // EPIPE = client gone; nothing to do
}

ServerStats Server::stats() const {
  ServerStats s;
  s.requests = n_requests_.load(std::memory_order_relaxed);
  s.annotated_ok = n_ok_.load(std::memory_order_relaxed);
  s.annotate_failed = n_failed_.load(std::memory_order_relaxed);
  s.overloaded = n_overloaded_.load(std::memory_order_relaxed);
  s.deadline_expired = n_deadline_.load(std::memory_order_relaxed);
  s.protocol_errors = n_protocol_errors_.load(std::memory_order_relaxed);
  s.connections = n_connections_.load(std::memory_order_relaxed);
  s.dropped_connections = n_dropped_.load(std::memory_order_relaxed);
  s.accept_failures = n_accept_failures_.load(std::memory_order_relaxed);
  s.sessions_created = n_sessions_created_.load(std::memory_order_relaxed);
  s.sessions_shed = n_sessions_shed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    s.open_connections = connections_.size();
  }
  {
    std::lock_guard<std::mutex> lock(session_mutex_);
    s.active_sessions = sessions_.size();
  }
  return s;
}

std::string Server::metrics_json() const {
  // Reuses the --perf-json record format so existing tooling parses
  // server metrics unchanged: counters are the deltas since start() and
  // wall_seconds is the server uptime.
  const PerfSnapshot perf = perf_snapshot() - perf_at_start_;
  core::BatchTimings t;
  t.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - started_at_)
                       .count();
  t.apply_perf_delta(perf);
  const ServerStats s = stats();
  return core::batch_timings_to_json(t, resolved_jobs_, s.annotated_ok,
                                     s.annotated_ok + s.annotate_failed);
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  stop();
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  request_shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // accept_loop has set draining_ and nudged every reader; new annotate
  // requests are now shed. Wait for admitted work to finish so every
  // response is written before connections close.
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this]() {
      return inflight_.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const auto& conn : connections_) conn->shut_read();
  }
  // Readers are detached; wait for the count to drain instead of
  // joining. Bounded writes guarantee progress: a reader wedged writing
  // to a hung peer gives up within write_timeout_seconds.
  {
    std::unique_lock<std::mutex> lock(reader_mutex_);
    reader_cv_.wait(lock, [this]() { return active_readers_ == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.clear();  // closes any fds the readers left behind
  }
  pool_.reset();  // queued-but-unadmitted tasks cannot exist: admission
                  // counted every submit, and inflight_ drained to zero
  for (int& fd : shutdown_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  ::unlink(config_.socket_path.c_str());
  running_.store(false, std::memory_order_release);
}

}  // namespace gana::serve
