// Wire protocol of the warm annotation service.
//
// Transport framing: every message (either direction) is one frame --
//
//   [u32 little-endian payload length N][N bytes of UTF-8 JSON]
//
// Length-prefixed rather than delimiter-based so netlist text (which
// may contain any byte after JSON escaping) never needs transport-level
// quoting, and so a reader can reject an oversized request *before*
// buffering it (admission control begins at the length prefix).
//
// FrameDecoder is a pure incremental byte-stream splitter: feed() it
// arbitrary chunks, pop complete payloads with next(). It owns no file
// descriptor, which is what makes the truncated/oversized/garbage frame
// corpus (tests/fuzz_corpus/frames) testable without sockets. Once a
// stream violates the protocol the decoder latches into an error state:
// after a framing error byte boundaries are unrecoverable, so the only
// safe server response is to drop the connection.
//
// Payload schema (all members optional unless noted; unknown members
// are ignored for forward compatibility):
//
//   request  = {"id": u53 (required), "kind": "annotate" | "reannotate" |
//               "ping" | "metrics" | "shutdown",
//               "session": str  -- required for reannotate only
//               "name": str, "netlist": str, "timeout_seconds": num}
//   response = {"id": u53, "ok": bool,
//               "payload": str   -- annotation/metrics JSON *as a string*
//               "diag": diag}    -- present iff !ok
//   diag     = {"code": str, "stage": str, "message": str,
//               "file": str, "line": u53, "notes": [str...]}
//
// `payload` carries nested JSON double-encoded (a JSON string holding a
// JSON document) on purpose: the annotation bytes a client receives are
// the *exact* bytes core::annotation_to_json produced on the server, so
// the soak test's bit-identity comparison against the one-shot CLI is a
// plain string compare, immune to any re-serialization drift.
//
// Diags cross the wire by enum *name*, not ordinal, so a newer client
// against an older server (or vice versa) degrades readably; the
// diag_json round-trip test pins every code and stage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/diag.hpp"
#include "util/json.hpp"

namespace gana::serve {

/// Hard ceiling on one frame's payload. A length prefix above this is a
/// protocol error, rejected before any buffering -- a 4-byte frame
/// header can otherwise demand a 4 GiB allocation.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;  // 16 MiB

/// Prepends the length prefix; empty optional when `payload` exceeds
/// `max_bytes` (the encode-side twin of the decoder's oversize check).
[[nodiscard]] std::optional<std::string> encode_frame(
    std::string_view payload, std::size_t max_bytes = kMaxFrameBytes);

/// Incremental frame splitter over an untrusted byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_bytes = kMaxFrameBytes)
      : max_bytes_(max_bytes) {}

  /// Buffers `n` more stream bytes. Returns false once the stream is in
  /// the latched error state (the bytes are discarded).
  bool feed(const char* data, std::size_t n);
  bool feed(std::string_view bytes) { return feed(bytes.data(), bytes.size()); }

  /// Pops the next complete payload, or nullopt when more bytes are
  /// needed (or the stream is errored -- check error()).
  [[nodiscard]] std::optional<std::string> next();

  /// True once the stream violated framing (oversized length prefix).
  [[nodiscard]] bool error() const { return !error_.empty(); }
  [[nodiscard]] const std::string& error_message() const { return error_; }

  /// Bytes buffered but not yet popped (diagnostics / tests).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_, compacted lazily
  std::size_t max_bytes_;
  std::string error_;
};

enum class RequestKind {
  Annotate,    ///< run the full pipeline on an inline netlist
  Reannotate,  ///< annotate the next revision of a named session's design
               ///< incrementally (the server diffs against the previous
               ///< revision); output bytes equal an `annotate` of the
               ///< same netlist
  Ping,        ///< liveness probe; answered even under full load
  Metrics,     ///< perf-counter snapshot (batch_timings_to_json format)
  Shutdown,    ///< request a drain-and-exit (same path as SIGTERM)
};

[[nodiscard]] const char* to_string(RequestKind k);
[[nodiscard]] std::optional<RequestKind> request_kind_from_string(
    std::string_view name);

struct Request {
  std::uint64_t id = 0;  ///< echoed verbatim in the response; also the
                         ///< fault-injection site key for this request
  RequestKind kind = RequestKind::Ping;
  std::string session;  ///< session id (reannotate); names the evolving
                        ///< design whose previous revision to diff against
  std::string name;     ///< circuit name (annotate/reannotate);
                        ///< "" -> "<request>"
  std::string netlist;  ///< SPICE text (annotate/reannotate; always the
                        ///< *full* netlist -- the server does the diffing)
  double timeout_seconds = 0.0;  ///< per-request deadline; 0 = server default
};

struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  std::string payload;  ///< nested JSON document as a string ("" for ping)
  std::optional<Diag> diag;  ///< present iff !ok
};

/// Diag <-> JSON (the `diag` schema above). Lossless for every DiagCode
/// and Stage; `diag_from_json` returns nullopt on unknown names or a
/// non-object.
[[nodiscard]] json::Value diag_to_json(const Diag& d);
[[nodiscard]] std::optional<Diag> diag_from_json(const json::Value& v);

[[nodiscard]] std::string encode_request(const Request& r);
[[nodiscard]] std::string encode_response(const Response& r);

/// Strict payload decoders: a malformed payload yields a
/// Stage::Serve/SyntaxError Diag (the server answers it; the client
/// surfaces it), never an exception.
[[nodiscard]] Result<Request> decode_request(std::string_view payload);
[[nodiscard]] Result<Response> decode_response(std::string_view payload);

}  // namespace gana::serve
