// Client side of the warm annotation service.
//
// One Client owns one Unix-domain connection to a gana-serve instance
// and issues synchronous request/response calls over it. The robustness
// contract mirrors the server's: every failure mode -- server absent,
// connection dropped mid-frame, response timeout, server-side Diag --
// comes back as a structured Result, never an exception and never a
// hang (every blocking wait is bounded by `timeout_seconds`).
//
// Overloaded is the one *retryable* failure: the server sheds load in
// microseconds, so the client backs off (exponential with deterministic
// seeded jitter -- reproducible traces, no synchronized client herds)
// and retries up to `max_retries` times before surfacing the Diag. All
// other Diags describe the request itself and are returned immediately;
// retrying a SyntaxError cannot help.
//
// Not thread-safe: one Client per thread (connections are cheap; the
// soak test runs one per worker).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/protocol.hpp"

namespace gana::serve {

struct ClientOptions {
  std::string socket_path;
  /// Bound on one call(): connect + send + server work + receive. The
  /// overall bound including retries is roughly (max_retries + 1) *
  /// timeout_seconds plus backoff sleeps.
  double timeout_seconds = 30.0;
  int max_retries = 5;  ///< extra attempts after an Overloaded response
  double backoff_initial_seconds = 0.005;
  double backoff_max_seconds = 0.5;
  std::uint64_t jitter_seed = 0;  ///< deterministic jitter stream per client
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One round trip, with Overloaded-retry. The returned Response may
  /// itself carry ok=false with the server's Diag; a transport-level
  /// failure yields a client-side Diag (Stage::Serve).
  [[nodiscard]] Result<Response> call(const Request& request);

  /// Convenience wrappers around call(). annotate() returns the
  /// annotation JSON exactly as the server serialized it.
  [[nodiscard]] Result<std::string> annotate(const std::string& name,
                                             const std::string& netlist,
                                             double timeout_seconds = 0.0);
  /// Incremental variant: annotates `netlist` (always the full text) as
  /// the next revision of the server-side session `session`, which
  /// diffs it against the previous revision. The returned bytes equal
  /// what annotate() would return for the same netlist.
  [[nodiscard]] Result<std::string> reannotate(const std::string& session,
                                               const std::string& name,
                                               const std::string& netlist,
                                               double timeout_seconds = 0.0);
  [[nodiscard]] Result<std::string> metrics();
  [[nodiscard]] bool ping();
  /// Asks the server to drain and exit; true if it acknowledged.
  [[nodiscard]] bool shutdown_server();

  [[nodiscard]] const ClientOptions& options() const { return options_; }

 private:
  [[nodiscard]] bool ensure_connected(std::string* why);
  void disconnect();
  /// Sends one frame and reads frames until the response with `id`
  /// arrives or the deadline passes.
  [[nodiscard]] Result<Response> round_trip(const Request& request,
                                            double budget_seconds);
  [[nodiscard]] double jitter();  ///< uniform [0,1) from the seeded stream

  ClientOptions options_;
  int fd_ = -1;
  FrameDecoder decoder_;
  std::uint64_t next_id_ = 1;
  std::uint64_t jitter_state_;
};

}  // namespace gana::serve
