// Warm annotation server: load once, annotate many.
//
// The one-shot CLI pays model + primitive-library construction on every
// invocation; gana-serve pays it once and then answers framed requests
// (serve/protocol.hpp) over a Unix-domain socket for as long as the
// process lives. Design constraints, in priority order:
//
//  1. *Never crash on input.* Every failure -- malformed frame, bad
//     JSON, hostile netlist, injected fault, expired deadline -- becomes
//     either a structured Diag response or a dropped connection. The
//     soak test hammers this with fault injection armed.
//  2. *Bounded everything.* Admission control caps concurrently admitted
//     annotate requests at `max_inflight`; request number max_inflight+1
//     is answered `Overloaded` immediately (from the connection reader
//     thread, microseconds, no queueing) so clients can back off instead
//     of stacking latency. Frames are capped (kMaxFrameBytes), caches
//     are capacity-bounded (cache_capacity), and every annotate request
//     runs under a wall-clock Deadline.
//  3. *Deterministic outputs.* An admitted healthy request produces the
//     exact bytes `annotate_netlist --json` would: same Annotator, same
//     seed, same exporter. Deadlines and faults change *which* requests
//     fail, never the bytes of the ones that succeed. Reannotate
//     requests route through a per-session incremental::AnnotationSession
//     whose reuse paths carry the same bit-identity contract, so a warm
//     reannotation answers with exactly an annotate's bytes.
//
// Reannotation sessions: a `reannotate` request names a session id and
// carries the *full* netlist of the next revision; the server diffs it
// against the session's previous revision and recomputes only the dirty
// cone. Sessions are bounded at max_sessions and shed FIFO by creation
// order; a shed id transparently restarts cold on its next request.
// Requests within one session serialize on the session's mutex (they
// mutate its baseline); distinct sessions run concurrently and share
// the annotate admission-control budget.
//
// Threading model: one accept thread; one detached reader thread per
// connection (cheap: blocked in read() almost always; the server tracks
// a count, not handles, so dead connections leave no residue); annotate
// work executes on the shared ThreadPool. Responses from the pool and
// from the reader interleave on one socket, serialized by a
// per-connection write mutex, and every write runs under
// write_timeout_seconds -- a peer that never reads its responses is
// dropped, never waited on. Control requests (ping/metrics/shutdown)
// are answered inline by the reader even when the pool is saturated --
// liveness probes must not queue behind work.
//
// Shutdown: `request_shutdown()` is async-signal-safe (one write() to a
// self-pipe), so the gana-serve binary calls it straight from its
// SIGTERM/SIGINT handler. Drain order: stop accepting, nudge readers
// (SHUT_RD on every connection), answer still-running admitted requests,
// then close. Clients see their in-flight responses, then EOF.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/protocol.hpp"
#include "util/perf.hpp"
#include "util/thread_pool.hpp"

namespace gana::serve {

struct ServerConfig {
  std::string socket_path;      ///< Unix-domain socket path (required)
  std::size_t jobs = 0;         ///< annotate worker threads; 0 = hw threads
  /// Concurrently admitted annotate requests before shedding; 0 derives
  /// 2 * jobs (workers busy + one queued each -- full pipes, bounded
  /// queueing delay).
  std::size_t max_inflight = 0;
  double default_timeout_seconds = 0.0;  ///< per-request deadline when the
                                         ///< request names none; 0 = none
  std::size_t cache_capacity = 0;  ///< per structural cache (0 = unbounded)
  /// Per-cache overrides of `cache_capacity`. Unset inherits the shared
  /// value; an explicit 0 makes that one cache unbounded.
  std::optional<std::size_t> prep_cache_capacity;
  std::optional<std::size_t> annotation_cache_capacity;
  std::optional<std::size_t> inference_cache_capacity;
  /// Live reannotation sessions held at once; 0 derives a default (8).
  /// Opening session max_sessions+1 sheds the *oldest-created* session
  /// (FIFO) -- its cached artifacts are dropped and the next reannotate
  /// under that id silently starts a fresh session (first revision runs
  /// cold). Bounds the per-session baselines (previous netlist + graph +
  /// match stores) a long-lived daemon can accumulate.
  std::size_t max_sessions = 0;
  /// Wall-clock budget for writing one response to a connection. A peer
  /// that stops reading (hostile or hung) has its connection dropped
  /// once the budget expires, so a worker can never wedge in a write
  /// and shutdown always completes. 0 = unbounded (trusted peers only).
  double write_timeout_seconds = 30.0;
  std::size_t max_frame_bytes = kMaxFrameBytes;
  std::uint64_t seed = core::kDefaultSampleSeed;  ///< root sample seed
};

/// Point-in-time server health; all counters are lifetime totals.
struct ServerStats {
  std::uint64_t requests = 0;          ///< frames decoded into requests
  std::uint64_t annotated_ok = 0;      ///< annotate responses with ok=true
  std::uint64_t annotate_failed = 0;   ///< annotate responses with a Diag
                                       ///< (excluding sheds)
  std::uint64_t overloaded = 0;        ///< requests shed by admission
  std::uint64_t deadline_expired = 0;  ///< DeadlineExceeded responses
  std::uint64_t protocol_errors = 0;   ///< undecodable payloads answered
  std::uint64_t connections = 0;       ///< accepted connections
  std::uint64_t dropped_connections = 0;  ///< closed due to framing errors
                                          ///< or write timeouts
  std::uint64_t accept_failures = 0;  ///< accept() resource errors shed
                                      ///< (EMFILE and friends)
  std::uint64_t open_connections = 0;  ///< currently tracked connections
  std::uint64_t sessions_created = 0;  ///< reannotation sessions opened
  std::uint64_t sessions_shed = 0;     ///< sessions dropped FIFO at the
                                       ///< max_sessions bound
  std::uint64_t active_sessions = 0;   ///< sessions currently held
};

class Server {
 public:
  /// `annotator` must stay alive (and unmodified) for the server's
  /// lifetime; the server attaches its capacity-bounded caches to it.
  Server(core::Annotator& annotator, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and starts accepting. Returns false (with a
  /// message in `error` when non-null) if the socket cannot be bound.
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// Async-signal-safe shutdown trigger; idempotent. Initiates the
  /// drain but does not wait for it -- call stop() (or the destructor)
  /// to join.
  void request_shutdown();

  /// Drains and joins everything: admitted requests finish and their
  /// responses are written before connections close. Idempotent.
  void stop();

  /// Blocks until a shutdown request arrives, then drains (the daemon
  /// main loop).
  void wait();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] ServerStats stats() const;

  /// The metrics-response payload: batch_timings_to_json over the
  /// perf-counter deltas since start, with ok/total request counts.
  [[nodiscard]] std::string metrics_json() const;

 private:
  struct Connection;
  struct SessionEntry;

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> conn);
  void handle_payload(const std::shared_ptr<Connection>& conn,
                      const std::string& payload);
  void run_annotate(const std::shared_ptr<Connection>& conn, Request request);
  /// Looks up (or creates) the reannotation session named by `id`,
  /// shedding the oldest-created session first when the map is at
  /// max_sessions. A shed session that is still answering an in-flight
  /// request stays alive through that request's shared_ptr.
  [[nodiscard]] std::shared_ptr<SessionEntry> checkout_session(
      const std::string& id);
  void send_response(const std::shared_ptr<Connection>& conn,
                     const Response& response);
  /// Bounded write of `data` to the connection (write_timeout_seconds);
  /// on timeout the connection is counted dropped and aborted. Caller
  /// holds the connection's write mutex.
  void send_all(Connection& conn, std::string_view data);
  /// Counts the connection dropped (once) and aborts it so its reader
  /// exits and pending writes bail out.
  void mark_dropped(Connection& conn);
  void note_failure(const Diag& diag);

  core::Annotator* annotator_;
  ServerConfig config_;
  std::size_t resolved_jobs_ = 1;
  std::size_t resolved_max_inflight_ = 2;
  std::size_t resolved_max_sessions_ = 8;

  int listen_fd_ = -1;
  int shutdown_pipe_[2] = {-1, -1};  ///< [read, write]; write end is the
                                     ///< async-signal-safe trigger
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  std::atomic<std::size_t> inflight_{0};  ///< admitted, not yet answered
  mutable std::mutex drain_mutex_;
  std::condition_variable drain_cv_;  ///< signaled when inflight_ hits 0

  mutable std::mutex conn_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  // Reannotation sessions, keyed by client-chosen id. session_mutex_
  // guards the map and the creation-order FIFO only; each entry carries
  // its own mutex serializing reannotates of that design, so distinct
  // sessions annotate concurrently.
  mutable std::mutex session_mutex_;
  std::unordered_map<std::string, std::shared_ptr<SessionEntry>> sessions_;
  std::deque<std::string> session_fifo_;  ///< creation order, oldest first

  // Reader threads are detached and tracked by count only: a finished
  // reader removes its connection entry and decrements, so a long-lived
  // daemon under connection churn holds no per-dead-client state.
  // stop() waits for the count to reach zero instead of joining.
  mutable std::mutex reader_mutex_;
  std::condition_variable reader_cv_;
  std::size_t active_readers_ = 0;

  // Lifetime counters (relaxed; read quiescently by stats()).
  std::atomic<std::uint64_t> n_requests_{0};
  std::atomic<std::uint64_t> n_ok_{0};
  std::atomic<std::uint64_t> n_failed_{0};
  std::atomic<std::uint64_t> n_overloaded_{0};
  std::atomic<std::uint64_t> n_deadline_{0};
  std::atomic<std::uint64_t> n_protocol_errors_{0};
  std::atomic<std::uint64_t> n_connections_{0};
  std::atomic<std::uint64_t> n_dropped_{0};
  std::atomic<std::uint64_t> n_accept_failures_{0};
  std::atomic<std::uint64_t> n_sessions_created_{0};
  std::atomic<std::uint64_t> n_sessions_shed_{0};

  PerfSnapshot perf_at_start_;
  std::chrono::steady_clock::time_point started_at_;
};

}  // namespace gana::serve
