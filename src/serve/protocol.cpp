#include "serve/protocol.hpp"

#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

namespace gana::serve {

namespace {

Diag protocol_diag(std::string message) {
  return make_diag(DiagCode::SyntaxError, Stage::Serve, std::move(message));
}

/// Reads a non-negative integer member that fits a double exactly.
std::optional<std::uint64_t> read_u53(const json::Value& obj,
                                      std::string_view key) {
  const json::Value* v = obj.get(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  const double d = v->as_double();
  if (!(d >= 0.0) || d > 9.007199254740992e15 || d != std::floor(d)) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(d);
}

}  // namespace

std::optional<std::string> encode_frame(std::string_view payload,
                                        std::size_t max_bytes) {
  if (payload.size() > max_bytes) return std::nullopt;
  std::string frame;
  frame.reserve(4 + payload.size());
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<char>(n & 0xFF));
  frame.push_back(static_cast<char>((n >> 8) & 0xFF));
  frame.push_back(static_cast<char>((n >> 16) & 0xFF));
  frame.push_back(static_cast<char>((n >> 24) & 0xFF));
  frame.append(payload);
  return frame;
}

bool FrameDecoder::feed(const char* data, std::size_t n) {
  if (error()) return false;
  buf_.append(data, n);
  return true;
}

std::optional<std::string> FrameDecoder::next() {
  if (error()) return std::nullopt;
  if (buf_.size() - pos_ < 4) return std::nullopt;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buf_.data()) + pos_;
  const std::uint32_t n = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16) |
                          (static_cast<std::uint32_t>(p[3]) << 24);
  if (n > max_bytes_) {
    error_ = "frame length " + std::to_string(n) + " exceeds the " +
             std::to_string(max_bytes_) + "-byte limit";
    buf_.clear();
    pos_ = 0;
    return std::nullopt;
  }
  if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(n)) {
    return std::nullopt;
  }
  std::string payload = buf_.substr(pos_ + 4, n);
  pos_ += 4 + static_cast<std::size_t>(n);
  // Compact once the consumed prefix dominates, keeping feed() amortized
  // O(bytes) instead of O(bytes * frames).
  if (pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return payload;
}

const char* to_string(RequestKind k) {
  switch (k) {
    case RequestKind::Annotate: return "annotate";
    case RequestKind::Reannotate: return "reannotate";
    case RequestKind::Ping: return "ping";
    case RequestKind::Metrics: return "metrics";
    case RequestKind::Shutdown: return "shutdown";
  }
  return "?";
}

std::optional<RequestKind> request_kind_from_string(std::string_view name) {
  for (const RequestKind k :
       {RequestKind::Annotate, RequestKind::Reannotate, RequestKind::Ping,
        RequestKind::Metrics, RequestKind::Shutdown}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

json::Value diag_to_json(const Diag& d) {
  json::Value v{std::vector<json::Member>{}};
  v.set("code", json::Value(to_string(d.code)));
  v.set("stage", json::Value(to_string(d.stage)));
  v.set("message", json::Value(d.message));
  if (!d.loc.file.empty()) v.set("file", json::Value(d.loc.file));
  if (d.loc.line != 0) {
    v.set("line", json::Value(static_cast<std::uint64_t>(d.loc.line)));
  }
  if (!d.notes.empty()) {
    std::vector<json::Value> notes;
    notes.reserve(d.notes.size());
    for (const std::string& n : d.notes) notes.emplace_back(n);
    v.set("notes", json::Value(std::move(notes)));
  }
  return v;
}

std::optional<Diag> diag_from_json(const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  const json::Value* code = v.get("code");
  const json::Value* stage = v.get("stage");
  if (code == nullptr || !code->is_string() || stage == nullptr ||
      !stage->is_string()) {
    return std::nullopt;
  }
  const std::optional<DiagCode> c = diag_code_from_string(code->as_string());
  const std::optional<Stage> s = stage_from_string(stage->as_string());
  if (!c.has_value() || !s.has_value()) return std::nullopt;
  Diag d;
  d.code = *c;
  d.stage = *s;
  if (const json::Value* m = v.get("message"); m != nullptr) {
    d.message = m->as_string();
  }
  if (const json::Value* f = v.get("file"); f != nullptr) {
    d.loc.file = f->as_string();
  }
  if (const std::optional<std::uint64_t> line = read_u53(v, "line")) {
    d.loc.line = static_cast<std::size_t>(*line);
  }
  if (const json::Value* notes = v.get("notes");
      notes != nullptr && notes->is_array()) {
    for (const json::Value& n : notes->as_array()) {
      d.notes.push_back(n.as_string());
    }
  }
  return d;
}

std::string encode_request(const Request& r) {
  json::Value v{std::vector<json::Member>{}};
  v.set("id", json::Value(r.id));
  v.set("kind", json::Value(to_string(r.kind)));
  if (r.kind == RequestKind::Annotate || r.kind == RequestKind::Reannotate) {
    if (r.kind == RequestKind::Reannotate) {
      v.set("session", json::Value(r.session));
    }
    v.set("name", json::Value(r.name));
    v.set("netlist", json::Value(r.netlist));
    if (r.timeout_seconds > 0.0) {
      v.set("timeout_seconds", json::Value(r.timeout_seconds));
    }
  }
  return json::dump(v);
}

std::string encode_response(const Response& r) {
  json::Value v{std::vector<json::Member>{}};
  v.set("id", json::Value(r.id));
  v.set("ok", json::Value(r.ok));
  if (!r.payload.empty()) v.set("payload", json::Value(r.payload));
  if (r.diag.has_value()) v.set("diag", diag_to_json(*r.diag));
  return json::dump(v);
}

Result<Request> decode_request(std::string_view payload) {
  std::string error;
  const std::optional<json::Value> doc = json::parse(payload, &error);
  if (!doc.has_value()) {
    return protocol_diag("request is not valid JSON: " + error);
  }
  if (!doc->is_object()) {
    return protocol_diag("request must be a JSON object");
  }
  Request r;
  const std::optional<std::uint64_t> id = read_u53(*doc, "id");
  if (!id.has_value()) {
    return protocol_diag("request needs a non-negative integer \"id\"");
  }
  r.id = *id;
  const json::Value* kind = doc->get("kind");
  if (kind == nullptr || !kind->is_string()) {
    return protocol_diag("request needs a string \"kind\"");
  }
  const std::optional<RequestKind> k =
      request_kind_from_string(kind->as_string());
  if (!k.has_value()) {
    return protocol_diag("unknown request kind \"" + kind->as_string() + "\"");
  }
  r.kind = *k;
  if (r.kind == RequestKind::Annotate || r.kind == RequestKind::Reannotate) {
    const json::Value* netlist = doc->get("netlist");
    if (netlist == nullptr || !netlist->is_string()) {
      return protocol_diag(std::string(to_string(r.kind)) +
                           " request needs a string \"netlist\"");
    }
    r.netlist = netlist->as_string();
    if (const json::Value* name = doc->get("name"); name != nullptr) {
      r.name = name->as_string();
    }
  }
  if (r.kind == RequestKind::Reannotate) {
    const json::Value* session = doc->get("session");
    if (session == nullptr || !session->is_string() ||
        session->as_string().empty()) {
      return protocol_diag(
          "reannotate request needs a non-empty string \"session\"");
    }
    r.session = session->as_string();
  }
  // Validated for every kind: a control request smuggling a bogus
  // timeout is just as malformed as an annotate doing it.
  if (const json::Value* t = doc->get("timeout_seconds"); t != nullptr) {
    const double secs = t->as_double(-1.0);
    if (!(secs >= 0.0) || !std::isfinite(secs)) {
      return protocol_diag("\"timeout_seconds\" must be a finite number >= 0");
    }
    r.timeout_seconds = secs;
  }
  return r;
}

Result<Response> decode_response(std::string_view payload) {
  std::string error;
  const std::optional<json::Value> doc = json::parse(payload, &error);
  if (!doc.has_value()) {
    return protocol_diag("response is not valid JSON: " + error);
  }
  if (!doc->is_object()) {
    return protocol_diag("response must be a JSON object");
  }
  Response r;
  const std::optional<std::uint64_t> id = read_u53(*doc, "id");
  if (!id.has_value()) {
    return protocol_diag("response needs a non-negative integer \"id\"");
  }
  r.id = *id;
  const json::Value* ok = doc->get("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return protocol_diag("response needs a boolean \"ok\"");
  }
  r.ok = ok->as_bool();
  if (const json::Value* p = doc->get("payload"); p != nullptr) {
    r.payload = p->as_string();
  }
  if (const json::Value* d = doc->get("diag"); d != nullptr) {
    std::optional<Diag> diag = diag_from_json(*d);
    if (!diag.has_value()) {
      return protocol_diag("response carries an undecodable \"diag\"");
    }
    r.diag = std::move(diag);
  }
  if (!r.ok && !r.diag.has_value()) {
    return protocol_diag("failed response is missing its \"diag\"");
  }
  return r;
}

}  // namespace gana::serve
