// Full annotation CLI: reads a SPICE file, optionally trains a quick GCN
// on the matching synthetic dataset, and prints the hierarchy tree,
// primitives, and constraints.
//
//   ./annotate_netlist my_circuit.sp [--domain ota|rf] [--train]
//                      [--circuits 150] [--epochs 25] [--svg out.svg]
//                      [--save-model m.ckpt] [--load-model m.ckpt]
//
// Without --train the pipeline runs model-free (cluster classes come from
// the uniform vote), which still exercises primitive annotation and
// hierarchy extraction.
#include <cstdio>
#include <fstream>
#include <memory>

#include "gana.hpp"
#include "gcn/serialize.hpp"
#include "util/args.hpp"

namespace {

std::unique_ptr<gana::gcn::GcnModel> train_quick_model(
    const std::string& domain, std::size_t circuits, int epochs) {
  gana::datagen::DatasetOptions dopt;
  dopt.circuits = circuits;
  dopt.seed = 1;
  std::vector<gana::datagen::LabeledCircuit> dataset;
  std::size_t classes = 2;
  if (domain == "rf") {
    dataset = gana::datagen::make_rf_dataset(dopt);
    classes = 3;
  } else {
    dataset = gana::datagen::make_ota_dataset(dopt);
  }
  gana::gcn::ModelConfig cfg;
  cfg.in_features = gana::core::kNumFeatures;
  cfg.num_classes = classes;
  cfg.conv_channels = {32, 64};
  cfg.cheb_k = 8;
  cfg.fc_hidden = 512;
  cfg.seed = 7;
  auto model = std::make_unique<gana::gcn::GcnModel>(cfg);

  auto samples = gana::core::make_gcn_samples(dataset, 0, 11);
  auto [train_set, val_set] =
      gana::gcn::split_dataset(std::move(samples), 0.8, 13);
  gana::gcn::TrainConfig tc;
  tc.epochs = epochs;
  tc.patience = 8;
  const auto result = gana::gcn::train(*model, train_set, val_set, tc);
  std::printf("trained %s model: val accuracy %.2f%%\n", domain.c_str(),
              result.best_val_acc * 100.0);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  const gana::Args args(argc, argv);
  if (args.positional().empty()) {
    std::printf(
        "usage: annotate_netlist <file.sp> [--domain ota|rf] [--train]\n"
        "                        [--circuits 150] [--epochs 25]\n"
        "                        [--svg layout.svg]\n");
    return 1;
  }
  const std::string path = args.positional()[0];
  const std::string domain = args.get("domain", "ota");

  gana::spice::Netlist netlist;
  try {
    netlist = gana::spice::parse_netlist_file(path);
  } catch (const gana::spice::NetlistError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::unique_ptr<gana::gcn::GcnModel> model;
  if (args.has("load-model")) {
    model = std::make_unique<gana::gcn::GcnModel>(
        gana::gcn::load_model_file(args.get("load-model")));
    std::printf("loaded model from %s (%zu parameters)\n",
                args.get("load-model").c_str(), model->parameter_count());
  } else if (args.has("train")) {
    model = train_quick_model(
        domain, static_cast<std::size_t>(args.get_int("circuits", 150)),
        args.get_int("epochs", 25));
  }
  if (model && args.has("save-model")) {
    gana::gcn::save_model_file(*model, args.get("save-model"));
    std::printf("model saved to %s\n", args.get("save-model").c_str());
  }

  const std::vector<std::string> classes =
      domain == "rf" ? gana::datagen::rf_class_names()
                     : std::vector<std::string>{"ota", "bias"};
  gana::core::Annotator annotator(model.get(), classes);
  const auto result = annotator.annotate(netlist, path);

  std::printf("\n== %s ==\n", path.c_str());
  std::printf("devices %zu  nets %zu  CCCs %zu  primitives %zu\n",
              result.prepared.flat.devices.size(),
              result.prepared.flat.nets().size(), result.ccc.count,
              result.post.primitives.size());
  std::printf("preprocessing removed %zu cards (parallel %zu, series %zu, "
              "dummies %zu, decaps %zu)\n",
              result.prepared.preprocess_report.total_removed(),
              result.prepared.preprocess_report.merged_parallel,
              result.prepared.preprocess_report.merged_series,
              result.prepared.preprocess_report.removed_dummies,
              result.prepared.preprocess_report.removed_decaps);

  std::printf("\n%s\n", gana::core::to_string(result.hierarchy).c_str());

  if (args.has("svg")) {
    const auto placement =
        gana::layout::place_hierarchy(result.hierarchy, result.prepared.flat);
    gana::layout::write_svg(placement, args.get("svg"));
    std::printf("layout written to %s (area %.1f um^2, HPWL %.1f um)\n",
                args.get("svg").c_str(), placement.area(),
                gana::layout::half_perimeter_wirelength(
                    placement, result.prepared.flat));
  }
  if (args.has("json")) {
    std::ofstream f(args.get("json"));
    f << gana::core::annotation_to_json(result, classes);
    std::printf("annotation JSON written to %s\n", args.get("json").c_str());
  }
  if (args.has("dot")) {
    std::ofstream f(args.get("dot"));
    f << gana::core::graph_to_dot(result.prepared.graph, result.final_class,
                                  classes);
    std::printf("graphviz DOT written to %s\n", args.get("dot").c_str());
  }
  return 0;
}
