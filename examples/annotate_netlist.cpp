// Full annotation CLI: reads a SPICE file, optionally trains a quick GCN
// on the matching synthetic dataset, and prints the hierarchy tree,
// primitives, and constraints.
//
//   ./annotate_netlist circuit.sp [more.sp ...] [--domain ota|rf]
//                      [--train] [--circuits 150] [--epochs 25]
//                      [--jobs N] [--keep-going] [--svg out.svg]
//                      [--session]
//                      [--sample-cache] [--annotation-cache]
//                      [--inference-cache] [--cache-capacity C]
//                      [--prep-cache-capacity C]
//                      [--annotation-cache-capacity C]
//                      [--inference-cache-capacity C]
//                      [--timeout-seconds S]
//                      [--frontend interned|reference]
//                      [--perf-json perf.json]
//                      [--save-model m.ckpt] [--load-model m.ckpt]
//
// Without --train the pipeline runs model-free (cluster classes come from
// the uniform vote), which still exercises primitive annotation and
// hierarchy extraction.
//
// --jobs N: with several input files, annotates them in parallel on N
// worker threads (bit-identical to the sequential run); with a single
// file, enables N-way row-parallel sparse products inside the GCN.
//
// --keep-going: process every input even when some fail; each file gets
// an [ OK ]/[FAIL] summary line. Without it the run stops at the first
// failure. Exit codes: 0 all annotated, 1 usage error, 2 I/O error,
// 3 parse/validation error, 4 annotation error (first failure in input
// order decides).
//
// --sample-cache: share spectral-operator preparation between
// structurally identical inputs (bit-identical outputs, less work).
//
// --annotation-cache: share the VF2 primitive-annotation sweep between
// structurally identical inputs (bit-identical outputs, less work).
//
// --inference-cache: memoize the GCN class probabilities per structure
// (keyed by the model's weights fingerprint); structurally identical
// inputs then run one forward pass total (bit-identical outputs).
//
// --cache-capacity C: bound each enabled cache to ~C entries with FIFO
// eviction (0, the default, keeps them unbounded). Eviction costs
// recompute only; outputs stay bit-identical.
//
// --prep-cache-capacity / --annotation-cache-capacity /
// --inference-cache-capacity: per-cache capacity overrides. Each falls
// back to --cache-capacity when not given, so the shared knob keeps
// working; a structurally diverse corpus can now e.g. bound the sample
// prep cache while leaving the cheap inference cache unbounded.
//
// --session: treat the input files as successive *revisions* of one
// evolving design and annotate them through an incremental
// AnnotationSession (DESIGN.md §14): the front end is skipped for
// value-only edits, primitive matching is re-run only for the regions an
// edit dirtied, and an unchanged structure reuses the whole cached
// annotation. All revisions are annotated under the session's design
// name (the first file's path), and each output is bit-identical to a
// cold run of that revision under that name. Revisions run sequentially
// (--jobs parallelizes inside the GCN); each gets a "revision" line
// with its reuse report.
//
// --timeout-seconds S: per-netlist wall-clock deadline. A circuit that
// exceeds it fails with DiagCode::DeadlineExceeded, gets a [TIMEOUT]
// summary line, and drives exit code 5; its siblings are unaffected
// (implies --keep-going semantics for the timed-out slot only under
// --keep-going, otherwise the run stops there like any other failure).
//
// --frontend interned|reference: select the front-end implementation
// (default interned -- the id-space fast path; reference is the legacy
// string path). Both produce bit-identical annotations.
//
// --kernel simd|unrolled|reference: select the dense/sparse product
// kernels (default simd -- the compile-time dispatched AVX2/NEON/scalar
// kernel; see DESIGN.md §10). Every kernel produces bit-identical
// annotations; the switch exists for oracle comparison and debugging.
//
// --perf-json FILE: write the batch's wall/stage timings and perf
// counters (allocations, spmm/matmul flops, parse/intern stats, cache
// hits) as JSON.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>

#include "gana.hpp"
#include "gcn/serialize.hpp"
#include "linalg/kernels.hpp"
#include "primitives/library_io.hpp"
#include "util/args.hpp"
#include "util/perf.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitIo = 2;
constexpr int kExitParse = 3;
constexpr int kExitAnnotate = 4;
constexpr int kExitTimeout = 5;

std::unique_ptr<gana::gcn::GcnModel> train_quick_model(
    const std::string& domain, std::size_t circuits, int epochs) {
  gana::datagen::DatasetOptions dopt;
  dopt.circuits = circuits;
  dopt.seed = 1;
  std::vector<gana::datagen::LabeledCircuit> dataset;
  std::size_t classes = 2;
  if (domain == "rf") {
    dataset = gana::datagen::make_rf_dataset(dopt);
    classes = 3;
  } else {
    dataset = gana::datagen::make_ota_dataset(dopt);
  }
  gana::gcn::ModelConfig cfg;
  cfg.in_features = gana::core::kNumFeatures;
  cfg.num_classes = classes;
  cfg.conv_channels = {32, 64};
  cfg.cheb_k = 8;
  cfg.fc_hidden = 512;
  cfg.seed = 7;
  auto model = std::make_unique<gana::gcn::GcnModel>(cfg);

  auto samples = gana::core::make_gcn_samples(dataset, 0, 11);
  auto [train_set, val_set] =
      gana::gcn::split_dataset(std::move(samples), 0.8, 13);
  gana::gcn::TrainConfig tc;
  tc.epochs = epochs;
  tc.patience = 8;
  const auto result = gana::gcn::train(*model, train_set, val_set, tc);
  std::printf("trained %s model: val accuracy %.2f%%\n", domain.c_str(),
              result.best_val_acc * 100.0);
  return model;
}

/// Exit code a parse-step diagnostic maps to (I/O vs parse/validate).
int parse_exit_code(const gana::Diag& d) {
  return d.stage == gana::Stage::Io || d.code == gana::DiagCode::IoError
             ? kExitIo
             : kExitParse;
}

/// One input file's fate: a parse failure, an annotation failure, or an
/// index into the batch outcome vector.
struct FileStatus {
  std::optional<gana::Diag> diag;
  int exit_code = kExitOk;  ///< kExitIo/kExitParse/kExitAnnotate on failure
};

void print_result(const gana::core::AnnotateResult& result) {
  std::printf("\n== %s ==\n", result.prepared.name.c_str());
  std::printf("devices %zu  nets %zu  CCCs %zu  primitives %zu\n",
              result.prepared.flat.devices.size(),
              result.prepared.flat.nets().size(), result.ccc.count,
              result.post.primitives.size());
  std::printf("preprocessing removed %zu cards (parallel %zu, series %zu, "
              "dummies %zu, decaps %zu)\n",
              result.prepared.preprocess_report.total_removed(),
              result.prepared.preprocess_report.merged_parallel,
              result.prepared.preprocess_report.merged_series,
              result.prepared.preprocess_report.removed_dummies,
              result.prepared.preprocess_report.removed_decaps);
  for (const auto& w : result.warnings) {
    std::printf("warning: %s\n", w.render().c_str());
  }
  std::printf("\n%s\n", gana::core::to_string(result.hierarchy).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const gana::Args args(argc, argv,
                        {"train", "keep-going", "session", "sample-cache",
                         "annotation-cache", "inference-cache"});
  if (args.positional().empty()) {
    std::printf(
        "usage: annotate_netlist <file.sp> [more.sp ...]\n"
        "                        [--domain ota|rf] [--train]\n"
        "                        [--circuits 150] [--epochs 25]\n"
        "                        [--jobs N] [--keep-going] [--session]\n"
        "                        [--sample-cache] [--annotation-cache]\n"
        "                        [--inference-cache] [--cache-capacity C]\n"
        "                        [--prep-cache-capacity C]\n"
        "                        [--annotation-cache-capacity C]\n"
        "                        [--inference-cache-capacity C]\n"
        "                        [--timeout-seconds S]\n"
        "                        [--load-library lib|standard]\n"
        "                        [--frontend interned|reference]\n"
        "                        [--kernel simd|unrolled|reference]\n"
        "                        [--perf-json perf.json]\n"
        "                        [--svg layout.svg]\n");
    return kExitUsage;
  }
  const std::vector<std::string> paths = args.positional();
  const std::string domain = args.get("domain", "ota");
  const std::string frontend = args.get("frontend", "interned");
  if (frontend != "interned" && frontend != "reference") {
    std::fprintf(stderr, "error: unknown --frontend '%s'\n", frontend.c_str());
    return kExitUsage;
  }
  const std::string kernel = args.get("kernel", "simd");
  if (kernel == "simd") {
    gana::set_matmul_kernel(gana::MatmulKernel::Simd);
    gana::set_spmm_kernel(gana::SpmmKernel::Simd);
  } else if (kernel == "unrolled") {
    gana::set_matmul_kernel(gana::MatmulKernel::Unrolled);
    gana::set_spmm_kernel(gana::SpmmKernel::Reference);
  } else if (kernel == "reference") {
    gana::set_matmul_kernel(gana::MatmulKernel::Reference);
    gana::set_spmm_kernel(gana::SpmmKernel::Reference);
  } else {
    std::fprintf(stderr, "error: unknown --kernel '%s'\n", kernel.c_str());
    return kExitUsage;
  }
  const bool keep_going = args.has("keep-going");
  const std::size_t jobs =
      static_cast<std::size_t>(std::max(args.get_int("jobs", 1), 0));

  // --- Parse. Each file independently yields a netlist or a located
  // diagnostic; --keep-going pushes past failures instead of stopping.
  // Parsing happens before BatchRunner opens its perf-counter window, so
  // snapshot here and patch parse_bytes over the wider window below.
  const gana::PerfSnapshot perf_at_parse = gana::perf_snapshot();
  std::vector<FileStatus> status(paths.size());
  std::vector<gana::spice::Netlist> netlists;      // parsed OK, in order
  std::vector<std::string> netlist_names;          // paths of `netlists`
  std::vector<std::size_t> netlist_file(paths.size(), SIZE_MAX);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    auto parsed = gana::spice::parse_netlist_file_result(paths[i]);
    if (parsed.ok()) {
      netlist_file[i] = netlists.size();
      netlists.push_back(parsed.take());
      netlist_names.push_back(paths[i]);
      continue;
    }
    status[i].exit_code = parse_exit_code(parsed.diag());
    status[i].diag = parsed.diag();
    if (!keep_going) {
      std::fprintf(stderr, "error: %s\n", parsed.diag().render().c_str());
      return status[i].exit_code;
    }
  }
  // Input bytes only: close the window before the Annotator parses the
  // primitive library's own pattern netlists.
  const std::uint64_t input_parse_bytes =
      (gana::perf_snapshot() - perf_at_parse).parse_bytes;

  std::unique_ptr<gana::gcn::GcnModel> model;
  if (args.has("load-model")) {
    // Text checkpoint or binary artifact, sniffed by magic; the binary
    // path maps the file and borrows the weights zero-copy.
    auto loaded = gana::gcn::load_model_any(args.get("load-model"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.diag().render().c_str());
      return kExitIo;
    }
    model = std::make_unique<gana::gcn::GcnModel>(loaded.take());
    std::printf("loaded model from %s (%zu parameters)\n",
                args.get("load-model").c_str(), model->parameter_count());
  } else if (args.has("train")) {
    model = train_quick_model(
        domain, static_cast<std::size_t>(args.get_int("circuits", 150)),
        args.get_int("epochs", 25));
  }
  if (model && args.has("save-model")) {
    gana::gcn::save_model_file(*model, args.get("save-model"));
    std::printf("model saved to %s\n", args.get("save-model").c_str());
  }

  // --- Annotate. The fault-isolated batch path never throws: every
  // parsed netlist comes back as a result or a staged diagnostic.
  const std::vector<std::string> classes =
      domain == "rf" ? gana::datagen::rf_class_names()
                     : std::vector<std::string>{"ota", "bias"};
  gana::core::PrepareOptions prepare;
  prepare.front_end = frontend == "reference"
                          ? gana::core::FrontEnd::Reference
                          : gana::core::FrontEnd::Interned;
  auto library =
      gana::primitives::load_library_any(args.get("load-library", "standard"));
  if (!library.ok()) {
    std::fprintf(stderr, "error: %s\n", library.diag().render().c_str());
    return kExitIo;
  }
  gana::core::Annotator annotator(model.get(), classes, library.take(),
                                  prepare);
  // Per-cache capacities, each falling back to the shared knob.
  const int shared_capacity = std::max(args.get_int("cache-capacity", 0), 0);
  const auto cache_capacity = [&](const char* flag) {
    return static_cast<std::size_t>(
        std::max(args.get_int(flag, shared_capacity), 0));
  };
  if (args.has("sample-cache")) {
    annotator.set_sample_cache(std::make_shared<gana::gcn::SamplePrepCache>(
        cache_capacity("prep-cache-capacity")));
  }
  if (args.has("annotation-cache")) {
    annotator.set_annotation_cache(
        std::make_shared<gana::primitives::AnnotationCache>(
            cache_capacity("annotation-cache-capacity")));
  }
  if (args.has("inference-cache")) {
    // Attached after any --train / --load-model: set_inference_cache
    // captures the weights fingerprint at this point.
    annotator.set_inference_cache(std::make_shared<gana::gcn::InferenceCache>(
        cache_capacity("inference-cache-capacity")));
  }
  gana::core::BatchOptions bopt;
  bopt.policy = keep_going ? gana::core::FailurePolicy::CollectAll
                           : gana::core::FailurePolicy::FailFast;
  bopt.timeout_seconds = args.get_double("timeout-seconds", 0.0);
  gana::core::BatchOutcome batch;
  if (args.has("session")) {
    // Edit-sequence replay: each input is the next revision of one
    // design, annotated incrementally. Sequential by construction
    // (revision i+1 diffs against i), so --jobs goes inside the GCN and
    // --timeout-seconds is ignored (deadlines would force cold runs).
    gana::incremental::AnnotationSession session(&annotator);
    // One evolving design: every revision keeps the session's design
    // name so value-only edits can take the patched-prepare path (the
    // session keys its previous-revision state on the name).
    const std::string design_name =
        netlist_names.empty() ? std::string() : netlist_names[0];
    gana::set_compute_threads(jobs);
    gana::Timer wall;
    const gana::PerfSnapshot perf_before = gana::perf_snapshot();
    batch.jobs = 1;
    bool aborted = false;
    for (std::size_t i = 0; i < netlists.size(); ++i) {
      if (aborted) {
        batch.outcomes.push_back(gana::make_diag(
            gana::DiagCode::Skipped, gana::Stage::Batch,
            "task " + std::to_string(i) +
                " skipped: fail-fast after an earlier failure"));
        continue;
      }
      auto outcome = session.reannotate(netlists[i], design_name);
      if (outcome.ok()) {
        const auto& st = session.last_stats();
        std::printf(
            "revision %zu: %s, devices +%zu/-%zu/~%zu, regions %zu "
            "(%zu reused, %zu recomputed)%s%s\n",
            i, st.full_prepare ? "full prepare" : "patched prepare",
            st.devices_added, st.devices_removed, st.devices_changed,
            st.regions, st.region_reuses, st.region_recomputes,
            st.annotation_reused ? ", annotation reused" : "",
            st.fallback_cold ? ", cold fallback" : "");
      } else {
        aborted = !keep_going;
      }
      batch.outcomes.push_back(std::move(outcome));
    }
    gana::set_compute_threads(1);
    batch.timings.wall_seconds = wall.seconds();
    batch.timings.apply_perf_delta(gana::perf_snapshot() - perf_before);
    for (const auto& o : batch.outcomes) {
      if (!o.ok()) continue;
      batch.timings.prepare_seconds += o.value().cpu_seconds_prepare;
      batch.timings.gcn_seconds += o.value().cpu_seconds_gcn;
      batch.timings.post_seconds += o.value().cpu_seconds_post;
      batch.timings.prepare_wall_seconds += o.value().seconds_prepare;
      batch.timings.gcn_wall_seconds += o.value().seconds_gcn;
      batch.timings.post_wall_seconds += o.value().seconds_post;
    }
  } else if (netlists.size() <= 1) {
    // One circuit: parallelism goes inside the pipeline (row-parallel
    // sparse products in the Chebyshev convolutions).
    gana::set_compute_threads(jobs);
    batch = gana::core::BatchRunner(annotator, bopt)
                .run_isolated(netlists, netlist_names);
    gana::set_compute_threads(1);
  } else {
    bopt.jobs = jobs;
    batch = gana::core::BatchRunner(annotator, bopt)
                .run_isolated(netlists, netlist_names);
  }
  batch.timings.parse_bytes += input_parse_bytes;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::size_t slot = netlist_file[i];
    if (slot == SIZE_MAX) continue;  // parse failure already recorded
    const auto& outcome = batch.outcomes[slot];
    if (outcome.ok()) {
      print_result(outcome.value());
    } else {
      status[i].exit_code =
          outcome.diag().code == gana::DiagCode::DeadlineExceeded
              ? kExitTimeout
              : kExitAnnotate;
      status[i].diag = outcome.diag();
      if (!keep_going) {
        std::fprintf(stderr, "error: %s\n", outcome.diag().render().c_str());
        return status[i].exit_code;
      }
    }
  }

  // --- Per-file summary and exit code (first failure in input order).
  std::size_t failed = 0;
  int exit_code = kExitOk;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (status[i].diag.has_value()) {
      ++failed;
      if (exit_code == kExitOk) exit_code = status[i].exit_code;
      const bool timed_out = status[i].exit_code == kExitTimeout;
      std::printf("%s %s: %s\n", timed_out ? "[TIMEOUT]" : "[FAIL]",
                  paths[i].c_str(), status[i].diag->render().c_str());
    } else {
      std::printf("[ OK ] %s\n", paths[i].c_str());
    }
  }
  std::printf("annotated %zu/%zu circuit%s on %zu worker%s in %.1f ms "
              "(CPU: prepare %.1f, gcn %.1f, post %.1f ms)\n",
              batch.ok_count(), paths.size(), paths.size() == 1 ? "" : "s",
              batch.jobs, batch.jobs == 1 ? "" : "s",
              batch.timings.wall_seconds * 1e3,
              batch.timings.prepare_seconds * 1e3,
              batch.timings.gcn_seconds * 1e3,
              batch.timings.post_seconds * 1e3);
  if (annotator.sample_cache() != nullptr) {
    const auto stats = annotator.sample_cache()->stats();
    std::printf("sample cache: %llu hits, %llu misses, %zu entries\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses), stats.entries);
  }
  if (annotator.inference_cache() != nullptr) {
    const auto stats = annotator.inference_cache()->stats();
    std::printf("inference cache: %llu hits, %llu misses, %zu entries\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses), stats.entries);
  }
  if (annotator.annotation_cache() != nullptr) {
    const auto stats = annotator.annotation_cache()->stats();
    std::printf("annotation cache: %llu hits, %llu misses, %zu entries\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses), stats.entries);
  }
  if (args.has("perf-json")) {
    std::ofstream f(args.get("perf-json"));
    f << gana::core::batch_timings_to_json(batch.timings, batch.jobs,
                                           batch.ok_count(), netlists.size())
      << "\n";
    std::printf("perf JSON written to %s\n", args.get("perf-json").c_str());
  }

  // --- Exports (first successfully annotated file only).
  const gana::core::AnnotateResult* result = nullptr;
  for (const auto& o : batch.outcomes) {
    if (o.ok()) {
      result = &o.value();
      break;
    }
  }
  if (result != nullptr) {
    if (paths.size() > 1 &&
        (args.has("svg") || args.has("json") || args.has("dot"))) {
      std::printf(
          "note: --svg/--json/--dot export the first annotated file only\n");
    }
    if (args.has("svg")) {
      const auto placement = gana::layout::place_hierarchy(
          result->hierarchy, result->prepared.flat);
      gana::layout::write_svg(placement, args.get("svg"));
      std::printf("layout written to %s (area %.1f um^2, HPWL %.1f um)\n",
                  args.get("svg").c_str(), placement.area(),
                  gana::layout::half_perimeter_wirelength(
                      placement, result->prepared.flat));
    }
    if (args.has("json")) {
      std::ofstream f(args.get("json"));
      f << gana::core::annotation_to_json(*result, classes);
      std::printf("annotation JSON written to %s\n", args.get("json").c_str());
    }
    if (args.has("dot")) {
      std::ofstream f(args.get("dot"));
      f << gana::core::graph_to_dot(result->prepared.graph,
                                    result->final_class, classes);
      std::printf("graphviz DOT written to %s\n", args.get("dot").c_str());
    }
  }
  return exit_code;
}
