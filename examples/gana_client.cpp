// Command-line client for a running gana-serve instance.
//
//   ./gana_client --socket /tmp/gana.sock file.sp [more.sp ...]
//                 [--timeout-seconds S] [--retries N] [--json out.json]
//   ./gana_client --socket /tmp/gana.sock --ping
//   ./gana_client --socket /tmp/gana.sock --metrics
//   ./gana_client --socket /tmp/gana.sock --shutdown
//
// Each positional file is read locally, shipped to the server as one
// annotate request, and summarized with the same [ OK ]/[FAIL] lines as
// the one-shot annotate_netlist CLI. --json writes the first successful
// annotation payload exactly as the server serialized it -- byte-equal
// to `annotate_netlist --json` on the same input (the soak harness
// diffs the two).
//
// --timeout-seconds bounds each request end to end (client wait and the
// server-side deadline). Overloaded responses are retried with
// exponential backoff + jitter up to --retries times before counting as
// a failure.
//
// Exit codes: 0 all requests succeeded, 1 usage error, 2 local I/O or
// connection failure, 4 any request failed, 5 any request exceeded its
// deadline (highest-numbered applicable code wins).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "util/args.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitIo = 2;
constexpr int kExitFailed = 4;
constexpr int kExitTimeout = 5;

}  // namespace

int main(int argc, char** argv) {
  const gana::Args args(argc, argv, {"ping", "metrics", "shutdown"});
  const bool control_only =
      args.has("ping") || args.has("metrics") || args.has("shutdown");
  if (!args.has("socket") || (args.positional().empty() && !control_only)) {
    std::printf(
        "usage: gana_client --socket /path/to.sock file.sp [more.sp ...]\n"
        "                   [--timeout-seconds S] [--retries N]\n"
        "                   [--json out.json]\n"
        "       gana_client --socket /path/to.sock --ping | --metrics |\n"
        "                   --shutdown\n");
    return kExitUsage;
  }

  gana::serve::ClientOptions copt;
  copt.socket_path = args.get("socket");
  const double timeout = args.get_double("timeout-seconds", 0.0);
  if (timeout > 0.0) copt.timeout_seconds = timeout;
  copt.max_retries = std::max(args.get_int("retries", copt.max_retries), 0);
  gana::serve::Client client(copt);

  if (args.has("ping")) {
    const bool ok = client.ping();
    std::printf("%s\n", ok ? "pong" : "no response");
    return ok ? kExitOk : kExitIo;
  }
  if (args.has("metrics")) {
    gana::Result<std::string> metrics = client.metrics();
    if (!metrics.ok()) {
      std::fprintf(stderr, "error: %s\n", metrics.diag().render().c_str());
      return kExitIo;
    }
    std::printf("%s\n", metrics.value().c_str());
    return kExitOk;
  }
  if (args.has("shutdown")) {
    const bool ok = client.shutdown_server();
    std::printf("%s\n", ok ? "server draining" : "no response");
    return ok ? kExitOk : kExitIo;
  }

  int exit_code = kExitOk;
  std::size_t ok_count = 0;
  std::string first_annotation;
  for (const std::string& path : args.positional()) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::printf("[FAIL] %s: cannot open\n", path.c_str());
      exit_code = std::max(exit_code, kExitIo);
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    gana::Result<std::string> annotation =
        client.annotate(path, text.str(), timeout);
    if (annotation.ok()) {
      ++ok_count;
      std::printf("[ OK ] %s\n", path.c_str());
      if (first_annotation.empty()) first_annotation = annotation.take();
      continue;
    }
    const gana::Diag& diag = annotation.diag();
    if (diag.code == gana::DiagCode::DeadlineExceeded) {
      std::printf("[TIMEOUT] %s: %s\n", path.c_str(), diag.render().c_str());
      exit_code = std::max(exit_code, kExitTimeout);
    } else {
      std::printf("[FAIL] %s: %s\n", path.c_str(), diag.render().c_str());
      exit_code = std::max(exit_code, kExitFailed);
    }
  }
  std::printf("annotated %zu/%zu circuit%s via %s\n", ok_count,
              args.positional().size(),
              args.positional().size() == 1 ? "" : "s",
              copt.socket_path.c_str());
  if (args.has("json") && !first_annotation.empty()) {
    std::ofstream f(args.get("json"));
    f << first_annotation;
    std::printf("annotation JSON written to %s\n", args.get("json").c_str());
  }
  return exit_code;
}
