// Trains the circuit-recognition GCN on the synthetic OTA-bias dataset
// (paper §V-A) and reports training/validation accuracy.
//
//   ./train_gcn [--circuits 200] [--epochs 40] [--k 8] [--pooling]
#include <cstdio>

#include "gana.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  const gana::Args args(argc, argv);
  const std::size_t circuits =
      static_cast<std::size_t>(args.get_int("circuits", 200));
  const int epochs = args.get_int("epochs", 40);
  const int k = args.get_int("k", 8);
  const bool pooling = args.has("pooling");

  std::printf("generating %zu OTA circuits...\n", circuits);
  gana::datagen::DatasetOptions dopt;
  dopt.circuits = circuits;
  dopt.seed = 1;
  const auto dataset = gana::datagen::make_ota_dataset(dopt);
  const auto stats = gana::datagen::dataset_stats(dataset);
  std::printf("  %zu devices + %zu nets = %zu nodes, %zu labels\n",
              stats.devices, stats.nets, stats.nodes(), stats.labels);

  gana::gcn::ModelConfig cfg;
  cfg.in_features = gana::core::kNumFeatures;
  cfg.num_classes = 2;
  cfg.conv_channels = {32, 64};
  cfg.cheb_k = k;
  cfg.fc_hidden = 512;
  cfg.use_pooling = pooling;
  cfg.seed = 7;

  auto samples = gana::core::make_gcn_samples(
      dataset, cfg.required_pool_levels(), /*seed=*/11);
  auto [train_set, val_set] =
      gana::gcn::split_dataset(std::move(samples), 0.8, 13);
  std::printf("train %zu circuits, validation %zu circuits\n",
              train_set.size(), val_set.size());

  gana::gcn::GcnModel model(cfg);
  std::printf("model: %zu parameters, K=%d, pooling=%s\n",
              model.parameter_count(), k, pooling ? "on" : "off");

  gana::gcn::TrainConfig tc;
  tc.epochs = epochs;
  tc.patience = 10;
  tc.verbose = true;
  const auto result = gana::gcn::train(model, train_set, val_set, tc);

  std::printf("\nbest validation accuracy %.2f%% at epoch %d (%.1fs)\n",
              result.best_val_acc * 100.0, result.best_epoch,
              result.train_seconds);

  const auto confusion =
      gana::gcn::confusion_matrix(model, val_set, cfg.num_classes);
  std::printf("validation confusion (rows=truth ota/bias):\n");
  for (const auto& row : confusion) {
    std::printf(" ");
    for (std::size_t v : row) std::printf(" %6zu", v);
    std::printf("\n");
  }
  return 0;
}
