// gana-shard: corpus-scale sharded batch annotation driver.
//
// Three entry modes share one binary:
//
//   gana_shard --datagen --dir corpus [--count N] [--seed S]
//       Generates a seeded netlist corpus plus its manifest
//       (corpus/manifest.txt). Idempotent: re-running with the same
//       parameters only fills in missing files.
//
//   gana_shard --manifest corpus/manifest.txt [--shards N] [--jobs N]
//       Annotates every manifest entry across N worker processes and
//       writes merged JSONL records (one per netlist, manifest order)
//       to stdout or --out. The merged bytes are identical for every
//       --shards value; see src/shard/driver.hpp.
//
//   gana_shard --worker --manifest M --begin A --end B ...
//       Internal: one shard's worker process, spawned by the driver.
//
// Exit codes follow annotate_netlist (0 ok, 1 usage, 2 io, 3 parse,
// 4 annotate, 5 timeout) plus 6 when a worker process crashed, exited
// nonzero, or missed its shard deadline.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "datagen/corpus.hpp"
#include "shard/driver.hpp"
#include "util/args.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitIo = 2;
constexpr int kExitParse = 3;
constexpr int kExitAnnotate = 4;
constexpr int kExitTimeout = 5;
constexpr int kExitWorker = 6;

void print_usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gana_shard --datagen --dir DIR [--count N] [--seed S]\n"
      "             [--per-dir N] [--ota-fraction F] [--rf-fraction F]\n"
      "  gana_shard --manifest FILE [--out FILE] [--shards N] [--jobs N]\n"
      "             [--domain ota|rf] [--keep-going]\n"
      "             [--shard-timeout-seconds S] [--timeout-seconds S]\n"
      "             [--seed S] [--no-caches] [--cache-capacity N]\n"
      "             [--load-model FILE] [--perf-json FILE]\n"
      "             [--worker-exe FILE] [--quiet]\n");
}

/// Exit code of the lowest-manifest-index failure.
int failure_exit_code(const gana::Diag& d) {
  switch (d.code) {
    case gana::DiagCode::DeadlineExceeded:
      return kExitTimeout;
    case gana::DiagCode::WorkerFailed:
      return kExitWorker;
    case gana::DiagCode::Skipped:
      // Fail-fast cancellation: the triggering failure decided the run,
      // but when the lowest-index record is the cancellation itself,
      // report the run as worker-level.
      return kExitWorker;
    case gana::DiagCode::IoError:
      return kExitIo;
    default:
      break;
  }
  if (d.stage == gana::Stage::Io) return kExitIo;
  if (d.stage == gana::Stage::Parse || d.stage == gana::Stage::Validate) {
    return kExitParse;
  }
  return kExitAnnotate;
}

int run_datagen(const gana::Args& args) {
  gana::datagen::CorpusOptions opt;
  opt.dir = args.get("dir");
  if (opt.dir.empty()) {
    std::fprintf(stderr, "gana-shard: --datagen requires --dir\n");
    print_usage();
    return kExitUsage;
  }
  opt.count =
      static_cast<std::size_t>(std::max(args.get_int("count", 100000), 0));
  const std::string seed_str = args.get("seed");
  if (!seed_str.empty()) {
    opt.seed = std::strtoull(seed_str.c_str(), nullptr, 10);
  }
  opt.files_per_subdir =
      static_cast<std::size_t>(std::max(args.get_int("per-dir", 1000), 1));
  opt.ota_fraction = args.get_double("ota-fraction", opt.ota_fraction);
  opt.rf_fraction = args.get_double("rf-fraction", opt.rf_fraction);

  auto stats = gana::datagen::write_corpus(opt);
  if (!stats.ok()) {
    std::fprintf(stderr, "gana-shard: %s\n", stats.diag().render().c_str());
    return kExitIo;
  }
  if (!args.has("quiet")) {
    std::fprintf(stderr,
                 "gana-shard: corpus ready: %zu written, %zu reused, "
                 "manifest %s\n",
                 stats.value().written, stats.value().reused,
                 stats.value().manifest_path.c_str());
  }
  return kExitOk;
}

int run_driver(const gana::Args& args) {
  const std::string manifest = args.get("manifest");
  if (manifest.empty()) {
    std::fprintf(stderr, "gana-shard: --manifest is required\n");
    print_usage();
    return kExitUsage;
  }

  gana::shard::ShardOptions opt;
  opt.shards =
      static_cast<std::size_t>(std::max(args.get_int("shards", 1), 1));
  opt.keep_going = args.has("keep-going");
  opt.shard_timeout_seconds = args.get_double("shard-timeout-seconds", 0.0);
  opt.worker_exe = args.get("worker-exe");
  opt.pipeline.jobs =
      static_cast<std::size_t>(std::max(args.get_int("jobs", 1), 1));
  const std::string seed_str = args.get("seed");
  if (!seed_str.empty()) {
    opt.pipeline.seed = std::strtoull(seed_str.c_str(), nullptr, 10);
  }
  opt.pipeline.domain = args.get("domain", "ota");
  if (opt.pipeline.domain != "ota" && opt.pipeline.domain != "rf") {
    std::fprintf(stderr, "gana-shard: unknown --domain %s\n",
                 opt.pipeline.domain.c_str());
    return kExitUsage;
  }
  opt.pipeline.caches = !args.has("no-caches");
  opt.pipeline.cache_capacity =
      static_cast<std::size_t>(std::max(args.get_int("cache-capacity", 0), 0));
  opt.pipeline.timeout_seconds = args.get_double("timeout-seconds", 0.0);
  opt.pipeline.load_model = args.get("load-model");

  std::ofstream out_file;
  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::binary | std::ios::trunc);
    if (!out_file) {
      std::fprintf(stderr, "gana-shard: cannot open --out %s\n",
                   out_path.c_str());
      return kExitIo;
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;

  auto run = gana::shard::run_sharded(manifest, opt, out);
  if (!run.ok()) {
    std::fprintf(stderr, "gana-shard: %s\n", run.diag().render().c_str());
    return run.diag().code == gana::DiagCode::IoError ? kExitIo
                                                      : kExitAnnotate;
  }
  out.flush();
  if (!out) {
    std::fprintf(stderr, "gana-shard: write to %s failed\n",
                 out_path.empty() ? "stdout" : out_path.c_str());
    return kExitIo;
  }
  const gana::shard::ShardRunStats& stats = run.value();

  const std::string perf_path = args.get("perf-json");
  if (!perf_path.empty()) {
    std::ofstream perf(perf_path, std::ios::binary | std::ios::trunc);
    perf << "[";
    for (std::size_t s = 0; s < stats.shards.size(); ++s) {
      if (s != 0) perf << ",";
      const std::string& p = stats.shards[s].perf_json;
      perf << (p.empty() ? "null" : p);
    }
    perf << "]\n";
    perf.close();
    if (!perf) {
      std::fprintf(stderr, "gana-shard: cannot write --perf-json %s\n",
                   perf_path.c_str());
      return kExitIo;
    }
  }

  if (!args.has("quiet")) {
    std::fprintf(stderr,
                 "gana-shard: %zu netlists, %zu ok, %zu failed, %zu shard%s, "
                 "%.3f s\n",
                 stats.total, stats.ok, stats.failed, stats.shards.size(),
                 stats.shards.size() == 1 ? "" : "s", stats.wall_seconds);
  }
  if (stats.first_failure.has_value()) {
    return failure_exit_code(*stats.first_failure);
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const gana::Args args(argc, argv);
  if (args.has("help")) {
    print_usage();
    return kExitOk;
  }
  if (args.has("worker")) return gana::shard::worker_main(args);
  if (args.has("datagen")) return run_datagen(args);
  return run_driver(args);
}
